#!/usr/bin/env bash
# Full verification sweep:
#   1. tier-1: Release build + entire test suite
#   2. DES kernel bench (gates: >=2x open-loop speedup, zero steady-state
#      heap allocations in the inline kernel)
#   3. ThreadSanitizer build, running the scheduler/event-kernel and
#      run_parallel tests (the only concurrent code path)
#
# Usage: tools/check.sh [--skip-tsan] [--skip-bench]
set -euo pipefail

cd "$(dirname "$0")/.."
skip_tsan=0
skip_bench=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    --skip-bench) skip_bench=1 ;;
    *) echo "usage: tools/check.sh [--skip-tsan] [--skip-bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: Release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$skip_bench" -eq 0 ]]; then
  echo "== DES kernel bench (speedup + zero-allocation gates) =="
  ./build/bench/des_kernel_bench --out build/BENCH_des_kernel.json
fi

if [[ "$skip_tsan" -eq 0 ]]; then
  echo "== ThreadSanitizer: scheduler + parallel tests =="
  cmake -B build-tsan -S . -DL2SIM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target l2sim_tests
  ctest --test-dir build-tsan --output-on-failure -j \
    -R 'Scheduler|Parallel|Determinism'
fi

echo "check.sh: all green"
