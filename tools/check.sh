#!/usr/bin/env bash
# Full verification sweep:
#   1. tier-1: Release build + entire test suite
#   2. DES kernel bench (gates: >=2x open-loop speedup, zero steady-state
#      heap allocations in the inline kernel)
#   3. fault bench (gates: crash/failover/loss acceptance criteria from
#      docs/bench_fault.md, plus bit-reproducibility)
#   4. telemetry bench (gates: <=1% overhead with spans off, <=5% at 1/64
#      span sampling; schema in docs/telemetry.md)
#   5. parallel DES bench (gates: serial/sharded digest equality on the
#      kernel folds, the golden 36-cell matrix and a 256-node cluster run;
#      >= 4x threaded speedup when >= 8 threads are usable; see
#      docs/parallel_des.md)
#   6. overload bench (gates: metastable-collapse acceptance from
#      docs/overload.md — undefended 3x-flash+crash baseline collapses,
#      the AIMD+budget+brownout stack keeps >= 70% of nominal goodput,
#      chaos replay bit-identical serial and under run_parallel); emits
#      build/BENCH_overload.json
#   7. obs bench (gates: <=2% saturated-throughput overhead with the
#      default flight-recorder ring on; see docs/observability.md) and the
#      shard-introspection study (gate: threaded fold with introspection
#      on stays bit-identical to the serial reference); emits
#      build/BENCH_obs.json
#   8. topology bench (gates: flow-level transfers cut scheduled events
#      >= 5x on the 256-node forwarding-heavy rack cell with digests
#      replaying serial vs sharded, pairwise lookahead needs strictly
#      fewer windows than the global-L baseline on rack-aligned shards;
#      see docs/topology.md); emits build/BENCH_topology.json
#   9. analytic bench (gates: Che hit rate within 5 pp of the DES on
#      every fault-free golden/stress cell, >= 100x analytic-vs-DES
#      wall-clock on the 64-cell sweep; see docs/analytic.md) and the
#      planner study (gate: the planned top-quartile brackets the
#      measured paper-figure knee to within one grid cell); emits
#      build/BENCH_analytic.json
#  10. AddressSanitizer build, running the fault-injection suites
#      (`ctest -L fault`) — the crash/retry/epoch machinery is where
#      lifetime bugs would hide — the telemetry suites (`-L telemetry`:
#      the span ring and exporter buffers), the flight-recorder suites
#      (`-L obs`: decision ring wrap, diff replays, exporter buffers,
#      shard introspection), the topology suites (`-L topo`: interconnect
#      geometry, flow-level transfers, pairwise lookahead, the rack/
#      fat-tree golden axis), the large-N sharded-engine suite
#      (`-L largen`), the chaos-harness suite (`-L chaos`: overload
#      defenses + non-stationary arrivals + faults composed), and the
#      analytic-model suites (`-L model`: Che fixed points, transient
#      curves, the hierarchical solver and the planner)
#  11. ThreadSanitizer build, running the scheduler/event-kernel (sharded
#      kernel + mailboxes + windowed barriers included), run_parallel
#      (including per-job telemetry + merge) and fault-determinism tests,
#      plus the fault, telemetry, obs, topo, largen and chaos labels — the
#      obs label covers the introspection counters the sharded workers
#      write; topo covers the pairwise-lookahead window protocol
#
# Usage: tools/check.sh [--skip-tsan] [--skip-asan] [--skip-bench]
set -euo pipefail

cd "$(dirname "$0")/.."
skip_tsan=0
skip_asan=0
skip_bench=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    --skip-asan) skip_asan=1 ;;
    --skip-bench) skip_bench=1 ;;
    *) echo "usage: tools/check.sh [--skip-tsan] [--skip-asan] [--skip-bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: Release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== clang-tidy: core engine (skipped when clang-tidy is unavailable) =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p build --quiet \
    src/core/*.cpp src/core/engine/*.cpp
else
  echo "clang-tidy not installed; skipping static analysis"
fi

if [[ "$skip_bench" -eq 0 ]]; then
  echo "== DES kernel bench (speedup + zero-allocation gates) =="
  ./build/bench/des_kernel_bench --out build/BENCH_des_kernel.json
  echo "== fault bench (availability acceptance gates) =="
  ./build/bench/fault_bench --out build/BENCH_fault.json
  echo "== telemetry bench (overhead gates) =="
  ./build/bench/telemetry_bench --out build/BENCH_telemetry.json
  echo "== parallel DES bench (speedup + digest-equality gates) =="
  ./build/bench/parallel_des_bench --out build/BENCH_parallel_des.json
  echo "== overload bench (metastable-collapse acceptance gates) =="
  ./build/bench/overload_bench --out build/BENCH_overload.json
  echo "== obs bench (flight-recorder overhead gate) =="
  ./build/bench/obs_bench --out build/BENCH_obs.json
  echo "== shard introspection study (observe-never-perturb gate) =="
  ./build/bench/shard_introspection_study
  echo "== topology bench (flow-mode event cut + pairwise lookahead gates) =="
  ./build/bench/topology_bench --out build/BENCH_topology.json
  echo "== analytic bench (Che-vs-DES accuracy + sweep speedup gates) =="
  ./build/bench/analytic_bench --out build/BENCH_analytic.json
  echo "== planner study (knee-bracketing gate) =="
  ./build/bench/planner_study
fi

if [[ "$skip_asan" -eq 0 ]]; then
  echo "== AddressSanitizer: fault + telemetry + obs + topo + largen + chaos + model suites =="
  cmake -B build-asan -S . -DL2SIM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target l2sim_fault_tests l2sim_telemetry_tests l2sim_obs_tests l2sim_topo_tests l2sim_largen_tests l2sim_chaos_tests l2sim_model_tests
  ctest --test-dir build-asan --output-on-failure -j -L 'fault|telemetry|obs|topo|largen|chaos|model'
fi

if [[ "$skip_tsan" -eq 0 ]]; then
  echo "== ThreadSanitizer: scheduler (incl. sharded) + parallel + fault + telemetry + obs + topo + chaos tests =="
  cmake -B build-tsan -S . -DL2SIM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target l2sim_tests l2sim_fault_tests l2sim_telemetry_tests l2sim_obs_tests l2sim_topo_tests l2sim_largen_tests l2sim_chaos_tests
  ctest --test-dir build-tsan --output-on-failure -j \
    -R 'Scheduler|ShardMap|ShardedScheduler|SchedulerHooks|ThreadBudget|Parallel|Determinism'
  ctest --test-dir build-tsan --output-on-failure -j -L 'fault|telemetry|obs|topo|largen|chaos'
fi

echo "check.sh: all green"
