// l2sim — command-line front end to the library.
//
//   l2sim model point --hit-rate 0.6 --size 16 [--nodes 16] [--replication 0]
//   l2sim model latency --hit-rate 0.8 --size 16 [--conscious]
//   l2sim model --analytic-cache --trace t.l2st [--nodes N] [--cache MB]
//               (hit rate from the Che cache level — no measured axis)
//   l2sim plan --trace t.l2st [--nodes 1,2,4,8] [--cache-mib 2,8,32] [--top K]
//   l2sim trace gen --out t.l2st [--paper calgary | --files N --avg-file KB
//                    --requests N --avg-req KB --alpha A] [--scale S]
//   l2sim trace info --in t.l2st            (or --clf access.log)
//   l2sim trace convert --clf access.log --out t.l2st
//   l2sim run --trace t.l2st|--paper calgary --policy l2s|lard|trad|rr
//             [--nodes N] [--cache MB] [--scale S] [--rate R] [--rpc K]
//             [--fail NODE@SECONDS] [--threads T for sweeps]
//   l2sim figure --paper calgary [--scale S] [--csv DIR] [--threads T]
//
// Every command prints a human-readable table; figures can also emit CSV.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/common/cli_args.hpp"
#include "l2sim/l2sim.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/policy/round_robin.hpp"

namespace {

using namespace l2s;

using Args = l2s::CliArgs;

int usage() {
  std::cerr <<
      "usage: l2sim <command> [options]\n"
      "  model point    --hit-rate H --size KB [--nodes N] [--replication R]\n"
      "  model latency  --hit-rate H --size KB [--conscious] [--points P]\n"
      "  model          --analytic-cache (--trace FILE | --paper NAME)\n"
      "                 [--nodes N] [--cache MB] [--rate R] [--policy P]\n"
      "                 [--replication R] [--transient-samples K]\n"
      "                 [overload flags: --arrival/--flash-*/--diurnal-*/\n"
      "                  --churn-*]   hit rates predicted, not supplied\n"
      "  plan           (--trace FILE | --paper NAME [--scale S])\n"
      "                 [--nodes N1,N2,...] [--cache-mib C1,C2,...]\n"
      "                 [--top K] [--replication R] [--knee W]\n"
      "                 [--crossover W] [--uncertainty W] [--policy P]\n"
      "                 [--rate R]   rank a sweep grid by predicted\n"
      "                 interest and emit the top-K cells as run commands\n"
      "  trace gen      --out FILE (--paper NAME | --files N --avg-file KB\n"
      "                 --requests N --avg-req KB --alpha A) [--scale S]\n"
      "                 [--temporal P]\n"
      "  trace info     (--in FILE | --clf LOG | --paper NAME [--scale S])\n"
      "  trace convert  --clf LOG --out FILE\n"
      "  run            (--trace FILE | --paper NAME [--scale S]) [--policy P]\n"
      "                 [--nodes N] [--cache MB] [--rate R] [--rpc K]\n"
      "                 [--gdsf] [--fail NODE@SEC] [--skew S] [--shrink SEC]\n"
      "                 [--trace-out T.json] [--metrics-out M.csv]\n"
      "                 [--timeseries-out TS.csv] [--spans-out S.csv]\n"
      "                 [--span-sample N] [--decisions-out D.csv]\n"
      "                 [--arrival stationary|flash|diurnal] [--chaos-seed N]\n"
      "                 [--flash-at S --flash-factor F --flash-ramp S\n"
      "                  --flash-hold S] [--diurnal-period S --diurnal-amp A]\n"
      "                 [--churn-period S --churn-stride K]\n"
      "                 [--shedder none|static|codel|aimd] [--static-cap N]\n"
      "                 [--target-delay S] [--retry-budget R --retry-burst B]\n"
      "                 [--hedge-delay S --max-hedges K] [--brownout]\n"
      "                 [--topology single|rack|fattree] [--racks N]\n"
      "                 [--oversub X] [--fat-tree-k K] [--segment-bytes N]\n"
      "                 [--flow-level]\n"
      "  figure         --paper NAME [--scale S] [--csv DIR] [--threads T]\n"
      "  diff           (--trace FILE | --paper NAME [--scale S]) [run flags]\n"
      "                 [--seed-a N] [--seed-b N] [--shards-a K|auto]\n"
      "                 [--shards-b K|auto] [--policy-a P] [--policy-b P]\n"
      "                 [--context N]   replay both sides with the flight\n"
      "                 recorder on and report the first divergent decision\n"
      "                 record (exit 0 identical, 3 diverged)\n";
  return 2;
}

trace::Trace load_trace(const Args& args) {
  if (args.has("trace") || args.has("in")) {
    return trace::read_binary_file(args.get("trace", args.get("in")));
  }
  if (args.has("clf")) {
    std::ifstream in(args.get("clf"));
    if (!in) throw Error("cannot open " + args.get("clf"));
    return trace::read_clf(in, args.get("clf"));
  }
  if (args.has("paper")) {
    auto spec = trace::paper_trace_spec(args.get("paper"));
    const double scale = args.get_double("scale", 0.1);
    spec.requests =
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
    if (args.has("temporal")) spec.temporal_locality = args.get_double("temporal", 0.0);
    return trace::generate(spec);
  }
  throw Error("no trace source: pass --trace, --clf or --paper");
}

core::PolicyKind policy_kind_by_name(const std::string& name) {
  if (name == "l2s") return core::PolicyKind::kL2s;
  if (name == "lard") return core::PolicyKind::kLard;
  if (name == "trad" || name == "traditional") return core::PolicyKind::kTraditional;
  throw Error("policy must be l2s, lard or trad");
}

// model --analytic-cache: run_model with the Che cache level — the hit
// rate is predicted from the trace's popularity profile instead of being
// passed on the command line.
int cmd_model_analytic(const Args& args) {
  const auto tr = load_trace(args);
  core::ExperimentSpec spec;
  spec.name = tr.name();
  spec.sim.nodes = args.get_int("nodes", 16);
  spec.sim.node.cache_bytes = static_cast<Bytes>(
      args.get_double("cache", 32.0) * static_cast<double>(kMiB));
  spec.sim.arrival.open_loop_rate = args.get_double("rate", 0.0);
  spec.model_replication = args.get_double("replication", 0.15);
  spec.policy = policy_kind_by_name(args.get("policy", "l2s"));
  core::apply_overload_cli(args, spec);  // --arrival/--flash-*/--churn-*
  spec.analytic.cache = true;
  spec.analytic.transient_samples = args.get_int("transient-samples", 64);
  const core::ModelResult r = core::run_model(spec, tr);

  TextTable t({"metric", "value"});
  t.cell("hit rate (%)").cell(r.hit_rate * 100.0, 2).end_row();
  t.cell("forwarded (%)").cell(r.forwarded_fraction * 100.0, 2).end_row();
  t.cell("max throughput (req/s)").cell(r.throughput_rps, 1).end_row();
  t.cell("served (req/s)").cell(r.served_rate_rps, 1).end_row();
  if (r.mean_response_seconds > 0.0)
    t.cell("mean response (ms)").cell(r.mean_response_seconds * 1e3, 2).end_row();
  t.cell("bottleneck").cell(r.bottleneck).end_row();
  t.cell("solver iterations").cell(static_cast<long long>(r.iterations)).end_row();
  t.print(std::cout);

  TextTable nodes({"node", "hit rate (%)"});
  for (std::size_t i = 0; i < r.per_node_hit.size(); ++i)
    nodes.cell(static_cast<long long>(i)).cell(r.per_node_hit[i] * 100.0, 2).end_row();
  nodes.print(std::cout);
  return 0;
}

int cmd_model(const Args& args) {
  if (args.has("analytic-cache")) return cmd_model_analytic(args);
  model::ModelParams params;
  params.nodes = args.get_int("nodes", 16);
  params.replication = args.get_double("replication", 0.0);
  if (args.has("cache")) params.cache_bytes = static_cast<Bytes>(
      args.get_double("cache", 128.0) * static_cast<double>(kMiB));
  const model::ClusterModel m(params);
  // --hit-rate is the manual override (the paper's measured axis); --hlo
  // is the historical spelling. `model --analytic-cache` predicts it.
  const double hlo = args.get_double("hit-rate", args.get_double("hlo", 0.6));
  const double size = args.get_double("size", 16.0);

  const std::string sub = args.positional().empty() ? "point" : args.positional()[0];
  if (sub == "latency") {
    const bool conscious = args.has("conscious");
    const auto curve = model::latency_curve(m, conscious, hlo, size,
                                            args.get_int("points", 12), 0.95);
    TextTable t({"load (%)", "req/s", "mean response (ms)"});
    for (const auto& p : curve)
      t.cell(p.utilization * 100.0, 0).cell(p.arrival_rate, 0)
          .cell(p.mean_response_s * 1e3, 2).end_row();
    t.print(std::cout);
    return 0;
  }
  const auto lo = m.oblivious(hlo, size);
  const auto lc = m.conscious(hlo, size);
  TextTable t({"server", "hit rate", "Q (%)", "bound (req/s)", "bottleneck"});
  t.cell("oblivious").cell(lo.hit_rate, 3).cell(0.0, 1).cell(lo.throughput, 0)
      .cell(lo.bottleneck).end_row();
  t.cell("conscious").cell(lc.hit_rate, 3).cell(lc.forwarded_fraction * 100.0, 1)
      .cell(lc.throughput, 0).cell(lc.bottleneck).end_row();
  t.print(std::cout);
  std::cout << "increase due to locality: "
            << format_double(lc.throughput / lo.throughput, 2) << "x\n";
  return 0;
}

int cmd_trace(const Args& args) {
  const std::string sub = args.positional().empty() ? "info" : args.positional()[0];
  if (sub == "gen") {
    trace::Trace tr = [&] {
      if (args.has("paper")) return load_trace(args);
      trace::SyntheticSpec spec;
      spec.name = args.get("name", "custom");
      spec.files = static_cast<std::uint64_t>(args.get_int("files", 1000));
      spec.avg_file_kb = args.get_double("avg-file", 32.0);
      spec.requests = static_cast<std::uint64_t>(args.get_int("requests", 100000));
      spec.avg_request_kb = args.get_double("avg-req", 16.0);
      spec.alpha = args.get_double("alpha", 1.0);
      spec.temporal_locality = args.get_double("temporal", 0.0);
      if (args.has("seed"))
        spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
      return trace::generate(spec);
    }();
    if (!args.has("out")) throw Error("trace gen: --out FILE required");
    trace::write_binary_file(tr, args.get("out"));
    std::cout << "wrote " << tr.request_count() << " requests / "
              << tr.files().count() << " files to " << args.get("out") << '\n';
    return 0;
  }
  if (sub == "convert") {
    const auto tr = load_trace(args);
    if (!args.has("out")) throw Error("trace convert: --out FILE required");
    trace::write_binary_file(tr, args.get("out"));
    std::cout << "converted: " << tr.request_count() << " requests -> "
              << args.get("out") << '\n';
    return 0;
  }
  // info
  const auto tr = load_trace(args);
  const auto ch = trace::characterize(tr);
  TextTable t({"metric", "value"});
  t.cell("name").cell(tr.name()).end_row();
  t.cell("files").cell(static_cast<long long>(ch.files)).end_row();
  t.cell("avg file (KB)").cell(ch.avg_file_kb, 2).end_row();
  t.cell("requests").cell(static_cast<long long>(ch.requests)).end_row();
  t.cell("avg request (KB)").cell(ch.avg_request_kb, 2).end_row();
  t.cell("fitted alpha").cell(ch.alpha, 3).end_row();
  t.cell("working set (MB)")
      .cell(static_cast<double>(ch.working_set_bytes) / 1048576.0, 1)
      .end_row();
  t.print(std::cout);
  return 0;
}

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto comma = csv.find(',', pos);
    out.push_back(std::atof(csv.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// plan: score a {nodes x cache} sweep grid on the analytic surface and
// print every cell ranked by predicted interest, then the top-K as
// ready-to-run `l2sim run` command lines — the DES budget goes where the
// analytic model is least trustworthy (knees, policy crossovers,
// approximation edges).
int cmd_plan(const Args& args) {
  const auto tr = load_trace(args);
  const trace::TraceCharacteristics ch = trace::characterize(tr);

  analytic::HierarchicalParams base;
  base.workload = ch.to_workload_stats();
  base.model.alpha = ch.alpha;
  base.model.replication = args.get_double("replication", 0.15);

  analytic::PlanAxes axes;
  if (args.has("nodes")) {
    axes.node_counts.clear();
    for (const double v : parse_list(args.get("nodes")))
      axes.node_counts.push_back(static_cast<int>(v));
  }
  if (args.has("cache-mib")) axes.cache_mib = parse_list(args.get("cache-mib"));

  analytic::PlanWeights weights;
  weights.knee = args.get_double("knee", weights.knee);
  weights.crossover = args.get_double("crossover", weights.crossover);
  weights.uncertainty = args.get_double("uncertainty", weights.uncertainty);

  const analytic::Plan plan = analytic::plan_cells(base, axes, weights);
  const auto top = static_cast<std::size_t>(
      args.get_int("top", static_cast<int>((plan.cells.size() + 3) / 4)));

  TextTable t({"rank", "nodes", "cache MiB", "score", "knee", "xover",
               "uncert", "lc req/s", "lo req/s", "hit", "bottleneck"});
  for (std::size_t k = 0; k < plan.cells.size(); ++k) {
    const auto& c = plan.cells[k];
    t.cell(static_cast<long long>(k + 1))
        .cell(static_cast<long long>(c.nodes))
        .cell(c.cache_mib, 0)
        .cell(c.score, 3)
        .cell(c.knee, 2)
        .cell(c.crossover, 2)
        .cell(c.uncertainty, 2)
        .cell(c.conscious_rps, 0)
        .cell(c.oblivious_rps, 0)
        .cell(c.hit_rate, 3)
        .cell(c.bottleneck)
        .end_row();
  }
  t.print(std::cout);

  // Materialize the top-K as runnable cells: library callers get specs via
  // plan_to_specs; the shell gets equivalent `l2sim run` command lines.
  core::ExperimentSpec base_spec;
  base_spec.name = tr.name();
  const auto specs = analytic::plan_to_specs(base_spec, plan, top);
  std::string source;
  if (args.has("trace") || args.has("in"))
    source = "--trace " + args.get("trace", args.get("in"));
  else if (args.has("clf"))
    source = "--clf " + args.get("clf");
  else
    source = "--paper " + args.get("paper") + " --scale " +
             format_double(args.get_double("scale", 0.1), 2);
  const std::string policy = args.get("policy", "l2s");
  const double rate = args.get_double("rate", 0.0);
  std::cout << "\nplanned cells (top " << specs.size() << " of "
            << plan.cells.size() << "):\n";
  for (const auto& s : specs) {
    std::cout << "  l2sim run " << source << " --policy " << policy
              << " --nodes " << s.sim.nodes << " --cache "
              << format_double(static_cast<double>(s.sim.node.cache_bytes) /
                                   static_cast<double>(kMiB),
                               0);
    if (rate > 0.0) std::cout << " --rate " << format_double(rate, 0);
    std::cout << "   # " << s.name << '\n';
  }
  return 0;
}

std::unique_ptr<policy::Policy> policy_by_name(const std::string& name, double shrink) {
  if (name == "l2s") return core::make_policy(core::PolicyKind::kL2s, shrink);
  if (name == "lard") return core::make_policy(core::PolicyKind::kLard, shrink);
  if (name == "trad" || name == "traditional")
    return core::make_policy(core::PolicyKind::kTraditional, shrink);
  if (name == "rr" || name == "rr-dns") return std::make_unique<policy::RoundRobinPolicy>();
  throw Error("unknown policy: " + name + " (expected l2s, lard, trad or rr)");
}

int cmd_run(const Args& args) {
  const auto tr = load_trace(args);
  core::ExperimentSpec spec;
  spec.name = tr.name();
  core::SimConfig& cfg = spec.sim;
  cfg.nodes = args.get_int("nodes", 16);
  cfg.node.cache_bytes = static_cast<Bytes>(
      args.get_double("cache", 32.0) * static_cast<double>(kMiB));
  if (args.has("gdsf")) cfg.node.cache_policy = cluster::CachePolicy::kGdsf;
  cfg.arrival.open_loop_rate = args.get_double("rate", 0.0);
  cfg.persistence.mean_requests_per_connection = args.get_double("rpc", 1.0);
  cfg.arrival.dns_entry_skew = args.get_double("skew", 0.0);
  core::apply_overload_cli(args, spec);
  core::apply_topology_cli(args, spec);
  if (args.has("timeline")) spec.output.timeline_csv_path = args.get("timeline");
  // Telemetry: any export flag enables the recorder for the run.
  if (args.has("trace-out")) spec.output.trace_json_path = args.get("trace-out");
  if (args.has("metrics-out")) spec.output.metrics_csv_path = args.get("metrics-out");
  if (args.has("timeseries-out"))
    spec.output.timeseries_csv_path = args.get("timeseries-out");
  if (args.has("spans-out")) spec.output.spans_csv_path = args.get("spans-out");
  // Decision log: the export flag enables the flight recorder for the run.
  if (args.has("decisions-out")) spec.output.decisions_csv_path = args.get("decisions-out");
  if (args.has("span-sample")) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.span_sample_every =
        static_cast<std::uint64_t>(args.get_int("span-sample", 64));
  }
  if (args.has("fail")) {
    const std::string fail = args.get("fail");
    const auto at = fail.find('@');
    if (at == std::string::npos) throw Error("--fail expects NODE@SECONDS");
    cfg.fault_plan.crashes.push_back(
        {std::atoi(fail.substr(0, at).c_str()), std::atof(fail.substr(at + 1).c_str())});
  }
  spec.set_shrink_seconds = args.get_double("shrink", 20.0 * args.get_double("scale", 0.1));
  const std::string pname = args.get("policy", "l2s");
  const auto r = [&]() -> core::SimResult {
    if (pname == "l2s") spec.policy = core::PolicyKind::kL2s;
    else if (pname == "lard") spec.policy = core::PolicyKind::kLard;
    else if (pname == "trad" || pname == "traditional")
      spec.policy = core::PolicyKind::kTraditional;
    else {
      // Policies outside PolicyKind (round robin) drive the simulator
      // directly from the spec's SimConfig.
      if (!spec.output.timeline_csv_path.empty())
        cfg.timeline_csv_path = spec.output.timeline_csv_path;
      if (spec.output.wants_telemetry()) cfg.telemetry.enabled = true;
      if (spec.output.wants_obs()) cfg.obs.enabled = true;
      core::ClusterSimulation sim(cfg, tr,
                                  policy_by_name(pname, spec.set_shrink_seconds));
      core::SimResult result = sim.run();
      core::export_outputs(spec.output, result);
      return result;
    }
    return core::run_simulation(spec, tr);
  }();
  if (r.telemetry != nullptr) telemetry::write_summary(std::cout, *r.telemetry);
  std::cout << r.describe() << '\n';
  TextTable t({"metric", "value"});
  t.cell("throughput (req/s)").cell(r.throughput_rps, 1).end_row();
  t.cell("completed / failed")
      .cell(std::to_string(r.completed) + " / " + std::to_string(r.failed))
      .end_row();
  t.cell("hit rate (%)").cell(r.hit_rate * 100.0, 2).end_row();
  t.cell("forwarded (%)").cell(r.forwarded_fraction * 100.0, 2).end_row();
  t.cell("CPU idle (%)").cell(r.cpu_idle_fraction * 100.0, 2).end_row();
  t.cell("load CoV").cell(r.load_cov, 3).end_row();
  t.cell("response mean/p50/p95/p99 (ms)")
      .cell(format_double(r.mean_response_ms, 2) + " / " +
            format_double(r.p50_response_ms, 2) + " / " +
            format_double(r.p95_response_ms, 2) + " / " +
            format_double(r.p99_response_ms, 2))
      .end_row();
  t.cell("stage entry/forward/disk/reply (ms)")
      .cell(format_double(r.stage_entry_ms, 2) + " / " +
            format_double(r.stage_forward_ms, 2) + " / " +
            format_double(r.stage_disk_ms, 2) + " / " +
            format_double(r.stage_reply_ms, 2))
      .end_row();
  t.cell("VIA messages").cell(static_cast<long long>(r.via_messages)).end_row();
  t.print(std::cout);
  return 0;
}

int parse_shards(const std::string& value) {
  if (value == "auto") return core::EngineConfig::kAutoShards;
  return std::atoi(value.c_str());
}

// Replay two configurations with the flight recorder on and report the
// first decision record where they disagree — the debugger for "these two
// runs should have matched digests and didn't".
int cmd_diff(const Args& args) {
  const auto tr = load_trace(args);
  core::ExperimentSpec base;
  base.name = tr.name();
  core::SimConfig& cfg = base.sim;
  cfg.nodes = args.get_int("nodes", 16);
  cfg.node.cache_bytes = static_cast<Bytes>(
      args.get_double("cache", 32.0) * static_cast<double>(kMiB));
  if (args.has("gdsf")) cfg.node.cache_policy = cluster::CachePolicy::kGdsf;
  cfg.arrival.open_loop_rate = args.get_double("rate", 0.0);
  cfg.persistence.mean_requests_per_connection = args.get_double("rpc", 1.0);
  cfg.arrival.dns_entry_skew = args.get_double("skew", 0.0);
  core::apply_overload_cli(args, base);
  if (args.has("fail")) {
    const std::string fail = args.get("fail");
    const auto at = fail.find('@');
    if (at == std::string::npos) throw Error("--fail expects NODE@SECONDS");
    cfg.fault_plan.crashes.push_back(
        {std::atoi(fail.substr(0, at).c_str()), std::atof(fail.substr(at + 1).c_str())});
  }
  base.set_shrink_seconds = args.get_double("shrink", 20.0 * args.get_double("scale", 0.1));
  base.policy = policy_kind_by_name(args.get("policy", "l2s"));

  core::ExperimentSpec a = base;
  core::ExperimentSpec b = base;
  if (args.has("seed-a"))
    a.sim.seed = static_cast<std::uint64_t>(args.get_int("seed-a", 0));
  if (args.has("seed-b"))
    b.sim.seed = static_cast<std::uint64_t>(args.get_int("seed-b", 0));
  if (args.has("shards-a")) a.sim.engine.shards = parse_shards(args.get("shards-a"));
  if (args.has("shards-b")) b.sim.engine.shards = parse_shards(args.get("shards-b"));
  if (args.has("policy-a")) a.policy = policy_kind_by_name(args.get("policy-a"));
  if (args.has("policy-b")) b.policy = policy_kind_by_name(args.get("policy-b"));

  obs::DiffOptions options;
  options.context = static_cast<std::size_t>(args.get_int("context", 8));
  const obs::DiffReport report = obs::diff_decisions(a, b, tr, options);
  std::cout << report.summary();
  return report.diverged ? 3 : 0;
}

int cmd_figure(const Args& args) {
  if (!args.has("paper")) throw Error("figure: --paper NAME required");
  const double scale = args.get_double("scale", 0.1);
  core::ExperimentSpec spec;
  spec.name = args.get("paper");
  spec.trace = core::TraceSpec::paper(spec.name, scale);
  spec.sim.node.cache_bytes = 32 * kMiB;
  spec.set_shrink_seconds = 20.0 * scale;

  const auto tr = spec.trace.realize();
  const auto cfg = core::to_experiment_config(spec);
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));
  const auto fig = threads == 1 ? core::run_throughput_figure(tr, cfg)
                                : core::run_throughput_figure_parallel(tr, cfg, threads);
  core::print_throughput_figure(std::cout, fig);
  if (args.has("csv"))
    core::write_throughput_csv(fig, args.get("csv"), "figure_" + tr.name());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "model") return cmd_model(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "figure") return cmd_figure(args);
    if (cmd == "diff") return cmd_diff(args);
    return usage();
  } catch (const l2s::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
