# Empty compiler generated dependencies file for dns_skew_study.
# This may be replaced when dependencies are built.
