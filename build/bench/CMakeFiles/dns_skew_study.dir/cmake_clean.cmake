file(REMOVE_RECURSE
  "CMakeFiles/dns_skew_study.dir/dns_skew_study.cpp.o"
  "CMakeFiles/dns_skew_study.dir/dns_skew_study.cpp.o.d"
  "dns_skew_study"
  "dns_skew_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_skew_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
