# Empty compiler generated dependencies file for fig4_conscious_surface.
# This may be replaced when dependencies are built.
