file(REMOVE_RECURSE
  "CMakeFiles/fig4_conscious_surface.dir/fig4_conscious_surface.cpp.o"
  "CMakeFiles/fig4_conscious_surface.dir/fig4_conscious_surface.cpp.o.d"
  "fig4_conscious_surface"
  "fig4_conscious_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_conscious_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
