# Empty dependencies file for fig5_simulated.
# This may be replaced when dependencies are built.
