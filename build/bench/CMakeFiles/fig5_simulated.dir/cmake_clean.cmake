file(REMOVE_RECURSE
  "CMakeFiles/fig5_simulated.dir/fig5_simulated.cpp.o"
  "CMakeFiles/fig5_simulated.dir/fig5_simulated.cpp.o.d"
  "fig5_simulated"
  "fig5_simulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_simulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
