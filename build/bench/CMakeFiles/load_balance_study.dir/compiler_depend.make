# Empty compiler generated dependencies file for load_balance_study.
# This may be replaced when dependencies are built.
