file(REMOVE_RECURSE
  "CMakeFiles/load_balance_study.dir/load_balance_study.cpp.o"
  "CMakeFiles/load_balance_study.dir/load_balance_study.cpp.o.d"
  "load_balance_study"
  "load_balance_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
