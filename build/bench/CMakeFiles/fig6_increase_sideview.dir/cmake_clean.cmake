file(REMOVE_RECURSE
  "CMakeFiles/fig6_increase_sideview.dir/fig6_increase_sideview.cpp.o"
  "CMakeFiles/fig6_increase_sideview.dir/fig6_increase_sideview.cpp.o.d"
  "fig6_increase_sideview"
  "fig6_increase_sideview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_increase_sideview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
