# Empty dependencies file for fig6_increase_sideview.
# This may be replaced when dependencies are built.
