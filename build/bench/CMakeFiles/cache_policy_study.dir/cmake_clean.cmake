file(REMOVE_RECURSE
  "CMakeFiles/cache_policy_study.dir/cache_policy_study.cpp.o"
  "CMakeFiles/cache_policy_study.dir/cache_policy_study.cpp.o.d"
  "cache_policy_study"
  "cache_policy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_policy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
