file(REMOVE_RECURSE
  "CMakeFiles/forwarding_study.dir/forwarding_study.cpp.o"
  "CMakeFiles/forwarding_study.dir/forwarding_study.cpp.o.d"
  "forwarding_study"
  "forwarding_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
