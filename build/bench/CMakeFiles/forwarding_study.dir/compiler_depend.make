# Empty compiler generated dependencies file for forwarding_study.
# This may be replaced when dependencies are built.
