file(REMOVE_RECURSE
  "CMakeFiles/persistent_study.dir/persistent_study.cpp.o"
  "CMakeFiles/persistent_study.dir/persistent_study.cpp.o.d"
  "persistent_study"
  "persistent_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
