# Empty compiler generated dependencies file for persistent_study.
# This may be replaced when dependencies are built.
