file(REMOVE_RECURSE
  "CMakeFiles/latency_validation.dir/latency_validation.cpp.o"
  "CMakeFiles/latency_validation.dir/latency_validation.cpp.o.d"
  "latency_validation"
  "latency_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
