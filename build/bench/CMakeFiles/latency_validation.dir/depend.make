# Empty dependencies file for latency_validation.
# This may be replaced when dependencies are built.
