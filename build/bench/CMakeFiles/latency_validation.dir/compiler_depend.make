# Empty compiler generated dependencies file for latency_validation.
# This may be replaced when dependencies are built.
