# Empty compiler generated dependencies file for missrate_study.
# This may be replaced when dependencies are built.
