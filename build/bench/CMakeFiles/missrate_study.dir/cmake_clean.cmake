file(REMOVE_RECURSE
  "CMakeFiles/missrate_study.dir/missrate_study.cpp.o"
  "CMakeFiles/missrate_study.dir/missrate_study.cpp.o.d"
  "missrate_study"
  "missrate_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missrate_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
