# Empty compiler generated dependencies file for fig3_oblivious_surface.
# This may be replaced when dependencies are built.
