file(REMOVE_RECURSE
  "CMakeFiles/fig3_oblivious_surface.dir/fig3_oblivious_surface.cpp.o"
  "CMakeFiles/fig3_oblivious_surface.dir/fig3_oblivious_surface.cpp.o.d"
  "fig3_oblivious_surface"
  "fig3_oblivious_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_oblivious_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
