# Empty compiler generated dependencies file for fig9_nasa.
# This may be replaced when dependencies are built.
