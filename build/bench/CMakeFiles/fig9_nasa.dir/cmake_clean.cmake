file(REMOVE_RECURSE
  "CMakeFiles/fig9_nasa.dir/fig9_nasa.cpp.o"
  "CMakeFiles/fig9_nasa.dir/fig9_nasa.cpp.o.d"
  "fig9_nasa"
  "fig9_nasa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_nasa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
