file(REMOVE_RECURSE
  "CMakeFiles/model_memory_sweep.dir/model_memory_sweep.cpp.o"
  "CMakeFiles/model_memory_sweep.dir/model_memory_sweep.cpp.o.d"
  "model_memory_sweep"
  "model_memory_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_memory_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
