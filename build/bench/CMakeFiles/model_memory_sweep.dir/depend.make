# Empty dependencies file for model_memory_sweep.
# This may be replaced when dependencies are built.
