# Empty compiler generated dependencies file for table1_model_params.
# This may be replaced when dependencies are built.
