file(REMOVE_RECURSE
  "CMakeFiles/miss_curve_study.dir/miss_curve_study.cpp.o"
  "CMakeFiles/miss_curve_study.dir/miss_curve_study.cpp.o.d"
  "miss_curve_study"
  "miss_curve_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_curve_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
