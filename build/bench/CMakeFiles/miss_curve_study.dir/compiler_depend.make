# Empty compiler generated dependencies file for miss_curve_study.
# This may be replaced when dependencies are built.
