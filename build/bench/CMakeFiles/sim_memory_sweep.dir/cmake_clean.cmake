file(REMOVE_RECURSE
  "CMakeFiles/sim_memory_sweep.dir/sim_memory_sweep.cpp.o"
  "CMakeFiles/sim_memory_sweep.dir/sim_memory_sweep.cpp.o.d"
  "sim_memory_sweep"
  "sim_memory_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_memory_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
