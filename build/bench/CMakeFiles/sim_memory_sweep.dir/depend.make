# Empty dependencies file for sim_memory_sweep.
# This may be replaced when dependencies are built.
