file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_study.dir/sensitivity_study.cpp.o"
  "CMakeFiles/sensitivity_study.dir/sensitivity_study.cpp.o.d"
  "sensitivity_study"
  "sensitivity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
