# Empty compiler generated dependencies file for sensitivity_study.
# This may be replaced when dependencies are built.
