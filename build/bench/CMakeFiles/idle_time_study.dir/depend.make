# Empty dependencies file for idle_time_study.
# This may be replaced when dependencies are built.
