file(REMOVE_RECURSE
  "CMakeFiles/idle_time_study.dir/idle_time_study.cpp.o"
  "CMakeFiles/idle_time_study.dir/idle_time_study.cpp.o.d"
  "idle_time_study"
  "idle_time_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idle_time_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
