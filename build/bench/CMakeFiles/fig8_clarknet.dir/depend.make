# Empty dependencies file for fig8_clarknet.
# This may be replaced when dependencies are built.
