file(REMOVE_RECURSE
  "CMakeFiles/fig8_clarknet.dir/fig8_clarknet.cpp.o"
  "CMakeFiles/fig8_clarknet.dir/fig8_clarknet.cpp.o.d"
  "fig8_clarknet"
  "fig8_clarknet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_clarknet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
