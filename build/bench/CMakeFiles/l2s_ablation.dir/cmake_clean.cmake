file(REMOVE_RECURSE
  "CMakeFiles/l2s_ablation.dir/l2s_ablation.cpp.o"
  "CMakeFiles/l2s_ablation.dir/l2s_ablation.cpp.o.d"
  "l2s_ablation"
  "l2s_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2s_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
