# Empty dependencies file for l2s_ablation.
# This may be replaced when dependencies are built.
