file(REMOVE_RECURSE
  "CMakeFiles/fig7_calgary.dir/fig7_calgary.cpp.o"
  "CMakeFiles/fig7_calgary.dir/fig7_calgary.cpp.o.d"
  "fig7_calgary"
  "fig7_calgary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_calgary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
