# Empty dependencies file for fig7_calgary.
# This may be replaced when dependencies are built.
