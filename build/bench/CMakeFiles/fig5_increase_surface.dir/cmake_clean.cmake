file(REMOVE_RECURSE
  "CMakeFiles/fig5_increase_surface.dir/fig5_increase_surface.cpp.o"
  "CMakeFiles/fig5_increase_surface.dir/fig5_increase_surface.cpp.o.d"
  "fig5_increase_surface"
  "fig5_increase_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_increase_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
