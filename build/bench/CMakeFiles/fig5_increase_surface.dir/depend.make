# Empty dependencies file for fig5_increase_surface.
# This may be replaced when dependencies are built.
