# Empty dependencies file for policy_panorama.
# This may be replaced when dependencies are built.
