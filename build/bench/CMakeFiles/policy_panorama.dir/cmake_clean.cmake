file(REMOVE_RECURSE
  "CMakeFiles/policy_panorama.dir/policy_panorama.cpp.o"
  "CMakeFiles/policy_panorama.dir/policy_panorama.cpp.o.d"
  "policy_panorama"
  "policy_panorama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_panorama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
