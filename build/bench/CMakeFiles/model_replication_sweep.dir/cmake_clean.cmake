file(REMOVE_RECURSE
  "CMakeFiles/model_replication_sweep.dir/model_replication_sweep.cpp.o"
  "CMakeFiles/model_replication_sweep.dir/model_replication_sweep.cpp.o.d"
  "model_replication_sweep"
  "model_replication_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_replication_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
