# Empty compiler generated dependencies file for model_replication_sweep.
# This may be replaced when dependencies are built.
