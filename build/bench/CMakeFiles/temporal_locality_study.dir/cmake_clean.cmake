file(REMOVE_RECURSE
  "CMakeFiles/temporal_locality_study.dir/temporal_locality_study.cpp.o"
  "CMakeFiles/temporal_locality_study.dir/temporal_locality_study.cpp.o.d"
  "temporal_locality_study"
  "temporal_locality_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_locality_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
