# Empty compiler generated dependencies file for temporal_locality_study.
# This may be replaced when dependencies are built.
