# Empty dependencies file for fig10_rutgers.
# This may be replaced when dependencies are built.
