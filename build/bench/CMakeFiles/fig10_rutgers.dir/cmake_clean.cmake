file(REMOVE_RECURSE
  "CMakeFiles/fig10_rutgers.dir/fig10_rutgers.cpp.o"
  "CMakeFiles/fig10_rutgers.dir/fig10_rutgers.cpp.o.d"
  "fig10_rutgers"
  "fig10_rutgers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rutgers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
