# Empty dependencies file for latency_curves.
# This may be replaced when dependencies are built.
