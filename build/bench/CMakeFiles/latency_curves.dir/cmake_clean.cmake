file(REMOVE_RECURSE
  "CMakeFiles/latency_curves.dir/latency_curves.cpp.o"
  "CMakeFiles/latency_curves.dir/latency_curves.cpp.o.d"
  "latency_curves"
  "latency_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
