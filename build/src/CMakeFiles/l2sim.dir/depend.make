# Empty dependencies file for l2sim.
# This may be replaced when dependencies are built.
