
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_stats.cpp" "src/CMakeFiles/l2sim.dir/cache/cache_stats.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cache/cache_stats.cpp.o.d"
  "/root/repo/src/cache/gdsf_cache.cpp" "src/CMakeFiles/l2sim.dir/cache/gdsf_cache.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cache/gdsf_cache.cpp.o.d"
  "/root/repo/src/cache/lru_cache.cpp" "src/CMakeFiles/l2sim.dir/cache/lru_cache.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cache/lru_cache.cpp.o.d"
  "/root/repo/src/cache/stack_distance.cpp" "src/CMakeFiles/l2sim.dir/cache/stack_distance.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cache/stack_distance.cpp.o.d"
  "/root/repo/src/cluster/connection.cpp" "src/CMakeFiles/l2sim.dir/cluster/connection.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cluster/connection.cpp.o.d"
  "/root/repo/src/cluster/injector.cpp" "src/CMakeFiles/l2sim.dir/cluster/injector.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cluster/injector.cpp.o.d"
  "/root/repo/src/cluster/load_tracker.cpp" "src/CMakeFiles/l2sim.dir/cluster/load_tracker.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cluster/load_tracker.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/l2sim.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/cluster/node.cpp.o.d"
  "/root/repo/src/common/cli_args.cpp" "src/CMakeFiles/l2sim.dir/common/cli_args.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/cli_args.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/l2sim.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/CMakeFiles/l2sim.dir/common/env.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/env.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/l2sim.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/l2sim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/l2sim.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/table.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/l2sim.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/common/units.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/l2sim.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/l2sim.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/l2sim.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/l2sim.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/core/report.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/l2sim.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/core/simulation.cpp.o.d"
  "/root/repo/src/des/process.cpp" "src/CMakeFiles/l2sim.dir/des/process.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/des/process.cpp.o.d"
  "/root/repo/src/des/resource.cpp" "src/CMakeFiles/l2sim.dir/des/resource.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/des/resource.cpp.o.d"
  "/root/repo/src/des/scheduler.cpp" "src/CMakeFiles/l2sim.dir/des/scheduler.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/des/scheduler.cpp.o.d"
  "/root/repo/src/model/cluster_model.cpp" "src/CMakeFiles/l2sim.dir/model/cluster_model.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/model/cluster_model.cpp.o.d"
  "/root/repo/src/model/latency.cpp" "src/CMakeFiles/l2sim.dir/model/latency.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/model/latency.cpp.o.d"
  "/root/repo/src/model/parameters.cpp" "src/CMakeFiles/l2sim.dir/model/parameters.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/model/parameters.cpp.o.d"
  "/root/repo/src/model/surface.cpp" "src/CMakeFiles/l2sim.dir/model/surface.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/model/surface.cpp.o.d"
  "/root/repo/src/model/trace_model.cpp" "src/CMakeFiles/l2sim.dir/model/trace_model.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/model/trace_model.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/CMakeFiles/l2sim.dir/net/nic.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/net/nic.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/l2sim.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/net/router.cpp.o.d"
  "/root/repo/src/net/switch_fabric.cpp" "src/CMakeFiles/l2sim.dir/net/switch_fabric.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/net/switch_fabric.cpp.o.d"
  "/root/repo/src/net/via.cpp" "src/CMakeFiles/l2sim.dir/net/via.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/net/via.cpp.o.d"
  "/root/repo/src/policy/consistent_hash.cpp" "src/CMakeFiles/l2sim.dir/policy/consistent_hash.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/consistent_hash.cpp.o.d"
  "/root/repo/src/policy/l2s.cpp" "src/CMakeFiles/l2sim.dir/policy/l2s.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/l2s.cpp.o.d"
  "/root/repo/src/policy/lard.cpp" "src/CMakeFiles/l2sim.dir/policy/lard.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/lard.cpp.o.d"
  "/root/repo/src/policy/lard_dispatcher.cpp" "src/CMakeFiles/l2sim.dir/policy/lard_dispatcher.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/lard_dispatcher.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/l2sim.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/policy.cpp.o.d"
  "/root/repo/src/policy/round_robin.cpp" "src/CMakeFiles/l2sim.dir/policy/round_robin.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/round_robin.cpp.o.d"
  "/root/repo/src/policy/server_set.cpp" "src/CMakeFiles/l2sim.dir/policy/server_set.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/server_set.cpp.o.d"
  "/root/repo/src/policy/traditional.cpp" "src/CMakeFiles/l2sim.dir/policy/traditional.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/policy/traditional.cpp.o.d"
  "/root/repo/src/queueing/jackson.cpp" "src/CMakeFiles/l2sim.dir/queueing/jackson.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/queueing/jackson.cpp.o.d"
  "/root/repo/src/queueing/mg1.cpp" "src/CMakeFiles/l2sim.dir/queueing/mg1.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/queueing/mg1.cpp.o.d"
  "/root/repo/src/queueing/mm1.cpp" "src/CMakeFiles/l2sim.dir/queueing/mm1.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/queueing/mm1.cpp.o.d"
  "/root/repo/src/queueing/mmc.cpp" "src/CMakeFiles/l2sim.dir/queueing/mmc.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/queueing/mmc.cpp.o.d"
  "/root/repo/src/stats/accumulator.cpp" "src/CMakeFiles/l2sim.dir/stats/accumulator.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/stats/accumulator.cpp.o.d"
  "/root/repo/src/stats/counter_set.cpp" "src/CMakeFiles/l2sim.dir/stats/counter_set.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/stats/counter_set.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/l2sim.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/CMakeFiles/l2sim.dir/storage/disk.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/storage/disk.cpp.o.d"
  "/root/repo/src/storage/file_set.cpp" "src/CMakeFiles/l2sim.dir/storage/file_set.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/storage/file_set.cpp.o.d"
  "/root/repo/src/trace/binary_io.cpp" "src/CMakeFiles/l2sim.dir/trace/binary_io.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/trace/binary_io.cpp.o.d"
  "/root/repo/src/trace/characterize.cpp" "src/CMakeFiles/l2sim.dir/trace/characterize.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/trace/characterize.cpp.o.d"
  "/root/repo/src/trace/clf_reader.cpp" "src/CMakeFiles/l2sim.dir/trace/clf_reader.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/trace/clf_reader.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/l2sim.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/l2sim.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/trace/trace.cpp.o.d"
  "/root/repo/src/zipf/harmonic.cpp" "src/CMakeFiles/l2sim.dir/zipf/harmonic.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/zipf/harmonic.cpp.o.d"
  "/root/repo/src/zipf/sampler.cpp" "src/CMakeFiles/l2sim.dir/zipf/sampler.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/zipf/sampler.cpp.o.d"
  "/root/repo/src/zipf/zipf.cpp" "src/CMakeFiles/l2sim.dir/zipf/zipf.cpp.o" "gcc" "src/CMakeFiles/l2sim.dir/zipf/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
