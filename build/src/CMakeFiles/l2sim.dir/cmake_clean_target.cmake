file(REMOVE_RECURSE
  "libl2sim.a"
)
