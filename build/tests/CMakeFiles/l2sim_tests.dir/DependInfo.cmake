
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accumulator.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_accumulator.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_accumulator.cpp.o.d"
  "/root/repo/tests/test_binary_io.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_binary_io.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_binary_io.cpp.o.d"
  "/root/repo/tests/test_breakdown.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_breakdown.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_breakdown.cpp.o.d"
  "/root/repo/tests/test_characterize.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_characterize.cpp.o.d"
  "/root/repo/tests/test_clf_reader.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_clf_reader.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_clf_reader.cpp.o.d"
  "/root/repo/tests/test_cli_args.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_cli_args.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_cli_args.cpp.o.d"
  "/root/repo/tests/test_cluster_model.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_cluster_model.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_cluster_model.cpp.o.d"
  "/root/repo/tests/test_consistent_hash.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_consistent_hash.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_consistent_hash.cpp.o.d"
  "/root/repo/tests/test_disk.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_disk.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_disk.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_failures.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_failures.cpp.o.d"
  "/root/repo/tests/test_file_set.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_file_set.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_file_set.cpp.o.d"
  "/root/repo/tests/test_gdsf_cache.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_gdsf_cache.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_gdsf_cache.cpp.o.d"
  "/root/repo/tests/test_harmonic.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_harmonic.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_harmonic.cpp.o.d"
  "/root/repo/tests/test_heterogeneity.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_heterogeneity.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_heterogeneity.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_injector.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_injector.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_injector.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interactions.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_interactions.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_interactions.cpp.o.d"
  "/root/repo/tests/test_jackson.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_jackson.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_jackson.cpp.o.d"
  "/root/repo/tests/test_lard_dispatcher.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_lard_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_lard_dispatcher.cpp.o.d"
  "/root/repo/tests/test_latency.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_latency.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_latency.cpp.o.d"
  "/root/repo/tests/test_load_tracker.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_load_tracker.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_load_tracker.cpp.o.d"
  "/root/repo/tests/test_lru_cache.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_lru_cache.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_lru_cache.cpp.o.d"
  "/root/repo/tests/test_mg1.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_mg1.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_mg1.cpp.o.d"
  "/root/repo/tests/test_mm1.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_mm1.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_mm1.cpp.o.d"
  "/root/repo/tests/test_mmc.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_mmc.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_mmc.cpp.o.d"
  "/root/repo/tests/test_model_params.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_model_params.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_model_params.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_open_loop.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_open_loop.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_open_loop.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_persistent.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_persistent.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_persistent.cpp.o.d"
  "/root/repo/tests/test_policy_l2s.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_policy_l2s.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_policy_l2s.cpp.o.d"
  "/root/repo/tests/test_policy_lard.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_policy_lard.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_policy_lard.cpp.o.d"
  "/root/repo/tests/test_policy_traditional.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_policy_traditional.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_policy_traditional.cpp.o.d"
  "/root/repo/tests/test_process.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_process.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_process.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_resource.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_resource.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_resource.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_round_robin.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_round_robin.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_round_robin.cpp.o.d"
  "/root/repo/tests/test_sampler.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_sampler.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_server_set.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_server_set.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_server_set.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_specweb.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_specweb.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_specweb.cpp.o.d"
  "/root/repo/tests/test_stack_distance.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_stack_distance.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_stack_distance.cpp.o.d"
  "/root/repo/tests/test_surface.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_surface.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_surface.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_model.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_trace_model.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_trace_model.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_via.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_via.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_via.cpp.o.d"
  "/root/repo/tests/test_zipf.cpp" "tests/CMakeFiles/l2sim_tests.dir/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/l2sim_tests.dir/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/l2sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
