# Empty compiler generated dependencies file for l2sim_tests.
# This may be replaced when dependencies are built.
