file(REMOVE_RECURSE
  "CMakeFiles/l2sim_cli.dir/l2sim_cli.cpp.o"
  "CMakeFiles/l2sim_cli.dir/l2sim_cli.cpp.o.d"
  "l2sim"
  "l2sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
