# Empty compiler generated dependencies file for l2sim_cli.
# This may be replaced when dependencies are built.
