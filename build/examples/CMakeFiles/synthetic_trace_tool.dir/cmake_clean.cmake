file(REMOVE_RECURSE
  "CMakeFiles/synthetic_trace_tool.dir/synthetic_trace_tool.cpp.o"
  "CMakeFiles/synthetic_trace_tool.dir/synthetic_trace_tool.cpp.o.d"
  "synthetic_trace_tool"
  "synthetic_trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
