# Empty dependencies file for synthetic_trace_tool.
# This may be replaced when dependencies are built.
