// synthetic_trace_tool: generate a calibrated synthetic trace and verify
// its statistics, optionally exporting it as a Common-Log-Format file that
// can be fed back through the CLF reader (or to other tools).
//
//   $ ./synthetic_trace_tool <files> <avg_file_kb> <requests> <avg_req_kb> <alpha> [out.log]
//   $ ./synthetic_trace_tool --paper calgary [out.log]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "l2sim/l2sim.hpp"

namespace {

void export_clf(const l2s::trace::Trace& tr, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw l2s::Error("cannot open " + path);
  for (const auto& r : tr.requests()) {
    out << "client - - [01/Jan/2000:00:00:00 +0000] \"GET /file" << r.file
        << ".dat HTTP/1.0\" 200 " << r.bytes << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace l2s;
  try {
    trace::SyntheticSpec spec;
    std::string out_path;
    if (argc >= 3 && std::string(argv[1]) == "--paper") {
      spec = trace::paper_trace_spec(argv[2]);
      // Keep the tool quick: a tenth of the paper's request volume.
      spec.requests /= 10;
      if (argc > 3) out_path = argv[3];
    } else if (argc >= 6) {
      spec.name = "custom";
      spec.files = static_cast<std::uint64_t>(std::atoll(argv[1]));
      spec.avg_file_kb = std::atof(argv[2]);
      spec.requests = static_cast<std::uint64_t>(std::atoll(argv[3]));
      spec.avg_request_kb = std::atof(argv[4]);
      spec.alpha = std::atof(argv[5]);
      if (argc > 6) out_path = argv[6];
    } else {
      std::cerr << "usage: synthetic_trace_tool <files> <avg_file_kb> <requests> "
                   "<avg_req_kb> <alpha> [out.log]\n"
                   "       synthetic_trace_tool --paper <calgary|clarknet|nasa|rutgers> "
                   "[out.log]\n";
      return 1;
    }

    const trace::Trace tr = trace::generate(spec);
    const auto ch = trace::characterize(tr);
    std::cout << "generated '" << spec.name << "'\n";
    TextTable t({"metric", "spec", "measured"});
    t.cell("files").cell(static_cast<long long>(spec.files))
        .cell(static_cast<long long>(ch.files)).end_row();
    t.cell("avg file KB").cell(spec.avg_file_kb, 2).cell(ch.avg_file_kb, 2).end_row();
    t.cell("requests").cell(static_cast<long long>(spec.requests))
        .cell(static_cast<long long>(ch.requests)).end_row();
    t.cell("avg req KB").cell(spec.avg_request_kb, 2).cell(ch.avg_request_kb, 2).end_row();
    t.cell("alpha").cell(spec.alpha, 2).cell(ch.alpha, 2).end_row();
    t.cell("working set MB").cell("-")
        .cell(static_cast<double>(ch.working_set_bytes) / 1048576.0, 1).end_row();
    t.print(std::cout);

    if (!out_path.empty()) {
      export_clf(tr, out_path);
      std::cout << "\nwrote " << tr.request_count() << " CLF lines to " << out_path << '\n';

      // Round-trip check through the CLF reader.
      std::ifstream in(out_path);
      const auto back = trace::read_clf(in, "roundtrip");
      std::cout << "round-trip: " << back.request_count() << " requests, "
                << back.files().count() << " files\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
