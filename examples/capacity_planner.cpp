// capacity_planner: answer the operator's question — "how many nodes do I
// need for W requests/second at an SLO?" — with the analytic model, then
// verify the chosen size by simulation.
//
//   $ ./capacity_planner <target_rps> [slo_ms] [calgary|clarknet|nasa|rutgers]
#include <cstdlib>
#include <iostream>

#include "l2sim/l2sim.hpp"

int main(int argc, char** argv) {
  using namespace l2s;

  if (argc < 2) {
    std::cerr << "usage: capacity_planner <target_rps> [slo_ms=50] [trace=calgary]\n";
    return 1;
  }
  const double target = std::atof(argv[1]);
  const double slo_ms = argc > 2 ? std::atof(argv[2]) : 50.0;
  const std::string trace_name = argc > 3 ? argv[3] : "calgary";

  // One spec describes the whole exercise: a (scaled) synthetic workload
  // of the named kind on a 32 MB-cache L2S cluster, open-loop arrivals at
  // the target rate. The model sizes it; the simulator verifies it.
  core::ExperimentSpec exp;
  exp.name = "capacity_plan";
  exp.trace = core::TraceSpec::paper(trace_name, 1.0 / 20.0);
  exp.sim.node.cache_bytes = 32 * kMiB;
  exp.sim.arrival.open_loop_rate = target;
  exp.sim.admission.buffer_slots_per_node = 24;
  exp.policy = core::PolicyKind::kL2s;
  const trace::Trace tr = exp.trace.realize();

  std::cout << "planning for " << target << " req/s at p-mean <= " << slo_ms
            << " ms on a " << trace_name << "-like workload\n\n";

  // 1. Find the smallest cluster whose model bound exceeds the target with
  //    25% headroom (queueing near saturation is hopeless for any SLO).
  int nodes = 0;
  TextTable plan({"nodes", "model bound (req/s)", "target fits?"});
  for (int n = 1; n <= 64; ++n) {
    exp.sim.nodes = n;
    const double bound = core::run_model(exp, tr).throughput_rps;
    const bool fits = bound >= target * 1.25;
    if (n <= 4 || n % 4 == 0 || fits) {
      plan.cell(static_cast<long long>(n)).cell(bound, 0)
          .cell(fits ? "yes" : "no").end_row();
    }
    if (fits) {
      nodes = n;
      break;
    }
  }
  plan.print(std::cout);
  if (nodes == 0) {
    std::cout << "\ntarget unreachable within 64 nodes (router-bound?)\n";
    return 1;
  }
  std::cout << "\nmodel suggests " << nodes << " node(s); verifying by simulation...\n\n";

  // 2. Verify with open-loop simulations at the target rate, growing the
  //    cluster until the SLO holds (the model bound assumes perfect
  //    balance, so the simulated cluster usually needs a node or two
  //    more). The admission window stays near L2S's overload threshold.
  for (int attempt = 0; attempt < 5; ++attempt, nodes += 2) {
    exp.sim.nodes = nodes;
    const auto r = core::run_simulation(exp, tr);

    const double drop_pct = 100.0 * static_cast<double>(r.failed) /
                            static_cast<double>(r.completed + r.failed);
    TextTable verdict({"metric", "value"});
    verdict.cell("nodes").cell(static_cast<long long>(nodes)).end_row();
    verdict.cell("offered / served (req/s)")
        .cell(format_double(target, 0) + " / " + format_double(r.throughput_rps, 0))
        .end_row();
    verdict.cell("dropped (%)").cell(drop_pct, 2).end_row();
    verdict.cell("mean response (ms)").cell(r.mean_response_ms, 2).end_row();
    verdict.cell("p95 response (ms)").cell(r.p95_response_ms, 2).end_row();
    verdict.print(std::cout);

    const bool ok = drop_pct < 1.0 && r.mean_response_ms <= slo_ms;
    if (ok) {
      std::cout << "\nPLAN OK: " << nodes << " node(s) meet the SLO\n";
      return 0;
    }
    std::cout << "-> insufficient, trying " << nodes + 2 << " nodes\n\n";
  }
  std::cout << "\nPLAN FAILED within the attempted sizes; consider larger caches\n"
               "or a relaxed SLO.\n";
  return 1;
}
