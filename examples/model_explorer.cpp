// model_explorer: query the analytic model from the command line.
//
//   $ ./model_explorer <Hlo> <avg_size_kb> [nodes] [replication]
//
// Prints, for one workload point, everything Section 3 of the paper
// derives: the conscious hit rate, replicated hit rate, forwarded
// fraction, both servers' throughput bounds, bottleneck stations, and the
// per-station utilizations just below saturation.
#include <cstdlib>
#include <iostream>

#include "l2sim/l2sim.hpp"

int main(int argc, char** argv) {
  using namespace l2s;

  if (argc < 3) {
    std::cerr << "usage: model_explorer <Hlo 0..1> <avg_size_kb> [nodes=16] [replication=0]\n";
    return 1;
  }
  const double hlo = std::atof(argv[1]);
  const double size_kb = std::atof(argv[2]);
  model::ModelParams params;
  if (argc > 3) params.nodes = std::atoi(argv[3]);
  if (argc > 4) params.replication = std::atof(argv[4]);

  try {
    const model::ClusterModel m(params);
    const auto lo = m.oblivious(hlo, size_kb);
    const auto lc = m.conscious(hlo, size_kb);

    std::cout << "workload: Hlo=" << hlo << "  S=" << size_kb << " KB  N=" << params.nodes
              << "  R=" << params.replication * 100 << "%\n\n";

    TextTable t({"server", "hit rate", "Q (%)", "throughput (req/s)", "bottleneck"});
    t.cell("locality-oblivious").cell(lo.hit_rate, 3).cell(0.0, 1)
        .cell(lo.throughput, 0).cell(lo.bottleneck).end_row();
    t.cell("locality-conscious").cell(lc.hit_rate, 3)
        .cell(lc.forwarded_fraction * 100.0, 1).cell(lc.throughput, 0)
        .cell(lc.bottleneck).end_row();
    t.print(std::cout);
    std::cout << "\nthroughput increase due to locality: "
              << format_double(lc.throughput / lo.throughput, 2) << "x\n";

    // Station detail at 95% of the conscious bound.
    const auto net = m.build_network(lc.hit_rate, lc.forwarded_fraction, size_kb, size_kb);
    const auto report = net.solve(0.95 * lc.throughput);
    std::cout << "\nstations at 95% of the conscious bound:\n";
    TextTable s({"station", "utilization", "mean queue", "residence (ms)"});
    for (const auto& st : report.stations) {
      s.cell(st.name).cell(st.metrics.utilization, 3).cell(st.metrics.mean_customers, 2)
          .cell(st.metrics.mean_response * 1e3, 3).end_row();
    }
    s.print(std::cout);
    std::cout << "\nmean response (model, per request): "
              << format_double(report.mean_response * 1e3, 3) << " ms\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
