// custom_policy: implementing a new request-distribution policy against
// the public Policy interface.
//
// The example policy is a *hash-partitioned* server (consistent-assignment
// by file id, the scheme many commercial content-aware switches use): the
// file id determines the service node outright. It gets perfect locality
// but no load balancing — running it against L2S shows why the paper's
// algorithm needs both.
#include <iostream>

#include "l2sim/l2sim.hpp"

namespace {

using namespace l2s;

class HashPartitionPolicy final : public policy::Policy {
 public:
  [[nodiscard]] const char* name() const override { return "hash-partition"; }

  void attach(const policy::ClusterContext& ctx) override { ctx_ = ctx; }

  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request&) override {
    // Round-robin DNS front door, like L2S.
    return static_cast<int>(seq % static_cast<std::uint64_t>(ctx_.node_count()));
  }

  [[nodiscard]] int select_service_node(int /*entry*/, const trace::Request& r) override {
    // Fibonacci hash of the file id onto the nodes.
    const std::uint64_t h = r.file * 0x9e3779b97f4a7c15ULL;
    return static_cast<int>(h % static_cast<std::uint64_t>(ctx_.node_count()));
  }

  [[nodiscard]] SimTime forward_cpu_time(int entry) const override {
    return ctx_.node(entry).forward_time();
  }

 private:
  policy::ClusterContext ctx_;
};

}  // namespace

int main() {
  trace::SyntheticSpec spec;
  spec.name = "skewed";
  spec.files = 4000;
  spec.avg_file_kb = 20.0;
  spec.avg_request_kb = 14.0;
  spec.requests = 60000;
  spec.alpha = 1.1;  // strong skew: the hottest file dominates
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = 8;
  cfg.node.cache_bytes = 16 * kMiB;

  {
    core::ClusterSimulation sim(cfg, tr, std::make_unique<HashPartitionPolicy>());
    std::cout << sim.run().describe() << '\n';
  }
  {
    core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
    std::cout << sim.run().describe() << '\n';
  }
  return 0;
}
