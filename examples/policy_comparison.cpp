// policy_comparison: run the full Figure 7-10 style sweep for one of the
// paper's traces (or a CLF log from disk) and print every metric the
// paper's evaluation discusses.
//
//   $ ./policy_comparison calgary|clarknet|nasa|rutgers [scale]
//   $ ./policy_comparison --clf access.log
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "l2sim/l2sim.hpp"

int main(int argc, char** argv) {
  using namespace l2s;

  if (argc < 2) {
    std::cerr << "usage: policy_comparison <calgary|clarknet|nasa|rutgers> [scale]\n"
              << "       policy_comparison --clf <access.log>\n";
    return 1;
  }

  try {
    trace::Trace tr;
    if (std::string(argv[1]) == "--clf") {
      if (argc < 3) {
        std::cerr << "missing CLF path\n";
        return 1;
      }
      std::ifstream in(argv[2]);
      if (!in) {
        std::cerr << "cannot open " << argv[2] << '\n';
        return 1;
      }
      trace::ClfParseStats ps;
      tr = trace::read_clf(in, argv[2], &ps);
      std::cout << "parsed " << ps.accepted << "/" << ps.lines << " CLF lines ("
                << ps.rejected_malformed << " malformed, " << ps.rejected_status
                << " non-200, " << ps.rejected_method << " non-GET)\n";
    } else {
      auto spec = trace::paper_trace_spec(argv[1]);
      const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
      spec.requests =
          static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
      tr = trace::generate(spec);
    }

    core::ExperimentConfig cfg;
    cfg.sim.node.cache_bytes = 32 * kMiB;
    cfg.node_counts = {1, 2, 4, 8, 12, 16};
    // Replication decays over the paper's 20 s window at full trace length;
    // scale it with the truncation so the decay covers the same fraction of
    // the run.
    if (std::string(argv[1]) != "--clf") {
      const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
      cfg.set_shrink_seconds = 20.0 * scale;
    }

    const auto fig = core::run_throughput_figure(tr, cfg);
    core::print_throughput_figure(std::cout, fig);
    std::cout << '\n';
    for (const std::string metric : {"missrate", "idle", "forwarded", "response"}) {
      core::print_metric_figure(std::cout, fig, metric);
      std::cout << '\n';
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
