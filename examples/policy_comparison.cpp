// policy_comparison: run the full Figure 7-10 style sweep for one of the
// paper's traces (or a CLF log from disk) and print every metric the
// paper's evaluation discusses.
//
//   $ ./policy_comparison calgary|clarknet|nasa|rutgers [scale]
//   $ ./policy_comparison --clf access.log
#include <cstdlib>
#include <iostream>
#include <string>

#include "l2sim/l2sim.hpp"

int main(int argc, char** argv) {
  using namespace l2s;

  if (argc < 2) {
    std::cerr << "usage: policy_comparison <calgary|clarknet|nasa|rutgers> [scale]\n"
              << "       policy_comparison --clf <access.log>\n";
    return 1;
  }

  try {
    // One declarative spec covers both workload sources; the sweep below
    // realizes it once and runs every point from it.
    core::ExperimentSpec exp;
    exp.name = "policy_comparison";
    exp.sim.node.cache_bytes = 32 * kMiB;
    if (std::string(argv[1]) == "--clf") {
      if (argc < 3) {
        std::cerr << "missing CLF path\n";
        return 1;
      }
      exp.trace = core::TraceSpec::clf(argv[2]);
    } else {
      const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
      exp.trace = core::TraceSpec::paper(argv[1], scale);
      // Replication decays over the paper's 20 s window at full trace
      // length; scale it with the truncation so the decay covers the same
      // fraction of the run.
      exp.set_shrink_seconds = 20.0 * scale;
    }

    const trace::Trace tr = exp.trace.realize();
    const auto cfg = core::to_experiment_config(exp);
    const auto fig = core::run_throughput_figure(tr, cfg);
    core::print_throughput_figure(std::cout, fig);
    std::cout << '\n';
    for (const std::string metric : {"missrate", "idle", "forwarded", "response"}) {
      core::print_metric_figure(std::cout, fig, metric);
      std::cout << '\n';
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
