// Quickstart: simulate a small cluster server on a synthetic workload and
// compare the three request-distribution policies.
//
//   $ ./quickstart [nodes]
//
// Walks through the three steps every l2sim experiment shares:
//   1. build (or load) a trace,
//   2. configure the cluster,
//   3. run one simulation per policy and read the results.
#include <cstdlib>
#include <iostream>

#include "l2sim/l2sim.hpp"

int main(int argc, char** argv) {
  using namespace l2s;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  if (nodes < 1) {
    std::cerr << "usage: quickstart [nodes>=1]\n";
    return 1;
  }

  // 1. A small Zipf-like workload: 2000 files averaging 24 KB, 50k requests.
  trace::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.files = 2000;
  spec.avg_file_kb = 24.0;
  spec.avg_request_kb = 16.0;
  spec.requests = 50000;
  spec.alpha = 0.9;
  const trace::Trace tr = trace::generate(spec);

  const auto ch = trace::characterize(tr);
  std::cout << "workload: " << ch.files << " files, "
            << format_double(ch.avg_file_kb, 1) << " KB avg file, working set "
            << format_double(static_cast<double>(ch.working_set_bytes) / (1 << 20), 0)
            << " MB, fitted alpha " << format_double(ch.alpha, 2) << "\n\n";

  // 2. Describe the experiment once: workload + cluster (per-node 16 MB
  //    cache, small relative to the working set so locality matters) with
  //    paper-default CPU/disk/network parameters.
  core::ExperimentSpec exp;
  exp.name = "quickstart";
  exp.trace = core::TraceSpec::synth(spec);
  exp.sim.nodes = nodes;
  exp.sim.node.cache_bytes = 16 * kMiB;

  // 3. The same spec drives both engines: one DES run per policy...
  for (const auto kind : core::all_policies()) {
    exp.policy = kind;
    const core::SimResult r = core::run_simulation(exp, tr);
    std::cout << r.describe() << '\n';
  }

  // ...and the analytic model's upper bound for the same experiment.
  const core::ModelResult bound = core::run_model(exp, tr);
  std::cout << "\nmodel bound (15% replication): "
            << format_double(bound.throughput_rps, 0) << " req/s\n";
  return 0;
}
