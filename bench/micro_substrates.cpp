// Microbenchmarks of the substrates (google-benchmark): DES event
// scheduling, resource queueing, LRU cache operations, Zipf sampling and
// harmonic evaluation, synthetic trace generation, and a small end-to-end
// simulation. These quantify simulator cost per simulated request, which
// is what bounds how much of the paper-scale workload a laptop run can
// replay.
#include <benchmark/benchmark.h>

#include "l2sim/cache/gdsf_cache.hpp"
#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/cache/stack_distance.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/des/resource.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "l2sim/zipf/harmonic.hpp"
#include "l2sim/zipf/sampler.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace {

using namespace l2s;

void BM_SchedulerScheduleFire(benchmark::State& state) {
  des::Scheduler sched;
  std::int64_t t = 0;
  for (auto _ : state) {
    sched.at(t += 10, [] {});
    sched.step();
  }
  benchmark::DoNotOptimize(sched.events_processed());
}
BENCHMARK(BM_SchedulerScheduleFire);

void BM_SchedulerBurst(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    for (std::size_t i = 0; i < burst; ++i)
      sched.at(static_cast<SimTime>((i * 7919) % 104729), [] {});
    sched.run();
    benchmark::DoNotOptimize(sched.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(burst) * state.iterations());
}
BENCHMARK(BM_SchedulerBurst)->Arg(1024)->Arg(16384);

void BM_ResourcePipeline(benchmark::State& state) {
  for (auto _ : state) {
    des::Scheduler sched;
    des::Resource cpu(sched, "cpu");
    int done = 0;
    for (int i = 0; i < 1000; ++i) cpu.submit(100, [&done] { ++done; });
    sched.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(1000 * state.iterations());
}
BENCHMARK(BM_ResourcePipeline);

void BM_LruCacheHit(benchmark::State& state) {
  cache::LruCache cache(64 * kMiB);
  for (cache::FileId id = 0; id < 1000; ++id) cache.insert(id, 32 * kKiB);
  cache::FileId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(id));
    id = (id + 1) % 1000;
  }
}
BENCHMARK(BM_LruCacheHit);

void BM_LruCacheChurn(benchmark::State& state) {
  cache::LruCache cache(8 * kMiB);
  Rng rng(7);
  for (auto _ : state) {
    const auto id = static_cast<cache::FileId>(rng.next_below(4000));
    if (!cache.lookup(id)) cache.insert(id, 16 * kKiB);
  }
}
BENCHMARK(BM_LruCacheChurn);

void BM_ZipfSample(benchmark::State& state) {
  const zipf::ZipfSampler sampler(35885, 0.78);
  Rng rng(11);
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_HarmonicLarge(benchmark::State& state) {
  double x = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf::harmonic(x, 0.9));
    x += 1e3;
  }
}
BENCHMARK(BM_HarmonicLarge);

void BM_InvertPopulation(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(zipf::invert_population(1000.0, 0.6, 1.0));
}
BENCHMARK(BM_InvertPopulation);

void BM_SyntheticGenerate(benchmark::State& state) {
  trace::SyntheticSpec spec;
  spec.files = 2000;
  spec.requests = 20000;
  spec.avg_file_kb = 24.0;
  spec.avg_request_kb = 16.0;
  spec.alpha = 0.9;
  for (auto _ : state) {
    const auto tr = trace::generate(spec);
    benchmark::DoNotOptimize(tr.request_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spec.requests) * state.iterations());
}
BENCHMARK(BM_SyntheticGenerate);

void BM_GdsfChurn(benchmark::State& state) {
  cache::GdsfCache cache(8 * kMiB);
  Rng rng(7);
  for (auto _ : state) {
    const auto id = static_cast<cache::FileId>(rng.next_below(4000));
    if (!cache.lookup(id)) cache.insert(id, 16 * kKiB);
  }
}
BENCHMARK(BM_GdsfChurn);

void BM_StackDistanceAnalysis(benchmark::State& state) {
  trace::SyntheticSpec spec;
  spec.files = 1000;
  spec.requests = 20000;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  for (auto _ : state) {
    const cache::StackDistanceAnalyzer sd(tr);
    benchmark::DoNotOptimize(sd.hit_rate_at_bytes(32 * kMiB));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spec.requests) * state.iterations());
}
BENCHMARK(BM_StackDistanceAnalysis);

void BM_EndToEndSimulation(benchmark::State& state) {
  trace::SyntheticSpec spec;
  spec.files = 1000;
  spec.requests = 10000;
  spec.avg_file_kb = 16.0;
  spec.avg_request_kb = 12.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 8;
  cfg.node.cache_bytes = 8 * kMiB;
  for (auto _ : state) {
    const auto r = core::run_once(tr, cfg, core::PolicyKind::kL2s);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spec.requests) * state.iterations());
}
BENCHMARK(BM_EndToEndSimulation);

}  // namespace

BENCHMARK_MAIN();
