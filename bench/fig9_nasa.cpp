// Figure 9: throughputs for the NASA trace.
//
// Paper shape: the large average requested size (47 KB) makes per-byte
// costs dominate, so all three servers bunch together; L2S leads LARD by
// only ~7% at 16 nodes and traditional trails by ~27%.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  l2s::benchfig::run_figure("NASA", "fig9_nasa", argc, argv);
  return 0;
}
