// Section 5.2 memory-size study (simulation).
//
// Paper findings: growing the per-node memory helps the traditional
// server tremendously (its miss rate falls directly) but affects L2S and
// LARD much less (their miss rates are already low); LARD in addition
// stays pinned at its ~5000 req/s front-end barrier, so with 128 MB
// memories and 8+ nodes the traditional server can overtake LARD.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Throughput (req/s) vs per-node memory (synthetic Clarknet, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Clarknet");
  spec.requests = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 600000);
  const trace::Trace tr = trace::generate(spec);

  CsvWriter csv(dir, "sim_memory_sweep",
                {"memory_mb", "nodes", "l2s", "lard", "trad"});
  for (const int nodes : {8, 16}) {
    TextTable t({"Memory (MB)", "L2S", "LARD", "trad", "trad miss (%)"});
    for (const Bytes mb : {32ULL, 64ULL, 128ULL}) {
      core::SimConfig cfg;
      cfg.nodes = nodes;
      cfg.node.cache_bytes = mb * kMiB;
      const double shrink = 20.0 * scale;
      const auto l2s_r = core::run_once(tr, cfg, core::PolicyKind::kL2s, shrink);
      const auto lard_r = core::run_once(tr, cfg, core::PolicyKind::kLard, shrink);
      const auto trad_r = core::run_once(tr, cfg, core::PolicyKind::kTraditional, shrink);
      t.cell(static_cast<long long>(mb))
          .cell(l2s_r.throughput_rps, 0)
          .cell(lard_r.throughput_rps, 0)
          .cell(trad_r.throughput_rps, 0)
          .cell(trad_r.miss_rate * 100.0, 1)
          .end_row();
      csv.add_row({std::to_string(mb), std::to_string(nodes),
                   format_double(l2s_r.throughput_rps, 1),
                   format_double(lard_r.throughput_rps, 1),
                   format_double(trad_r.throughput_rps, 1)});
    }
    std::cout << nodes << " nodes:\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
