// Shared driver for the Figure 7-10 benches and the per-metric studies:
// generates the named paper trace at the bench scale, runs the node-count
// sweep over model/L2S/LARD/trad, prints the paper-style table and emits
// CSV when enabled.
#pragma once

#include <iostream>
#include <string>

#include "l2sim/l2sim.hpp"

namespace l2s::benchfig {

inline trace::Trace scaled_paper_trace(const std::string& name, double scale) {
  auto spec = trace::paper_trace_spec(name);
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  return trace::generate(spec);
}

inline core::ExperimentConfig figure_config(double scale) {
  core::ExperimentConfig cfg;
  cfg.sim.node.cache_bytes = 32 * kMiB;  // the paper's simulation memory size
  cfg.node_counts = {1, 2, 4, 8, 12, 16};
  // The 20 s replication-decay windows cover the same fraction of a
  // truncated replay as they do of a full-length one.
  cfg.set_shrink_seconds = 20.0 * scale;
  return cfg;
}

/// Run one full throughput figure; returns the series for further study.
inline core::FigureSeries run_figure(const std::string& trace_name,
                                     const std::string& figure_label, int argc,
                                     char** argv) {
  const double scale = bench_scale();
  const trace::Trace tr = scaled_paper_trace(trace_name, scale);
  const auto cfg = figure_config(scale);

  std::cout << figure_label << " (synthetic " << trace_name
            << " trace, L2SIM_SCALE=" << scale << ")\n\n";
  const auto fig = core::run_throughput_figure(tr, cfg);
  core::print_throughput_figure(std::cout, fig);

  const std::string dir = csv_dir_from_args(argc, argv);
  core::write_throughput_csv(fig, dir, figure_label);

  // Paper acceptance checks, reported but not enforced (shapes, not
  // absolute numbers):
  const std::size_t last = fig.node_counts.size() - 1;
  const double l2s16 = fig.l2s[last].throughput_rps;
  std::cout << "\nat 16 nodes: L2S/model = "
            << format_double(l2s16 / fig.model_rps[last] * 100.0, 1)
            << "%  L2S/LARD = "
            << format_double(l2s16 / fig.lard[last].throughput_rps, 2)
            << "x  L2S/trad = "
            << format_double(l2s16 / fig.traditional[last].throughput_rps, 2) << "x\n";
  return fig;
}

}  // namespace l2s::benchfig
