// Shared scenario library for the Figure 7-10 benches and the per-metric
// studies. Every bench describes its experiment as a core::ExperimentSpec
// (trace, cluster, policy, arrival mode) and hands it to the engines —
// run_model for the analytic bound, run_simulation for the DES — so the
// figure drivers differ only in trace name and label.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

namespace l2s::benchfig {

inline trace::Trace scaled_paper_trace(const std::string& name, double scale) {
  return core::TraceSpec::paper(name, scale).realize();
}

/// The paper's figure scenario: 32 MB per-node caches, saturation replay,
/// replication-decay windows scaled with the truncated trace length.
inline core::ExperimentSpec figure_spec(const std::string& trace_name, double scale) {
  core::ExperimentSpec spec;
  spec.name = trace_name;
  spec.trace = core::TraceSpec::paper(trace_name, scale);
  spec.sim.node.cache_bytes = 32 * kMiB;  // the paper's simulation memory size
  // The 20 s replication-decay windows cover the same fraction of a
  // truncated replay as they do of a full-length one.
  spec.set_shrink_seconds = 20.0 * scale;
  return spec;
}

/// The node counts Figures 7-10 sweep.
inline const std::vector<int>& figure_node_counts() {
  static const std::vector<int> counts = {1, 2, 4, 8, 12, 16};
  return counts;
}

/// Run one spec's node-count sweep on both engines: the model bound and
/// the three simulated servers at every node count.
inline core::FigureSeries run_figure_series(const core::ExperimentSpec& base,
                                            const std::vector<int>& node_counts) {
  const trace::Trace tr = base.trace.realize();
  core::FigureSeries fig;
  fig.trace_name = tr.name();
  fig.characteristics = trace::characterize(tr);
  fig.node_counts = node_counts;

  for (const int nodes : node_counts) {
    core::ExperimentSpec spec = base;
    spec.sim.nodes = nodes;
    fig.model_rps.push_back(core::run_model(spec, tr).throughput_rps);
    spec.policy = core::PolicyKind::kL2s;
    fig.l2s.push_back(core::run_simulation(spec, tr));
    spec.policy = core::PolicyKind::kLard;
    fig.lard.push_back(core::run_simulation(spec, tr));
    spec.policy = core::PolicyKind::kTraditional;
    fig.traditional.push_back(core::run_simulation(spec, tr));
  }
  return fig;
}

/// Run one full throughput figure; returns the series for further study.
inline core::FigureSeries run_figure(const std::string& trace_name,
                                     const std::string& figure_label, int argc,
                                     char** argv) {
  const double scale = bench_scale();
  const auto spec = figure_spec(trace_name, scale);

  std::cout << figure_label << " (synthetic " << trace_name
            << " trace, L2SIM_SCALE=" << scale << ")\n\n";
  const auto fig = run_figure_series(spec, figure_node_counts());
  core::print_throughput_figure(std::cout, fig);

  const std::string dir = csv_dir_from_args(argc, argv);
  core::write_throughput_csv(fig, dir, figure_label);

  // Paper acceptance checks, reported but not enforced (shapes, not
  // absolute numbers):
  const std::size_t last = fig.node_counts.size() - 1;
  const double l2s16 = fig.l2s[last].throughput_rps;
  std::cout << "\nat 16 nodes: L2S/model = "
            << format_double(l2s16 / fig.model_rps[last] * 100.0, 1)
            << "%  L2S/LARD = "
            << format_double(l2s16 / fig.lard[last].throughput_rps, 2)
            << "x  L2S/trad = "
            << format_double(l2s16 / fig.traditional[last].throughput_rps, 2) << "x\n";
  return fig;
}

}  // namespace l2s::benchfig
