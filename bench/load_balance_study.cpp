// Load-balance study: the paper argues L2S "balances load effectively"
// while a strict (no-replication) locality scheme suffers severe
// imbalance. This harness quantifies it with the sampled per-node
// open-connection coefficient of variation (CoV, 0 = perfect balance) and
// the max/mean load ratio, across policies and cluster sizes, plus the
// no-replication L2S ablation that reproduces the "strict implementation"
// the paper warns about.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Load imbalance (sampled open-connection CoV / max-mean ratio), "
            << "synthetic Calgary (L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);
  const double shrink = 20.0 * scale;

  CsvWriter csv(dir, "load_balance_study",
                {"policy", "nodes", "cov", "max_over_mean", "rps"});
  TextTable t({"Policy", "Nodes", "Load CoV", "max/mean", "Throughput"});
  auto add = [&](const std::string& name, int nodes, const core::SimResult& r) {
    t.cell(name).cell(static_cast<long long>(nodes)).cell(r.load_cov, 3)
        .cell(r.load_max_over_mean, 2).cell(r.throughput_rps, 0).end_row();
    csv.add_row({name, std::to_string(nodes), format_double(r.load_cov, 4),
                 format_double(r.load_max_over_mean, 4),
                 format_double(r.throughput_rps, 1)});
  };

  for (const int nodes : {4, 8, 16}) {
    core::SimConfig cfg;
    cfg.nodes = nodes;
    cfg.node.cache_bytes = 32 * kMiB;
    for (const auto kind : core::all_policies()) {
      add(core::policy_kind_name(kind), nodes, core::run_once(tr, cfg, kind, shrink));
    }
    // Strict locality (no replication): the paper's cautionary baseline.
    policy::L2sParams strict;
    strict.overload_threshold = 1000000;
    strict.underload_threshold = 999999;
    strict.set_shrink_seconds = shrink;
    core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>(strict));
    add("L2S-strict", nodes, sim.run());
  }
  t.print(std::cout);
  std::cout << "\nPaper expectation: the traditional server balances best (it has\n"
               "nothing else to optimize); L2S stays close while keeping locality;\n"
               "strict no-replication locality shows severe imbalance.\n";
  return 0;
}
