// DES event-kernel microbenchmark: the allocation-free InlineEvent +
// 4-ary indexed heap kernel vs. the shape it replaced (std::function
// events in a std::priority_queue binary heap).
//
// Three workloads modeled on what the trace replays actually schedule:
//
//  * open_loop — a self-rescheduling arrival pump driven far past the
//    cluster's service capacity, the defining regime of an open-loop
//    replay (arrivals do not wait for completions, so beyond the
//    saturation knee of the paper's throughput curves the backlog grows
//    to hundreds of thousands of in-flight connections). Each arrival
//    traverses a 3-stage completion chain (router -> NIC -> CPU), every
//    stage a fresh event whose capture (~24 bytes) matches the
//    simulator's `[this, conn]` lambdas. This is the gated workload:
//    with a deep backlog the priority queue dominates per-event cost.
//  * open_loop_light — the same pump tuned to a small steady-state
//    pending set (~12 events), the single-node latency_validation
//    regime. Reported for transparency, not gated: with a tiny heap
//    both kernels are fast and only the allocation savings show.
//  * fan_out — every event spawns several children at jittered future
//    times (broadcasts, failure injection), stressing heap width.
//
// The binary overrides global operator new/delete with counters, so the
// JSON report (BENCH_des_kernel.json) carries events/sec, ns/event and
// heap allocations per event for both kernels, plus the steady-state
// allocation count for the new kernel (must be zero: acceptance gate).
//
// Usage: des_kernel_bench [--events N] [--out PATH]   (defaults: 2000000,
// BENCH_des_kernel.json in the working directory). Exits non-zero if the
// new kernel is slower than required (>= 2x on open_loop) or allocates in
// steady state, so CI can gate on it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/des/scheduler.hpp"
#include "legacy_scheduler.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook: every path to the heap in this process funnels
// through these overrides.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_free_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using l2s::SimTime;
using l2s::bench::LegacyScheduler;  // the old kernel shape, see legacy_scheduler.hpp

// ---------------------------------------------------------------------------
// Workloads (templated over the kernel under test).

// Open-loop arrival pump + per-connection 3-stage completion chain. The
// capture shapes ([this] + a token + a service time, 24 bytes) mirror the
// simulator's `[this, conn]` / `[this, conn, bytes]` events; every one of
// them exceeds std::function's 16-byte inline buffer, so the legacy
// kernel heap-allocates each event. The svc/gap masks set the offered
// load: by Little's law the steady-state backlog holds roughly
// 3*(svc_mask/2)/(1 + gap_mask/2) in-flight connections, one pending
// event each.
template <class Sched>
struct OpenLoopWorkload {
  Sched& s;
  // Saturated replay (the gated workload): mean service 3*256k ns against
  // a mean arrival gap of 1.5 ns -> backlog ~520k in-flight connections.
  std::uint32_t svc_mask = 524287u;
  std::uint32_t gap_mask = 1u;
  std::uint64_t remaining = 0;
  std::uint64_t completed = 0;
  std::uint64_t sink = 0;
  std::uint32_t rng = 0x9e3779b9u;

  std::uint32_t next_u32() {
    rng = rng * 1664525u + 1013904223u;
    return rng;
  }

  void pump() {
    if (remaining == 0) return;
    --remaining;
    const auto svc = static_cast<SimTime>(1 + (next_u32() & svc_mask));
    const std::uint64_t token = next_u32();
    s.after(svc, [this, token, svc] { stage_nic(token ^ static_cast<std::uint64_t>(svc)); });
    const auto gap = static_cast<SimTime>(1 + (next_u32() & gap_mask));
    // 24-byte capture like every other event: the simulator's arrival
    // pump carries `[this, conn]` (conn a shared_ptr), never a bare this.
    s.after(gap, [this, token, gap] {
      sink += (token ^ static_cast<std::uint64_t>(gap)) & 1u;
      pump();
    });
  }

  void stage_nic(std::uint64_t token) {
    const auto svc = static_cast<SimTime>(1 + (next_u32() & svc_mask));
    s.after(svc, [this, token, svc] { stage_cpu(token + static_cast<std::uint64_t>(svc)); });
  }

  void stage_cpu(std::uint64_t token) {
    const auto svc = static_cast<SimTime>(1 + (next_u32() & svc_mask));
    s.after(svc, [this, token, svc] {
      sink ^= token * 0x2545F4914F6CDD1DULL + static_cast<std::uint64_t>(svc);
      ++completed;
    });
  }

  void run(std::uint64_t connections) {
    remaining = connections;
    s.after(0, [this] { pump(); });
    s.run();
  }
};

// Same pump at low offered load: mean service 3*1k ns over ~256 ns gaps
// -> ~12 pending events, the single-node latency_validation regime.
template <class Sched>
struct OpenLoopLightWorkload : OpenLoopWorkload<Sched> {
  explicit OpenLoopLightWorkload(Sched& sched) : OpenLoopWorkload<Sched>{sched, 2047u, 511u} {}
};

// Fan-out: every event schedules `kFanOut` children until the budget is
// spent; keeps a wide pending set so heap sifts dominate.
template <class Sched>
struct FanOutWorkload {
  static constexpr int kFanOut = 4;
  Sched& s;
  std::uint64_t budget = 0;
  std::uint64_t sink = 0;
  std::uint32_t rng = 0x243F6A88u;

  std::uint32_t next_u32() {
    rng = rng * 1664525u + 1013904223u;
    return rng;
  }

  void node(std::uint64_t token) {
    sink ^= token * 0x9E3779B97F4A7C15ULL;
    for (int c = 0; c < kFanOut; ++c) {
      if (budget == 0) return;
      --budget;
      const auto delay = static_cast<SimTime>(1 + (next_u32() & 4095u));
      const std::uint64_t child_token = token ^ next_u32();
      s.after(delay, [this, child_token, delay] {
        node(child_token + static_cast<std::uint64_t>(delay));
      });
    }
  }

  void run(std::uint64_t events) {
    budget = events;
    s.after(0, [this] { node(0x1234u); });
    s.run();
  }
};

// ---------------------------------------------------------------------------
// Measurement harness.

struct Measurement {
  std::string workload;
  std::string kernel;
  std::uint64_t events = 0;
  double seconds = 0.0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
  [[nodiscard]] double ns_per_event() const {
    return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events > 0 ? static_cast<double>(heap_allocs) / static_cast<double>(events)
                      : 0.0;
  }
};

template <class Sched, template <class> class Workload>
Measurement measure(const char* workload_name, const char* kernel_name,
                    std::uint64_t units, std::uint64_t warmup_units) {
  Sched sched;
  // Warm-up inside the same kernel instance: grows the heap/slot vectors
  // (and the event arena's free lists) to steady-state capacity so the
  // measured interval reflects steady state, not first-touch growth.
  {
    Workload<Sched> warm{sched};
    warm.run(warmup_units);
  }
  Workload<Sched> work{sched};
  const std::uint64_t events_before = sched.events_processed();
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t bytes_before = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  work.run(units);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.workload = workload_name;
  m.kernel = kernel_name;
  m.events = sched.events_processed() - events_before;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.heap_allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  m.heap_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes_before;
  if (work.sink == 0x5F3759DFu) std::abort();  // defeat dead-code elimination
  return m;
}

void print_row(const Measurement& m) {
  std::printf("  %-10s %-7s %10llu events  %8.1f ns/event  %12.0f events/s  %.3f allocs/event\n",
              m.workload.c_str(), m.kernel.c_str(),
              static_cast<unsigned long long>(m.events), m.ns_per_event(),
              m.events_per_sec(), m.allocs_per_event());
}

void json_row(std::ofstream& out, const Measurement& m, bool last) {
  out << "    {\"workload\": \"" << m.workload << "\", \"kernel\": \"" << m.kernel
      << "\", \"events\": " << m.events << ", \"seconds\": " << m.seconds
      << ", \"events_per_sec\": " << m.events_per_sec()
      << ", \"ns_per_event\": " << m.ns_per_event()
      << ", \"heap_allocs\": " << m.heap_allocs
      << ", \"heap_bytes\": " << m.heap_bytes
      << ", \"heap_allocs_per_event\": " << m.allocs_per_event() << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t connections = 1'500'000;  // open_loop: ~4 events each
  std::string out_path = "BENCH_des_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      connections = std::strtoull(argv[++i], nullptr, 10) / 4;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: des_kernel_bench [--events N] [--out PATH]\n";
      return 2;
    }
  }
  // The saturated pump's backlog peaks near 260k in-flight connections;
  // warm-up must run long enough to ramp the backlog (and every internal
  // vector) to steady state, or the measured interval would still be
  // growing capacity — and the zero-allocation gate below would be
  // measuring first-touch growth instead of the steady state.
  const std::uint64_t warmup = connections / 2;
  const std::uint64_t light_warmup = connections / 10;
  const std::uint64_t fan_events = connections * 2;

  std::printf("DES event kernel bench (%llu open-loop connections, %llu fan-out events)\n",
              static_cast<unsigned long long>(connections),
              static_cast<unsigned long long>(fan_events));

  std::vector<Measurement> rows;
  // The gated workload runs interleaved best-of-3: this box is a shared
  // virtualized core, and a single legacy/inline pair measured minutes
  // apart can see different steal time. Peak throughput per kernel is
  // the stable comparison.
  constexpr int kReps = 3;
  Measurement open_legacy, open_inline;
  for (int rep = 0; rep < kReps; ++rep) {
    auto l = measure<LegacyScheduler, OpenLoopWorkload>("open_loop", "legacy",
                                                        connections, warmup);
    auto n = measure<l2s::des::Scheduler, OpenLoopWorkload>("open_loop", "inline",
                                                            connections, warmup);
    if (rep == 0 || l.events_per_sec() > open_legacy.events_per_sec()) open_legacy = l;
    if (rep == 0 || n.events_per_sec() > open_inline.events_per_sec()) open_inline = n;
  }
  rows.push_back(open_legacy);
  rows.push_back(open_inline);
  rows.push_back(measure<LegacyScheduler, OpenLoopLightWorkload>("open_loop_light", "legacy",
                                                                 connections, light_warmup));
  rows.push_back(measure<l2s::des::Scheduler, OpenLoopLightWorkload>(
      "open_loop_light", "inline", connections, light_warmup));
  rows.push_back(measure<LegacyScheduler, FanOutWorkload>("fan_out", "legacy",
                                                          fan_events, light_warmup));
  rows.push_back(measure<l2s::des::Scheduler, FanOutWorkload>("fan_out", "inline",
                                                              fan_events, light_warmup));
  for (const auto& m : rows) print_row(m);

  auto events_per_sec = [&rows](const char* workload, const char* kernel) {
    for (const auto& m : rows)
      if (m.workload == workload && m.kernel == kernel) return m.events_per_sec();
    return 0.0;
  };
  const double open_speedup =
      events_per_sec("open_loop", "inline") / events_per_sec("open_loop", "legacy");
  const double light_speedup = events_per_sec("open_loop_light", "inline") /
                               events_per_sec("open_loop_light", "legacy");
  const double fan_speedup =
      events_per_sec("fan_out", "inline") / events_per_sec("fan_out", "legacy");
  const std::uint64_t steady_allocs = rows[1].heap_allocs;
  std::printf(
      "  speedup: open_loop %.2fx, open_loop_light %.2fx, fan_out %.2fx; "
      "inline open_loop steady-state allocs: %llu\n",
      open_speedup, light_speedup, fan_speedup,
      static_cast<unsigned long long>(steady_allocs));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"des_kernel\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) json_row(out, rows[i], i + 1 == rows.size());
  out << "  ],\n"
      << "  \"speedup\": {\"open_loop\": " << open_speedup
      << ", \"open_loop_light\": " << light_speedup
      << ", \"fan_out\": " << fan_speedup << "},\n"
      << "  \"steady_state_allocs_inline_open_loop\": " << steady_allocs << ",\n"
      << "  \"pass\": {\"speedup_open_loop_ge_2x\": " << (open_speedup >= 2.0 ? "true" : "false")
      << ", \"zero_steady_state_allocs\": " << (steady_allocs == 0 ? "true" : "false")
      << "}\n}\n";
  out.close();
  std::printf("  wrote %s\n", out_path.c_str());

  bool ok = true;
  if (open_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: open_loop speedup %.2fx < 2x\n", open_speedup);
    ok = false;
  }
  if (steady_allocs != 0) {
    std::fprintf(stderr, "FAIL: inline kernel performed %llu steady-state heap allocations\n",
                 static_cast<unsigned long long>(steady_allocs));
    ok = false;
  }
  return ok ? 0 : 1;
}
