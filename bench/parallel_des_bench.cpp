// Parallel (sharded) DES bench: speedup and bit-equality gates for the
// conservative-lookahead engine, reported in BENCH_parallel_des.json.
//
// Three sections:
//
//  * kernel — the 256-node shard-confined forwarding workload
//    (des/cluster_workload.hpp) on the serial PR-1 kernel, on the
//    sequential-merge sharded engine, and on the threaded windowed engine
//    at the full thread budget. The threaded row is the speedup
//    measurement; every row's (events, digest, makespan) fold must equal
//    the serial reference — bit-equality is a hard gate.
//  * golden_matrix — every cell of the golden 36-cell {policy x arrival x
//    persistence x fault} matrix run on the serial cluster engine and on
//    the sharded engine at shards = 1, 2 and auto; core::result_digest
//    must match serial on every cell (hard gate; the pinned digest values
//    themselves live in tests/test_golden_results.cpp).
//  * cluster_256 — one 256-node saturated run on the serial and sharded
//    cluster engines: digest equality at the tentpole's target scale.
//
// The >= 4x speedup gate applies only when the machine can actually run
// 8 shards on 8+ threads (usable_threads >= 8): the protocol costs two
// barriers per window, so on a 1-core box the threaded engine measures
// slower than serial by design, and the JSON records the gate as not
// applicable rather than silently passing or spuriously failing.
// Digest gates are enforced unconditionally on every machine.
//
// Usage: parallel_des_bench [--events N] [--out PATH] [--skip-matrix]
// (defaults: ~2M kernel events, BENCH_parallel_des.json). Exits non-zero
// if any applicable gate fails, so CI can gate on it.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/common/env.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace {

using l2s::des::ShardedScheduler;
using l2s::des::WorkloadParams;
using l2s::des::WorkloadResult;

struct KernelRow {
  std::string engine;
  WorkloadResult result;
  double seconds = 0.0;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(result.events) / seconds : 0.0;
  }
};

template <class Run>
KernelRow measure_best_of(const char* engine, int reps, Run run) {
  KernelRow best;
  best.engine = engine;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    WorkloadResult w = run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best.seconds) {
      best.result = w;
      best.seconds = s;
    }
  }
  return best;
}

l2s::trace::Trace golden_trace() {
  l2s::trace::SyntheticSpec spec;
  spec.name = "golden";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  spec.requests = 3000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 2024;
  return l2s::trace::generate(spec);
}

struct Cell {
  std::string name;
  l2s::core::SimConfig cfg;
  l2s::core::PolicyKind kind;
};

// The golden 36-cell matrix, mirroring tests/test_golden_results.cpp
// (which owns the pinned digest values; here only serial-vs-sharded
// equality is gated).
std::vector<Cell> golden_matrix() {
  using l2s::core::PersistentMode;
  using l2s::core::PolicyKind;
  struct Policy {
    const char* tag;
    PolicyKind kind;
  };
  struct Persist {
    const char* tag;
    double rpc;
    PersistentMode mode;
  };
  const std::vector<Policy> policies = {{"trad", PolicyKind::kTraditional},
                                        {"lard", PolicyKind::kLard},
                                        {"l2s", PolicyKind::kL2s}};
  const std::vector<Persist> persists = {
      {"http10", 1.0, PersistentMode::kConnectionHandoff},
      {"handoff", 4.0, PersistentMode::kConnectionHandoff},
      {"backend", 4.0, PersistentMode::kBackendForwarding}};

  std::vector<Cell> cells;
  for (const auto& p : policies) {
    for (const bool open_loop : {false, true}) {
      for (const auto& ps : persists) {
        for (const bool crash : {false, true}) {
          Cell c;
          c.kind = p.kind;
          c.name = std::string(p.tag) + (open_loop ? "|open" : "|replay") + "|" +
                   ps.tag + (crash ? "|crash" : "|nofault");
          c.cfg.nodes = 4;
          c.cfg.node.cache_bytes = 2 * l2s::kMiB;
          if (open_loop) c.cfg.arrival.open_loop_rate = 1500.0;
          c.cfg.persistence.mean_requests_per_connection = ps.rpc;
          c.cfg.persistence.mode = ps.mode;
          if (crash) c.cfg.fault_plan.crashes.push_back({1, 0.15});
          cells.push_back(std::move(c));
        }
      }
    }
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t target_events = 2'000'000;
  std::string out_path = "BENCH_parallel_des.json";
  bool skip_matrix = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      target_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--skip-matrix") == 0) {
      skip_matrix = true;
    } else {
      std::cerr << "usage: parallel_des_bench [--events N] [--out PATH] "
                   "[--skip-matrix]\n";
      return 2;
    }
  }

  const unsigned budget = l2s::thread_budget();
  constexpr int kShards = 8;
  const unsigned usable = std::min<unsigned>(budget, kShards);
  // >= 4x needs real 8-way concurrency; below that the gate is recorded
  // as not applicable (the digest gates below still always apply).
  const bool speedup_applicable = usable >= 8;

  // ---- kernel section ----------------------------------------------------
  WorkloadParams p;
  p.nodes = 256;
  p.requests_per_node = 8;
  // events = nodes * requests * (hops + 1); solve hops for the target.
  const std::uint64_t per_hop =
      static_cast<std::uint64_t>(p.nodes) *
      static_cast<std::uint64_t>(p.requests_per_node);
  p.hops = static_cast<int>(std::max<std::uint64_t>(1, target_events / per_hop) - 1);
  p.seed = 20260808;

  std::printf("parallel DES bench: %d nodes, %d shards, thread budget %u "
              "(usable %u), ~%llu events\n",
              p.nodes, kShards, budget, usable,
              static_cast<unsigned long long>(per_hop *
                                              static_cast<std::uint64_t>(p.hops + 1)));

  constexpr int kReps = 3;
  std::vector<KernelRow> rows;
  rows.push_back(measure_best_of("serial", kReps, [&] {
    return l2s::des::run_cluster_workload_serial(p);
  }));
  rows.push_back(measure_best_of("merge8", kReps, [&] {
    return l2s::des::run_cluster_workload_sharded(
        p, kShards, ShardedScheduler::Mode::kSequentialMerge);
  }));
  rows.push_back(measure_best_of("threaded8", kReps, [&] {
    return l2s::des::run_cluster_workload_sharded(
        p, kShards, ShardedScheduler::Mode::kThreaded, usable);
  }));

  const KernelRow& serial = rows[0];
  bool kernel_digests_ok = true;
  for (const auto& r : rows) {
    std::printf("  %-10s %10llu events  %8.3f s  %12.0f events/s  digest %016llx"
                "  windows %llu\n",
                r.engine.c_str(),
                static_cast<unsigned long long>(r.result.events), r.seconds,
                r.events_per_sec(),
                static_cast<unsigned long long>(r.result.digest),
                static_cast<unsigned long long>(r.result.windows));
    if (r.result.digest != serial.result.digest ||
        r.result.events != serial.result.events ||
        r.result.makespan != serial.result.makespan)
      kernel_digests_ok = false;
  }
  const double speedup =
      serial.seconds > 0.0 ? serial.seconds / rows[2].seconds : 0.0;
  std::printf("  threaded8 speedup vs serial: %.2fx (gate >= 4x %s)\n", speedup,
              speedup_applicable ? "applicable" : "not applicable on this box");

  // ---- golden-matrix section ---------------------------------------------
  std::uint64_t matrix_cells = 0;
  std::uint64_t matrix_mismatches = 0;
  if (!skip_matrix) {
    const auto tr = golden_trace();
    for (const auto& c : golden_matrix()) {
      const auto base = l2s::core::run_once(tr, c.cfg, c.kind);
      const std::uint64_t want = l2s::core::result_digest(base);
      for (const int shards : {1, 2, l2s::core::EngineConfig::kAutoShards}) {
        l2s::core::SimConfig cfg = c.cfg;
        cfg.engine.shards = shards;
        const auto got =
            l2s::core::result_digest(l2s::core::run_once(tr, cfg, c.kind));
        if (got != want) {
          ++matrix_mismatches;
          std::fprintf(stderr, "MISMATCH %s shards=%d\n", c.name.c_str(), shards);
        }
      }
      ++matrix_cells;
    }
    std::printf("  golden matrix: %llu cells x 3 shard counts, %llu mismatches\n",
                static_cast<unsigned long long>(matrix_cells),
                static_cast<unsigned long long>(matrix_mismatches));
  }

  // ---- 256-node cluster-engine section -----------------------------------
  l2s::trace::SyntheticSpec big;
  big.name = "big256";
  big.files = 400;
  big.avg_file_kb = 8.0;
  big.requests = 4000;
  big.avg_request_kb = 6.0;
  big.alpha = 0.9;
  big.seed = 256;
  const auto big_trace = l2s::trace::generate(big);
  l2s::core::SimConfig big_cfg;
  big_cfg.nodes = 256;
  big_cfg.node.cache_bytes = 2 * l2s::kMiB;
  const auto t0 = std::chrono::steady_clock::now();
  const auto big_serial =
      l2s::core::run_once(big_trace, big_cfg, l2s::core::PolicyKind::kL2s);
  const auto t1 = std::chrono::steady_clock::now();
  big_cfg.engine.shards = kShards;
  const auto big_sharded =
      l2s::core::run_once(big_trace, big_cfg, l2s::core::PolicyKind::kL2s);
  const auto t2 = std::chrono::steady_clock::now();
  const bool big_match =
      l2s::core::result_digest(big_serial) == l2s::core::result_digest(big_sharded);
  std::printf("  cluster 256 nodes: serial %.3f s, sharded(merge, %d shards) "
              "%.3f s, digests %s\n",
              std::chrono::duration<double>(t1 - t0).count(), kShards,
              std::chrono::duration<double>(t2 - t1).count(),
              big_match ? "match" : "MISMATCH");

  // ---- gates + JSON --------------------------------------------------------
  const bool matrix_ok = matrix_mismatches == 0;
  const bool speedup_ok = !speedup_applicable || speedup >= 4.0;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"parallel_des\",\n"
      << "  \"threads\": {\"budget\": " << budget << ", \"usable\": " << usable
      << "},\n  \"kernel\": {\n    \"nodes\": " << p.nodes
      << ", \"shards\": " << kShards << ",\n    \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.result.digest));
    out << "      {\"engine\": \"" << r.engine
        << "\", \"events\": " << r.result.events << ", \"seconds\": " << r.seconds
        << ", \"events_per_sec\": " << r.events_per_sec()
        << ", \"windows\": " << r.result.windows << ", \"digest\": \"" << digest
        << "\"}" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "    ],\n    \"threaded_speedup_vs_serial\": " << speedup
      << "\n  },\n"
      << "  \"golden_matrix\": {\"ran\": " << (skip_matrix ? "false" : "true")
      << ", \"cells\": " << matrix_cells
      << ", \"shard_counts\": [1, 2, \"auto\"], \"mismatches\": "
      << matrix_mismatches << "},\n"
      << "  \"cluster_256\": {\"digest_match\": " << (big_match ? "true" : "false")
      << "},\n"
      << "  \"speedup_gate\": {\"required\": 4.0, \"applicable\": "
      << (speedup_applicable ? "true" : "false") << ", \"observed\": " << speedup
      << ", \"passed\": " << (speedup_ok ? "true" : "false") << "},\n"
      << "  \"pass\": {\"kernel_digests_identical\": "
      << (kernel_digests_ok ? "true" : "false")
      << ", \"golden_matrix_digests_identical\": " << (matrix_ok ? "true" : "false")
      << ", \"cluster_256_digest_identical\": " << (big_match ? "true" : "false")
      << ", \"speedup\": " << (speedup_ok ? "true" : "false") << "}\n}\n";
  out.close();
  std::printf("  wrote %s\n", out_path.c_str());

  bool ok = true;
  if (!kernel_digests_ok) {
    std::fprintf(stderr, "FAIL: kernel workload folds differ across engines\n");
    ok = false;
  }
  if (!matrix_ok) {
    std::fprintf(stderr, "FAIL: %llu golden-matrix digest mismatches\n",
                 static_cast<unsigned long long>(matrix_mismatches));
    ok = false;
  }
  if (!big_match) {
    std::fprintf(stderr, "FAIL: 256-node cluster digests differ\n");
    ok = false;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "FAIL: threaded speedup %.2fx < 4x with %u usable threads\n",
                 speedup, usable);
    ok = false;
  }
  return ok ? 0 : 1;
}
