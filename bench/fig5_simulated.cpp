// Simulated counterpart of Figure 5: the paper derives the locality gain
// analytically over the (hit rate x size) plane; here the same plane is
// sampled by *simulation* — synthetic workloads whose working sets imply
// the oblivious hit rate — comparing L2S against the traditional server.
// Agreement in shape between this grid and the model surface ties the two
// engines together on the paper's headline figure.
#include "figure_common.hpp"

using namespace l2s;

namespace {

/// Build a workload whose 32 MB oblivious hit rate is approximately
/// `target_hlo` at the given average size, by sizing the file population.
trace::SyntheticSpec workload_for(double target_hlo, double size_kb,
                                  std::uint64_t requests) {
  // z(n, F) = target with n = 32 MB / size. Solve F via the zipf inverse.
  const double n = 32.0 * 1024.0 / size_kb;
  const double f = zipf::invert_population(n, target_hlo, 1.0);
  trace::SyntheticSpec spec;
  spec.name = "plane";
  spec.files = static_cast<std::uint64_t>(std::min(f, 60000.0));
  spec.avg_file_kb = size_kb;
  spec.avg_request_kb = size_kb;
  spec.size_sigma = 0.4;
  spec.alpha = 1.0;
  spec.requests = requests;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const auto requests =
      static_cast<std::uint64_t>(300000 * scale) + 20000;
  std::cout << "Figure 5 by simulation: L2S / traditional throughput ratio on a\n"
            << "(target Hlo x size) grid, 16 nodes, 32 MB caches "
            << "(L2SIM_SCALE=" << scale << ")\n\n";

  const std::vector<double> hit_rates = {0.5, 0.7, 0.85};
  const std::vector<double> sizes = {8.0, 24.0, 64.0};
  CsvWriter csv(csv_dir_from_args(argc, argv), "fig5_simulated",
                {"hlo", "size_kb", "sim_ratio", "model_ratio"});
  const model::ClusterModel m{[] {
    model::ModelParams p;
    p.cache_bytes = 32 * kMiB;
    return p;
  }()};

  TextTable t({"Hlo target", "S (KB)", "sim ratio", "model ratio"});
  for (const double hlo : hit_rates) {
    for (const double size : sizes) {
      const auto spec = workload_for(hlo, size, requests);
      const auto tr = trace::generate(spec);
      core::SimConfig cfg;
      cfg.nodes = 16;
      cfg.node.cache_bytes = 32 * kMiB;
      const double shrink = 20.0 * scale;
      const auto l2s_r = core::run_once(tr, cfg, core::PolicyKind::kL2s, shrink);
      const auto trad_r = core::run_once(tr, cfg, core::PolicyKind::kTraditional, shrink);
      const double sim_ratio = l2s_r.throughput_rps / trad_r.throughput_rps;
      const double model_ratio =
          m.conscious(hlo, size).throughput / m.oblivious(hlo, size).throughput;
      t.cell(hlo, 2).cell(size, 0).cell(sim_ratio, 2).cell(model_ratio, 2).end_row();
      csv.add_row({format_double(hlo, 2), format_double(size, 0),
                   format_double(sim_ratio, 3), format_double(model_ratio, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: both ratios grow as size falls and collapse toward\n"
               "(or below) 1 at high hit rate with large files. The simulated gain\n"
               "can exceed the model ratio at low hit rates: the traditional\n"
               "server's LRU does worse on an IID stream than the model's\n"
               "idealized keep-the-hottest-files cache, while L2S's partitioning\n"
               "escapes that penalty. The peak simulated gain (~6.5x) lands right\n"
               "on the paper's 'up to 7-fold' headline.\n";
  return 0;
}
