// Per-resource breakdown reconstructed from telemetry spans.
//
// The paper explains cluster throughput by asking where a request's time
// goes: entry CPU work at the receiving node, the hand-off to the node
// that owns the content, storage (cache or disk), and the reply on the
// NIC. The engine accumulates those stages internally (SimResult
// stage_*_ms); this study recomputes the same breakdown *from the
// telemetry span stream alone* — fully sampled spans, the way a user
// would from `l2sim_cli --spans-out` — and cross-checks the two views
// against each other per cluster size and policy.
//
// Exits non-zero if the reconstruction diverges from the engine's own
// accumulators, making the span pipeline itself a regression-tested
// artifact. Optional: --csv <path> for the plottable series.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

struct Breakdown {
  double entry = 0.0;
  double forward = 0.0;
  double disk = 0.0;
  double reply = 0.0;
};

Breakdown from_spans(const telemetry::Snapshot& snap) {
  Breakdown b;
  std::size_t n = 0;
  for (const telemetry::Span& s : snap.spans) {
    if (s.failed()) continue;
    b.entry += s.entry_ms();
    b.forward += s.forward_ms();
    b.disk += s.disk_ms();
    b.reply += s.reply_ms();
    ++n;
  }
  if (n == 0) throw_error("span_breakdown_study: no completed spans");
  const auto d = static_cast<double>(n);
  b.entry /= d;
  b.forward /= d;
  b.disk /= d;
  b.reply /= d;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--csv") csv_path = argv[i + 1];

  const double scale = bench_scale();
  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);

  std::cout << "Per-resource breakdown from telemetry spans (synthetic Calgary, "
            << tr.request_count() << " requests, L2SIM_SCALE=" << scale << ")\n\n";

  const std::vector<int> node_counts = {1, 2, 4, 8};
  const std::vector<core::PolicyKind> kinds = {
      core::PolicyKind::kTraditional, core::PolicyKind::kLard, core::PolicyKind::kL2s};

  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    if (!csv) throw_error("span_breakdown_study: cannot open " + csv_path);
    csv << "policy,nodes,entry_ms,forward_ms,disk_ms,reply_ms,total_ms\n";
  }

  TextTable t({"Policy", "Nodes", "Entry ms", "Hand-off ms", "Storage ms", "Reply ms",
               "Engine total", "Span total"});
  bool consistent = true;
  for (const auto kind : kinds) {
    for (const int nodes : node_counts) {
      core::SimConfig cfg;
      cfg.nodes = nodes;
      cfg.node.cache_bytes = 16 * kMiB;
      cfg.telemetry.enabled = true;
      cfg.telemetry.span_sample_every = 1;  // full capture: exact reconstruction
      cfg.telemetry.span_capacity = std::size_t{1} << 22;
      cfg.telemetry.probe = false;
      const auto r = core::run_once(tr, cfg, kind);
      if (r.telemetry == nullptr) throw_error("span_breakdown_study: no telemetry");
      const Breakdown b = from_spans(*r.telemetry);

      const double engine_total =
          r.stage_entry_ms + r.stage_forward_ms + r.stage_disk_ms + r.stage_reply_ms;
      const double span_total = b.entry + b.forward + b.disk + b.reply;
      // The engine averages the same four stage timestamps over the same
      // completed requests; full sampling must reproduce it to rounding.
      const double tol = 1e-6 * (1.0 + engine_total);
      const bool ok = std::abs(b.entry - r.stage_entry_ms) <= tol &&
                      std::abs(b.forward - r.stage_forward_ms) <= tol &&
                      std::abs(b.disk - r.stage_disk_ms) <= tol &&
                      std::abs(b.reply - r.stage_reply_ms) <= tol;
      consistent = consistent && ok;

      t.cell(r.policy)
          .cell(static_cast<long long>(nodes))
          .cell(b.entry, 4)
          .cell(b.forward, 4)
          .cell(b.disk, 4)
          .cell(b.reply, 4)
          .cell(engine_total, 4)
          .cell(span_total, 4)
          .end_row();
      if (csv.is_open()) {
        csv << r.policy << ',' << nodes << ',' << format_double(b.entry, 6) << ','
            << format_double(b.forward, 6) << ',' << format_double(b.disk, 6) << ','
            << format_double(b.reply, 6) << ',' << format_double(span_total, 6) << '\n';
      }
    }
  }
  t.print(std::cout);
  if (!csv_path.empty()) std::cout << "\nwrote " << csv_path << "\n";

  if (!consistent) {
    std::cerr << "span_breakdown_study: span reconstruction diverged from the "
                 "engine's stage accumulators\n";
    return 1;
  }
  std::cout << "\nspan reconstruction matches the engine's stage accumulators\n";
  return 0;
}
