// Section 3.2 replication study: how the replication fraction R trades
// cache capacity against forwarding overhead and load imbalance.
//
// Paper finding: a small degree of replication (15%) provides robust
// performance — it barely reduces the conscious hit rate but cuts the
// forwarded-request fraction and tames the imbalance caused by hot files.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/cluster_model.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  // A representative mid-plane point: Hlo = 0.6, S = 16 KB.
  const double hlo = 0.6;
  const double size_kb = 16.0;

  std::cout << "Model study: replication fraction R at Hlo=" << hlo << ", S=" << size_kb
            << " KB (16 nodes)\n\n";
  TextTable t({"R (%)", "Hlc", "h", "Q (%)", "throughput", "imbalance factor"});
  CsvWriter csv(csv_dir_from_args(argc, argv), "model_replication_sweep",
                {"replication", "hlc", "h", "q", "rps", "imbalance"});

  for (const double r : {0.0, 0.05, 0.10, 0.15, 0.25, 0.50}) {
    model::ModelParams p;
    p.replication = r;
    const model::ClusterModel m(p);
    const auto eval = m.conscious(hlo, size_kb);
    // Imbalance over the virtual population implied by this (Hlo, S) point,
    // with the replicated slice of one node's memory spread over all nodes.
    const double files = m.virtual_population(hlo, size_kb);
    const double replicated_files =
        r * static_cast<double>(p.cache_bytes) / 1024.0 / size_kb;
    const double imbalance =
        model::imbalance_factor(files, p.alpha, p.nodes, replicated_files);

    t.cell(r * 100.0, 0)
        .cell(eval.hit_rate, 3)
        .cell(eval.replicated_hit_rate, 3)
        .cell(eval.forwarded_fraction * 100.0, 1)
        .cell(eval.throughput, 0)
        .cell(imbalance, 3)
        .end_row();
    csv.add_row({format_double(r, 2), format_double(eval.hit_rate, 4),
                 format_double(eval.replicated_hit_rate, 4),
                 format_double(eval.forwarded_fraction, 4),
                 format_double(eval.throughput, 1), format_double(imbalance, 4)});
  }
  t.print(std::cout);
  return 0;
}
