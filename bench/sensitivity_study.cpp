// Section 5.2 "summary of other simulation results": the performance of
// L2S is only slightly affected by reasonable settings of broadcast
// frequency, messaging overhead, and network latency and bandwidth.
//
// This harness perturbs each of those parameters around the defaults on a
// 16-node cluster and reports L2S throughput, which should stay within a
// narrow band of the baseline.
#include "figure_common.hpp"

using namespace l2s;

namespace {

core::SimResult run_l2s(const trace::Trace& tr, const core::SimConfig& cfg, double shrink,
                        int broadcast_delta) {
  policy::L2sParams p;
  p.set_shrink_seconds = shrink;
  p.broadcast_delta = broadcast_delta;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>(p));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const double shrink = 20.0 * scale;
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "L2S sensitivity study (synthetic Calgary, 16 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig base;
  base.nodes = 16;
  base.node.cache_bytes = 32 * kMiB;

  const double baseline = run_l2s(tr, base, shrink, 4).throughput_rps;
  std::cout << "baseline throughput: " << format_double(baseline, 0) << " req/s\n\n";

  CsvWriter csv(dir, "sensitivity_study", {"knob", "value", "rps", "vs_baseline"});
  TextTable t({"Knob", "Value", "Throughput", "vs baseline"});
  auto row = [&](const std::string& knob, const std::string& value, double rps) {
    t.cell(knob).cell(value).cell(rps, 0).cell(format_double(rps / baseline, 3) + "x").end_row();
    csv.add_row({knob, value, format_double(rps, 1), format_double(rps / baseline, 4)});
  };

  // Broadcast frequency: drift threshold 2..16 connections.
  for (const int delta : {2, 8, 16}) {
    row("broadcast delta", std::to_string(delta),
        run_l2s(tr, base, shrink, delta).throughput_rps);
  }

  // Messaging overhead: half / double the M-VIA per-message CPU+NIC costs.
  for (const double factor : {0.5, 2.0}) {
    core::SimConfig cfg = base;
    cfg.net.cpu_msg_overhead_s *= factor;
    cfg.net.nic_msg_overhead_s *= factor;
    row("msg overhead", format_double(factor, 1) + "x",
        run_l2s(tr, cfg, shrink, 4).throughput_rps);
  }

  // Switch latency: 1 us default -> 5 us, 20 us.
  for (const double lat_us : {5.0, 20.0}) {
    core::SimConfig cfg = base;
    cfg.net.switch_latency_s = lat_us * 1e-6;
    row("switch latency", format_double(lat_us, 0) + " us",
        run_l2s(tr, cfg, shrink, 4).throughput_rps);
  }

  // Link bandwidth: 0.5 and 2 Gbit/s.
  for (const double gbps : {0.5, 2.0}) {
    core::SimConfig cfg = base;
    cfg.net.link_bits_per_s = gbps * 1e9;  // mu_o's slope follows the link
    row("link bandwidth", format_double(gbps, 1) + " Gb/s",
        run_l2s(tr, cfg, shrink, 4).throughput_rps);
  }

  t.print(std::cout);
  std::cout << "\nPaper finding: L2S is only slightly affected by reasonable\n"
               "broadcast frequencies, messaging overheads, and network latency\n"
               "and bandwidth.\n";
  return 0;
}
