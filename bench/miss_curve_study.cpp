// Miss-ratio curves via one-pass Mattson stack-distance analysis: the LRU
// miss rate of a sequential server at every memory size, for each paper
// trace. This is the analysis behind the paper's sizing decisions — why
// 32 MB memories make the traces' working sets "significant in comparison
// to cache sizes" and what growing to 128 MB changes (Section 5.2).
#include "figure_common.hpp"

#include "l2sim/cache/stack_distance.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Sequential LRU miss-ratio curves (one-pass stack-distance analysis, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  const std::vector<Bytes> capacities = {8 * kMiB,  16 * kMiB,  32 * kMiB, 64 * kMiB,
                                         128 * kMiB, 256 * kMiB, 512 * kMiB};
  TextTable t({"Trace", "8MB", "16MB", "32MB", "64MB", "128MB", "256MB", "512MB"});
  CsvWriter csv(dir, "miss_curve_study", {"trace", "capacity_mb", "miss_rate"});
  for (const auto& base : trace::paper_trace_specs()) {
    auto spec = base;
    spec.requests = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 400000);
    const trace::Trace tr = trace::generate(spec);
    const cache::StackDistanceAnalyzer sd(tr);
    const auto curve = sd.miss_curve_bytes(capacities);
    t.cell(spec.name);
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      t.cell(curve[i] * 100.0, 1);
      csv.add_row({spec.name, std::to_string(capacities[i] / kMiB),
                   format_double(curve[i], 4)});
    }
    t.end_row();
  }
  t.print(std::cout);
  std::cout << "\n(miss %, compulsory misses included; the 32 MB column is the\n"
               "paper's simulated memory size, the 128 MB column its Section 5.2\n"
               "memory-growth scenario)\n";
  return 0;
}
