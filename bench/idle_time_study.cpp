// Section 5.2 CPU idle-time study.
//
// Paper findings: the traditional server's idle times stay roughly
// constant with cluster size; the LARD server's decrease up to 8-12 nodes
// and then increase again as the front-end saturates; L2S's idle times
// always improve, approaching full utilization at 16 nodes.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "CPU idle time (%) by policy and cluster size"
            << " (L2SIM_SCALE=" << scale << ")\n\n";

  for (const auto& base : trace::paper_trace_specs()) {
    auto spec = base;
    spec.requests = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 600000);
    auto espec = benchfig::figure_spec(spec.name, scale);
    espec.trace = core::TraceSpec::synth(spec);  // the capped trace above
    const auto fig = benchfig::run_figure_series(espec, benchfig::figure_node_counts());
    core::print_metric_figure(std::cout, fig, "idle");
    std::cout << '\n';

    CsvWriter csv(dir, "idle_" + spec.name, {"nodes", "l2s", "lard", "trad"});
    for (std::size_t i = 0; i < fig.node_counts.size(); ++i)
      csv.add_row({std::to_string(fig.node_counts[i]),
                   format_double(fig.l2s[i].cpu_idle_fraction * 100.0, 2),
                   format_double(fig.lard[i].cpu_idle_fraction * 100.0, 2),
                   format_double(fig.traditional[i].cpu_idle_fraction * 100.0, 2)});
  }
  return 0;
}
