// Availability study — the paper's decentralization claim made concrete:
// "the front-end represents both a potential bottleneck and a single point
// of failure... In L2S we eliminate all of these problems."
//
// One node is crashed halfway through the measured pass on a 16-node
// cluster. For LARD the crash of node 0 (its front-end) stops the service;
// crashing a back-end, or any L2S/traditional node, costs only the
// requests in flight plus 1/16 of capacity.
#include "figure_common.hpp"

#include "l2sim/policy/round_robin.hpp"

using namespace l2s;

namespace {

core::SimResult run_with_failure(const trace::Trace& tr, core::PolicyKind kind,
                                 int dead_node, double at_seconds, double shrink) {
  core::SimConfig cfg;
  cfg.nodes = 16;
  cfg.node.cache_bytes = 32 * kMiB;
  cfg.fault_plan.crashes.push_back({dead_node, at_seconds});
  core::ClusterSimulation sim(cfg, tr, core::make_policy(kind, shrink));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Availability under a node crash (synthetic Calgary, 16 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);
  const double shrink = 20.0 * scale;

  // Baseline elapsed time tells us where "halfway" is.
  core::SimConfig base;
  base.nodes = 16;
  base.node.cache_bytes = 32 * kMiB;
  const auto baseline = core::run_once(tr, base, core::PolicyKind::kL2s, shrink);
  const double crash_at = baseline.elapsed_seconds * 0.5;
  std::cout << "baseline L2S: " << format_double(baseline.throughput_rps, 0)
            << " req/s over " << format_double(baseline.elapsed_seconds, 2)
            << " s; crashing at t=" << format_double(crash_at, 2) << " s\n\n";

  struct Scenario {
    std::string name;
    core::PolicyKind kind;
    int dead_node;
  };
  const std::vector<Scenario> scenarios = {
      {"L2S, any node", core::PolicyKind::kL2s, 0},
      {"LARD, front-end", core::PolicyKind::kLard, 0},
      {"LARD, back-end", core::PolicyKind::kLard, 5},
      {"trad, any node", core::PolicyKind::kTraditional, 5},
  };

  TextTable t({"Scenario", "Completed", "Failed", "Served (%)", "Throughput"});
  CsvWriter csv(dir, "availability_study",
                {"scenario", "completed", "failed", "served_pct", "rps"});
  for (const auto& s : scenarios) {
    const auto r = run_with_failure(tr, s.kind, s.dead_node, crash_at, shrink);
    const double served = 100.0 * static_cast<double>(r.completed) /
                          static_cast<double>(r.completed + r.failed);
    t.cell(s.name)
        .cell(static_cast<long long>(r.completed))
        .cell(static_cast<long long>(r.failed))
        .cell(served, 1)
        .cell(r.throughput_rps, 0)
        .end_row();
    csv.add_row({s.name, std::to_string(r.completed), std::to_string(r.failed),
                 format_double(served, 2), format_double(r.throughput_rps, 1)});
  }
  t.print(std::cout);
  std::cout << "\nPaper expectation: only the LARD front-end crash takes the whole\n"
               "service down; every other single-node loss is absorbed.\n";
  return 0;
}
