// Persistent-connection (HTTP/1.1) study — the extension the paper points
// to at the end of Section 4 ("persistent connections can be handled by
// slightly modifying the algorithms"), using the two mechanisms of Aron
// et al.: connection hand-off vs back-end request forwarding.
//
// Findings this harness demonstrates: with IID request streams, sticky
// connections *hurt* — consecutive requests of a connection are unrelated,
// so most need a migration (hand-off mode) or a bulk content fetch
// (back-end forwarding). With temporally correlated clients (the
// temporal_locality knob) the picture improves because repeats often live
// where the connection already sits. Hand-off preserves cache locality;
// back-end forwarding trades it for connection stability and pays with
// cluster-network bytes, so hand-off wins as files grow — Aron et al.'s
// conclusion.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Persistent connections: L2S on synthetic Calgary, 16 nodes "
            << "(L2SIM_SCALE=" << scale << ")\n\n";

  CsvWriter csv(dir, "persistent_study",
                {"workload", "mode", "rpc", "rps", "forwarded", "migrations", "fetches"});
  for (const double pt : {0.0, 0.6}) {
  auto spec = trace::paper_trace_spec("Calgary");
  spec.temporal_locality = pt;
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);
  const std::string workload = pt == 0.0 ? "iid" : "temporal";
  std::cout << "--- workload: " << workload << " (temporal_locality=" << pt << ") ---\n";
  for (const auto mode :
       {core::PersistentMode::kConnectionHandoff, core::PersistentMode::kBackendForwarding}) {
    const char* mode_name =
        mode == core::PersistentMode::kConnectionHandoff ? "hand-off" : "backend-fwd";
    TextTable t({"Req/conn", "Throughput", "Forwarded (%)", "Migrations", "Fetches",
                 "Mean resp (ms)"});
    for (const double rpc : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      core::SimConfig cfg;
      cfg.nodes = 16;
      cfg.node.cache_bytes = 32 * kMiB;
      cfg.persistence.mean_requests_per_connection = rpc;
      cfg.persistence.mode = mode;
      policy::L2sParams params;
      params.set_shrink_seconds = 20.0 * scale;
      core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>(params));
      const auto r = sim.run();
      t.cell(rpc, 0)
          .cell(r.throughput_rps, 0)
          .cell(r.forwarded_fraction * 100.0, 1)
          .cell(static_cast<long long>(r.migrations))
          .cell(static_cast<long long>(r.remote_fetches))
          .cell(r.mean_response_ms, 1)
          .end_row();
      csv.add_row({workload, mode_name, format_double(rpc, 0),
                   format_double(r.throughput_rps, 1),
                   format_double(r.forwarded_fraction, 4), std::to_string(r.migrations),
                   std::to_string(r.remote_fetches)});
    }
    std::cout << "mode: " << mode_name << "\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  }
  return 0;
}
