// Figure 6: side view of Figure 5 — per hit rate, the envelope of the
// throughput-increase surface over all file sizes.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/surface.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const model::ClusterModel m{model::ModelParams{}};
  const auto hit_grid = model::default_hit_grid();
  const auto size_grid = model::default_size_grid();
  const auto ratio = model::ratio_surface(model::conscious_surface(m, hit_grid, size_grid),
                                          model::oblivious_surface(m, hit_grid, size_grid));
  const auto side = ratio.side_view();

  std::cout << "Figure 6: Throughput increase due to locality (side view)\n\n";
  TextTable t({"Hlo", "max over S", "min over S"});
  for (std::size_t i = 0; i < side.hit_rates.size(); ++i) {
    t.cell(side.hit_rates[i], 2)
        .cell(side.max_over_sizes[i], 2)
        .cell(side.min_over_sizes[i], 2)
        .end_row();
  }
  t.print(std::cout);

  CsvWriter csv(csv_dir_from_args(argc, argv), "fig6_sideview", {"hit_rate", "max", "min"});
  for (std::size_t i = 0; i < side.hit_rates.size(); ++i)
    csv.add_row({format_double(side.hit_rates[i], 2),
                 format_double(side.max_over_sizes[i], 3),
                 format_double(side.min_over_sizes[i], 3)});
  return 0;
}
