// Fault scenario sweep — the robustness story in numbers.
//
// Crash-only, crash+recover (fixed-delay and heartbeat detection),
// fail-slow and 1%/5% VIA message loss, each run under traditional, LARD,
// LARD with warm-spare front-end failover, and L2S on an 8-node cluster.
// Emits BENCH_fault.json (schema: docs/bench_fault.md) and enforces the
// acceptance gates:
//
//   (a) L2S degrades proportionally under a crash while LARD without
//       failover loses the trace tail when its front-end dies;
//   (b) LARD with failover loses only the detection window: it serves the
//       vast majority of the trace and detects within the configured
//       timeout;
//   (c) all three policies complete >= 99% of requests at 1% message loss
//       once client retries are enabled;
//   plus a bit-reproducibility check (same seed, same numbers).
//
// Exits non-zero if any gate fails, so CI can run it as a regression test.
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

struct Row {
  std::string scenario;
  std::string policy;
  core::SimResult r;
  double served = 0.0;
};

struct PolicyDef {
  std::string name;
  std::function<std::unique_ptr<policy::Policy>()> make;
};

struct Scenario {
  std::string name;
  std::function<void(core::SimConfig&)> apply;
};

std::string json_escape_free(const std::string& s) { return s; }  // names are plain

void json_row(std::ofstream& out, const Row& row, bool last) {
  const auto& r = row.r;
  out << "    {\"scenario\": \"" << json_escape_free(row.scenario) << "\", \"policy\": \""
      << row.policy << "\",\n"
      << "     \"completed\": " << r.completed << ", \"failed\": " << r.failed
      << ", \"failed_deadline\": " << r.failed_deadline
      << ", \"failed_retries_exhausted\": " << r.failed_retries_exhausted
      << ", \"failed_rejected\": " << r.failed_rejected << ",\n"
      << "     \"served_fraction\": " << format_double(row.served, 6)
      << ", \"throughput_rps\": " << format_double(r.throughput_rps, 1)
      << ", \"elapsed_seconds\": " << format_double(r.elapsed_seconds, 6) << ",\n"
      << "     \"completed_after_retry\": " << r.completed_after_retry
      << ", \"retry_attempts\": " << r.retry_attempts
      << ", \"retry_amplification\": " << format_double(r.retry_amplification, 4) << ",\n"
      << "     \"via_dropped\": " << r.via_dropped
      << ", \"via_duplicated\": " << r.via_duplicated
      << ", \"via_delayed\": " << r.via_delayed << ", \"heartbeats\": " << r.heartbeats
      << ",\n"
      << "     \"detection_latency_ms\": " << format_double(r.detection_latency_ms, 3)
      << ", \"time_to_recover_ms\": " << format_double(r.time_to_recover_ms, 3) << ",\n"
      << "     \"goodput_interval_seconds\": "
      << format_double(r.goodput_interval_seconds, 4) << ", \"goodput_rps\": [";
  for (std::size_t i = 0; i < r.goodput_rps.size(); ++i) {
    if (i > 0) out << ", ";
    out << format_double(r.goodput_rps[i], 1);
  }
  out << "]}";
  if (!last) out << ",";
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fault.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  const double shrink = 20.0 * scale;
  const int nodes = 8;
  const double detection_s = 0.1;

  std::cout << "Fault scenario sweep (synthetic Calgary, " << nodes
            << " nodes, L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);
  const auto total = static_cast<double>(tr.request_count());

  core::SimConfig base;
  base.nodes = nodes;
  base.node.cache_bytes = 32 * kMiB;
  base.failure_detection_seconds = detection_s;

  // Where "40% into the run" is, in seconds, for the crash schedules.
  const auto baseline = core::run_once(tr, base, core::PolicyKind::kL2s, shrink);
  const double crash_at = baseline.elapsed_seconds * 0.4;
  const double recover_at = baseline.elapsed_seconds * 0.7;
  std::cout << "baseline L2S: " << format_double(baseline.throughput_rps, 0)
            << " req/s over " << format_double(baseline.elapsed_seconds, 2)
            << " s; crash at t=" << format_double(crash_at, 2) << " s, restart at t="
            << format_double(recover_at, 2) << " s\n\n";
  const double goodput_interval = baseline.elapsed_seconds / 16.0;

  // Node 0 dies in every crash scenario: for LARD that is the front-end
  // (the paper's single point of failure); for the others an ordinary node.
  const std::vector<Scenario> scenarios = {
      {"crash",
       [&](core::SimConfig& cfg) { cfg.fault_plan.crashes.push_back({0, crash_at}); }},
      {"crash_recover",
       [&](core::SimConfig& cfg) {
         cfg.fault_plan.crashes.push_back({0, crash_at});
         cfg.fault_plan.recoveries.push_back({0, recover_at});
       }},
      {"crash_recover_heartbeat",
       [&](core::SimConfig& cfg) {
         cfg.fault_plan.crashes.push_back({0, crash_at});
         cfg.fault_plan.recoveries.push_back({0, recover_at});
         cfg.detection.heartbeats = true;
         cfg.detection.period_seconds = 0.05;
         cfg.detection.suspect_after_missed = 3;
       }},
      {"failslow_disk",
       [&](core::SimConfig& cfg) {
         for (int n = 0; n < nodes / 2; ++n)
           cfg.fault_plan.slowdowns.push_back({n, fault::Resource::kDisk, 4.0, 0.0});
       }},
      {"loss_1pct",
       [&](core::SimConfig& cfg) {
         cfg.fault_plan.message_faults.push_back({.loss_prob = 0.01});
         cfg.retry.max_retries = 3;
         // Calgary's size tail puts slow-but-healthy requests well past a
         // sub-second timeout; the timeout is for vanished messages, so it
         // must clear the response-time tail or it manufactures a retry
         // storm (see docs/bench_fault.md).
         cfg.retry.attempt_timeout_seconds = 3.0;
       }},
      {"loss_5pct",
       [&](core::SimConfig& cfg) {
         cfg.fault_plan.message_faults.push_back(
             {.loss_prob = 0.05, .extra_delay_seconds = 0.0005, .duplicate_prob = 0.01});
         cfg.retry.max_retries = 3;
         cfg.retry.attempt_timeout_seconds = 3.0;
       }},
  };

  const std::vector<PolicyDef> policies = {
      {"trad",
       [&] { return core::make_policy(core::PolicyKind::kTraditional, shrink); }},
      {"lard", [&] { return core::make_policy(core::PolicyKind::kLard, shrink); }},
      {"lard_failover",
       [&]() -> std::unique_ptr<policy::Policy> {
         policy::LardParams p;
         p.set_shrink_seconds = shrink;
         p.front_end_failover = true;
         return std::make_unique<policy::LardPolicy>(p);
       }},
      {"l2s", [&] { return core::make_policy(core::PolicyKind::kL2s, shrink); }},
  };

  auto run_one = [&](const Scenario& s, const PolicyDef& p) {
    core::SimConfig cfg = base;
    cfg.goodput_interval_seconds = goodput_interval;
    s.apply(cfg);
    core::ClusterSimulation sim(cfg, tr, p.make());
    Row row{s.name, p.name, sim.run(), 0.0};
    row.served = static_cast<double>(row.r.completed) / total;
    return row;
  };

  std::vector<Row> rows;
  TextTable t({"Scenario", "Policy", "Served %", "Failed", "RetryAmp", "Detect ms",
               "Recover ms", "Drops"});
  for (const auto& s : scenarios) {
    for (const auto& p : policies) {
      rows.push_back(run_one(s, p));
      const auto& row = rows.back();
      t.cell(row.scenario)
          .cell(row.policy)
          .cell(row.served * 100.0, 2)
          .cell(static_cast<long long>(row.r.failed))
          .cell(row.r.retry_amplification, 3)
          .cell(row.r.detection_latency_ms, 1)
          .cell(row.r.time_to_recover_ms, 1)
          .cell(static_cast<long long>(row.r.via_dropped))
          .end_row();
    }
  }
  t.print(std::cout);

  auto find = [&](const std::string& scenario, const std::string& pol) -> const Row& {
    for (const auto& row : rows)
      if (row.scenario == scenario && row.policy == pol) return row;
    throw_error("fault_bench: missing row " + scenario + "/" + pol);
  };

  // --- acceptance gates ----------------------------------------------------
  struct Gate {
    std::string name;
    bool pass;
    std::string detail;
  };
  std::vector<Gate> gates;
  auto add_gate = [&](std::string name, bool pass, std::string detail) {
    gates.push_back({std::move(name), pass, std::move(detail)});
  };

  {
    // (a) A single-node crash costs L2S little; LARD without failover
    // loses everything after its front-end dies.
    const Row& l2s = find("crash", "l2s");
    const Row& lard = find("crash", "lard");
    add_gate("a_l2s_absorbs_crash", l2s.served >= 0.95,
             "l2s served " + format_double(l2s.served * 100.0, 2) + "% (need >= 95%)");
    add_gate("a_lard_loses_tail", lard.served <= 0.7,
             "lard served " + format_double(lard.served * 100.0, 2) + "% (need <= 70%)");
  }
  {
    // (b) Warm-spare failover turns the SPOF into a detection window.
    const Row& fo = find("crash_recover", "lard_failover");
    add_gate("b_failover_serves_tail", fo.served >= 0.9,
             "lard_failover served " + format_double(fo.served * 100.0, 2) +
                 "% (need >= 90%)");
    add_gate("b_failover_detects_in_time",
             fo.r.detection_latency_ms > 0.0 &&
                 fo.r.detection_latency_ms <= detection_s * 1000.0 * 1.5,
             "detection " + format_double(fo.r.detection_latency_ms, 1) + " ms (limit " +
                 format_double(detection_s * 1000.0 * 1.5, 1) + " ms)");
  }
  {
    // (c) 1% loss is a non-event once retries are on.
    for (const char* pol : {"trad", "lard", "l2s"}) {
      const Row& row = find("loss_1pct", pol);
      add_gate(std::string("c_loss1pct_") + pol, row.served >= 0.99,
               std::string(pol) + " served " + format_double(row.served * 100.0, 2) +
                   "% (need >= 99%)");
    }
  }

  // Bit-reproducibility: replay one stochastic scenario and compare.
  const Row& first = find("loss_5pct", "l2s");
  const Row rerun = run_one(scenarios[5], policies[3]);
  const bool deterministic = first.r.completed == rerun.r.completed &&
                             first.r.failed == rerun.r.failed &&
                             first.r.via_dropped == rerun.r.via_dropped &&
                             first.r.retry_attempts == rerun.r.retry_attempts &&
                             first.r.elapsed_seconds == rerun.r.elapsed_seconds;
  add_gate("bit_reproducible", deterministic,
           deterministic ? "replay identical" : "replay diverged");

  std::cout << "\ngates:\n";
  bool all_pass = true;
  for (const auto& g : gates) {
    std::cout << "  [" << (g.pass ? "PASS" : "FAIL") << "] " << g.name << ": " << g.detail
              << "\n";
    all_pass = all_pass && g.pass;
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"fault\",\n"
      << "  \"trace\": \"Calgary\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"request_count\": " << tr.request_count() << ",\n"
      << "  \"crash_at_seconds\": " << format_double(crash_at, 4) << ",\n"
      << "  \"recover_at_seconds\": " << format_double(recover_at, 4) << ",\n"
      << "  \"detection_seconds\": " << format_double(detection_s, 4) << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) json_row(out, rows[i], i + 1 == rows.size());
  out << "  ],\n"
      << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i)
    out << "    \"" << gates[i].name << "\": " << (gates[i].pass ? "true" : "false")
        << (i + 1 == gates.size() ? "\n" : ",\n");
  out << "  },\n"
      << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_pass) {
    std::cerr << "fault_bench: acceptance gates FAILED\n";
    return 1;
  }
  std::cout << "fault_bench: all gates pass\n";
  return 0;
}
