// Sharded-DES introspection study: run the 256-node shard-confined cluster
// workload threaded with introspection on, verify the fold against the
// serial reference (introspection must observe, never perturb), and render
// what the window protocol actually did — per-shard occupancy and
// imbalance, the cross-shard message matrix, lookahead-slack distribution,
// and per-worker barrier-stall accounting. This is the measurement surface
// for shard-count/partition tuning: the barrier-stall column is the
// imbalance signal, the matrix shows who pays for a bad partition.
//
// Options: --shards N (default 8), --threads N (0 = budget), --out PATH
// (write the exported telemetry metrics as CSV).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/l2sim.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  int shards = 8;
  unsigned threads = 0;
  std::string out_path;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards") shards = std::atoi(argv[i + 1]);
    if (arg == "--threads") threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--out") out_path = argv[i + 1];
  }

  const double scale = bench_scale();
  des::WorkloadParams p;
  p.nodes = 256;
  p.requests_per_node = std::max(1, static_cast<int>(8.0 * scale));
  p.hops = 64;

  std::cout << "Shard introspection study (" << p.nodes << " nodes, "
            << p.requests_per_node << " requests/node, " << p.hops << " hops, "
            << shards << " shards, L2SIM_SCALE=" << scale << ")\n\n";

  des::ShardedScheduler engine(shards, p.latency,
                               des::ShardedScheduler::Mode::kThreaded);
  engine.enable_introspection();
  const auto t0 = std::chrono::steady_clock::now();
  const auto threaded = des::run_cluster_workload_on(p, engine, threads);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Introspection is an observation: the fold must still match the serial
  // reference bit for bit.
  const auto serial = des::run_cluster_workload_serial(p);
  if (threaded.digest != serial.digest || threaded.events != serial.events) {
    std::cerr << "shard_introspection_study: threaded fold diverged from the "
                 "serial reference with introspection on\n";
    return 1;
  }

  std::cout << threaded.events << " events in " << format_double(elapsed, 3)
            << " s (" << format_double(static_cast<double>(threaded.events) / elapsed / 1e6, 2)
            << " M events/s), " << threaded.windows << " windows\n\n";

  obs::write_shard_report(std::cout, engine);

  telemetry::Registry registry;
  obs::export_shard_introspection(registry, engine);
  std::cout << "\nexported " << registry.metric_count() << " telemetry metrics\n";
  if (!out_path.empty()) {
    telemetry::export_metrics_csv(out_path, registry.snapshot());
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
