// Planner efficiency study — can the analytic planner find the paper's
// scaling knee without running the full DES grid?
//
// One workload whose working set (~4000 files x 8 KB ~ 32 MB) dwarfs a
// single 8 MB cache: as the cluster grows, the locality-conscious
// aggregate cache crosses the working set and the throughput curve bends —
// the knee the paper's Figures 3-5 surfaces are about. The study:
//
//   1. runs the DES on EVERY cell of a {nodes x cache} grid and locates
//      the measured knee (largest second difference of log throughput);
//   2. runs `plan_cells` on the same grid — milliseconds, no events — and
//      takes the top quartile of cells by planner score;
//   3. gates on the planned quartile bracketing the measured knee to
//      within one grid cell (the knee is a ridge where the combined
//      conscious cache crosses the working set; the analytic model places
//      that crossing within one cell of the DES, so simulating the
//      planned cells and their measured-best neighbourhood reproduces the
//      knee with <= 25% of the grid's DES budget).
//
// Exits non-zero if the gate fails. `--csv DIR` writes the full grid.
#include "figure_common.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "l2sim/analytic/planner.hpp"

using namespace l2s;

namespace {

// Second difference of log throughput along each axis, maximum of the two
// — the same discrete curvature the planner scores, applied to *measured*
// throughput. Zero on grid edges (no centered difference exists there).
double log_curvature(const std::vector<std::vector<double>>& grid, std::size_t i,
                     std::size_t j) {
  double best = 0.0;
  if (i > 0 && i + 1 < grid.size()) {
    best = std::max(best, std::abs(std::log(grid[i - 1][j]) -
                                   2.0 * std::log(grid[i][j]) +
                                   std::log(grid[i + 1][j])));
  }
  if (j > 0 && j + 1 < grid[i].size()) {
    best = std::max(best, std::abs(std::log(grid[i][j - 1]) -
                                   2.0 * std::log(grid[i][j]) +
                                   std::log(grid[i][j + 1])));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);

  // Working set ~8x one cache: the knee lands inside the node axis.
  trace::SyntheticSpec spec;
  spec.name = "planner-study";
  spec.files = 4000;
  spec.avg_file_kb = 8.0;
  spec.requests = static_cast<std::uint64_t>(60000.0 * std::max(1.0, scale));
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 4242;
  const trace::Trace tr = trace::generate(spec);

  analytic::PlanAxes axes;
  axes.node_counts = {1, 2, 4, 6, 8, 12, 16};
  axes.cache_mib = {2.0, 4.0, 8.0, 16.0};

  std::cout << "Planner efficiency study (" << axes.node_counts.size() << "x"
            << axes.cache_mib.size() << " grid, " << tr.request_count()
            << " requests per DES cell, L2SIM_SCALE=" << scale << ")\n\n";

  // 1. The full DES grid — the budget the planner is supposed to save.
  std::vector<std::vector<double>> des_rps(
      axes.node_counts.size(), std::vector<double>(axes.cache_mib.size(), 0.0));
  CsvWriter csv(dir, "planner_study",
                {"nodes", "cache_mib", "des_rps", "planner_score", "planned"});
  for (std::size_t i = 0; i < axes.node_counts.size(); ++i) {
    for (std::size_t j = 0; j < axes.cache_mib.size(); ++j) {
      core::SimConfig cfg;
      cfg.nodes = axes.node_counts[i];
      cfg.node.cache_bytes = static_cast<Bytes>(axes.cache_mib[j] * kMiB);
      des_rps[i][j] = core::run_once(tr, cfg, core::PolicyKind::kL2s).throughput_rps;
    }
  }

  std::size_t knee_i = 0;
  std::size_t knee_j = 0;
  double knee_curv = -1.0;
  for (std::size_t i = 0; i < axes.node_counts.size(); ++i) {
    for (std::size_t j = 0; j < axes.cache_mib.size(); ++j) {
      const double c = log_curvature(des_rps, i, j);
      if (c > knee_curv) {
        knee_curv = c;
        knee_i = i;
        knee_j = j;
      }
    }
  }
  const int knee_nodes = axes.node_counts[knee_i];
  const double knee_cache = axes.cache_mib[knee_j];

  // 2. The plan — same workload, no DES. Knee-weighted scoring: this
  // study asks the knee question specifically, so the crossover and
  // approximation-uncertainty families ride along at reduced weight.
  const trace::TraceCharacteristics ch = trace::characterize(tr);
  analytic::HierarchicalParams base;
  base.workload = ch.to_workload_stats();
  base.model.alpha = ch.alpha;
  analytic::PlanWeights weights;
  weights.knee = 0.7;
  weights.crossover = 0.15;
  weights.uncertainty = 0.15;
  const analytic::Plan plan = analytic::plan_cells(base, axes, weights);

  const std::size_t grid_cells = plan.cells.size();
  const std::size_t budget = (grid_cells + 3) / 4;  // top quartile
  std::set<std::pair<int, double>> planned;
  for (std::size_t k = 0; k < budget; ++k)
    planned.insert({plan.cells[k].nodes, plan.cells[k].cache_mib});

  TextTable t({"Nodes", "Cache MiB", "DES rps", "Score", "Planned"});
  for (std::size_t i = 0; i < axes.node_counts.size(); ++i) {
    for (std::size_t j = 0; j < axes.cache_mib.size(); ++j) {
      double score = 0.0;
      for (const auto& c : plan.cells)
        if (c.nodes == axes.node_counts[i] && c.cache_mib == axes.cache_mib[j])
          score = c.score;
      const bool chosen =
          planned.count({axes.node_counts[i], axes.cache_mib[j]}) > 0;
      t.cell(static_cast<long long>(axes.node_counts[i]))
          .cell(axes.cache_mib[j], 0)
          .cell(des_rps[i][j], 0)
          .cell(score, 3)
          .cell(chosen ? "yes" : "")
          .end_row();
      csv.add_row({std::to_string(axes.node_counts[i]),
                   format_double(axes.cache_mib[j], 0),
                   format_double(des_rps[i][j], 1), format_double(score, 4),
                   chosen ? "1" : "0"});
    }
  }
  t.print(std::cout);

  // 3. The gate: the planned quartile must bracket the measured knee to
  // within one grid cell in index space (running the planned cells plus
  // the measured-best neighbourhood pins the ridge exactly).
  const bool knee_planned = planned.count({knee_nodes, knee_cache}) > 0;
  bool knee_bracketed = knee_planned;
  for (std::size_t k = 0; k < budget && !knee_bracketed; ++k) {
    std::size_t pi = 0;
    std::size_t pj = 0;
    for (std::size_t i = 0; i < axes.node_counts.size(); ++i)
      if (axes.node_counts[i] == plan.cells[k].nodes) pi = i;
    for (std::size_t j = 0; j < axes.cache_mib.size(); ++j)
      if (axes.cache_mib[j] == plan.cells[k].cache_mib) pj = j;
    const auto di = pi > knee_i ? pi - knee_i : knee_i - pi;
    const auto dj = pj > knee_j ? pj - knee_j : knee_j - pj;
    knee_bracketed = di <= 1 && dj <= 1;
  }
  std::cout << "\nmeasured knee: " << knee_nodes << " nodes x "
            << format_double(knee_cache, 0) << " MiB (log-curvature "
            << format_double(knee_curv, 3) << ")"
            << (knee_planned ? " — inside the planned set"
                             : " — adjacent to the planned set")
            << "\n"
            << "planner budget: top " << budget << " of " << grid_cells
            << " cells (" << format_double(100.0 * static_cast<double>(budget) /
                                               static_cast<double>(grid_cells),
                                           0)
            << "% of the DES grid)\n";
  std::cout << "  [" << (knee_bracketed ? "PASS" : "FAIL")
            << "] knee_bracketed_by_plan: measured knee cell "
            << (knee_bracketed ? "within one grid cell of" : "NOT bracketed by")
            << " the planned quartile\n";

  if (!knee_bracketed) {
    std::cerr << "planner_study: acceptance gate FAILED\n";
    return 1;
  }
  std::cout << "planner_study: gate passes\n";
  return 0;
}
