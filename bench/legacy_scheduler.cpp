#include "legacy_scheduler.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::bench {

void LegacyScheduler::at(SimTime t, EventFn fn) {
  L2S_REQUIRE(t >= now_);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

void LegacyScheduler::after(SimTime delay, EventFn fn) {
  L2S_REQUIRE(delay >= 0);
  at(now_ + delay, std::move(fn));
}

bool LegacyScheduler::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is safe because
  // the entry is popped immediately after and never observed again.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  ++processed_;
  entry.fn();
  return true;
}

void LegacyScheduler::run() {
  while (step()) {
  }
}

}  // namespace l2s::bench
