// Cross-validation of the two engines: the simulator in open-loop Poisson
// mode against the analytic M/M/1 network, on a fully cached single-node
// configuration where both describe the same system.
//
// The simulator's service times are deterministic, so its queueing is
// M/D/1-like and its mean response must sit *between* the pure service sum
// and the (more pessimistic, exponential-service) M/M/1 curve — closer to
// M/M/1 as load rises. Agreement here ties the Table 1 calibration of both
// engines together.
#include <iostream>

#include "l2sim/l2sim.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  std::cout << "Latency validation: simulator (open loop) vs analytic model\n"
            << "(1 node, 16 KB files fully cached)\n\n";

  trace::SyntheticSpec spec;
  spec.name = "validation";
  spec.files = 50;
  spec.avg_file_kb = 16.0;
  spec.avg_request_kb = 16.0;
  spec.size_sigma = 0.1;
  spec.alpha = 0.9;
  spec.requests = static_cast<std::uint64_t>(60000 * bench_scale() * 10);

  const trace::Trace tr = trace::generate(spec);

  model::ModelParams mp;
  mp.nodes = 1;
  const model::ClusterModel m(mp);
  const auto net = m.build_network(1.0, 0.0, 16.0, 16.0);
  const double capacity = net.max_throughput();
  std::cout << "model capacity: " << format_double(capacity, 0) << " req/s\n\n";

  TextTable t({"Load (%)", "arrival req/s", "sim mean (ms)", "sim p95 (ms)",
               "M/M/1 (ms)", "M/D/1 (ms)"});
  CsvWriter csv(csv_dir_from_args(argc, argv), "latency_validation",
                {"load", "rate", "sim_mean_ms", "sim_p95_ms", "mm1_ms", "md1_ms"});
  const double service_ms = net.solve(1e-9).mean_response * 1e3;
  for (const double frac : {0.2, 0.4, 0.6, 0.75, 0.9}) {
    const double rate = frac * capacity;
    core::SimConfig cfg;
    cfg.nodes = 1;
    cfg.node.cache_bytes = 8 * kMiB;
    cfg.arrival.open_loop_rate = rate;
    cfg.admission.buffer_slots_per_node = 2000;
    const auto r = core::run_once(tr, cfg, core::PolicyKind::kTraditional);
    const double mm1_ms = net.solve(rate).mean_response * 1e3;
    // Deterministic service halves each station's waiting (P-K with
    // cs2 = 0): the M/D/1 estimate is service + half the M/M/1 queueing.
    const double md1_ms = service_ms + 0.5 * (mm1_ms - service_ms);
    t.cell(frac * 100.0, 0)
        .cell(rate, 0)
        .cell(r.mean_response_ms, 2)
        .cell(r.p95_response_ms, 2)
        .cell(mm1_ms, 2)
        .cell(md1_ms, 2)
        .end_row();
    csv.add_row({format_double(frac, 2), format_double(rate, 1),
                 format_double(r.mean_response_ms, 3), format_double(r.p95_response_ms, 3),
                 format_double(mm1_ms, 3), format_double(md1_ms, 3)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: the simulator's service times are deterministic, so its\n"
               "mean response should track the M/D/1 (Pollaczek-Khinchine, cs2=0)\n"
               "column, sitting well below M/M/1 at high load.\n";
  return 0;
}
