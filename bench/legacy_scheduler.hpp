// The DES kernel this repository shipped before the allocation-free
// rewrite, preserved verbatim as the benchmark baseline: type-erased
// copyable std::function events held inside std::priority_queue's binary
// heap, 48-byte (time, seq, fn) entries moved wholesale on every sift,
// and the UB-adjacent const_cast move out of top(). Kept in its own
// translation unit, exactly as the original lived in src/des/, so the
// comparison does not flatter either side with extra inlining.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::bench {

class LegacyScheduler {
 public:
  using EventFn = std::function<void()>;

  void at(SimTime t, EventFn fn);
  void after(SimTime delay, EventFn fn);
  [[nodiscard]] SimTime now() const { return now_; }
  bool step();
  void run();
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace l2s::bench
