// Flight-recorder overhead gates.
//
// The recorder rides the same lifecycle fan-out telemetry does, schedules
// nothing and draws no randomness — so its cost must be a small constant
// per decision. Two modes run interleaved (paired wall clock per rep, so
// transient machine noise cannot charge one mode more than another):
//
//   off        obs disabled — the null-object path the golden digests pin.
//   ring       obs.enabled with the default 16K-record ring: the
//              recommended always-on configuration. Gate: <= 2% over
//              `off` on saturated throughput.
//
// The unbounded mode (obs.capacity = 0, retain everything — the `l2sim
// diff` configuration) is measured once AFTER the gated interleave, not
// inside it: its tens-of-MB grow-reallocate vector perturbs allocator
// state for whatever runs next, which was enough to wobble the paired
// off/ring ratios by several percent. It is informational, no gate —
// memory growth, not CPU, is its real cost.
//
// Gate protocol: up to kAttempts full interleaves; the gated ratio is the
// best attempt's. A real regression is present in every run and therefore
// fails every attempt; shared-host noise at the +-2-4% level (bursty
// neighbors, frequency drift, address-space layout luck) fails one attempt
// with noticeable probability but all of them only rarely. Within an
// attempt the estimator is the SMALLER of two upward-biased statistics —
// ratio of minima and median of per-rep paired ratios — for the same
// reason: overhead inflates both, an artifact usually inflates one.
//
// Emits BENCH_obs.json and exits non-zero when the gate fails so CI treats
// regressions as errors. The gate carries a small absolute floor so a
// microscopic trace under L2SIM_SCALE cannot fail on scheduler jitter.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

struct Mode {
  std::string name;
  std::function<void(core::SimConfig&)> apply;
};

double run_seconds(const trace::Trace& tr, const core::SimConfig& cfg,
                   std::uint64_t* recorded = nullptr) {
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r.completed == 0) throw_error("obs_bench: run completed nothing");
  if (recorded != nullptr && r.decisions != nullptr) *recorded = r.decisions->recorded;
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Attempt {
  std::vector<double> best;    // per mode, min over reps
  double min_ratio = 0.0;      // best[ring] / best[off]
  double median_paired = 0.0;  // median over reps of paired ring/off
  double ratio() const { return std::min(min_ratio, median_paired); }
};

Attempt run_attempt(const trace::Trace& tr, const core::SimConfig& base,
                    const std::vector<Mode>& modes, int reps) {
  // Alternate the sweep direction every rep so slow machine drift (thermal,
  // frequency, noisy neighbors) charges each mode symmetrically.
  std::vector<std::vector<double>> secs(modes.size());
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const std::size_t m = (rep % 2 == 0) ? i : modes.size() - 1 - i;
      core::SimConfig cfg = base;
      modes[m].apply(cfg);
      secs[m].push_back(run_seconds(tr, cfg));
    }
  }
  Attempt a;
  a.best.assign(modes.size(), 1e300);
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (const double s : secs[m]) a.best[m] = std::min(a.best[m], s);
  }
  a.min_ratio = a.best[1] / a.best[0];
  std::vector<double> ratios;
  for (int rep = 0; rep < reps; ++rep) {
    ratios.push_back(secs[1][static_cast<std::size_t>(rep)] /
                     secs[0][static_cast<std::size_t>(rep)]);
  }
  std::sort(ratios.begin(), ratios.end());
  a.median_paired = ratios[ratios.size() / 2];
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  const int reps = 9;
  const int kAttempts = 3;
  const double limit = 1.02;
  // Absolute slack: below this delta a ratio is noise, not overhead.
  const double floor_s = 0.002;

  trace::SyntheticSpec spec;
  spec.name = "obs-bench";
  spec.files = 800;
  spec.avg_file_kb = 10.0;
  // Long enough per mode (~0.5 s) that a 2% gate measures overhead, not
  // scheduler jitter — the floor is deliberately higher than the other
  // overhead benches because the quantity gated here is smaller.
  spec.requests = static_cast<std::uint64_t>(400000.0 * scale);
  if (spec.requests < 120000) spec.requests = 120000;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 4243;
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig base;
  base.nodes = 8;
  base.node.cache_bytes = 16 * kMiB;

  const std::vector<Mode> modes = {
      {"off", [](core::SimConfig&) {}},
      {"ring",
       [](core::SimConfig& cfg) {
         cfg.obs.enabled = true;  // default 16K-record ring
       }},
  };

  std::cout << "Flight-recorder overhead bench (" << tr.request_count() << " requests, "
            << base.nodes << " nodes, " << reps << " interleaved reps x up to "
            << kAttempts << " attempts, L2SIM_SCALE=" << scale << ")\n\n";

  // Untimed warm-up pass (page in the trace, warm the allocator), with the
  // recorder on so we can report how many records a run emits.
  std::uint64_t recorded = 0;
  {
    core::SimConfig cfg = base;
    modes[1].apply(cfg);
    (void)run_seconds(tr, cfg, &recorded);
  }
  std::cout << "decision records per run: " << recorded << "\n\n";

  std::vector<Attempt> attempts;
  std::size_t gated = 0;
  for (int att = 0; att < kAttempts; ++att) {
    attempts.push_back(run_attempt(tr, base, modes, reps));
    const Attempt& a = attempts.back();
    std::cout << "attempt " << (att + 1) << ": min-ratio "
              << format_double(a.min_ratio, 4) << "  median-paired "
              << format_double(a.median_paired, 4) << "\n";
    if (a.ratio() < attempts[gated].ratio()) gated = attempts.size() - 1;
    if (attempts[gated].ratio() <= limit) break;  // gate satisfied, stop early
  }
  const Attempt& a = attempts[gated];

  // Unbounded retention, once, after the gated pairs (see header comment).
  double unbounded_s = 0.0;
  {
    core::SimConfig cfg = base;
    cfg.obs.enabled = true;
    cfg.obs.capacity = 0;
    unbounded_s = run_seconds(tr, cfg);
  }

  const double off = a.best[0];
  std::cout << "\n";
  TextTable t({"Mode", "Best s", "Min ratio", "Median paired ratio"});
  for (std::size_t m = 0; m < modes.size(); ++m) {
    t.cell(modes[m].name).cell(a.best[m], 4).cell(a.best[m] / off, 4)
        .cell(m == 1 ? format_double(a.median_paired, 4) : "1.0000").end_row();
  }
  t.cell("unbounded").cell(unbounded_s, 4).cell(unbounded_s / off, 4).cell("-").end_row();
  t.print(std::cout);

  const double ratio = a.ratio();
  const bool pass = ratio <= limit || (ratio - 1.0) * off <= floor_s;

  std::cout << "\ngates:\n  [" << (pass ? "PASS" : "FAIL")
            << "] ring_overhead_le_2pct: ratio " << format_double(ratio, 4)
            << " (limit " << format_double(limit, 2) << ", best of "
            << attempts.size() << " attempt" << (attempts.size() == 1 ? "" : "s")
            << ")\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"obs\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"nodes\": " << base.nodes << ",\n"
      << "  \"request_count\": " << tr.request_count() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"attempts\": " << attempts.size() << ",\n"
      << "  \"modes\": [\n";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    out << "    {\"mode\": \"" << modes[m].name << "\", \"best_seconds\": "
        << format_double(a.best[m], 6) << ", \"min_ratio_vs_off\": "
        << format_double(a.best[m] / off, 6) << ", \"median_paired_ratio_vs_off\": "
        << format_double(m == 1 ? a.median_paired : 1.0, 6) << "},\n";
  }
  out << "    {\"mode\": \"unbounded\", \"best_seconds\": "
      << format_double(unbounded_s, 6) << ", \"min_ratio_vs_off\": "
      << format_double(unbounded_s / off, 6) << "}\n";
  out << "  ],\n"
      << "  \"gated_ratio\": " << format_double(ratio, 6) << ",\n"
      << "  \"gates\": {\n"
      << "    \"ring_overhead_le_2pct\": " << (pass ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"all_gates_pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!pass) {
    std::cerr << "obs_bench: overhead gate FAILED\n";
    return 1;
  }
  std::cout << "obs_bench: all gates pass\n";
  return 0;
}
