// Model latency curves (extension; the paper reports throughput only and
// notes server latency is small next to WAN latency — these curves show
// where that stops being true as the server approaches saturation).
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/latency.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const model::ClusterModel m{model::ModelParams{}};
  std::cout << "Model mean response time vs offered load (16 nodes, S=16 KB)\n\n";

  CsvWriter csv(csv_dir_from_args(argc, argv), "latency_curves",
                {"server", "hlo", "load_fraction", "arrival_rps", "response_ms"});
  for (const double hlo : {0.6, 0.9}) {
    TextTable t({"Load (%)", "oblivious req/s", "oblivious ms", "conscious req/s",
                 "conscious ms"});
    const auto lo = model::latency_curve(m, false, hlo, 16.0, 10, 0.95);
    const auto lc = model::latency_curve(m, true, hlo, 16.0, 10, 0.95);
    for (std::size_t i = 0; i < lo.size(); ++i) {
      t.cell(lo[i].utilization * 100.0, 0)
          .cell(lo[i].arrival_rate, 0)
          .cell(lo[i].mean_response_s * 1e3, 2)
          .cell(lc[i].arrival_rate, 0)
          .cell(lc[i].mean_response_s * 1e3, 2)
          .end_row();
      csv.add_row({"oblivious", format_double(hlo, 2), format_double(lo[i].utilization, 3),
                   format_double(lo[i].arrival_rate, 1),
                   format_double(lo[i].mean_response_s * 1e3, 3)});
      csv.add_row({"conscious", format_double(hlo, 2), format_double(lc[i].utilization, 3),
                   format_double(lc[i].arrival_rate, 1),
                   format_double(lc[i].mean_response_s * 1e3, 3)});
    }
    std::cout << "Hlo = " << hlo << ":\n";
    t.print(std::cout);
    const double knee_lo = model::load_fraction_at_latency(m, false, hlo, 16.0, 0.1);
    const double knee_lc = model::load_fraction_at_latency(m, true, hlo, 16.0, 0.1);
    std::cout << "load fraction where mean response crosses 100 ms: oblivious "
              << format_double(knee_lo * 100.0, 0) << "%, conscious "
              << format_double(knee_lc * 100.0, 0) << "%\n\n";
  }
  return 0;
}
