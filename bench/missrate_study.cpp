// Section 5.2 cache-miss study.
//
// Paper findings: for a small number of nodes L2S exhibits the lowest
// miss rates; as the cluster grows the LARD server's miss rates become
// comparable (if not slightly lower), because the cache space wasted on
// its front-end becomes a smaller fraction of the total. The traditional
// server's miss rate stays flat at the single-node level (9-28% across
// the traces for a sequential 32 MB server).
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Cache miss rates (%) by policy and cluster size"
            << " (L2SIM_SCALE=" << scale << ")\n\n";

  for (const auto& base : trace::paper_trace_specs()) {
    auto spec = base;
    // Cap the giant traces so the four-trace study stays quick.
    spec.requests = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 600000);
    auto espec = benchfig::figure_spec(spec.name, scale);
    espec.trace = core::TraceSpec::synth(spec);  // the capped trace above
    const auto fig = benchfig::run_figure_series(espec, benchfig::figure_node_counts());
    core::print_metric_figure(std::cout, fig, "missrate");
    std::cout << '\n';

    CsvWriter csv(dir, "missrate_" + spec.name, {"nodes", "l2s", "lard", "trad"});
    for (std::size_t i = 0; i < fig.node_counts.size(); ++i)
      csv.add_row({std::to_string(fig.node_counts[i]),
                   format_double(fig.l2s[i].miss_rate * 100.0, 2),
                   format_double(fig.lard[i].miss_rate * 100.0, 2),
                   format_double(fig.traditional[i].miss_rate * 100.0, 2)});
  }
  return 0;
}
