// Panorama: every distribution scheme in the repository on one workload —
// the paper's policies (traditional, LARD, L2S), the naive RR-DNS server
// of Section 2, the follow-up LARD dispatcher variant of Related Work [4],
// and consistent hashing (the modern load-balancer default). ClarkNet is
// used because its light requests expose the front-end/dispatcher
// bottlenecks most clearly.
#include "figure_common.hpp"

#include "l2sim/policy/consistent_hash.hpp"
#include "l2sim/policy/lard_dispatcher.hpp"
#include "l2sim/policy/round_robin.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Policy panorama (synthetic ClarkNet, 16 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Clarknet");
  spec.requests = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 400000);
  const trace::Trace tr = trace::generate(spec);
  const double shrink = 20.0 * scale;

  core::SimConfig cfg;
  cfg.nodes = 16;
  cfg.node.cache_bytes = 32 * kMiB;

  struct Entry {
    std::string name;
    std::function<std::unique_ptr<policy::Policy>()> make;
  };
  policy::LardParams lard_params;
  lard_params.set_shrink_seconds = shrink;
  policy::L2sParams l2s_params;
  l2s_params.set_shrink_seconds = shrink;
  const std::vector<Entry> entries = {
      {"L2S", [&] { return std::make_unique<policy::L2sPolicy>(l2s_params); }},
      {"LARD (front-end)", [&] { return std::make_unique<policy::LardPolicy>(lard_params); }},
      {"LARD (dispatcher)",
       [&] { return std::make_unique<policy::LardDispatcherPolicy>(lard_params); }},
      {"consistent-hash", [&] { return std::make_unique<policy::ConsistentHashPolicy>(); }},
      {"traditional", [&] { return std::make_unique<policy::TraditionalPolicy>(); }},
      {"rr-dns", [&] { return std::make_unique<policy::RoundRobinPolicy>(); }},
  };

  TextTable t({"Policy", "Throughput", "Miss (%)", "Forwarded (%)", "Idle (%)",
               "Load CoV", "p95 (ms)"});
  CsvWriter csv(dir, "policy_panorama",
                {"policy", "rps", "miss", "forwarded", "idle", "cov", "p95_ms"});
  for (const auto& e : entries) {
    core::ClusterSimulation sim(cfg, tr, e.make());
    const auto r = sim.run();
    t.cell(e.name)
        .cell(r.throughput_rps, 0)
        .cell(r.miss_rate * 100.0, 1)
        .cell(r.forwarded_fraction * 100.0, 1)
        .cell(r.cpu_idle_fraction * 100.0, 1)
        .cell(r.load_cov, 2)
        .cell(r.p95_response_ms, 1)
        .end_row();
    csv.add_row({e.name, format_double(r.throughput_rps, 1), format_double(r.miss_rate, 4),
                 format_double(r.forwarded_fraction, 4),
                 format_double(r.cpu_idle_fraction, 4), format_double(r.load_cov, 3),
                 format_double(r.p95_response_ms, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected ordering on this workload: L2S and the dispatcher variant\n"
               "lead (no accept bottleneck), the original LARD pins at its ~5000\n"
               "req/s front-end, consistent hashing gets the locality but not the\n"
               "balance, and the locality-oblivious servers trail far behind.\n";
  return 0;
}
