// DNS-caching imbalance study (Section 2): intermediate name servers cache
// round-robin DNS answers, so client populations pile onto a few nodes.
// A plain RR-DNS server cannot compensate; L2S redistributes work inside
// the cluster, so its throughput should hold while the naive server's
// collapses as the skew grows.
#include "figure_common.hpp"

#include "l2sim/policy/round_robin.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "DNS-translation caching skew (synthetic Calgary, 16 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);

  CsvWriter csv(dir, "dns_skew_study",
                {"skew", "l2s_rps", "l2s_cov", "rrdns_rps", "rrdns_cov"});
  TextTable t({"Skew", "L2S req/s", "L2S load CoV", "RR-DNS req/s", "RR-DNS load CoV"});
  for (const double skew : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    core::SimConfig cfg;
    cfg.nodes = 16;
    cfg.node.cache_bytes = 32 * kMiB;
    cfg.arrival.dns_entry_skew = skew;

    policy::L2sParams params;
    params.set_shrink_seconds = 20.0 * scale;
    core::ClusterSimulation l2s_sim(cfg, tr, std::make_unique<policy::L2sPolicy>(params));
    const auto l2s_r = l2s_sim.run();

    core::ClusterSimulation rr_sim(cfg, tr, std::make_unique<policy::RoundRobinPolicy>());
    const auto rr_r = rr_sim.run();

    t.cell(skew, 1)
        .cell(l2s_r.throughput_rps, 0)
        .cell(l2s_r.load_cov, 3)
        .cell(rr_r.throughput_rps, 0)
        .cell(rr_r.load_cov, 3)
        .end_row();
    csv.add_row({format_double(skew, 2), format_double(l2s_r.throughput_rps, 1),
                 format_double(l2s_r.load_cov, 4), format_double(rr_r.throughput_rps, 1),
                 format_double(rr_r.load_cov, 4)});
  }
  t.print(std::cout);
  std::cout << "\nExpectation: L2S holds its throughput (forwarding redistributes the\n"
               "work of skewed entries) while the naive RR-DNS server degrades.\n";
  return 0;
}
