// Analytic fast-path bench — the Che-vs-DES validation and speedup gates.
//
// Part A (validation): every cell of the golden 36-cell matrix — the same
// {policy × arrival × persistence × fault} net tests/test_golden_results.cpp
// pins — is run on the DES and on the analytic hierarchical solver
// (run_model with spec.analytic.cache), on a 3x-length realization of the
// golden workload so compulsory (first-touch) misses do not dominate the
// measured pass. The engines must agree on the cluster cache hit rate to
// within 5 percentage points wherever the comparison is physically
// well-posed:
//
//   gated   replay fault-free cells, sub-saturation open-loop variants of
//           the same cells (400 req/s), and a small-memory "stress" net on
//           the oblivious policy where hit rates sit in the 40-90% band —
//           the Che curve itself, not the everything-fits short-circuit;
//   info    the golden 1500 req/s open-loop cells (the cluster saturates
//           and sheds >half the offered load at admission, so the DES
//           measures a cold, admission-biased stream), crash cells (the
//           analytic model has no fault axis), and conscious-policy stress
//           cells (LARD/L2S assignment under memory pressure differs from
//           the idealized replicate+stripe split by design).
//
// Part B (speedup): a 64-cell {nodes × cache} sweep over one realized
// trace, each cell evaluated by the serial DES and by the analytic solver.
// The analytic side must finish the whole sweep >= 100x faster — this is
// the economics behind `l2sim plan`: the planner spends milliseconds
// ranking the grid so the DES only runs the cells worth simulating.
//
// Emits BENCH_analytic.json; exits non-zero if a gate fails.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

trace::Trace golden_trace() {
  trace::SyntheticSpec spec;
  spec.name = "golden";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  // 3x the pinned golden length: same generator, same geometry, but long
  // enough that first-touch misses stop dominating the measured hit rate
  // (the analytic model predicts the steady state, not the warm-up tax).
  spec.requests = 9000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 2024;
  return trace::generate(spec);
}

struct Cell {
  std::string name;
  core::SimConfig cfg;
  core::PolicyKind kind;
  bool gated = true;  // false: informational row (fault cells)
};

// The golden validation net, mirrored from tests/test_golden_results.cpp.
std::vector<Cell> golden_matrix() {
  struct Policy {
    const char* tag;
    core::PolicyKind kind;
  };
  struct Persist {
    const char* tag;
    double rpc;
    core::PersistentMode mode;
  };
  const std::vector<Policy> policies = {{"trad", core::PolicyKind::kTraditional},
                                        {"lard", core::PolicyKind::kLard},
                                        {"l2s", core::PolicyKind::kL2s}};
  const std::vector<Persist> persists = {
      {"http10", 1.0, core::PersistentMode::kConnectionHandoff},
      {"handoff", 4.0, core::PersistentMode::kConnectionHandoff},
      {"backend", 4.0, core::PersistentMode::kBackendForwarding}};

  std::vector<Cell> cells;
  for (const auto& p : policies) {
    for (const bool open_loop : {false, true}) {
      for (const auto& ps : persists) {
        for (const bool crash : {false, true}) {
          Cell c;
          c.kind = p.kind;
          c.name = std::string(p.tag) + (open_loop ? "|open" : "|replay") + "|" +
                   ps.tag + (crash ? "|crash" : "|nofault");
          c.cfg.nodes = 4;
          c.cfg.node.cache_bytes = 2 * kMiB;
          if (open_loop) c.cfg.arrival.open_loop_rate = 1500.0;
          c.cfg.persistence.mean_requests_per_connection = ps.rpc;
          c.cfg.persistence.mode = ps.mode;
          // Saturated open-loop cells shed >half the offered load at
          // admission: the DES hit rate is then measured over a cold,
          // biased stream, which the steady-state model deliberately does
          // not describe. Crash cells: no fault axis in the model.
          if (crash) c.cfg.fault_plan.crashes.push_back({1, 0.15});
          c.gated = !crash && !open_loop;
          cells.push_back(std::move(c));
        }
      }
    }
  }
  // Sub-saturation open-loop variants of the fault-free cells: arrivals
  // Poisson, nothing rejected, so the comparison is well-posed again.
  for (const auto& p : policies) {
    for (const auto& ps : persists) {
      Cell c;
      c.kind = p.kind;
      c.name = std::string(p.tag) + "|open400|" + ps.tag + "|nofault";
      c.cfg.nodes = 4;
      c.cfg.node.cache_bytes = 2 * kMiB;
      c.cfg.arrival.open_loop_rate = 400.0;
      c.cfg.persistence.mean_requests_per_connection = ps.rpc;
      c.cfg.persistence.mode = ps.mode;
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

// Small-memory cells where the golden working set (250 files, ~2 MB) does
// not fit: this is where the Che curve is doing real work. Gated on the
// oblivious policy (each node's LRU sees the full Zipf stream — exactly
// the Che setting); LARD/L2S rows ride along informationally, since their
// runtime assignment under memory pressure deviates from the idealized
// replicate+stripe split on purpose.
std::vector<Cell> stress_matrix() {
  std::vector<Cell> cells;
  struct Policy {
    const char* tag;
    core::PolicyKind kind;
    bool gated;
  };
  const std::vector<Policy> policies = {{"trad", core::PolicyKind::kTraditional, true},
                                        {"lard", core::PolicyKind::kLard, false},
                                        {"l2s", core::PolicyKind::kL2s, false}};
  for (const auto& p : policies) {
    for (const Bytes cache : {128 * kKiB, 256 * kKiB, 512 * kKiB, 1 * kMiB}) {
      Cell c;
      c.kind = p.kind;
      c.gated = p.gated;
      c.name = std::string("stress|") + p.tag + "|" +
               std::to_string(cache / kKiB) + "KiB";
      c.cfg.nodes = 4;
      c.cfg.node.cache_bytes = cache;
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

struct ValidationRow {
  std::string name;
  bool gated = false;
  double des_hit = 0.0;
  double analytic_hit = 0.0;
  double delta = 0.0;
  double des_throughput = 0.0;
  double analytic_throughput = 0.0;
};

struct SweepTiming {
  int cells = 0;
  double des_seconds = 0.0;
  double analytic_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_hit_delta = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_analytic.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  const trace::Trace tr = golden_trace();

  std::cout << "Analytic fast-path bench (golden 36-cell net + stress net + "
            << "64-cell sweep, L2SIM_SCALE=" << scale << ")\n\n";

  // --- Part A: hit-rate validation, DES vs analytic --------------------
  auto validate = [&](const std::vector<Cell>& cells) {
    std::vector<ValidationRow> rows;
    for (const auto& c : cells) {
      ValidationRow row;
      row.name = c.name;
      row.gated = c.gated;
      const core::SimResult des = core::run_once(tr, c.cfg, c.kind);
      row.des_hit = des.hit_rate;
      row.des_throughput = des.throughput_rps;

      core::ExperimentSpec spec;
      spec.name = c.name;
      spec.sim = c.cfg;
      spec.policy = c.kind;
      spec.analytic.cache = true;
      const core::ModelResult model = core::run_model(spec, tr);
      row.analytic_hit = model.hit_rate;
      row.analytic_throughput = model.throughput_rps;
      row.delta = model.hit_rate - des.hit_rate;
      rows.push_back(std::move(row));
    }
    return rows;
  };

  std::vector<ValidationRow> rows = validate(golden_matrix());
  const std::vector<ValidationRow> stress = validate(stress_matrix());
  rows.insert(rows.end(), stress.begin(), stress.end());

  TextTable t({"Cell", "DES hit %", "Che hit %", "delta pp", "gated"});
  double max_gated_delta = 0.0;
  double max_any_delta = 0.0;
  for (const auto& r : rows) {
    t.cell(r.name)
        .cell(r.des_hit * 100.0, 2)
        .cell(r.analytic_hit * 100.0, 2)
        .cell(r.delta * 100.0, 2)
        .cell(r.gated ? "yes" : "info")
        .end_row();
    max_any_delta = std::max(max_any_delta, std::abs(r.delta));
    if (r.gated) max_gated_delta = std::max(max_gated_delta, std::abs(r.delta));
  }
  t.print(std::cout);

  // --- Part B: 64-cell sweep speedup -----------------------------------
  // One larger realized trace (the planner's target: grids over real
  // workloads, where each DES cell costs hundreds of milliseconds). The
  // geometry never shrinks below the validated 40k requests.
  trace::SyntheticSpec sweep_spec;
  sweep_spec.name = "sweep";
  sweep_spec.files = 250;
  sweep_spec.avg_file_kb = 8.0;
  sweep_spec.requests =
      static_cast<std::uint64_t>(40000.0 * std::max(1.0, scale));
  sweep_spec.avg_request_kb = 6.0;
  sweep_spec.alpha = 0.9;
  sweep_spec.seed = 2024;
  const trace::Trace sweep_tr = trace::generate(sweep_spec);

  const std::vector<int> sweep_nodes = {1, 2, 4, 6, 8, 10, 12, 16};
  const std::vector<Bytes> sweep_caches = {256 * kKiB, 512 * kKiB, 1 * kMiB,
                                           2 * kMiB,   4 * kMiB,   8 * kMiB,
                                           16 * kMiB,  32 * kMiB};

  SweepTiming sweep;
  sweep.cells = static_cast<int>(sweep_nodes.size() * sweep_caches.size());
  std::cout << "\n64-cell sweep (" << sweep_tr.request_count()
            << " requests per DES cell, serial both sides)...\n";

  std::vector<double> des_hits;
  const auto des_start = Clock::now();
  for (const int n : sweep_nodes) {
    for (const Bytes cache : sweep_caches) {
      core::SimConfig cfg;
      cfg.nodes = n;
      cfg.node.cache_bytes = cache;
      des_hits.push_back(core::run_once(sweep_tr, cfg, core::PolicyKind::kL2s).hit_rate);
    }
  }
  sweep.des_seconds = seconds_since(des_start);

  // The analytic side does exactly what `l2sim plan` does: characterize
  // the workload once, then solve every cell from first principles.
  const auto analytic_start = Clock::now();
  const trace::TraceCharacteristics ch = trace::characterize(sweep_tr);
  std::size_t cell_index = 0;
  for (const int n : sweep_nodes) {
    for (const Bytes cache : sweep_caches) {
      analytic::HierarchicalParams hp;
      hp.model.nodes = n;
      hp.model.cache_bytes = cache;
      hp.model.alpha = ch.alpha;
      hp.workload = ch.to_workload_stats();
      hp.conscious = true;
      const analytic::HierarchicalResult hr = analytic::solve_hierarchical(hp);
      sweep.max_abs_hit_delta = std::max(
          sweep.max_abs_hit_delta, std::abs(hr.hit_rate - des_hits[cell_index]));
      ++cell_index;
    }
  }
  sweep.analytic_seconds = seconds_since(analytic_start);
  sweep.speedup = sweep.analytic_seconds > 0.0
                      ? sweep.des_seconds / sweep.analytic_seconds
                      : 0.0;

  std::cout << "  DES:      " << format_double(sweep.des_seconds, 3) << " s\n"
            << "  analytic: " << format_double(sweep.analytic_seconds, 4) << " s\n"
            << "  speedup:  " << format_double(sweep.speedup, 1) << "x\n"
            << "  max |hit delta| across sweep: "
            << format_double(sweep.max_abs_hit_delta * 100.0, 2) << " pp\n";

  // --- acceptance gates -------------------------------------------------
  struct Gate {
    std::string name;
    bool pass;
    std::string detail;
  };
  std::vector<Gate> gates;
  auto add_gate = [&](std::string name, bool pass, std::string detail) {
    gates.push_back({std::move(name), pass, std::move(detail)});
  };

  add_gate("hit_within_5pp", max_gated_delta <= 0.05,
           "max |analytic - DES| hit delta " +
               format_double(max_gated_delta * 100.0, 2) +
               " pp over gated validation cells (need <= 5 pp)");
  add_gate("speedup_100x", sweep.speedup >= 100.0,
           "analytic sweep " + format_double(sweep.speedup, 1) +
               "x faster than DES over " + std::to_string(sweep.cells) +
               " cells (need >= 100x)");

  std::cout << "\ngates:\n";
  bool all_pass = true;
  for (const auto& g : gates) {
    std::cout << "  [" << (g.pass ? "PASS" : "FAIL") << "] " << g.name << ": "
              << g.detail << "\n";
    all_pass = all_pass && g.pass;
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"analytic\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"validation_cells\": " << rows.size() << ",\n"
      << "  \"max_gated_hit_delta_pp\": " << format_double(max_gated_delta * 100.0, 3)
      << ",\n"
      << "  \"max_any_hit_delta_pp\": " << format_double(max_any_delta * 100.0, 3)
      << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"cell\": \"" << r.name << "\", \"gated\": "
        << (r.gated ? "true" : "false")
        << ", \"des_hit\": " << format_double(r.des_hit, 4)
        << ", \"analytic_hit\": " << format_double(r.analytic_hit, 4)
        << ", \"delta_pp\": " << format_double(r.delta * 100.0, 2)
        << ", \"des_throughput_rps\": " << format_double(r.des_throughput, 1)
        << ", \"analytic_throughput_rps\": "
        << format_double(r.analytic_throughput, 1) << "}"
        << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ],\n"
      << "  \"sweep\": {\"cells\": " << sweep.cells
      << ", \"requests_per_cell\": " << sweep_tr.request_count()
      << ", \"des_seconds\": " << format_double(sweep.des_seconds, 4)
      << ", \"analytic_seconds\": " << format_double(sweep.analytic_seconds, 5)
      << ", \"speedup\": " << format_double(sweep.speedup, 1)
      << ", \"max_abs_hit_delta_pp\": "
      << format_double(sweep.max_abs_hit_delta * 100.0, 2) << "},\n"
      << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i)
    out << "    \"" << gates[i].name << "\": " << (gates[i].pass ? "true" : "false")
        << (i + 1 == gates.size() ? "\n" : ",\n");
  out << "  },\n"
      << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_pass) {
    std::cerr << "analytic_bench: acceptance gates FAILED\n";
    return 1;
  }
  std::cout << "analytic_bench: all gates pass\n";
  return 0;
}
