// Temporal-locality calibration study.
//
// The paper's real traces produce miss rates between 9% and 28% on a
// sequential server with 32 MB of memory. IID Zipf sampling reproduces
// each trace's *popularity* profile but not its temporal correlation, so
// its sequential miss rates sit above that band for the larger working
// sets. This harness sweeps the generator's temporal_locality knob and
// reports the sequential 32 MB LRU miss rate, showing where each trace
// enters the paper's band — and, for one trace, how the knob shifts the
// policy comparison (every policy's cache benefits, so the relative
// Figure 7-10 results change little until the knob dominates).
#include "figure_common.hpp"

using namespace l2s;

namespace {

double sequential_miss(const trace::Trace& tr, Bytes cache_bytes) {
  cache::LruCache c(cache_bytes);
  for (const auto& r : tr.requests())
    if (!c.lookup(r.file)) c.insert(r.file, tr.files().size_of(r.file));
  return c.stats().miss_rate();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Sequential 32 MB LRU miss rate (%) vs temporal_locality"
            << " (L2SIM_SCALE=" << scale << ")\n"
            << "Paper band for its real traces: 9-28%\n\n";

  CsvWriter csv(dir, "temporal_locality_study", {"trace", "pt", "miss"});
  TextTable t({"Trace", "pt=0", "pt=0.3", "pt=0.5", "pt=0.65", "pt=0.8"});
  for (const auto& base : trace::paper_trace_specs()) {
    t.cell(base.name);
    for (const double pt : {0.0, 0.3, 0.5, 0.65, 0.8}) {
      auto spec = base;
      spec.temporal_locality = pt;
      spec.requests = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 600000);
      const double miss = sequential_miss(trace::generate(spec), 32 * kMiB);
      t.cell(miss * 100.0, 1);
      csv.add_row({base.name, format_double(pt, 2), format_double(miss, 4)});
    }
    t.end_row();
  }
  t.print(std::cout);

  // Policy comparison at 8 nodes under rising temporal locality (Rutgers,
  // the largest working set): hit rates improve for everyone.
  std::cout << "\nRutgers, 8 nodes: throughput (req/s) and miss (%) vs pt\n";
  TextTable p({"pt", "L2S", "LARD", "trad", "trad miss (%)"});
  for (const double pt : {0.0, 0.5, 0.8}) {
    auto spec = trace::paper_trace_spec("Rutgers");
    spec.temporal_locality = pt;
    spec.requests =
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
    const auto tr = trace::generate(spec);
    core::SimConfig cfg;
    cfg.nodes = 8;
    cfg.node.cache_bytes = 32 * kMiB;
    const double shrink = 20.0 * scale;
    const auto l2s_r = core::run_once(tr, cfg, core::PolicyKind::kL2s, shrink);
    const auto lard_r = core::run_once(tr, cfg, core::PolicyKind::kLard, shrink);
    const auto trad_r = core::run_once(tr, cfg, core::PolicyKind::kTraditional, shrink);
    p.cell(pt, 2)
        .cell(l2s_r.throughput_rps, 0)
        .cell(lard_r.throughput_rps, 0)
        .cell(trad_r.throughput_rps, 0)
        .cell(trad_r.miss_rate * 100.0, 1)
        .end_row();
  }
  p.print(std::cout);
  return 0;
}
