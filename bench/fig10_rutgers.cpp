// Figure 10: throughputs for the Rutgers trace.
//
// Paper shape: the largest working set (717 MB vs 512 MB of combined
// cache) keeps disks in play; L2S leads LARD by ~56% and traditional by
// ~442% at 16 nodes.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  l2s::benchfig::run_figure("Rutgers", "fig10_rutgers", argc, argv);
  return 0;
}
