// Telemetry overhead gates.
//
// The telemetry subsystem rides the engine's lifecycle fan-out, so its cost
// must be invisible when it is off and small when it is on. Four modes run
// interleaved (min-of-N wall clock per mode, so transient machine noise
// cannot charge one mode more than another):
//
//   off      telemetry.enabled = false — the null-object path; the only
//            residual cost is the observer fan-out emit points themselves,
//            which are part of the baseline by construction.
//   counters telemetry on, probe off, span sampling off: registry counter
//            and histogram bumps only. Gate: <= 1% over `off`.
//   span64   telemetry on, probe on, 1-in-64 span sampling — the
//            recommended production configuration. Gate: <= 5% over `off`.
//   span1    every span recorded (full capture). Informational, no gate —
//            this is the debugging configuration.
//
// Gate protocol (same as bench/obs_bench): up to kAttempts full
// interleaves, gating the attempt whose ratios sit lowest relative to the
// limits. A real regression is present in every run and fails every
// attempt; shared-host noise at the +-2-4% level fails one attempt with
// noticeable probability but all of them only rarely.
//
// Emits BENCH_telemetry.json (schema: docs/telemetry.md) and exits
// non-zero when a gate fails so CI treats regressions as errors. Gates
// carry a small absolute floor so a microscopic trace under L2SIM_SCALE
// cannot fail on scheduler jitter.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

struct Mode {
  std::string name;
  std::function<void(core::SimConfig&)> apply;
};

double run_seconds(const trace::Trace& tr, const core::SimConfig& cfg) {
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r.completed == 0) throw_error("telemetry_bench: run completed nothing");
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_telemetry.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  const int reps = 7;

  trace::SyntheticSpec spec;
  spec.name = "telemetry-bench";
  spec.files = 800;
  spec.avg_file_kb = 10.0;
  // Keep the per-mode run long enough (~0.1 s+) that a 1% gate measures
  // overhead, not scheduler jitter — so the request count has a high floor
  // even under a small L2SIM_SCALE.
  spec.requests = static_cast<std::uint64_t>(200000.0 * scale);
  if (spec.requests < 30000) spec.requests = 30000;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 4242;
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig base;
  base.nodes = 8;
  base.node.cache_bytes = 16 * kMiB;

  const std::vector<Mode> modes = {
      {"off", [](core::SimConfig&) {}},
      {"counters",
       [](core::SimConfig& cfg) {
         cfg.telemetry.enabled = true;
         cfg.telemetry.probe = false;
         cfg.telemetry.span_sample_every = 0;
       }},
      {"span64",
       [](core::SimConfig& cfg) {
         cfg.telemetry.enabled = true;
         cfg.telemetry.span_sample_every = 64;
       }},
      {"span1",
       [](core::SimConfig& cfg) {
         cfg.telemetry.enabled = true;
         cfg.telemetry.span_sample_every = 1;
         cfg.telemetry.span_capacity = 1 << 16;
       }},
  };

  const int kAttempts = 3;

  std::cout << "Telemetry overhead bench (" << tr.request_count() << " requests, "
            << base.nodes << " nodes, min of " << reps
            << " interleaved reps x up to " << kAttempts
            << " attempts, L2SIM_SCALE=" << scale << ")\n\n";

  // Untimed warm-up pass (page in the trace, warm the allocator).
  {
    core::SimConfig cfg = base;
    (void)run_seconds(tr, cfg);
  }

  // An attempt's badness is its worst gate ratio relative to that gate's
  // limit; the gated attempt is the least-bad one (see header comment).
  auto attempt_badness = [](const std::vector<double>& b) {
    return std::max(b[1] / b[0] - 1.01, b[2] / b[0] - 1.05);
  };
  std::vector<double> best;
  int attempts_run = 0;
  for (int att = 0; att < kAttempts; ++att) {
    std::vector<double> cur(modes.size(), 1e300);
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < modes.size(); ++i) {
        // Alternate the sweep direction every rep so slow machine drift
        // charges each mode symmetrically.
        const std::size_t m = (rep % 2 == 0) ? i : modes.size() - 1 - i;
        core::SimConfig cfg = base;
        modes[m].apply(cfg);
        const double s = run_seconds(tr, cfg);
        if (s < cur[m]) cur[m] = s;
      }
    }
    ++attempts_run;
    std::cout << "attempt " << attempts_run << ": counters "
              << format_double(cur[1] / cur[0], 4) << "  span64 "
              << format_double(cur[2] / cur[0], 4) << "\n";
    if (best.empty() || attempt_badness(cur) < attempt_badness(best)) best = cur;
    if (attempt_badness(best) <= 0.0) break;  // all gates satisfied
  }
  std::cout << "\n";

  const double off = best[0];
  TextTable t({"Mode", "Best s", "Ratio vs off"});
  for (std::size_t m = 0; m < modes.size(); ++m) {
    t.cell(modes[m].name).cell(best[m], 4).cell(best[m] / off, 4).end_row();
  }
  t.print(std::cout);

  // Absolute slack: below this delta a ratio is noise, not overhead.
  const double floor_s = 0.002;

  struct Gate {
    std::string name;
    double ratio;
    double limit;
    bool pass;
  };
  auto gate = [&](const std::string& name, double secs, double limit) {
    const double ratio = secs / off;
    const bool pass = ratio <= limit || (secs - off) <= floor_s;
    return Gate{name, ratio, limit, pass};
  };
  std::vector<Gate> gates = {
      gate("counters_overhead_le_1pct", best[1], 1.01),
      gate("span64_overhead_le_5pct", best[2], 1.05),
  };

  std::cout << "\ngates:\n";
  bool all_pass = true;
  for (const auto& g : gates) {
    std::cout << "  [" << (g.pass ? "PASS" : "FAIL") << "] " << g.name << ": ratio "
              << format_double(g.ratio, 4) << " (limit " << format_double(g.limit, 2)
              << ")\n";
    all_pass = all_pass && g.pass;
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"telemetry\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"nodes\": " << base.nodes << ",\n"
      << "  \"request_count\": " << tr.request_count() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"attempts\": " << attempts_run << ",\n"
      << "  \"modes\": [\n";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    out << "    {\"mode\": \"" << modes[m].name << "\", \"best_seconds\": "
        << format_double(best[m], 6) << ", \"ratio_vs_off\": "
        << format_double(best[m] / off, 6) << "}"
        << (m + 1 == modes.size() ? "\n" : ",\n");
  }
  out << "  ],\n"
      << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i)
    out << "    \"" << gates[i].name << "\": " << (gates[i].pass ? "true" : "false")
        << (i + 1 == gates.size() ? "\n" : ",\n");
  out << "  },\n"
      << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_pass) {
    std::cerr << "telemetry_bench: overhead gates FAILED\n";
    return 1;
  }
  std::cout << "telemetry_bench: all gates pass\n";
  return 0;
}
