// Table 2: main characteristics of the WWW server traces.
//
// The real logs are synthesized from calibrated specs (see DESIGN.md);
// this harness generates each trace and measures its characteristics the
// same way the paper reports them, side by side with the paper's values.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/env.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/synthetic.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  std::cout << "Table 2: Main characteristics of the WWW server traces\n"
            << "(measured on synthetic traces at L2SIM_SCALE=" << scale << ")\n\n";

  TextTable t({"Logs", "Num files", "Avg file size (KB)", "Num requests",
               "Avg req size (KB)", "alpha", "Working set (MB)"});
  CsvWriter csv(csv_dir_from_args(argc, argv), "table2_traces",
                {"trace", "files", "avg_file_kb", "requests", "avg_req_kb", "alpha",
                 "working_set_mb"});

  for (auto spec : trace::paper_trace_specs()) {
    spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
    const auto tr = trace::generate(spec);
    const auto ch = trace::characterize(tr);
    t.cell(spec.name)
        .cell(static_cast<long long>(ch.files))
        .cell(ch.avg_file_kb, 1)
        .cell(static_cast<long long>(ch.requests))
        .cell(ch.avg_request_kb, 1)
        .cell(ch.alpha, 2)
        .cell(static_cast<double>(ch.working_set_bytes) / static_cast<double>(kMiB), 0)
        .end_row();
    csv.add_row({spec.name, std::to_string(ch.files), format_double(ch.avg_file_kb, 2),
                 std::to_string(ch.requests), format_double(ch.avg_request_kb, 2),
                 format_double(ch.alpha, 3),
                 format_double(static_cast<double>(ch.working_set_bytes) / 1048576.0, 1)});
  }
  t.print(std::cout);

  std::cout << "\nPaper values for reference:\n";
  TextTable p({"Logs", "Num files", "Avg file size", "Num requests", "Avg req size", "alpha"});
  p.cell("Calgary").cell(8397LL).cell("42.9 KB").cell(567895LL).cell("19.7 KB").cell(1.08, 2).end_row();
  p.cell("Clarknet").cell(35885LL).cell("11.6 KB").cell(3053525LL).cell("11.9 KB").cell(0.78, 2).end_row();
  p.cell("NASA").cell(5500LL).cell("53.7 KB").cell(3147719LL).cell("47.0 KB").cell(0.91, 2).end_row();
  p.cell("Rutgers").cell(24098LL).cell("30.5 KB").cell(535021LL).cell("26.2 KB").cell(0.79, 2).end_row();
  p.print(std::cout);
  return 0;
}
