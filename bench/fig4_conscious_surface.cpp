// Figure 4: throughput of a locality-conscious server over the same plane.
//
// Paper shape: the area of significant throughput is much larger than the
// oblivious server's — files smaller than 96 KB and hit rates above ~50% —
// and the peak is sustained over a much larger region.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/surface.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const model::ClusterModel m{model::ModelParams{}};
  const auto hit_grid = model::default_hit_grid();
  const auto size_grid = model::default_size_grid();
  const auto surface = model::conscious_surface(m, hit_grid, size_grid);

  std::cout << "Figure 4: Throughput of a locality-conscious server (reqs/sec)\n\n";
  TextTable t({"Hlo\\S(KB)", "8", "16", "32", "64", "96", "128"});
  const std::vector<std::size_t> cols = {1, 3, 7, 15, 23, 31};
  for (std::size_t i = 0; i < hit_grid.size(); ++i) {
    t.cell(hit_grid[i], 2);
    for (const std::size_t c : cols) t.cell(surface.at(i, c), 0);
    t.end_row();
  }
  t.print(std::cout);
  std::cout << "\npeak throughput: " << format_double(surface.max_value(), 0)
            << " reqs/sec\n";

  CsvWriter csv(csv_dir_from_args(argc, argv), "fig4_conscious",
                {"hit_rate", "size_kb", "rps"});
  for (std::size_t i = 0; i < hit_grid.size(); ++i)
    for (std::size_t j = 0; j < size_grid.size(); ++j)
      csv.add_row({format_double(hit_grid[i], 2), format_double(size_grid[j], 0),
                   format_double(surface.at(i, j), 1)});
  return 0;
}
