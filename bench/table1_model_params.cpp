// Table 1: model parameters and their default values, plus the derived
// station rates at a few representative file sizes as a sanity check.
#include <iostream>

#include "l2sim/common/table.hpp"
#include "l2sim/model/parameters.hpp"

int main() {
  const l2s::model::ModelParams params;  // paper defaults
  std::cout << "Table 1: Model parameters and their default values\n\n";
  std::cout << params.describe() << '\n';

  std::cout << "Derived service rates (ops/s) at representative sizes:\n";
  l2s::TextTable t({"S (KB)", "mu_r", "mu_m", "mu_d", "mu_o"});
  for (const double s : {1.0, 8.0, 32.0, 64.0, 128.0}) {
    t.cell(s, 0)
        .cell(params.router_rate(s), 0)
        .cell(params.reply_rate(s), 0)
        .cell(params.disk_rate(s), 1)
        .cell(params.ni_reply_rate(s), 0)
        .end_row();
  }
  t.print(std::cout);
  return 0;
}
