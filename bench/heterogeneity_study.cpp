// Heterogeneous-cluster study. The paper assumes "all cluster nodes are
// equally powerful"; real clusters accrete generations of hardware. Here
// half the nodes run at half speed and we compare the policies:
// load-feedback distribution (L2S, trad's fewest-connections) adapts to
// the slow nodes automatically, while blind round-robin DNS overloads
// them.
#include "figure_common.hpp"

#include "l2sim/policy/round_robin.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Heterogeneous cluster: half the nodes at half CPU speed "
            << "(synthetic Calgary, 16 nodes, L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);
  const double shrink = 20.0 * scale;

  CsvWriter csv(dir, "heterogeneity_study",
                {"cluster", "policy", "rps", "load_cov", "idle_pct"});
  TextTable t({"Cluster", "Policy", "Throughput", "Load CoV", "Idle (%)"});
  for (const bool heterogeneous : {false, true}) {
    core::SimConfig cfg;
    cfg.nodes = 16;
    cfg.node.cache_bytes = 32 * kMiB;
    if (heterogeneous) {
      cfg.node_speed_factors.assign(16, 1.0);
      for (int n = 8; n < 16; ++n) cfg.node_speed_factors[static_cast<std::size_t>(n)] = 0.5;
    }
    const std::string label = heterogeneous ? "8 fast + 8 half-speed" : "homogeneous";

    auto add = [&](const std::string& name, const core::SimResult& r) {
      t.cell(label).cell(name).cell(r.throughput_rps, 0).cell(r.load_cov, 3)
          .cell(r.cpu_idle_fraction * 100.0, 1).end_row();
      csv.add_row({label, name, format_double(r.throughput_rps, 1),
                   format_double(r.load_cov, 4),
                   format_double(r.cpu_idle_fraction, 4)});
    };
    add("L2S", core::run_once(tr, cfg, core::PolicyKind::kL2s, shrink));
    add("trad", core::run_once(tr, cfg, core::PolicyKind::kTraditional, shrink));
    {
      core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::RoundRobinPolicy>());
      add("rr-dns", sim.run());
    }
  }
  t.print(std::cout);
  std::cout << "\nExpectation: the heterogeneous cluster has 75% of the homogeneous\n"
               "CPU capacity, and CPU-bound L2S lands near that fraction — its\n"
               "load feedback shifts work to the fast nodes without configuration.\n"
               "The locality-oblivious baselines are disk-bound on this workload,\n"
               "so slower CPUs barely move them (their idle time drops instead).\n";
  return 0;
}
