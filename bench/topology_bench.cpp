// Topology-substrate bench — the flow-mode and pairwise-lookahead gates.
//
// Two experiments on 256-node clusters:
//
//   flow-mode event cut   a forwarding-heavy cell (32 KB responses over a
//                         16-rack oversubscribed fabric segmented at 512 B)
//                         run twice: message-mode store-and-forward vs
//                         flow-level max-min transfers. Flow mode replaces
//                         the per-segment event cascade with one fluid
//                         flow per transfer, and must cut total scheduled
//                         events by >= 5x without losing determinism
//                         (serial and sharded digests stay identical per
//                         mode).
//
//   pairwise lookahead    the shard-confined cluster workload on 16
//                         rack-aligned shards, threaded, uniform global-L
//                         engine vs the per-pair matrix engine. The
//                         matrix's min-plus closure widens cross-rack
//                         windows, so the pairwise run must need strictly
//                         fewer synchronization windows (deterministic
//                         gate) and — on machines with >= 8 hardware
//                         threads — must not spend a larger share of
//                         worker wall time stalled at window barriers.
//
// Emits BENCH_topology.json; exits non-zero if any applicable gate fails.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/l2sim.hpp"
#include "l2sim/obs/link_introspection.hpp"

using namespace l2s;

namespace {

struct Gate {
  std::string name;
  bool applicable;
  bool pass;
  std::string detail;
};

struct ModeRow {
  std::string mode;
  std::uint64_t events = 0;
  std::uint64_t traversals = 0;
  std::string digest;
  std::string sharded_digest;
  double throughput_rps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_topology.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  std::vector<Gate> gates;
  auto add_gate = [&](std::string name, bool applicable, bool pass, std::string detail) {
    gates.push_back({std::move(name), applicable, pass, std::move(detail)});
  };

  // --- experiment 1: flow-level transfers vs per-segment messages ---------
  //
  // Forwarding-heavy: LARD on a cold-ish 256-node cluster forwards most
  // requests, and 32 KB responses ride the backend-forwarding path as bulk
  // transfers. Message mode segments each one at 512 B per
  // store-and-forward hop; flow mode schedules one rate-shared flow.
  trace::SyntheticSpec spec;
  spec.name = "topo-forwarding";
  spec.files = 400;
  spec.avg_file_kb = 32.0;
  // 256 nodes hold a wide admission window; the trace must outlast the
  // window's worth of first requests or the persistent follow-ups (the
  // bulk-transfer remote fetches being measured) never materialize. 24k
  // requests yield ~14k remote fetches; L2SIM_SCALE may grow but never
  // shrink the trace below that validated geometry.
  spec.requests = static_cast<std::uint64_t>(24000.0 * std::max(1.0, scale));
  spec.avg_request_kb = 32.0;
  spec.alpha = 0.9;
  spec.seed = 77;
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig base;
  base.nodes = 256;
  base.node.cache_bytes = 4 * kMiB;
  base.persistence.mean_requests_per_connection = 4.0;
  base.persistence.mode = core::PersistentMode::kBackendForwarding;
  base.topology.kind = net::TopologyKind::kRackAware;
  base.topology.racks = 16;
  base.topology.segment_bytes = 512;

  std::cout << "Topology bench (" << base.nodes << " nodes, " << base.topology.racks
            << " racks, " << tr.request_count() << " requests, L2SIM_SCALE=" << scale
            << ")\n\n";

  auto run_mode = [&](bool flow_level) {
    core::SimConfig cfg = base;
    cfg.topology.flow_level = flow_level;
    ModeRow row;
    row.mode = flow_level ? "flow" : "message";
    {
      core::ClusterSimulation sim(cfg, tr, core::make_policy(core::PolicyKind::kLard));
      const core::SimResult r = sim.run();
      row.events = sim.scheduler().events_processed();
      row.traversals = sim.topology().traversals();
      row.digest = core::result_digest_hex(r);
      row.throughput_rps = r.throughput_rps;
      if (flow_level) {
        // The per-link picture of the flow-mode run: utilization, carried
        // bytes and the rack-pair hop/latency matrix the pairwise shard
        // lookahead is derived from.
        std::cout << "flow-mode link report:\n";
        obs::write_topology_report(std::cout, sim.topology(),
                                   sim.scheduler().now());
        std::cout << "\n";
      }
    }
    {
      core::SimConfig sharded = cfg;
      sharded.engine.shards = 16;
      row.sharded_digest =
          core::result_digest_hex(core::run_once(tr, sharded, core::PolicyKind::kLard));
    }
    return row;
  };

  const ModeRow message = run_mode(false);
  const ModeRow flow = run_mode(true);
  const double event_cut = static_cast<double>(message.events) /
                           static_cast<double>(std::max<std::uint64_t>(1, flow.events));

  TextTable modes({"Mode", "Events", "Traversals", "Throughput rps", "Digest"});
  for (const ModeRow* row : {&message, &flow}) {
    modes.cell(row->mode)
        .cell(static_cast<long long>(row->events))
        .cell(static_cast<long long>(row->traversals))
        .cell(row->throughput_rps, 0)
        .cell(row->digest)
        .end_row();
  }
  modes.print(std::cout);
  std::cout << "\nflow-mode event cut: " << format_double(event_cut, 2) << "x\n";

  add_gate("flow_mode_event_cut_5x", true, event_cut >= 5.0,
           "message-mode " + std::to_string(message.events) + " events vs flow-mode " +
               std::to_string(flow.events) + " = " + format_double(event_cut, 2) +
               "x (need >= 5x)");
  add_gate("message_mode_digest_replays_sharded", true,
           message.digest == message.sharded_digest,
           message.digest == message.sharded_digest
               ? "serial == 16-shard engine"
               : "serial " + message.digest + " != sharded " + message.sharded_digest);
  add_gate("flow_mode_digest_replays_sharded", true, flow.digest == flow.sharded_digest,
           flow.digest == flow.sharded_digest
               ? "serial == 16-shard engine"
               : "serial " + flow.digest + " != sharded " + flow.sharded_digest);

  // --- experiment 2: pairwise lookahead on rack-aligned shards ------------
  des::WorkloadParams wp;
  wp.nodes = 256;
  wp.requests_per_node = std::max(2, static_cast<int>(2.0 * scale));
  wp.hops = 48;
  wp.latency = 10'000;
  wp.cross_rack_latency = 40'000;
  wp.racks = 16;
  const int wl_shards = 16;
  const unsigned threads =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));

  const des::WorkloadResult serial = des::run_cluster_workload_serial(wp);
  const des::ShardMap map = des::workload_shard_map(wp, wl_shards);

  struct EngineRow {
    std::string engine;
    des::WorkloadResult r;
    double stall_share = 0.0;
  };
  auto run_engine = [&](bool pairwise) {
    des::ShardedScheduler engine(map.shards(), wp.latency,
                                 des::ShardedScheduler::Mode::kThreaded);
    if (pairwise)
      engine.set_pairwise_lookahead(des::workload_lookahead_matrix(wp, map));
    engine.enable_introspection();
    EngineRow row;
    row.engine = pairwise ? "pairwise" : "uniform";
    row.r = des::run_cluster_workload_on(wp, engine, threads);
    const auto* intro = engine.introspection();
    double barrier = 0.0;
    double run = 0.0;
    if (intro != nullptr) {
      for (const double s : intro->worker_barrier_seconds) barrier += s;
      for (const double s : intro->worker_run_seconds) run += s;
    }
    row.stall_share = barrier + run > 0.0 ? barrier / (barrier + run) : 0.0;
    return row;
  };

  const EngineRow uniform = run_engine(false);
  const EngineRow pairwise = run_engine(true);

  std::cout << "\nshard-confined workload (" << wp.nodes << " nodes, " << wp.racks
            << " racks, " << map.shards() << " shards, " << threads << " threads)\n";
  TextTable wl({"Engine", "Windows", "Events", "Stall share %", "Digest ok"});
  for (const EngineRow* row : {&uniform, &pairwise}) {
    wl.cell(row->engine)
        .cell(static_cast<long long>(row->r.windows))
        .cell(static_cast<long long>(row->r.events))
        .cell(100.0 * row->stall_share, 1)
        .cell(row->r.digest == serial.digest ? "yes" : "NO")
        .end_row();
  }
  wl.print(std::cout);

  add_gate("workload_digests_match_serial", true,
           uniform.r.digest == serial.digest && pairwise.r.digest == serial.digest,
           "uniform and pairwise threaded folds vs the serial reference");
  add_gate("pairwise_fewer_windows", true, pairwise.r.windows < uniform.r.windows,
           "uniform " + std::to_string(uniform.r.windows) + " windows vs pairwise " +
               std::to_string(pairwise.r.windows) + " (need strictly fewer)");
  const bool stall_applicable = std::thread::hardware_concurrency() >= 8;
  add_gate("pairwise_no_extra_barrier_stall", stall_applicable,
           pairwise.stall_share <= uniform.stall_share,
           stall_applicable
               ? "uniform stall share " + format_double(100.0 * uniform.stall_share, 1) +
                     "% vs pairwise " + format_double(100.0 * pairwise.stall_share, 1) +
                     "%"
               : "skipped: < 8 hardware threads");

  // --- report --------------------------------------------------------------
  std::cout << "\ngates:\n";
  bool all_pass = true;
  for (const auto& g : gates) {
    const char* verdict = !g.applicable ? "SKIP" : g.pass ? "PASS" : "FAIL";
    std::cout << "  [" << verdict << "] " << g.name << ": " << g.detail << "\n";
    if (g.applicable) all_pass = all_pass && g.pass;
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"topology\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"nodes\": " << base.nodes << ",\n"
      << "  \"racks\": " << base.topology.racks << ",\n"
      << "  \"segment_bytes\": " << base.topology.segment_bytes << ",\n"
      << "  \"request_count\": " << tr.request_count() << ",\n"
      << "  \"flow\": {\n"
      << "    \"message_events\": " << message.events << ",\n"
      << "    \"flow_events\": " << flow.events << ",\n"
      << "    \"message_traversals\": " << message.traversals << ",\n"
      << "    \"flow_traversals\": " << flow.traversals << ",\n"
      << "    \"event_cut\": " << format_double(event_cut, 3) << ",\n"
      << "    \"message_digest\": \"" << message.digest << "\",\n"
      << "    \"flow_digest\": \"" << flow.digest << "\"\n"
      << "  },\n"
      << "  \"lookahead\": {\n"
      << "    \"shards\": " << map.shards() << ",\n"
      << "    \"threads\": " << threads << ",\n"
      << "    \"uniform_windows\": " << uniform.r.windows << ",\n"
      << "    \"pairwise_windows\": " << pairwise.r.windows << ",\n"
      << "    \"uniform_stall_share\": " << format_double(uniform.stall_share, 4) << ",\n"
      << "    \"pairwise_stall_share\": " << format_double(pairwise.stall_share, 4)
      << "\n"
      << "  },\n"
      << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i)
    out << "    \"" << gates[i].name << "\": "
        << (!gates[i].applicable ? "\"skipped\"" : gates[i].pass ? "true" : "false")
        << (i + 1 == gates.size() ? "\n" : ",\n");
  out << "  },\n"
      << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  return all_pass ? 0 : 1;
}
