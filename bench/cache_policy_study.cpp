// Cache-replacement ablation: whole-file LRU (the paper's policy) vs GDSF
// (GreedyDual-Size with Frequency), per trace and per server policy.
//
// Expectation from the web-caching literature: GDSF raises the *request*
// hit rate when file sizes vary widely and capacity is tight (it keeps
// many small hot files instead of few big ones); with content-aware
// distribution the combined cache is already large relative to the working
// set, so the gap narrows.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Cache policy ablation: LRU vs GDSF (8 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  CsvWriter csv(dir, "cache_policy_study",
                {"trace", "policy", "cache", "rps", "missrate"});
  TextTable t({"Trace", "Server", "LRU req/s", "LRU miss%", "GDSF req/s", "GDSF miss%"});
  for (const auto& base : trace::paper_trace_specs()) {
    auto spec = base;
    spec.requests = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 400000);
    const trace::Trace tr = trace::generate(spec);
    const double shrink = 20.0 * scale;
    for (const auto kind : {core::PolicyKind::kL2s, core::PolicyKind::kTraditional}) {
      core::SimResult results[2];
      for (int which = 0; which < 2; ++which) {
        core::SimConfig cfg;
        cfg.nodes = 8;
        cfg.node.cache_bytes = 32 * kMiB;
        cfg.node.cache_policy =
            which == 0 ? cluster::CachePolicy::kLru : cluster::CachePolicy::kGdsf;
        results[which] = core::run_once(tr, cfg, kind, shrink);
        csv.add_row({spec.name, core::policy_kind_name(kind),
                     which == 0 ? "lru" : "gdsf",
                     format_double(results[which].throughput_rps, 1),
                     format_double(results[which].miss_rate, 4)});
      }
      t.cell(spec.name)
          .cell(core::policy_kind_name(kind))
          .cell(results[0].throughput_rps, 0)
          .cell(results[0].miss_rate * 100.0, 1)
          .cell(results[1].throughput_rps, 0)
          .cell(results[1].miss_rate * 100.0, 1)
          .end_row();
    }
  }
  t.print(std::cout);
  return 0;
}
