// Figure 8: throughputs for the ClarkNet trace.
//
// Paper shape at 16 nodes: L2S about 141% over LARD (hard-capped by the
// front-end near 5000 req/s) and 366% over traditional; the model line
// reaches ~13k req/s.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  l2s::benchfig::run_figure("Clarknet", "fig8_clarknet", argc, argv);
  return 0;
}
