// Section 5.2 forwarding study.
//
// Paper findings: LARD forwards 100% of requests (everything passes the
// front-end); L2S forwards at least 15% fewer for clusters up to 4 nodes,
// and between ~8% (ClarkNet, Rutgers) and ~25% (NASA, Calgary) fewer at
// 16 nodes. The traditional server never forwards.
#include "figure_common.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "Forwarded requests (%) by policy and cluster size"
            << " (L2SIM_SCALE=" << scale << ")\n\n";

  TextTable summary({"Trace", "L2S fwd @4 (%)", "L2S fwd @16 (%)", "LARD fwd (%)"});
  for (const auto& base : trace::paper_trace_specs()) {
    auto spec = base;
    spec.requests = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale), 600000);
    auto espec = benchfig::figure_spec(spec.name, scale);
    espec.trace = core::TraceSpec::synth(spec);  // the capped trace above
    const auto fig = benchfig::run_figure_series(espec, benchfig::figure_node_counts());
    core::print_metric_figure(std::cout, fig, "forwarded");
    std::cout << '\n';

    double at4 = 0.0;
    double at16 = 0.0;
    for (std::size_t i = 0; i < fig.node_counts.size(); ++i) {
      if (fig.node_counts[i] == 4) at4 = fig.l2s[i].forwarded_fraction * 100.0;
      if (fig.node_counts[i] == 16) at16 = fig.l2s[i].forwarded_fraction * 100.0;
    }
    summary.cell(spec.name).cell(at4, 1).cell(at16, 1).cell(100.0, 1).end_row();

    CsvWriter csv(dir, "forwarding_" + spec.name, {"nodes", "l2s", "lard", "trad"});
    for (std::size_t i = 0; i < fig.node_counts.size(); ++i)
      csv.add_row({std::to_string(fig.node_counts[i]),
                   format_double(fig.l2s[i].forwarded_fraction * 100.0, 2),
                   format_double(fig.lard[i].forwarded_fraction * 100.0, 2),
                   format_double(fig.traditional[i].forwarded_fraction * 100.0, 2)});
  }
  std::cout << "Summary (LARD always forwards 100%):\n";
  summary.print(std::cout);
  return 0;
}
