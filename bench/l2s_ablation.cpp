// Ablation of the L2S design choices DESIGN.md calls out:
//
//   * thresholds T/t (overload / underload),
//   * local bias (serve-locally preference within the server set),
//   * herd damping (two-choice selection under stale views),
//   * replication on/off (pure partitioning vs the full algorithm).
//
// Run on the synthetic Calgary trace at 16 nodes, where the trade-offs
// between locality, balance and forwarding are all visible.
#include "figure_common.hpp"

using namespace l2s;

namespace {

core::SimResult run_with(const trace::Trace& tr, const core::SimConfig& cfg,
                         const policy::L2sParams& p) {
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>(p));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench_scale();
  const std::string dir = csv_dir_from_args(argc, argv);
  std::cout << "L2S design ablation (synthetic Calgary, 16 nodes, "
            << "L2SIM_SCALE=" << scale << ")\n\n";

  auto spec = trace::paper_trace_spec("Calgary");
  spec.requests = static_cast<std::uint64_t>(static_cast<double>(spec.requests) * scale);
  const trace::Trace tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = 16;
  cfg.node.cache_bytes = 32 * kMiB;

  policy::L2sParams base;
  base.set_shrink_seconds = 20.0 * scale;

  struct Variant {
    std::string name;
    policy::L2sParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (T=20,t=10)", base});
  {
    auto p = base;
    p.overload_threshold = 10;
    p.underload_threshold = 5;
    variants.push_back({"tight thresholds (T=10,t=5)", p});
  }
  {
    auto p = base;
    p.overload_threshold = 40;
    p.underload_threshold = 20;
    variants.push_back({"loose thresholds (T=40,t=20)", p});
  }
  {
    auto p = base;
    p.local_bias = 0;
    variants.push_back({"no local bias", p});
  }
  {
    auto p = base;
    p.local_bias = 1000000;
    variants.push_back({"always serve locally if cached", p});
  }
  {
    auto p = base;
    p.herd_damping = true;
    variants.push_back({"herd damping on", p});
  }
  {
    // Effectively no replication: growth requires loads beyond any the
    // closed-loop injector can produce, so server sets stay singletons.
    auto p = base;
    p.overload_threshold = 1000000;
    p.underload_threshold = 999999;
    variants.push_back({"no replication (pure partition)", p});
  }

  TextTable t({"Variant", "Throughput", "Miss (%)", "Forwarded (%)", "Idle (%)"});
  CsvWriter csv(dir, "l2s_ablation", {"variant", "rps", "miss", "forwarded", "idle"});
  for (const auto& v : variants) {
    const auto r = run_with(tr, cfg, v.params);
    t.cell(v.name)
        .cell(r.throughput_rps, 0)
        .cell(r.miss_rate * 100.0, 2)
        .cell(r.forwarded_fraction * 100.0, 1)
        .cell(r.cpu_idle_fraction * 100.0, 1)
        .end_row();
    csv.add_row({v.name, format_double(r.throughput_rps, 1), format_double(r.miss_rate, 4),
                 format_double(r.forwarded_fraction, 4),
                 format_double(r.cpu_idle_fraction, 4)});
  }
  t.print(std::cout);
  return 0;
}
