// Figure 5: throughput increase due to locality — Figure 4 divided by
// Figure 3, element-wise.
//
// Paper shape: up to a factor of ~7 on 16 nodes; the improvement grows as
// the hit rate rises and the file size falls, collapses after Hlo = 0.8
// (the oblivious server starts performing well), and dips slightly below 1
// for Hlo >= 0.95 with small files because of the forwarding overhead.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/surface.hpp"

using namespace l2s;

int main(int argc, char** argv) {
  const model::ClusterModel m{model::ModelParams{}};
  const auto hit_grid = model::default_hit_grid();
  const auto size_grid = model::default_size_grid();
  const auto ratio = model::ratio_surface(model::conscious_surface(m, hit_grid, size_grid),
                                          model::oblivious_surface(m, hit_grid, size_grid));

  std::cout << "Figure 5: Throughput increase due to locality (conscious / oblivious)\n\n";
  TextTable t({"Hlo\\S(KB)", "8", "16", "32", "64", "96", "128"});
  const std::vector<std::size_t> cols = {1, 3, 7, 15, 23, 31};
  for (std::size_t i = 0; i < hit_grid.size(); ++i) {
    t.cell(hit_grid[i], 2);
    for (const std::size_t c : cols) t.cell(ratio.at(i, c), 2);
    t.end_row();
  }
  t.print(std::cout);
  std::cout << "\nmax increase: " << format_double(ratio.max_value(), 2)
            << "x   min increase: " << format_double(ratio.min_value(), 2) << "x\n";

  CsvWriter csv(csv_dir_from_args(argc, argv), "fig5_increase",
                {"hit_rate", "size_kb", "ratio"});
  for (std::size_t i = 0; i < hit_grid.size(); ++i)
    for (std::size_t j = 0; j < size_grid.size(); ++j)
      csv.add_row({format_double(hit_grid[i], 2), format_double(size_grid[j], 0),
                   format_double(ratio.at(i, j), 3)});
  return 0;
}
