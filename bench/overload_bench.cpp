// Overload-defense bench — the metastable-collapse gate.
//
// One synthetic hot-object workload, three runs of the same cluster:
//
//   nominal     steady 1600 req/s on 4 warm nodes, no faults, no defenses;
//   undefended  a 3x flash crowd lands as node 1 crashes over lossy links,
//               deep admission buffers + a 0.1 s attempt timeout + 2
//               retries — the retry-storm recipe — with every defense off;
//   defended    the same chaos with the l2s::overload stack on: AIMD
//               admission window, retry token bucket, brownout.
//
// Plus two ablation rows (budget only, shedder only) to show neither
// defense carries the gate alone. Emits BENCH_overload.json and enforces:
//
//   (a) nominal is healthy (>= 99% served);
//   (b) the undefended baseline demonstrably collapses (<= 40% served);
//   (c) the defended run keeps goodput >= 70% of nominal;
//   (d) the shedder actually engages (defended sheds, undefended cannot);
//   (e) chaos replays bit-identically, serial and under run_parallel.
//
// Exits non-zero if any gate fails, so CI can run it as a regression test.
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "l2sim/core/parallel.hpp"
#include "l2sim/l2sim.hpp"

using namespace l2s;

namespace {

struct Row {
  std::string scenario;
  core::SimResult r;
  double served = 0.0;
  std::string digest;
};

void json_row(std::ofstream& out, const Row& row, bool last) {
  const auto& r = row.r;
  out << "    {\"scenario\": \"" << row.scenario << "\",\n"
      << "     \"completed\": " << r.completed << ", \"failed\": " << r.failed
      << ", \"failed_deadline\": " << r.failed_deadline
      << ", \"failed_retries_exhausted\": " << r.failed_retries_exhausted
      << ", \"failed_rejected\": " << r.failed_rejected
      << ", \"failed_shed\": " << r.failed_shed << ",\n"
      << "     \"served_fraction\": " << format_double(row.served, 6)
      << ", \"throughput_rps\": " << format_double(r.throughput_rps, 1)
      << ", \"elapsed_seconds\": " << format_double(r.elapsed_seconds, 6) << ",\n"
      << "     \"retry_attempts\": " << r.retry_attempts
      << ", \"retry_amplification\": " << format_double(r.retry_amplification, 4)
      << ", \"hedge_attempts\": " << r.hedge_attempts
      << ", \"brownout_transitions\": " << r.brownout_transitions << ",\n"
      << "     \"p95_response_ms\": " << format_double(r.p95_response_ms, 3)
      << ", \"digest\": \"" << row.digest << "\""
      << ", \"goodput_rps\": [";
  for (std::size_t i = 0; i < r.goodput_rps.size(); ++i) {
    if (i > 0) out << ", ";
    out << format_double(r.goodput_rps[i], 1);
  }
  out << "]}";
  if (!last) out << ",";
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_overload.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  const double scale = bench_scale();
  const int nodes = 4;

  // The chaos-harness workload (tests/test_chaos.cpp uses the same one):
  // a small hot catalogue so the warmed cluster is CPU/NIC-bound and the
  // flash, not cold misses, is what overloads it. The metastable collapse
  // is a threshold phenomenon — a shorter trace shortens the flash and the
  // baseline only half-collapses — so L2SIM_SCALE may grow the trace but
  // never shrink it below the validated 9000-request geometry.
  trace::SyntheticSpec spec;
  spec.name = "chaos";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  spec.requests = static_cast<std::uint64_t>(9000.0 * std::max(1.0, scale));
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 1337;
  const trace::Trace tr = trace::generate(spec);
  const auto total = static_cast<double>(tr.request_count());

  std::cout << "Overload-defense bench (" << nodes << " nodes, "
            << tr.request_count() << " requests, L2SIM_SCALE=" << scale << ")\n\n";

  core::SimConfig base;
  base.nodes = nodes;
  base.node.cache_bytes = 2 * kMiB;
  base.arrival.open_loop_rate = 1600.0;
  base.admission.buffer_slots_per_node = 256;
  base.retry.max_retries = 2;
  base.retry.attempt_timeout_seconds = 0.1;
  base.retry.deadline_seconds = 0.5;
  base.detection.heartbeats = true;
  base.detection.period_seconds = 0.02;
  base.detection.readmit_after_fresh = 3;
  base.goodput_interval_seconds = 0.1;

  auto chaos = [](core::SimConfig& cfg) {
    cfg.arrival.shape = core::ArrivalShape::kFlashCrowd;
    cfg.arrival.flash_at_seconds = 0.15;
    cfg.arrival.flash_factor = 3.0;
    cfg.arrival.flash_ramp_seconds = 0.05;
    cfg.fault_plan.crashes.push_back({1, 0.15});
    cfg.fault_plan.message_faults.push_back(
        {.loss_prob = 0.01, .extra_delay_seconds = 0.0002, .duplicate_prob = 0.02});
  };
  auto budget = [](core::SimConfig& cfg) {
    cfg.overload.retry_budget_ratio = 0.1;
    cfg.overload.retry_budget_burst = 16.0;
  };
  auto shedder = [](core::SimConfig& cfg) {
    cfg.overload.shedder = core::ShedderKind::kAimd;
    cfg.overload.aimd_increase = 16.0;
  };
  auto brownout = [](core::SimConfig& cfg) {
    cfg.overload.brownout = true;
    cfg.overload.delay_window_seconds = 0.05;
    cfg.overload.brownout_forward_delay_seconds = 0.08;
    cfg.overload.brownout_service_delay_seconds = 0.2;
  };

  struct Scenario {
    std::string name;
    std::function<void(core::SimConfig&)> apply;
  };
  const std::vector<Scenario> scenarios = {
      {"nominal", [&](core::SimConfig&) {}},
      {"flash_crash_undefended", [&](core::SimConfig& cfg) { chaos(cfg); }},
      {"flash_crash_defended",
       [&](core::SimConfig& cfg) {
         chaos(cfg);
         shedder(cfg);
         budget(cfg);
         brownout(cfg);
       }},
      {"flash_crash_budget_only",
       [&](core::SimConfig& cfg) {
         chaos(cfg);
         budget(cfg);
       }},
      {"flash_crash_shed_only",
       [&](core::SimConfig& cfg) {
         chaos(cfg);
         shedder(cfg);
       }},
  };

  auto make_cfg = [&](const Scenario& s) {
    core::SimConfig cfg = base;
    s.apply(cfg);
    return cfg;
  };
  auto run_one = [&](const Scenario& s) {
    Row row{s.name, core::run_once(tr, make_cfg(s), core::PolicyKind::kL2s), 0.0, ""};
    row.served = static_cast<double>(row.r.completed) / total;
    row.digest = core::result_digest_hex(row.r);
    return row;
  };

  std::vector<Row> rows;
  TextTable t({"Scenario", "Served %", "Shed", "RetriesExh", "Rejected", "RetryAmp",
               "p95 ms", "Goodput rps"});
  for (const auto& s : scenarios) {
    rows.push_back(run_one(s));
    const auto& row = rows.back();
    t.cell(row.scenario)
        .cell(row.served * 100.0, 2)
        .cell(static_cast<long long>(row.r.failed_shed))
        .cell(static_cast<long long>(row.r.failed_retries_exhausted))
        .cell(static_cast<long long>(row.r.failed_rejected))
        .cell(row.r.retry_amplification, 3)
        .cell(row.r.p95_response_ms, 1)
        .cell(row.r.throughput_rps, 0)
        .end_row();
  }
  t.print(std::cout);

  auto find = [&](const std::string& name) -> const Row& {
    for (const auto& row : rows)
      if (row.scenario == name) return row;
    throw_error("overload_bench: missing row " + name);
  };
  const Row& nominal = find("nominal");
  const Row& undefended = find("flash_crash_undefended");
  const Row& defended = find("flash_crash_defended");

  // --- acceptance gates ----------------------------------------------------
  struct Gate {
    std::string name;
    bool pass;
    std::string detail;
  };
  std::vector<Gate> gates;
  auto add_gate = [&](std::string name, bool pass, std::string detail) {
    gates.push_back({std::move(name), pass, std::move(detail)});
  };

  add_gate("nominal_healthy", nominal.served >= 0.99,
           "nominal served " + format_double(nominal.served * 100.0, 2) +
               "% (need >= 99%)");
  add_gate("baseline_collapses", undefended.served <= 0.40,
           "undefended served " + format_double(undefended.served * 100.0, 2) +
               "% (need <= 40%: the metastable collapse)");
  add_gate("defended_70pct_of_nominal", defended.served >= 0.70 * nominal.served,
           "defended served " + format_double(defended.served * 100.0, 2) +
               "% vs nominal " + format_double(nominal.served * 100.0, 2) +
               "% (need >= 70% of nominal)");
  add_gate("shedder_engages",
           defended.r.failed_shed > 0 && undefended.r.failed_shed == 0,
           "defended shed " + std::to_string(defended.r.failed_shed) +
               ", undefended shed " + std::to_string(undefended.r.failed_shed));

  // Bit-reproducibility: the defended chaos run replays identically both
  // serially and through core::run_parallel.
  const Row rerun = run_one(scenarios[2]);
  const bool serial_identical = rerun.digest == defended.digest;
  std::vector<core::SimJob> jobs;
  const core::SimConfig cfg_undef = make_cfg(scenarios[1]);
  const core::SimConfig cfg_def = make_cfg(scenarios[2]);
  for (const auto* cfg : {&cfg_undef, &cfg_def}) {
    core::SimJob j;
    j.trace = &tr;
    j.sim = *cfg;
    j.kind = core::PolicyKind::kL2s;
    jobs.push_back(std::move(j));
  }
  const auto par = core::run_parallel(jobs);
  const bool parallel_identical =
      par.size() == 2 && core::result_digest_hex(par[0]) == undefended.digest &&
      core::result_digest_hex(par[1]) == defended.digest;
  add_gate("bit_reproducible_serial", serial_identical,
           serial_identical ? "defended replay identical" : "defended replay diverged");
  add_gate("bit_reproducible_parallel", parallel_identical,
           parallel_identical ? "run_parallel matches serial digests"
                              : "run_parallel diverged from serial");

  std::cout << "\ngates:\n";
  bool all_pass = true;
  for (const auto& g : gates) {
    std::cout << "  [" << (g.pass ? "PASS" : "FAIL") << "] " << g.name << ": " << g.detail
              << "\n";
    all_pass = all_pass && g.pass;
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"overload\",\n"
      << "  \"trace\": \"" << spec.name << "\",\n"
      << "  \"scale\": " << format_double(scale, 3) << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"request_count\": " << tr.request_count() << ",\n"
      << "  \"nominal_rate_rps\": " << format_double(base.arrival.open_loop_rate, 1)
      << ",\n"
      << "  \"flash_factor\": 3.0,\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) json_row(out, rows[i], i + 1 == rows.size());
  out << "  ],\n"
      << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i)
    out << "    \"" << gates[i].name << "\": " << (gates[i].pass ? "true" : "false")
        << (i + 1 == gates.size() ? "\n" : ",\n");
  out << "  },\n"
      << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_pass) {
    std::cerr << "overload_bench: acceptance gates FAILED\n";
    return 1;
  }
  std::cout << "overload_bench: all gates pass\n";
  return 0;
}
