// Section 3.2 memory-size study: locality gains as per-node memory grows
// from 128 MB to 512 MB.
//
// Paper shape: larger memories reduce the throughput benefit of locality
// just about everywhere in the parameter space, but the gains remain
// significant (peaking around 6.5x at 512 MB vs ~7x at 128 MB). The
// global peak sits where the conscious hit rate saturates at 1 and is
// insensitive to memory; the representative uncapped cells below show the
// monotone decline.
#include <iostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/model/surface.hpp"

using namespace l2s;

namespace {

double mean_of(const model::Surface& s) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : s.values)
    for (const double v : row) {
      sum += v;
      ++n;
    }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Model study: throughput increase vs per-node memory size (16 nodes)\n\n";
  TextTable t({"Memory (MB)", "peak", "mean over plane", "Hlo=0.6,S=16KB", "Hlo=0.7,S=32KB"});
  CsvWriter csv(csv_dir_from_args(argc, argv), "model_memory_sweep",
                {"memory_mb", "peak_ratio", "mean_ratio", "mid_ratio", "high_ratio"});

  const auto hit_grid = model::default_hit_grid();
  const auto size_grid = model::default_size_grid();
  for (const Bytes mb : {128ULL, 192ULL, 256ULL, 384ULL, 512ULL}) {
    model::ModelParams p;
    p.cache_bytes = mb * kMiB;
    const model::ClusterModel m(p);
    const auto ratio = model::ratio_surface(model::conscious_surface(m, hit_grid, size_grid),
                                            model::oblivious_surface(m, hit_grid, size_grid));
    const double peak = ratio.max_value();
    const double mean = mean_of(ratio);
    const double mid =
        m.conscious(0.6, 16.0).throughput / m.oblivious(0.6, 16.0).throughput;
    const double high =
        m.conscious(0.7, 32.0).throughput / m.oblivious(0.7, 32.0).throughput;

    t.cell(static_cast<long long>(mb)).cell(peak, 2).cell(mean, 3).cell(mid, 3)
        .cell(high, 3).end_row();
    csv.add_row({std::to_string(mb), format_double(peak, 3), format_double(mean, 4),
                 format_double(mid, 4), format_double(high, 4)});
  }
  t.print(std::cout);
  return 0;
}
