// Figure 7: throughputs for the Calgary trace — model bound (15%
// replication), L2S, LARD and the traditional server vs cluster size.
//
// Paper shape at 16 nodes: L2S within 22% of the model, about 33% over
// LARD (which flattens near 5000 req/s) and about 180% over traditional.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  l2s::benchfig::run_figure("Calgary", "fig7_calgary", argc, argv);
  return 0;
}
