// Robustness suites: malformed inputs, pathological workloads, and
// randomized structural checks that complement the per-module unit tests.
#include <gtest/gtest.h>

#include <sstream>

#include "l2sim/common/rng.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/des/process.hpp"
#include "l2sim/trace/clf_reader.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s {
namespace {

// ---------------------------------------------------------------------------
// CLF reader fuzzing: arbitrary input must never crash and must keep its
// accounting consistent.

TEST(ClfFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0xFEED);
  for (int round = 0; round < 50; ++round) {
    std::ostringstream log;
    for (int line = 0; line < 40; ++line) {
      const auto len = rng.next_below(120);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus quotes/brackets to hit the parser's paths.
        log << static_cast<char>(32 + rng.next_below(95));
      }
      log << '\n';
    }
    std::istringstream in(log.str());
    trace::ClfParseStats stats;
    const auto tr = trace::read_clf(in, "fuzz", &stats);
    EXPECT_EQ(stats.lines, 40u);
    EXPECT_EQ(stats.accepted + stats.rejected_malformed + stats.rejected_method +
                  stats.rejected_status,
              stats.lines);
    EXPECT_EQ(tr.request_count(), stats.accepted);
  }
}

TEST(ClfFuzz, MutatedValidLinesStayConsistent) {
  const std::string valid =
      R"(host - - [01/Jul/1995:00:00:01 -0400] "GET /images/a.gif HTTP/1.0" 200 1839)";
  Rng rng(0xBEEF);
  for (int round = 0; round < 300; ++round) {
    std::string line = valid;
    // Mutate 1-3 random positions.
    const auto mutations = 1 + rng.next_below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      line[rng.next_below(line.size())] = static_cast<char>(32 + rng.next_below(95));
    }
    std::istringstream in(line + "\n");
    trace::ClfParseStats stats;
    const auto tr = trace::read_clf(in, "mut", &stats);
    EXPECT_LE(tr.request_count(), 1u);
    if (tr.request_count() == 1) {
      EXPECT_GT(tr.requests()[0].bytes, 0u);
      EXPECT_EQ(tr.files().count(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized StageChain structure: total completion time equals the sum of
// stage durations when resources are fresh.

TEST(StageChainRandom, CompletionTimeIsSumOfStages) {
  Rng rng(42);
  for (int round = 0; round < 30; ++round) {
    des::Scheduler sched;
    std::vector<std::unique_ptr<des::Resource>> resources;
    des::StageChain chain(sched);
    SimTime expected = 0;
    const auto stages = 1 + rng.next_below(12);
    for (std::uint64_t i = 0; i < stages; ++i) {
      const auto d = static_cast<SimTime>(1 + rng.next_below(1000));
      expected += d;
      if (rng.next_below(2) == 0) {
        resources.push_back(std::make_unique<des::Resource>(sched, "r"));
        chain.use(*resources.back(), d);
      } else {
        chain.delay(d);
      }
    }
    SimTime done_at = -1;
    chain.run([&] { done_at = sched.now(); });
    sched.run();
    EXPECT_EQ(done_at, expected) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Pathological workloads through the full simulator.

core::SimConfig tiny_cluster(int nodes) {
  core::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 1 * kMiB;
  return cfg;
}

TEST(PathologicalWorkload, SingleHotFile) {
  // Every request hits one file: locality is trivial, load balancing is
  // everything. All policies must complete and hit ~100% after warm-up.
  storage::FileSet files;
  files.add(64 * kKiB);
  std::vector<trace::Request> reqs(5000, trace::Request{0, 64 * kKiB});
  const trace::Trace tr("hotfile", std::move(files), std::move(reqs));
  for (const auto kind : core::all_policies()) {
    const auto r = core::run_once(tr, tiny_cluster(4), kind);
    EXPECT_EQ(r.completed, 5000u);
    EXPECT_GT(r.hit_rate, 0.999) << core::policy_kind_name(kind);
  }
}

TEST(PathologicalWorkload, EveryRequestDistinctFile) {
  // Zero reuse: all policies must degrade to disk speed without deadlock,
  // and hit rates must be ~0.
  storage::FileSet files;
  std::vector<trace::Request> reqs;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    files.add(8 * kKiB);
    reqs.push_back(trace::Request{i, 8 * kKiB});
  }
  const trace::Trace tr("coldscan", std::move(files), std::move(reqs));
  for (const auto kind : core::all_policies()) {
    const auto r = core::run_once(tr, tiny_cluster(4), kind);
    EXPECT_EQ(r.completed, 2000u);
    EXPECT_LT(r.hit_rate, 0.01) << core::policy_kind_name(kind);
  }
}

TEST(PathologicalWorkload, FileLargerThanCache) {
  // A file bigger than a node's whole memory can never be cached: every
  // request goes to disk, but the system must still make progress.
  storage::FileSet files;
  files.add(4 * kMiB);  // cache is 1 MiB
  std::vector<trace::Request> reqs(200, trace::Request{0, 4 * kMiB});
  const trace::Trace tr("giant", std::move(files), std::move(reqs));
  const auto r = core::run_once(tr, tiny_cluster(2), core::PolicyKind::kL2s);
  EXPECT_EQ(r.completed, 200u);
  EXPECT_DOUBLE_EQ(r.hit_rate, 0.0);
}

TEST(PathologicalWorkload, AlternatingThrash) {
  // Two files that together exceed the cache, requested alternately:
  // worst-case LRU behaviour must stay live and miss-heavy.
  storage::FileSet files;
  files.add(700 * kKiB);
  files.add(700 * kKiB);
  std::vector<trace::Request> reqs;
  for (int i = 0; i < 1000; ++i)
    reqs.push_back(trace::Request{static_cast<std::uint32_t>(i % 2), 700 * kKiB});
  const trace::Trace tr("thrash", std::move(files), std::move(reqs));
  const auto r = core::run_once(tr, tiny_cluster(1), core::PolicyKind::kTraditional);
  EXPECT_EQ(r.completed, 1000u);
  // Strictly serial LRU would miss ~100%; the pipelined server overlaps
  // lookups with the outstanding disk read and converts roughly half of
  // them into hits. Either way the workload must stay miss-heavy and live.
  EXPECT_GT(r.miss_rate, 0.30);
  EXPECT_LT(r.hit_rate, 0.70);
}

TEST(PathologicalWorkload, ManyNodesFewRequests) {
  // More buffer slots than requests: the injector window never fills.
  trace::SyntheticSpec spec;
  spec.name = "sparse";
  spec.files = 10;
  spec.requests = 20;
  spec.avg_file_kb = 4.0;
  spec.avg_request_kb = 4.0;
  spec.alpha = 1.0;
  const auto tr = trace::generate(spec);
  for (const auto kind : core::all_policies()) {
    const auto r = core::run_once(tr, tiny_cluster(16), kind);
    EXPECT_EQ(r.completed, 20u) << core::policy_kind_name(kind);
  }
}

}  // namespace
}  // namespace l2s
