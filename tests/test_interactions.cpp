// Feature-interaction coverage: persistent connections, failures,
// open-loop arrivals and DNS skew combined — regressions here would be
// invisible to the single-feature suites.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/consistent_hash.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/round_robin.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload(std::uint64_t requests = 10000) {
  trace::SyntheticSpec spec;
  spec.name = "interact";
  spec.files = 300;
  spec.requests = requests;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 77;
  return trace::generate(spec);
}

TEST(Interactions, PersistentConnectionsSurviveNodeFailure) {
  const auto tr = workload();
  for (const auto mode :
       {PersistentMode::kConnectionHandoff, PersistentMode::kBackendForwarding}) {
    SimConfig cfg;
    cfg.nodes = 6;
    cfg.node.cache_bytes = 2 * kMiB;
    cfg.persistence.mean_requests_per_connection = 5.0;
    cfg.persistence.mode = mode;
    cfg.fault_plan.crashes.push_back({2, 0.1});
    ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
    const auto r = sim.run();
    EXPECT_EQ(r.completed + r.failed, tr.request_count());
    EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
              0.85);
    for (int n = 0; n < 6; ++n) {
      if (sim.node(n).alive()) {
        EXPECT_EQ(sim.node(n).open_connections(), 0) << n;
      }
    }
  }
}

TEST(Interactions, OpenLoopWithFailure) {
  const auto tr = workload(8000);
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.arrival.open_loop_rate = 1500.0;
  cfg.fault_plan.crashes.push_back({1, 0.5});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(r.completed, 0u);
}

TEST(Interactions, SkewedDnsWithFailureOnTheHotNode) {
  // Node 0 receives most skewed entries AND crashes: clients must
  // eventually land elsewhere once DNS detection kicks in.
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.arrival.dns_entry_skew = 0.7;
  cfg.fault_plan.crashes.push_back({0, 0.2});
  cfg.failure_detection_seconds = 0.1;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::RoundRobinPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.6);
}

TEST(Interactions, ConsistentHashSurvivesFailureWithRemap) {
  const auto tr = workload(15000);
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.fault_plan.crashes.push_back({3, 0.1});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::ConsistentHashPolicy>());
  const auto r = sim.run();
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.9);
}

TEST(Interactions, PersistentPlusGdsf) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  cfg.node.cache_policy = cluster::CachePolicy::kGdsf;
  cfg.persistence.mean_requests_per_connection = 3.0;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_GT(r.hit_rate, 0.3);
}

TEST(Interactions, HeterogeneousWithFailureOfAFastNode) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.node_speed_factors = {2.0, 1.0, 1.0, 0.5};
  cfg.fault_plan.crashes.push_back({0, 0.2});  // lose the fastest node
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.9);
}

TEST(Interactions, DeterminismHoldsAcrossTheFeatureMatrix) {
  const auto tr = workload(4000);
  SimConfig cfg;
  cfg.nodes = 5;
  cfg.node.cache_bytes = kMiB;
  cfg.persistence.mean_requests_per_connection = 3.0;
  cfg.arrival.dns_entry_skew = 0.3;
  cfg.fault_plan.crashes.push_back({2, 0.3});
  auto run_it = [&] {
    ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
    return sim.run();
  };
  const auto a = run_it();
  const auto b = run_it();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
}

}  // namespace
}  // namespace l2s::core
