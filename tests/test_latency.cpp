#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/model/latency.hpp"

namespace l2s::model {
namespace {

ClusterModel default_model() { return ClusterModel{ModelParams{}}; }

TEST(Latency, CurveIsMonotoneInLoad) {
  const auto m = default_model();
  const auto curve = latency_curve(m, /*conscious=*/false, 0.8, 16.0);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].arrival_rate, curve[i - 1].arrival_rate);
    EXPECT_GE(curve[i].mean_response_s, curve[i - 1].mean_response_s);
  }
}

TEST(Latency, ResponseBlowsUpNearSaturation) {
  const auto m = default_model();
  const auto curve = latency_curve(m, false, 0.8, 16.0, 32, 0.99);
  EXPECT_GT(curve.back().mean_response_s, 5.0 * curve.front().mean_response_s);
}

TEST(Latency, LowLoadResponseApproachesServiceDemand) {
  // At light load, queueing vanishes: the response is the sum of service
  // times. For the fully cached case that is parse + reply + NI + router.
  const auto m = default_model();
  const auto curve = latency_curve(m, false, 1.0, 16.0, 100, 0.99);
  const double service_only = curve.front().mean_response_s;
  // parse ~159us + reply ~1433us dominate; expect low milliseconds.
  EXPECT_GT(service_only, 0.001);
  EXPECT_LT(service_only, 0.01);
}

TEST(Latency, ConsciousServerFasterWhenLocalityPays) {
  // At the same absolute arrival rate the conscious server queues less;
  // compare at mid-plane where its bound is much higher.
  const auto m = default_model();
  const auto lo = latency_curve(m, false, 0.6, 16.0, 8, 0.9);
  const auto lc = latency_curve(m, true, 0.6, 16.0, 8, 0.9);
  // Same utilization fraction maps to a much higher arrival rate for the
  // conscious server.
  EXPECT_GT(lc.back().arrival_rate, 1.5 * lo.back().arrival_rate);
}

TEST(Latency, LoadFractionAtLatencyFindsKnee) {
  const auto m = default_model();
  const double knee = load_fraction_at_latency(m, false, 0.8, 16.0, 0.05);
  EXPECT_GT(knee, 0.0);
  EXPECT_LE(knee, 1.0);
  // A generous limit is never exceeded.
  EXPECT_DOUBLE_EQ(load_fraction_at_latency(m, false, 0.8, 16.0, 1e6), 1.0);
}

TEST(Latency, ValidatesArguments) {
  const auto m = default_model();
  EXPECT_THROW((void)latency_curve(m, false, 0.5, 16.0, 0), Error);
  EXPECT_THROW((void)latency_curve(m, false, 0.5, 16.0, 8, 1.5), Error);
  EXPECT_THROW((void)load_fraction_at_latency(m, false, 0.5, 16.0, 0.0), Error);
}

}  // namespace
}  // namespace l2s::model
