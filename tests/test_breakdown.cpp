// Per-stage latency breakdown.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "l2sim/core/experiment.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload(double avg_kb = 8.0, std::uint64_t files = 300) {
  trace::SyntheticSpec spec;
  spec.name = "breakdown";
  spec.files = files;
  spec.requests = 6000;
  spec.avg_file_kb = avg_kb;
  spec.avg_request_kb = avg_kb;
  spec.size_sigma = 0.3;
  spec.alpha = 0.9;
  return trace::generate(spec);
}

TEST(Breakdown, StagesSumToTotal) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  const double sum =
      r.stage_entry_ms + r.stage_forward_ms + r.stage_disk_ms + r.stage_reply_ms;
  EXPECT_NEAR(sum, r.mean_response_ms, 1e-6 * std::max(1.0, r.mean_response_ms));
}

TEST(Breakdown, LocalPoliciesHaveZeroForwardStage) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  EXPECT_DOUBLE_EQ(r.stage_forward_ms, 0.0);
}

TEST(Breakdown, FullyCachedWorkloadHasTinyDiskStage) {
  const auto tr = workload(4.0, 50);  // 200 KB working set
  SimConfig cfg;
  cfg.nodes = 2;
  cfg.node.cache_bytes = 8 * kMiB;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  EXPECT_GT(r.hit_rate, 0.99);
  EXPECT_LT(r.stage_disk_ms, 0.01);
}

TEST(Breakdown, MissHeavyWorkloadIsDiskDominated) {
  const auto tr = workload(32.0, 2000);  // ~64 MB working set
  SimConfig cfg;
  cfg.nodes = 2;
  cfg.node.cache_bytes = 2 * kMiB;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  EXPECT_GT(r.miss_rate, 0.5);
  EXPECT_GT(r.stage_disk_ms, r.stage_entry_ms + r.stage_reply_ms);
}

TEST(Breakdown, LardPaysEntryAndForwardAtTheFrontEnd) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  const auto lard = run_once(tr, cfg, PolicyKind::kLard);
  // Every LARD request is forwarded: the hand-off stage is nonzero and
  // the entry stage carries the front-end queueing.
  EXPECT_GT(lard.stage_forward_ms, 0.0);
  EXPECT_GT(lard.stage_entry_ms, 0.0);
}

TEST(Timeline, CsvWrittenWithHeaderAndRows) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 3;
  cfg.node.cache_bytes = kMiB;
  cfg.timeline_csv_path = ::testing::TempDir() + "/l2sim_timeline_test.csv";
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_GT(r.completed, 0u);
  std::ifstream in(cfg.timeline_csv_path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,node0,node1,node2");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_GT(rows, 0);
  std::remove(cfg.timeline_csv_path.c_str());
}

}  // namespace
}  // namespace l2s::core
