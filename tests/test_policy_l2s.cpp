#include <gtest/gtest.h>

#include <algorithm>

#include "l2sim/policy/l2s.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

TEST(L2sPolicy, RoundRobinDnsFrontDoor) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    EXPECT_EQ(p.entry_node(seq, PolicyFixture::request_for(0)), static_cast<int>(seq % 4));
}

TEST(L2sPolicy, FirstRequestServedAtEntry) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  EXPECT_EQ(p.select_service_node(2, PolicyFixture::request_for(5)), 2);
  EXPECT_EQ(p.server_set_of(2, 5), std::vector<int>{2});
}

TEST(L2sPolicy, FirstRequestAtOverloadedEntryGoesElsewhere) {
  PolicyFixture f(4);
  L2sPolicy p;  // T = 20
  p.attach(f.ctx);
  f.set_load(1, 25);
  const int chosen = p.select_service_node(1, PolicyFixture::request_for(5));
  EXPECT_NE(chosen, 1);
  EXPECT_TRUE(std::find(p.server_set_of(1, 5).begin(), p.server_set_of(1, 5).end(),
                        chosen) != p.server_set_of(1, 5).end());
}

TEST(L2sPolicy, SetChangesBroadcastToAllNodes) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  EXPECT_TRUE(p.server_set_of(2, 5) == std::vector<int>{2});
  // Other nodes have not heard yet.
  EXPECT_TRUE(p.server_set_of(0, 5).empty());
  f.drain();  // deliver the locality broadcast
  for (int n = 0; n < 4; ++n) EXPECT_EQ(p.server_set_of(n, 5), std::vector<int>{2});
}

TEST(L2sPolicy, ForwardsToCachingNode) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  // A later request entering at node 0 is forwarded to the caching node.
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(5)), 2);
}

TEST(L2sPolicy, ServesLocallyWhenEntryCaches) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  f.set_load(2, 10);  // loaded but under T and within local bias of itself
  EXPECT_EQ(p.select_service_node(2, PolicyFixture::request_for(5)), 2);
}

TEST(L2sPolicy, GrowsSetWhenCachingNodeOverloaded) {
  PolicyFixture f(4);
  L2sPolicy p;  // T = 20
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  f.set_load(2, 30);           // caching node overloaded
  p.on_complete(2, PolicyFixture::request_for(5));  // trigger load broadcast
  f.drain();
  // Entry 0 is idle: it should take the file itself (replication).
  const int chosen = p.select_service_node(0, PolicyFixture::request_for(5));
  EXPECT_EQ(chosen, 0);
  EXPECT_GE(p.counters().get("set_grow"), 1u);
  f.drain();
  EXPECT_TRUE(p.server_set_of(3, 5) == p.server_set_of(0, 5));
}

TEST(L2sPolicy, NoGrowthWhenWholeClusterSaturated) {
  PolicyFixture f(4);
  L2sPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  // Everyone overloaded: spare capacity nowhere, so the request stays with
  // the caching node (replication would only thrash).
  for (int n = 0; n < 4; ++n) {
    f.set_load(n, 25);
    p.on_complete(n, PolicyFixture::request_for(5));
  }
  f.drain();
  const auto grows_before = p.counters().get("set_grow");
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(5)), 2);
  EXPECT_EQ(p.counters().get("set_grow"), grows_before);
}

TEST(L2sPolicy, ExtremeOverloadForcesGrowth) {
  PolicyFixture f(4);
  L2sPolicy p;  // 2T = 40
  p.attach(f.ctx);
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  for (int n = 0; n < 4; ++n) f.set_load(n, 25);
  f.set_load(2, 45);  // the caching node is beyond 2T
  for (int n = 0; n < 4; ++n) p.on_complete(n, PolicyFixture::request_for(5));
  f.drain();
  const int chosen = p.select_service_node(0, PolicyFixture::request_for(5));
  EXPECT_NE(chosen, 2);
  EXPECT_GE(p.counters().get("set_grow"), 1u);
}

TEST(L2sPolicy, LoadBroadcastsThrottledByDelta) {
  PolicyFixture f(3);
  L2sPolicy p;  // delta = 4
  p.attach(f.ctx);
  f.set_load(1, 3);
  p.on_complete(1, PolicyFixture::request_for(0));
  f.drain();
  EXPECT_EQ(p.view_of(0, 1), 0);  // drift 3 < 4: no broadcast
  f.set_load(1, 4);
  p.on_service_start(1, PolicyFixture::request_for(0));
  f.drain();
  EXPECT_EQ(p.view_of(0, 1), 4);  // drift 4: broadcast
  EXPECT_EQ(p.view_of(2, 1), 4);
  EXPECT_GE(p.counters().get("load_broadcasts"), 1u);
}

TEST(L2sPolicy, ShrinkPrunesStableReplicatedSets) {
  L2sParams params;
  params.set_shrink_seconds = 0.001;
  PolicyFixture f(4);
  L2sPolicy p(params);
  p.attach(f.ctx);
  // Build a 2-member set for file 5.
  (void)p.select_service_node(2, PolicyFixture::request_for(5));
  f.drain();
  f.set_load(2, 30);
  p.on_complete(2, PolicyFixture::request_for(5));
  f.drain();
  (void)p.select_service_node(0, PolicyFixture::request_for(5));
  f.drain();
  ASSERT_EQ(p.server_set_of(0, 5).size(), 2u);
  // Let the shrink window elapse, with every node underloaded (< t).
  f.set_load(2, 0);
  p.on_complete(2, PolicyFixture::request_for(5));
  f.sched.run_until(f.sched.now() + seconds_to_simtime(0.01));
  (void)p.select_service_node(0, PolicyFixture::request_for(5));
  EXPECT_EQ(p.server_set_of(0, 5).size(), 1u);
  EXPECT_GE(p.counters().get("set_shrink"), 1u);
}

TEST(L2sPolicy, ForwardCostIsMuF) {
  PolicyFixture f(2);
  L2sPolicy p;
  p.attach(f.ctx);
  EXPECT_EQ(p.forward_cpu_time(0), seconds_to_simtime(1.0 / 10000.0));
}

TEST(L2sPolicy, RejectsBadParams) {
  L2sParams bad;
  bad.overload_threshold = 5;
  bad.underload_threshold = 10;
  EXPECT_THROW(L2sPolicy{bad}, l2s::Error);
  bad = L2sParams{};
  bad.broadcast_delta = 0;
  EXPECT_THROW(L2sPolicy{bad}, l2s::Error);
}

TEST(L2sPolicy, OptimisticViewBumpOnForward) {
  PolicyFixture f(3);
  L2sPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(1, PolicyFixture::request_for(9));
  f.drain();
  EXPECT_EQ(p.view_of(0, 1), 0);
  (void)p.select_service_node(0, PolicyFixture::request_for(9));  // forwards to 1
  EXPECT_EQ(p.view_of(0, 1), 1);  // node 0 counts its own hand-off
  EXPECT_EQ(p.view_of(2, 1), 0);  // node 2 knows nothing
}

}  // namespace
}  // namespace l2s::policy
