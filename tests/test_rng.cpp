#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"

namespace l2s {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowIsBoundedAndRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(10)];
  for (const int c : counts) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, LognormalHasRequestedMean) {
  Rng rng(13);
  const double mu = 2.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_lognormal(mu, sigma);
  const double expected = std::exp(mu + 0.5 * sigma * sigma);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_bounded_pareto(1.2, 1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  // The split stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace l2s
