#include <gtest/gtest.h>

#include "l2sim/cluster/load_tracker.hpp"

namespace l2s::cluster {
namespace {

TEST(LoadView, SetGetAdjust) {
  LoadView v(4);
  EXPECT_EQ(v.get(0), 0);
  v.set(1, 5);
  v.adjust(1, 3);
  v.adjust(1, -2);
  EXPECT_EQ(v.get(1), 6);
  EXPECT_EQ(v.nodes(), 4);
}

TEST(LoadView, LeastLoadedWithTies) {
  LoadView v(4);
  v.set(0, 3);
  v.set(1, 1);
  v.set(2, 1);
  v.set(3, 2);
  EXPECT_EQ(v.least_loaded(), 1);  // lowest id wins ties
}

TEST(LoadView, LeastAndMostOfCandidates) {
  LoadView v(5);
  v.set(0, 9);
  v.set(1, 4);
  v.set(2, 7);
  v.set(3, 4);
  v.set(4, 1);
  const std::vector<int> cands = {0, 2, 3};
  EXPECT_EQ(v.least_loaded_of(cands), 3);
  EXPECT_EQ(v.most_loaded_of(cands), 0);
}

TEST(LoadView, AnyBelow) {
  LoadView v(3);
  v.set(0, 10);
  v.set(1, 10);
  v.set(2, 10);
  EXPECT_FALSE(v.any_below(10));
  EXPECT_TRUE(v.any_below(11));
}

TEST(LoadView, BoundsChecked) {
  LoadView v(2);
  EXPECT_THROW(v.get(2), l2s::Error);
  EXPECT_THROW(v.set(-1, 0), l2s::Error);
  EXPECT_THROW(v.least_loaded_of({}), l2s::Error);
}

TEST(BroadcastThrottle, FiresOnDelta) {
  BroadcastThrottle t(4);
  EXPECT_FALSE(t.should_broadcast(0));   // no drift from initial 0
  EXPECT_FALSE(t.should_broadcast(3));
  EXPECT_TRUE(t.should_broadcast(4));    // drift 4 -> broadcast, remember 4
  EXPECT_FALSE(t.should_broadcast(7));
  EXPECT_TRUE(t.should_broadcast(8));
  EXPECT_EQ(t.last_broadcast(), 8);
}

TEST(BroadcastThrottle, FiresOnDecreaseToo) {
  BroadcastThrottle t(4);
  EXPECT_TRUE(t.should_broadcast(10));
  EXPECT_FALSE(t.should_broadcast(7));
  EXPECT_TRUE(t.should_broadcast(6));
  EXPECT_EQ(t.last_broadcast(), 6);
}

TEST(BroadcastThrottle, RejectsNonPositiveDelta) {
  EXPECT_THROW(BroadcastThrottle(0), l2s::Error);
}

}  // namespace
}  // namespace l2s::cluster
