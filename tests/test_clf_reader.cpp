#include <gtest/gtest.h>

#include <sstream>

#include "l2sim/trace/clf_reader.hpp"

namespace l2s::trace {
namespace {

TEST(ClfLine, ParsesStandardLine) {
  std::string method;
  std::string path;
  int status = 0;
  std::uint64_t bytes = 0;
  ASSERT_TRUE(parse_clf_line(
      R"(host - - [01/Jul/1995:00:00:01 -0400] "GET /images/a.gif HTTP/1.0" 200 1839)",
      method, path, status, bytes));
  EXPECT_EQ(method, "GET");
  EXPECT_EQ(path, "/images/a.gif");
  EXPECT_EQ(status, 200);
  EXPECT_EQ(bytes, 1839u);
}

TEST(ClfLine, ParsesDashBytesAsZero) {
  std::string m;
  std::string p;
  int st = 0;
  std::uint64_t b = 9;
  ASSERT_TRUE(parse_clf_line(R"(h - - [d] "GET /x HTTP/1.0" 304 -)", m, p, st, b));
  EXPECT_EQ(st, 304);
  EXPECT_EQ(b, 0u);
}

TEST(ClfLine, StripsQueryStrings) {
  std::string m;
  std::string p;
  int st = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(parse_clf_line(R"(h - - [d] "GET /cgi/x?q=1 HTTP/1.0" 200 10)", m, p, st, b));
  EXPECT_EQ(p, "/cgi/x");
}

TEST(ClfLine, HandlesRequestWithoutProtocol) {
  std::string m;
  std::string p;
  int st = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(parse_clf_line(R"(h - - [d] "GET /old-style" 200 5)", m, p, st, b));
  EXPECT_EQ(p, "/old-style");
}

TEST(ClfLine, RejectsMalformed) {
  std::string m;
  std::string p;
  int st = 0;
  std::uint64_t b = 0;
  EXPECT_FALSE(parse_clf_line("no quotes here", m, p, st, b));
  EXPECT_FALSE(parse_clf_line(R"(h - - [d] "GETONLY" 200 5)", m, p, st, b));
  EXPECT_FALSE(parse_clf_line(R"(h - - [d] "GET /x HTTP/1.0" nostatus)", m, p, st, b));
}

TEST(ClfReader, BuildsTraceFromLog) {
  std::istringstream in(
      R"(h1 - - [d] "GET /a HTTP/1.0" 200 1000
h2 - - [d] "GET /b HTTP/1.0" 200 2000
h3 - - [d] "GET /a HTTP/1.0" 200 1000
h4 - - [d] "POST /form HTTP/1.0" 200 50
h5 - - [d] "GET /c HTTP/1.0" 404 100
h6 - - [d] "GET /d HTTP/1.0" 304 -
garbage line
)");
  ClfParseStats stats;
  const Trace t = read_clf(in, "test", &stats);
  EXPECT_EQ(stats.lines, 7u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_method, 1u);
  EXPECT_EQ(stats.rejected_status, 2u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
  EXPECT_EQ(t.request_count(), 3u);
  EXPECT_EQ(t.files().count(), 2u);
  // /a appears twice and maps to the same id with the max size seen.
  EXPECT_EQ(t.requests()[0].file, t.requests()[2].file);
}

TEST(ClfReader, FileSizeIsMaxObserved) {
  std::istringstream in(
      R"(h - - [d] "GET /a HTTP/1.0" 200 500
h - - [d] "GET /a HTTP/1.0" 200 1500
h - - [d] "GET /a HTTP/1.0" 200 900
)");
  const Trace t = read_clf(in, "max");
  EXPECT_EQ(t.files().size_of(0), 1500u);
  // Per-request bytes keep their individual values.
  EXPECT_EQ(t.requests()[0].bytes, 500u);
  EXPECT_EQ(t.requests()[2].bytes, 900u);
}

TEST(ClfReader, EmptyInputYieldsEmptyTrace) {
  std::istringstream in("");
  const Trace t = read_clf(in, "empty");
  EXPECT_EQ(t.request_count(), 0u);
  EXPECT_EQ(t.files().count(), 0u);
}

}  // namespace
}  // namespace l2s::trace
