// Shared fixture for policy unit tests: a wired-up cluster context with N
// nodes, a VIA network, and helpers to fabricate load and drain messages.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/net/topology.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/policy/policy.hpp"

namespace l2s::testing {

struct PolicyFixture {
  des::Scheduler sched;
  net::NetParams params;
  net::SingleSwitch fabric{sched, params, 64};
  net::ViaNetwork via{sched, fabric, params};
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  policy::ClusterContext ctx;

  explicit PolicyFixture(int node_count) {
    ctx.sched = &sched;
    ctx.via = &via;
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(std::make_unique<cluster::Node>(sched, i, cluster::NodeParams{}));
      via.add_endpoint({&nodes.back()->cpu(), &nodes.back()->nic()});
      ctx.nodes.push_back(nodes.back().get());
    }
  }

  /// Set a node's true open-connection count.
  void set_load(int node, int load) {
    cluster::Node& n = *nodes[static_cast<std::size_t>(node)];
    while (n.open_connections() < load) n.connection_opened();
    while (n.open_connections() > load) n.connection_closed();
  }

  /// Deliver all in-flight messages (broadcasts etc.).
  void drain() { sched.run(); }

  static trace::Request request_for(storage::FileId file) {
    return trace::Request{file, 8 * kKiB};
  }
};

}  // namespace l2s::testing
