#include <gtest/gtest.h>

#include "l2sim/policy/traditional.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

TEST(TraditionalPolicy, EntryIsFewestConnections) {
  PolicyFixture f(4);
  TraditionalPolicy p;
  p.attach(f.ctx);
  f.set_load(0, 5);
  f.set_load(1, 2);
  f.set_load(2, 7);
  f.set_load(3, 2);
  // Node 1 and 3 tie at 2; lowest id wins.
  EXPECT_EQ(p.entry_node(0, PolicyFixture::request_for(9)), 1);
  f.set_load(1, 3);
  EXPECT_EQ(p.entry_node(1, PolicyFixture::request_for(9)), 3);
}

TEST(TraditionalPolicy, NeverForwards) {
  PolicyFixture f(4);
  TraditionalPolicy p;
  p.attach(f.ctx);
  for (int entry = 0; entry < 4; ++entry) {
    EXPECT_EQ(p.select_service_node(entry, PolicyFixture::request_for(1)), entry);
  }
  EXPECT_EQ(p.forward_cpu_time(0), 0);
}

TEST(TraditionalPolicy, TracksChangingLoads) {
  PolicyFixture f(2);
  TraditionalPolicy p;
  p.attach(f.ctx);
  f.set_load(0, 1);
  EXPECT_EQ(p.entry_node(0, PolicyFixture::request_for(0)), 1);
  f.set_load(1, 4);
  EXPECT_EQ(p.entry_node(1, PolicyFixture::request_for(0)), 0);
}

TEST(TraditionalPolicy, SingleNodeCluster) {
  PolicyFixture f(1);
  TraditionalPolicy p;
  p.attach(f.ctx);
  EXPECT_EQ(p.entry_node(0, PolicyFixture::request_for(0)), 0);
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(0)), 0);
}

TEST(TraditionalPolicy, SendsNoMessages) {
  PolicyFixture f(4);
  TraditionalPolicy p;
  p.attach(f.ctx);
  (void)p.select_service_node(0, PolicyFixture::request_for(0));
  p.on_complete(0, PolicyFixture::request_for(0));
  f.drain();
  EXPECT_EQ(f.via.messages_sent(), 0u);
}

}  // namespace
}  // namespace l2s::policy
