#include <gtest/gtest.h>

#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/cache/stack_distance.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::cache {
namespace {

trace::Trace make_trace(const std::vector<std::uint32_t>& refs,
                        const std::vector<Bytes>& sizes) {
  storage::FileSet files;
  for (const Bytes s : sizes) files.add(s);
  std::vector<trace::Request> reqs;
  for (const auto f : refs) reqs.push_back({f, sizes[f]});
  return trace::Trace("sd", std::move(files), std::move(reqs));
}

TEST(StackDistance, HandComputedExample) {
  // refs: A B C A B B, uniform 1 KB files.
  // A@3: distance 2 (B, C between). B@4: distance 2 (C, A). B@5: distance 0.
  const auto tr = make_trace({0, 1, 2, 0, 1, 1}, {kKiB, kKiB, kKiB});
  const StackDistanceAnalyzer sd(tr);
  EXPECT_EQ(sd.cold_misses(), 3u);
  ASSERT_GE(sd.distance_histogram().size(), 3u);
  EXPECT_EQ(sd.distance_histogram()[0], 1u);
  EXPECT_EQ(sd.distance_histogram()[2], 2u);
  // Capacity 1 file: only the distance-0 access hits -> 1/6.
  EXPECT_NEAR(sd.hit_rate_at_files(1), 1.0 / 6.0, 1e-12);
  // Capacity 3 files: all three reuses hit -> 3/6.
  EXPECT_NEAR(sd.hit_rate_at_files(3), 0.5, 1e-12);
}

TEST(StackDistance, ColdMissesEqualDistinctFiles) {
  trace::SyntheticSpec spec;
  spec.name = "sd";
  spec.files = 150;
  spec.requests = 5000;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  const StackDistanceAnalyzer sd(tr);
  std::vector<bool> seen(150, false);
  std::uint64_t distinct = 0;
  for (const auto& r : tr.requests())
    if (!seen[r.file]) {
      seen[r.file] = true;
      ++distinct;
    }
  EXPECT_EQ(sd.cold_misses(), distinct);
  EXPECT_EQ(sd.accesses(), tr.request_count());
}

TEST(StackDistance, ByteCurveMatchesActualLru) {
  // The whole point: the one-pass curve must agree with brute-force LRU
  // simulation at several capacities. Uniform sizes make byte distances
  // exact (no fragmentation mismatch).
  trace::SyntheticSpec spec;
  spec.name = "sd2";
  spec.files = 200;
  spec.requests = 20000;
  spec.avg_file_kb = 4.0;
  spec.avg_request_kb = 4.0;
  spec.size_sigma = 0.05;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  const StackDistanceAnalyzer sd(tr);
  for (const Bytes cap : {64 * kKiB, 256 * kKiB, 512 * kKiB}) {
    LruCache lru(cap);
    for (const auto& r : tr.requests())
      if (!lru.lookup(r.file)) lru.insert(r.file, tr.files().size_of(r.file));
    EXPECT_NEAR(sd.hit_rate_at_bytes(cap), lru.stats().hit_rate(), 0.02)
        << "capacity " << cap;
  }
}

TEST(StackDistance, FileCurveMonotone) {
  trace::SyntheticSpec spec;
  spec.name = "sd3";
  spec.files = 300;
  spec.requests = 10000;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 8.0;
  spec.alpha = 1.0;
  const auto tr = trace::generate(spec);
  const StackDistanceAnalyzer sd(tr);
  double prev = -1.0;
  for (const std::uint64_t cap : {1ull, 5ull, 20ull, 100ull, 300ull, 1000ull}) {
    const double h = sd.hit_rate_at_files(cap);
    EXPECT_GE(h, prev);
    prev = h;
  }
  // Infinite cache hits everything but the cold misses.
  EXPECT_NEAR(sd.hit_rate_at_files(1000000),
              1.0 - static_cast<double>(sd.cold_misses()) /
                        static_cast<double>(sd.accesses()),
              1e-12);
}

TEST(StackDistance, MissCurveBytesComplementsHits) {
  const auto tr = make_trace({0, 1, 0, 1, 0, 1}, {kKiB, kKiB});
  const StackDistanceAnalyzer sd(tr);
  const auto curve = sd.miss_curve_bytes({kKiB, 2 * kKiB});
  // 1 KB cache: every reuse has byte distance 2 KB -> all miss.
  EXPECT_NEAR(curve[0], 1.0, 1e-12);
  // 2 KB cache: all four reuses hit -> miss = 2 cold / 6.
  EXPECT_NEAR(curve[1], 2.0 / 6.0, 1e-12);
}

TEST(StackDistance, EmptyAndSingleFile) {
  const auto tr = make_trace({0, 0, 0}, {kKiB});
  const StackDistanceAnalyzer sd(tr);
  EXPECT_EQ(sd.cold_misses(), 1u);
  EXPECT_NEAR(sd.hit_rate_at_files(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sd.hit_rate_at_bytes(kKiB), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(sd.hit_rate_at_bytes(512), 0.0);  // file does not fit
}

}  // namespace
}  // namespace l2s::cache
