// Failure injection: the availability properties the paper claims — L2S
// has no single point of failure, while LARD's front-end is one.
#include <gtest/gtest.h>

#include <numeric>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/round_robin.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload(std::uint64_t requests = 20000) {
  trace::SyntheticSpec spec;
  spec.name = "avail";
  spec.files = 400;
  spec.avg_file_kb = 8.0;
  spec.requests = requests;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 31;
  return trace::generate(spec);
}

SimConfig failing_config(int nodes, int dead_node, double at_seconds) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.fault_plan.crashes.push_back({dead_node, at_seconds});
  return cfg;
}

TEST(Failures, L2sSurvivesNodeLoss) {
  const auto tr = workload();
  // Kill node 3 early in the measured pass.
  ClusterSimulation sim(failing_config(8, 3, 0.2), tr,
                        std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  // Some requests in flight at (or routed to) the dead node fail, but the
  // cluster keeps serving: the vast majority completes.
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.95);
}

TEST(Failures, LardFrontEndIsSinglePointOfFailure) {
  const auto tr = workload();
  ClusterSimulation sim(failing_config(8, policy::LardPolicy::front_end(), 0.2), tr,
                        std::make_unique<policy::LardPolicy>());
  const auto r = sim.run();
  // Everything after the crash fails: the completed fraction is roughly
  // the fraction of the trace served before the front-end died.
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(r.failed, tr.request_count() / 2);
}

TEST(Failures, LardSurvivesBackEndLoss) {
  const auto tr = workload();
  ClusterSimulation sim(failing_config(8, 3, 0.2), tr,
                        std::make_unique<policy::LardPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.95);
}

TEST(Failures, TraditionalSwitchRoutesAroundDeadNode) {
  const auto tr = workload();
  ClusterSimulation sim(failing_config(8, 2, 0.2), tr,
                        std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.95);
}

TEST(Failures, DnsKeepsSendingUntilDetection) {
  // With a long detection delay, RR-DNS keeps resolving to the dead node,
  // so roughly 1/N of the post-crash requests fail; with a fast detection
  // the losses are much smaller.
  const auto tr = workload();
  SimConfig slow = failing_config(4, 1, 0.1);
  slow.failure_detection_seconds = 60.0;  // effectively never within the run
  ClusterSimulation slow_sim(slow, tr, std::make_unique<policy::RoundRobinPolicy>());
  const auto rs = slow_sim.run();

  SimConfig fast = failing_config(4, 1, 0.1);
  fast.failure_detection_seconds = 0.05;
  ClusterSimulation fast_sim(fast, tr, std::make_unique<policy::RoundRobinPolicy>());
  const auto rf = fast_sim.run();

  EXPECT_GT(rs.failed, 2 * rf.failed);
}

TEST(Failures, SurvivorsAbsorbTheDeadNodesFiles) {
  // After detection, requests for files that lived on the dead node must
  // be re-homed (L2S grows their server sets elsewhere) — hit rates
  // recover instead of pinning at zero for that share of the content.
  const auto tr = workload(30000);
  ClusterSimulation sim(failing_config(4, 1, 0.05), tr,
                        std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.95);
  EXPECT_GT(r.hit_rate, 0.7);  // the re-homed files miss once, then hit
}

TEST(Failures, NoFailuresMeansNoFailedRequests) {
  const auto tr = workload(2000);
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.completed, tr.request_count());
}

TEST(Failures, CrashPlanRunsAreDeterministic) {
  // A fault_plan crash is part of the deterministic event schedule: two
  // simulations built from the same config must replay event-for-event
  // (the property the golden-digest suite leans on under faults).
  const auto tr = workload();
  ClusterSimulation a(failing_config(8, 3, 0.2), tr, std::make_unique<policy::L2sPolicy>());
  ClusterSimulation b(failing_config(8, 3, 0.2), tr, std::make_unique<policy::L2sPolicy>());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(ra.failed_retries_exhausted, rb.failed_retries_exhausted);
  EXPECT_EQ(ra.elapsed_seconds, rb.elapsed_seconds);
  EXPECT_EQ(ra.mean_response_ms, rb.mean_response_ms);
  EXPECT_EQ(a.scheduler().events_processed(), b.scheduler().events_processed());
}

TEST(Failures, FailureBucketsPartitionTheFailedCount) {
  const auto tr = workload();
  ClusterSimulation sim(failing_config(8, 3, 0.2), tr,
                        std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.failed, r.failed_deadline + r.failed_retries_exhausted + r.failed_rejected);
  // Fail-fast crashes with no retry budget land in the retries bucket.
  EXPECT_EQ(r.failed, r.failed_retries_exhausted);
}

TEST(Failures, GoodputTimelineMatchesTelemetrySeries) {
  // The AvailabilityTracker goodput timeline now lives on
  // telemetry::BucketSeries, and SimTelemetry keeps its own
  // "goodput.completed"/"goodput.failed" series fed by the same lifecycle
  // events. Under a crash plan the two must agree bucket-for-bucket — the
  // shim accessors (SimResult::goodput_rps) and the registry are two views
  // of identical integer-bucket arithmetic.
  const auto tr = workload();
  SimConfig cfg = failing_config(8, 3, 0.2);
  cfg.goodput_interval_seconds = 0.1;
  cfg.telemetry.enabled = true;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);
  ASSERT_FALSE(r.goodput_rps.empty());

  const auto* completed = r.telemetry->find("goodput.completed");
  ASSERT_NE(completed, nullptr);
  const double bucket_s = simtime_to_seconds(completed->series_interval);
  ASSERT_GT(bucket_s, 0.0);
  ASSERT_LE(completed->series_buckets.size(), r.goodput_rps.size());
  for (std::size_t i = 0; i < completed->series_buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(completed->series_buckets[i] / bucket_s, r.goodput_rps[i]) << i;
  }
  for (std::size_t i = completed->series_buckets.size(); i < r.goodput_rps.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.goodput_rps[i], 0.0) << i;
  }
  // Bucket totals account for every outcome the scalar counters saw.
  const double total_completed =
      std::accumulate(completed->series_buckets.begin(),
                      completed->series_buckets.end(), 0.0);
  EXPECT_DOUBLE_EQ(total_completed, static_cast<double>(r.completed));
  const auto* failed = r.telemetry->find("goodput.failed");
  ASSERT_NE(failed, nullptr);
  const double total_failed = std::accumulate(failed->series_buckets.begin(),
                                              failed->series_buckets.end(), 0.0);
  EXPECT_DOUBLE_EQ(total_failed, static_cast<double>(r.failed));
}

TEST(Failures, ConfigValidation) {
  const auto tr = workload(100);
  SimConfig bad;
  bad.nodes = 4;
  bad.fault_plan.crashes.push_back({9, 0.1});
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::L2sPolicy>()), Error);
  bad = SimConfig{};
  bad.nodes = 4;
  bad.fault_plan.crashes.push_back({1, -0.5});
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::L2sPolicy>()), Error);
}

}  // namespace
}  // namespace l2s::core
