#include <gtest/gtest.h>

#include <map>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/consistent_hash.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

TEST(ConsistentHash, DeterministicOwnership) {
  PolicyFixture f(8);
  ConsistentHashPolicy a;
  ConsistentHashPolicy b;
  a.attach(f.ctx);
  b.attach(f.ctx);
  for (storage::FileId id = 0; id < 500; ++id) EXPECT_EQ(a.owner_of(id), b.owner_of(id));
}

TEST(ConsistentHash, KeysSpreadOverAllNodes) {
  PolicyFixture f(8);
  ConsistentHashPolicy p(128);
  p.attach(f.ctx);
  std::map<int, int> counts;
  const int keys = 20000;
  for (storage::FileId id = 0; id < keys; ++id) ++counts[p.owner_of(id)];
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, keys / 8 / 2) << node;   // within ~2x of fair share
    EXPECT_LT(count, keys / 8 * 2) << node;
  }
}

TEST(ConsistentHash, FailureRemapsOnlyTheDeadNodesKeys) {
  PolicyFixture f(8);
  ConsistentHashPolicy p(128);
  p.attach(f.ctx);
  const int keys = 20000;
  std::vector<int> before(keys);
  for (int id = 0; id < keys; ++id) before[static_cast<std::size_t>(id)] =
      p.owner_of(static_cast<storage::FileId>(id));
  p.on_node_failed(3);
  int moved = 0;
  for (int id = 0; id < keys; ++id) {
    const int now = p.owner_of(static_cast<storage::FileId>(id));
    EXPECT_NE(now, 3);
    if (before[static_cast<std::size_t>(id)] != now) {
      ++moved;
      // Only keys that belonged to the dead node may move.
      EXPECT_EQ(before[static_cast<std::size_t>(id)], 3);
    }
  }
  // ~1/8 of the keys lived on node 3.
  EXPECT_NEAR(static_cast<double>(moved) / keys, 1.0 / 8.0, 0.05);
}

TEST(ConsistentHash, ServiceNodeIsRingOwnerRegardlessOfEntry) {
  PolicyFixture f(4);
  ConsistentHashPolicy p;
  p.attach(f.ctx);
  const auto r = PolicyFixture::request_for(42);
  const int owner = p.owner_of(42);
  for (int entry = 0; entry < 4; ++entry)
    EXPECT_EQ(p.select_service_node(entry, r), owner);
}

TEST(ConsistentHash, EndToEndPerfectLocality) {
  trace::SyntheticSpec spec;
  spec.name = "chash";
  spec.files = 300;
  spec.requests = 6000;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<ConsistentHashPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, tr.request_count());
  // Strict partitioning: the combined cache behaves like one big cache.
  EXPECT_GT(r.hit_rate, 0.9);
  // No load feedback: imbalance well above the traditional server's.
  EXPECT_GT(r.load_cov, 0.3);
}

TEST(ConsistentHash, MoreVirtualNodesBalanceBetter) {
  PolicyFixture f(8);
  auto spread = [&](int vnodes) {
    ConsistentHashPolicy p(vnodes);
    p.attach(f.ctx);
    std::map<int, int> counts;
    for (storage::FileId id = 0; id < 20000; ++id) ++counts[p.owner_of(id)];
    int max = 0;
    for (const auto& [n, c] : counts) max = std::max(max, c);
    return static_cast<double>(max) / (20000.0 / 8.0);
  };
  EXPECT_LT(spread(256), spread(4));
}

}  // namespace
}  // namespace l2s::policy
