// Closed-form cross-checks of the queueing primitives against hand-solved
// textbook cases — the level-2 building blocks of the hierarchical
// analytic solver, pinned to exact algebra rather than to themselves.
#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/queueing/jackson.hpp"
#include "l2sim/queueing/mg1.hpp"
#include "l2sim/queueing/mm1.hpp"
#include "l2sim/queueing/mmc.hpp"

namespace l2s::queueing {
namespace {

constexpr double kTol = 1e-12;

// M/M/1 with lambda = 3, mu = 4: rho = 3/4, L = rho/(1-rho) = 3,
// W = 1/(mu-lambda) = 1, Wq = rho/(mu-lambda) = 3/4.
TEST(QueueingClosedForms, Mm1HandSolved) {
  const Mm1Metrics m = mm1_metrics(3.0, 4.0);
  EXPECT_NEAR(m.utilization, 0.75, kTol);
  EXPECT_NEAR(m.mean_customers, 3.0, kTol);
  EXPECT_NEAR(m.mean_response, 1.0, kTol);
  EXPECT_NEAR(m.mean_waiting, 0.75, kTol);
  EXPECT_TRUE(mm1_stable(3.0, 4.0));
  EXPECT_FALSE(mm1_stable(4.0, 4.0));
  EXPECT_THROW((void)mm1_metrics(4.0, 4.0), Error);
}

// M/M/2 with lambda = 3/2, mu = 1: offered load a = 3/2, rho = 3/4.
// Erlang-B recurrence: B1 = 3/5, B2 = 9/29; Erlang-C = 9/14.
// Wq = C/(c*mu - lambda) = (9/14)/(1/2) = 9/7, W = 9/7 + 1 = 16/7,
// L = lambda * W = 24/7.
TEST(QueueingClosedForms, Mm2ErlangCHandSolved) {
  EXPECT_NEAR(erlang_c(1.5, 2), 9.0 / 14.0, kTol);
  const MmcMetrics m = mmc_metrics(1.5, 1.0, 2);
  EXPECT_NEAR(m.utilization, 0.75, kTol);
  EXPECT_NEAR(m.prob_wait, 9.0 / 14.0, kTol);
  EXPECT_NEAR(m.mean_waiting, 9.0 / 7.0, kTol);
  EXPECT_NEAR(m.mean_response, 16.0 / 7.0, kTol);
  EXPECT_NEAR(m.mean_customers, 24.0 / 7.0, kTol);
}

// M/M/c with c = 1 must collapse to M/M/1 exactly.
TEST(QueueingClosedForms, MmcDegeneratesToMm1) {
  const Mm1Metrics mm1 = mm1_metrics(3.0, 4.0);
  const MmcMetrics mmc = mmc_metrics(3.0, 4.0, 1);
  EXPECT_NEAR(mmc.prob_wait, mm1.utilization, kTol);  // P(wait) = rho for c=1
  EXPECT_NEAR(mmc.mean_waiting, mm1.mean_waiting, kTol);
  EXPECT_NEAR(mmc.mean_response, mm1.mean_response, kTol);
  EXPECT_NEAR(mmc.mean_customers, mm1.mean_customers, kTol);
}

// M/G/1 Pollaczek-Khinchine with lambda = 2, mu = 5, cs2 = 1/2:
// rho = 2/5, Wq = (1 + cs2)/2 * rho/(mu - lambda) = 3/4 * (2/5)/3 = 1/10,
// W = 1/10 + 1/5 = 3/10, L = lambda * W = 3/5.
TEST(QueueingClosedForms, Mg1PollaczekKhinchineHandSolved) {
  const Mg1Metrics m = mg1_metrics(2.0, 5.0, 0.5);
  EXPECT_NEAR(m.utilization, 0.4, kTol);
  EXPECT_NEAR(m.mean_waiting, 0.1, kTol);
  EXPECT_NEAR(m.mean_response, 0.3, kTol);
  EXPECT_NEAR(m.mean_customers, 0.6, kTol);
}

// cs2 = 1 recovers M/M/1; M/D/1 waits exactly half as long.
TEST(QueueingClosedForms, Mg1BracketsMm1AndMd1) {
  const Mm1Metrics mm1 = mm1_metrics(3.0, 4.0);
  const Mg1Metrics exp_service = mg1_metrics(3.0, 4.0, 1.0);
  const Mg1Metrics det_service = md1_metrics(3.0, 4.0);
  EXPECT_NEAR(exp_service.mean_waiting, mm1.mean_waiting, kTol);
  EXPECT_NEAR(det_service.mean_waiting, 0.5 * mm1.mean_waiting, kTol);
}

// Two-station open Jackson network, hand-solved:
//   A: mu = 10, v = 1      capacity 10
//   B: mu = 4,  v = 1/2    capacity 8   <- bottleneck
// At lambda = 2: W_A = 1/(10-2) = 1/8, W_B = 1/(4-1) = 1/3,
// mean response = 1 * 1/8 + 1/2 * 1/3 = 7/24.
TEST(QueueingClosedForms, TwoStationJacksonHandSolved) {
  JacksonNetwork net;
  net.add_station({"A", 10.0, 1.0, 1});
  net.add_station({"B", 4.0, 0.5, 1});
  EXPECT_NEAR(net.max_throughput(), 8.0, kTol);
  EXPECT_EQ(net.bottleneck(), "B");
  EXPECT_TRUE(net.stable_at(7.999));
  EXPECT_FALSE(net.stable_at(8.0));

  const NetworkReport report = net.solve(2.0);
  ASSERT_EQ(report.stations.size(), 2u);
  EXPECT_NEAR(report.stations[0].metrics.mean_response, 0.125, kTol);
  EXPECT_NEAR(report.stations[1].metrics.mean_response, 1.0 / 3.0, kTol);
  EXPECT_NEAR(report.mean_response, 7.0 / 24.0, kTol);
}

// Replicated stations split the flow: a group of 2 replicas at v = 1/2
// each sees lambda/2, and the group's residence is replicas * v * W.
TEST(QueueingClosedForms, JacksonReplicatedStation) {
  JacksonNetwork net;
  net.add_station({"node", 4.0, 0.5, 2});
  EXPECT_NEAR(net.max_throughput(), 8.0, kTol);
  const NetworkReport report = net.solve(2.0);
  // Each replica: lambda = 1, W = 1/3; group residence 2 * 1/2 * 1/3.
  EXPECT_NEAR(report.mean_response, 1.0 / 3.0, kTol);
}

}  // namespace
}  // namespace l2s::queueing
