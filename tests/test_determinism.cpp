// End-to-end determinism: two ClusterSimulations built from the same seed
// must replay identically — same event count, same completions, same
// metrics to the last bit. Every figure in the paper reproduction depends
// on this (reruns must match published numbers), and the DES kernel's
// (time, submission order) tie-break is the load-bearing piece: a heap
// that reordered same-instant events would still "work" but silently skew
// cache contents and latencies between runs.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace seeded_trace() {
  trace::SyntheticSpec spec;
  spec.name = "det";
  spec.files = 300;
  spec.avg_file_kb = 12.0;
  spec.requests = 4000;
  spec.avg_request_kb = 10.0;
  spec.alpha = 0.9;
  spec.seed = 4242;
  return trace::generate(spec);
}

SimConfig config(int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 2 * kMiB;
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failed_deadline, b.failed_deadline);
  EXPECT_EQ(a.failed_retries_exhausted, b.failed_retries_exhausted);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.via_dropped, b.via_dropped);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.remote_fetches, b.remote_fetches);
  // Bit-exact, not EXPECT_NEAR: identical event orders give identical
  // floating-point reductions.
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.load_cov, b.load_cov);
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto tr = seeded_trace();
  for (const auto kind : all_policies()) {
    ClusterSimulation first(config(4), tr, make_policy(kind));
    const auto r1 = first.run();
    const auto events1 = first.scheduler().events_processed();

    ClusterSimulation second(config(4), tr, make_policy(kind));
    const auto r2 = second.run();
    const auto events2 = second.scheduler().events_processed();

    EXPECT_EQ(events1, events2) << "policy " << policy_kind_name(kind);
    expect_identical(r1, r2);
  }
}

TEST(Determinism, FreshTraceGenerationDoesNotPerturbReplay) {
  // Regenerating the trace from its spec (instead of reusing the object)
  // must not change anything either: determinism holds from the seed, not
  // from incidental object identity.
  const auto tr1 = seeded_trace();
  const auto tr2 = seeded_trace();
  ClusterSimulation a(config(2), tr1, make_policy(PolicyKind::kL2s));
  ClusterSimulation b(config(2), tr2, make_policy(PolicyKind::kL2s));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(a.scheduler().events_processed(), b.scheduler().events_processed());
  expect_identical(ra, rb);
}

}  // namespace
}  // namespace l2s::core
