#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/model/surface.hpp"

namespace l2s::model {
namespace {

TEST(Surface, SweepEvaluatesEveryCell) {
  const auto s = sweep({0.0, 0.5, 1.0}, {8.0, 16.0},
                       [](double h, double kb) { return h * 100.0 + kb; });
  ASSERT_EQ(s.values.size(), 3u);
  ASSERT_EQ(s.values[0].size(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 66.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0), 108.0);
}

TEST(Surface, MinMax) {
  const auto s = sweep({0.0, 1.0}, {1.0, 2.0},
                       [](double h, double kb) { return h * 10.0 - kb; });
  EXPECT_DOUBLE_EQ(s.max_value(), 9.0);
  EXPECT_DOUBLE_EQ(s.min_value(), -2.0);
}

TEST(Surface, SideViewEnvelopes) {
  const auto s = sweep({0.0, 1.0}, {1.0, 2.0, 3.0},
                       [](double h, double kb) { return h + kb; });
  const auto side = s.side_view();
  ASSERT_EQ(side.hit_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(side.max_over_sizes[0], 3.0);
  EXPECT_DOUBLE_EQ(side.min_over_sizes[0], 1.0);
  EXPECT_DOUBLE_EQ(side.max_over_sizes[1], 4.0);
  EXPECT_DOUBLE_EQ(side.min_over_sizes[1], 2.0);
}

TEST(Surface, DefaultGridsMatchPaperAxes) {
  const auto hits = default_hit_grid();
  const auto sizes = default_size_grid();
  EXPECT_DOUBLE_EQ(hits.front(), 0.0);
  EXPECT_DOUBLE_EQ(hits.back(), 1.0);
  EXPECT_DOUBLE_EQ(sizes.back(), 128.0);
  EXPECT_GT(sizes.front(), 0.0);
  // Both grids are strictly ascending.
  for (std::size_t i = 1; i < hits.size(); ++i) EXPECT_GT(hits[i], hits[i - 1]);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Surface, RatioDividesElementwise) {
  const auto a = sweep({0.5}, {1.0, 2.0}, [](double, double kb) { return kb * 6.0; });
  const auto b = sweep({0.5}, {1.0, 2.0}, [](double, double kb) { return kb * 2.0; });
  const auto r = ratio_surface(a, b);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 3.0);
}

TEST(Surface, RatioRejectsMismatchedGrids) {
  const auto a = sweep({0.5}, {1.0}, [](double, double) { return 1.0; });
  const auto b = sweep({0.6}, {1.0}, [](double, double) { return 1.0; });
  EXPECT_THROW(ratio_surface(a, b), Error);
}

TEST(Surface, ObliviousSurfaceMonotoneInHitRate) {
  const ClusterModel m{ModelParams{}};
  const auto s = oblivious_surface(m, {0.1, 0.5, 0.9}, {16.0});
  EXPECT_LT(s.at(0, 0), s.at(1, 0));
  EXPECT_LT(s.at(1, 0), s.at(2, 0));
}

TEST(Surface, ConsciousSurfaceDominatesObliviousMidPlane) {
  const ClusterModel m{ModelParams{}};
  const std::vector<double> hits = {0.4, 0.6, 0.8};
  const std::vector<double> sizes = {8.0, 32.0};
  const auto lc = conscious_surface(m, hits, sizes);
  const auto lo = oblivious_surface(m, hits, sizes);
  for (std::size_t i = 0; i < hits.size(); ++i)
    for (std::size_t j = 0; j < sizes.size(); ++j)
      EXPECT_GE(lc.at(i, j), lo.at(i, j)) << i << "," << j;
}

TEST(Surface, AtBoundsChecked) {
  const auto s = sweep({0.5}, {1.0}, [](double, double) { return 1.0; });
  EXPECT_THROW((void)s.at(1, 0), Error);
  EXPECT_THROW((void)s.at(0, 1), Error);
}

}  // namespace
}  // namespace l2s::model
