// Flight-recorder behaviour: determinism of the decision stream (the
// tentpole contract — byte-identical run-over-run, across engine shard
// counts, and under run_parallel), ring retention, warm-up tagging,
// sink-only streaming, and the per-cause overload counters the decision
// stream feeds telemetry.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/obs/decision.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace obs_trace() {
  trace::SyntheticSpec spec;
  spec.name = "obs";
  spec.files = 200;
  spec.avg_file_kb = 8.0;
  spec.requests = 2500;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 7;
  return trace::generate(spec);
}

/// A configuration that exercises many decision kinds: open-loop overload
/// with a static-cap shedder and brownout, a mid-run crash with retries, a
/// capped retry budget and hedging.
SimConfig busy_config() {
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.arrival.open_loop_rate = 3000.0;
  cfg.persistence.mean_requests_per_connection = 2.0;
  cfg.overload.shedder = ShedderKind::kStaticCap;
  cfg.overload.static_cap = 24;
  cfg.overload.brownout = true;
  cfg.overload.retry_budget_ratio = 0.05;
  cfg.overload.retry_budget_burst = 4.0;
  cfg.retry.max_retries = 2;
  cfg.retry.attempt_timeout_seconds = 0.05;
  cfg.fault_plan.crashes.push_back({1, 0.15});
  cfg.obs.enabled = true;
  cfg.obs.capacity = 0;  // unbounded
  return cfg;
}

const obs::DecisionTrace& decisions_of(const SimResult& r) {
  EXPECT_NE(r.decisions, nullptr);
  return *r.decisions;
}

TEST(FlightRecorder, RunOverRunByteIdentical) {
  const auto tr = obs_trace();
  const SimConfig cfg = busy_config();
  const auto a = run_once(tr, cfg, PolicyKind::kL2s);
  const auto b = run_once(tr, cfg, PolicyKind::kL2s);
  const auto& da = decisions_of(a);
  const auto& db = decisions_of(b);
  ASSERT_GT(da.recorded, 0u);
  EXPECT_EQ(da.recorded, db.recorded);
  EXPECT_EQ(da.records, db.records);  // field-by-field, every record
  EXPECT_EQ(obs::trace_digest(da), obs::trace_digest(db));
}

TEST(FlightRecorder, DecisionStreamCoversTheVocabulary) {
  const auto tr = obs_trace();
  const auto r = run_once(tr, busy_config(), PolicyKind::kL2s);
  const auto& d = decisions_of(r);
  std::uint64_t kinds_seen = 0;
  for (const auto& rec : d.records) kinds_seen |= 1ULL << static_cast<int>(rec.kind);
  const auto has = [&](obs::DecisionKind k) {
    return (kinds_seen >> static_cast<int>(k)) & 1ULL;
  };
  EXPECT_TRUE(has(obs::DecisionKind::kDispatch));
  EXPECT_TRUE(has(obs::DecisionKind::kComplete));
  EXPECT_TRUE(has(obs::DecisionKind::kShed));
  EXPECT_TRUE(has(obs::DecisionKind::kRetry));
  EXPECT_TRUE(has(obs::DecisionKind::kNodeCrash));
  // The crash makes some requests fail terminally.
  EXPECT_TRUE(has(obs::DecisionKind::kFailure));
}

TEST(FlightRecorder, ShardCountsProduceIdenticalStreams) {
  const auto tr = obs_trace();
  const SimConfig base = busy_config();
  const auto reference = run_once(tr, base, PolicyKind::kL2s);
  const auto& ref = decisions_of(reference);
  for (const int shards : {1, 2, EngineConfig::kAutoShards}) {
    SimConfig cfg = base;
    cfg.engine.shards = shards;
    const auto r = run_once(tr, cfg, PolicyKind::kL2s);
    const auto& d = decisions_of(r);
    EXPECT_EQ(ref.recorded, d.recorded) << "shards=" << shards;
    EXPECT_EQ(ref.records, d.records) << "shards=" << shards;
  }
}

TEST(FlightRecorder, RunParallelMatchesSerialStreams) {
  const auto tr = obs_trace();
  std::vector<SimConfig> cfgs = {busy_config(), busy_config()};
  cfgs[1].seed = 99;
  cfgs[1].engine.shards = 2;

  std::vector<SimJob> jobs;
  for (const auto& cfg : cfgs) {
    SimJob j;
    j.trace = &tr;
    j.sim = cfg;
    j.kind = PolicyKind::kLard;
    jobs.push_back(std::move(j));
  }
  const auto parallel = run_parallel(jobs);
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto serial = run_once(tr, cfgs[i], PolicyKind::kLard);
    EXPECT_EQ(decisions_of(serial).records, decisions_of(parallel[i]).records)
        << "job " << i;
  }
}

TEST(FlightRecorder, BoundedRingKeepsTheNewestRecords) {
  const auto tr = obs_trace();
  SimConfig cfg = busy_config();
  const auto full = run_once(tr, cfg, PolicyKind::kL2s);
  const auto& df = decisions_of(full);
  ASSERT_GT(df.recorded, 64u);

  cfg.obs.capacity = 64;
  const auto bounded = run_once(tr, cfg, PolicyKind::kL2s);
  const auto& db = decisions_of(bounded);
  EXPECT_EQ(db.recorded, df.recorded);
  EXPECT_EQ(db.capacity, 64u);
  ASSERT_EQ(db.records.size(), 64u);
  EXPECT_EQ(db.dropped, db.recorded - 64u);
  EXPECT_EQ(db.first_index(), db.dropped);
  // The retained window is exactly the newest 64 records of the full run.
  const std::vector<obs::DecisionRecord> tail(df.records.end() - 64, df.records.end());
  EXPECT_EQ(db.records, tail);
}

TEST(FlightRecorder, WarmupFilterDropsPassZero) {
  const auto tr = obs_trace();
  SimConfig cfg = busy_config();
  const auto full = run_once(tr, cfg, PolicyKind::kL2s);
  const auto& df = decisions_of(full);
  std::vector<obs::DecisionRecord> measured;
  for (const auto& rec : df.records) {
    if (rec.pass == 1) measured.push_back(rec);
  }
  ASSERT_GT(measured.size(), 0u);
  ASSERT_LT(measured.size(), df.records.size());  // warm-up decisions exist

  cfg.obs.include_warmup = false;
  const auto filtered = run_once(tr, cfg, PolicyKind::kL2s);
  const auto& dflt = decisions_of(filtered);
  for (const auto& rec : dflt.records) EXPECT_EQ(rec.pass, 1);
  EXPECT_EQ(dflt.records, measured);
}

class Collector final : public obs::DecisionSink {
 public:
  void on_decision(std::uint64_t index, const obs::DecisionRecord& record) override {
    EXPECT_EQ(index, records.size());  // indices are contiguous from 0
    records.push_back(record);
  }
  std::vector<obs::DecisionRecord> records;
};

TEST(FlightRecorder, SinkOnlyModeStreamsWithoutRetaining) {
  const auto tr = obs_trace();
  SimConfig cfg = busy_config();
  const auto enabled = run_once(tr, cfg, PolicyKind::kL2s);

  Collector sink;
  cfg.obs.enabled = false;
  cfg.obs.sink = &sink;
  const auto streamed = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(streamed.decisions, nullptr);  // nothing retained
  EXPECT_EQ(sink.records, decisions_of(enabled).records);
}

TEST(FlightRecorder, TelemetryCauseCountersMatchTheDecisionLog) {
  const auto tr = obs_trace();
  SimConfig cfg = busy_config();
  cfg.telemetry.enabled = true;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  ASSERT_NE(r.telemetry, nullptr);
  const auto& d = decisions_of(r);

  std::uint64_t shed_static = 0;
  std::uint64_t deny_retry = 0;
  std::uint64_t deny_hedge = 0;
  std::uint64_t brownout = 0;
  for (const auto& rec : d.records) {
    if (rec.pass != 1) continue;  // counters reset at the warm-up boundary
    if (rec.kind == obs::DecisionKind::kShed &&
        rec.cause == obs::DecisionCause::kShedStaticCap)
      ++shed_static;
    if (rec.kind == obs::DecisionKind::kBudgetDeny)
      (rec.cause == obs::DecisionCause::kBudgetDeniedHedge ? deny_hedge : deny_retry)++;
    if (rec.kind == obs::DecisionKind::kBrownout) ++brownout;
  }
  ASSERT_GT(shed_static, 0u);

  const auto count_of = [&](const char* name, telemetry::Labels labels) {
    const auto* m = r.telemetry->find(name, std::move(labels));
    return m == nullptr ? std::uint64_t{0} : m->count;
  };
  EXPECT_EQ(count_of("overload.shed", {{"cause", "static_cap"}}), shed_static);
  EXPECT_EQ(count_of("overload.retry_budget_denied", {{"op", "retry"}}), deny_retry);
  EXPECT_EQ(count_of("overload.retry_budget_denied", {{"op", "hedge"}}), deny_hedge);
  std::uint64_t brownout_counted = 0;
  for (const auto& m : r.telemetry->metrics) {
    if (m.name == "overload.brownout") brownout_counted += m.count;
  }
  EXPECT_EQ(brownout_counted, brownout);
  // The shed causes also reconcile with the legacy aggregate counter.
  std::uint64_t shed_total = 0;
  for (const auto& m : r.telemetry->metrics) {
    if (m.name == "overload.shed") shed_total += m.count;
  }
  EXPECT_EQ(shed_total, r.failed_shed);
}

}  // namespace
}  // namespace l2s::core
