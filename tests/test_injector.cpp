#include <gtest/gtest.h>

#include <vector>

#include "l2sim/cluster/injector.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::cluster {
namespace {

trace::Trace make_trace(std::uint64_t requests) {
  storage::FileSet files;
  files.add(kKiB);
  std::vector<trace::Request> reqs(requests, trace::Request{0, kKiB});
  return trace::Trace("inj", std::move(files), std::move(reqs));
}

TEST(Injector, FillsInitialWindow) {
  const auto tr = make_trace(10);
  Injector inj(tr, 4);
  std::vector<std::uint64_t> seen;
  inj.start([&](std::uint64_t seq, const trace::Request&) { seen.push_back(seq); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(inj.in_flight(), 4u);
  EXPECT_FALSE(inj.exhausted());
}

TEST(Injector, CompletionAdmitsNext) {
  const auto tr = make_trace(6);
  Injector inj(tr, 2);
  std::vector<std::uint64_t> seen;
  inj.start([&](std::uint64_t seq, const trace::Request&) { seen.push_back(seq); });
  inj.on_complete();
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.back(), 2u);
  EXPECT_EQ(inj.in_flight(), 2u);
}

TEST(Injector, DrainsCompletely) {
  const auto tr = make_trace(5);
  Injector inj(tr, 3);
  int injected = 0;
  inj.start([&](std::uint64_t, const trace::Request&) { ++injected; });
  while (inj.in_flight() > 0) inj.on_complete();
  EXPECT_EQ(injected, 5);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.in_flight(), 0u);
}

TEST(Injector, WindowLargerThanTrace) {
  const auto tr = make_trace(3);
  Injector inj(tr, 100);
  int injected = 0;
  inj.start([&](std::uint64_t, const trace::Request&) { ++injected; });
  EXPECT_EQ(injected, 3);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.in_flight(), 3u);
}

TEST(Injector, OnCompleteUnderflowRejected) {
  const auto tr = make_trace(1);
  Injector inj(tr, 1);
  inj.start([](std::uint64_t, const trace::Request&) {});
  inj.on_complete();
  EXPECT_THROW(inj.on_complete(), l2s::Error);
}

TEST(Injector, ZeroWindowRejected) {
  const auto tr = make_trace(1);
  EXPECT_THROW(Injector(tr, 0), l2s::Error);
}

TEST(Injector, StartRequiresCallback) {
  const auto tr = make_trace(1);
  Injector inj(tr, 1);
  EXPECT_THROW(inj.start(nullptr), l2s::Error);
}

}  // namespace
}  // namespace l2s::cluster
