#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/des/scheduler.hpp"

namespace l2s::des {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakBySubmissionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler s;
  SimTime observed = -1;
  s.at(100, [&] {
    s.after(50, [&] { observed = s.now(); });
  });
  s.run();
  EXPECT_EQ(observed, 150);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 100) s.after(1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(100, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RejectsSchedulingInThePast) {
  Scheduler s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), l2s::Error);
  EXPECT_THROW(s.after(-1, [] {}), l2s::Error);
}

TEST(Scheduler, CountsProcessedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Scheduler, ResetRestoresPristineState) {
  Scheduler s;
  s.at(5, [] {});
  s.run();
  s.at(10, [] {});
  s.reset();
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 0u);
  // Scheduling at time 0 is legal again.
  s.at(0, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 1u);
}

// Regression: the previous kernel stored events as std::function inside a
// std::priority_queue and had to move them out of top() through a
// const_cast, which both skirted UB and ruled out move-only callables.
// The indexed-heap kernel owns its slots outright, so step() must work
// with events that can only be moved.
TEST(Scheduler, MoveOnlyCallables) {
  Scheduler s;
  int observed = 0;
  auto payload = std::make_unique<int>(41);
  s.at(1, [&observed, p = std::move(payload)] { observed = *p + 1; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(observed, 42);

  // Same through after(), and while another event is pending.
  auto second = std::make_unique<int>(7);
  s.after(5, [&observed, p = std::move(second)] { observed += *p; });
  s.run();
  EXPECT_EQ(observed, 49);
}

// Captures larger than the inline buffer spill to the event arena and must
// still fire exactly once with their state intact.
TEST(Scheduler, OversizedCapturesSpillAndFire) {
  Scheduler s;
  struct Big {
    std::uint64_t a[12];  // 96 bytes: over InlineEvent::kInlineSize
  };
  Big big{};
  for (int i = 0; i < 12; ++i) big.a[i] = static_cast<std::uint64_t>(i + 1);
  std::uint64_t sum = 0;
  s.at(1, [big, &sum] {
    for (const auto v : big.a) sum += v;
  });
  s.run();
  EXPECT_EQ(sum, 78u);

  // Steady state: repeated spills recycle arena blocks instead of growing.
  const auto before = EventArena::stats();
  for (int round = 0; round < 100; ++round) {
    s.after(1, [big, &sum] { sum += big.a[0]; });
    s.run();
  }
  const auto after = EventArena::stats();
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_GE(after.reused_blocks, before.reused_blocks + 99);
}

// Property test: a random interleaving of at/after/run_until must fire
// every event exactly once, in (time, submission order) — the same order a
// sorted stable reference produces.
TEST(Scheduler, RandomScheduleMatchesSortedReference) {
  std::mt19937 gen(20000607);  // HPDC 2000 vintage
  for (int trial = 0; trial < 25; ++trial) {
    Scheduler s;
    // (time, submission index) of every scheduled event, in submission order.
    std::vector<std::pair<SimTime, int>> scheduled;
    std::vector<int> fired;
    int next_id = 0;

    auto schedule_one = [&] {
      const int id = next_id++;
      // Small time range on purpose: collisions exercise the FIFO tie-break.
      const auto t = static_cast<SimTime>(gen() % 50);
      if ((gen() & 1u) != 0u) {
        s.at(s.now() + t, [id, &fired] { fired.push_back(id); });
        scheduled.emplace_back(s.now() + t, id);
      } else {
        s.after(t, [id, &fired] { fired.push_back(id); });
        scheduled.emplace_back(s.now() + t, id);
      }
    };

    const int ops = 200 + static_cast<int>(gen() % 200);
    for (int op = 0; op < ops; ++op) {
      if ((gen() % 4u) != 0u) {
        schedule_one();
      } else {
        s.run_until(s.now() + static_cast<SimTime>(gen() % 30));
      }
    }
    s.run();

    // Stable sort by time reproduces the contract: time-sorted, ties FIFO.
    auto expected = scheduled;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(fired.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(fired[i], expected[i].second) << "trial " << trial << " pos " << i;
    EXPECT_EQ(s.events_processed(), expected.size());
  }
}

TEST(Scheduler, ZeroDelaySelfScheduleRunsAtSameTime) {
  Scheduler s;
  std::vector<int> order;
  s.at(5, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(2); });
  });
  s.at(5, [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was submitted later, so it fires after event 3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace l2s::des
