#include <gtest/gtest.h>

#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/des/scheduler.hpp"

namespace l2s::des {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakBySubmissionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler s;
  SimTime observed = -1;
  s.at(100, [&] {
    s.after(50, [&] { observed = s.now(); });
  });
  s.run();
  EXPECT_EQ(observed, 150);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 100) s.after(1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(100, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RejectsSchedulingInThePast) {
  Scheduler s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), l2s::Error);
  EXPECT_THROW(s.after(-1, [] {}), l2s::Error);
}

TEST(Scheduler, CountsProcessedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Scheduler, ResetRestoresPristineState) {
  Scheduler s;
  s.at(5, [] {});
  s.run();
  s.at(10, [] {});
  s.reset();
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 0u);
  // Scheduling at time 0 is legal again.
  s.at(0, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Scheduler, ZeroDelaySelfScheduleRunsAtSameTime) {
  Scheduler s;
  std::vector<int> order;
  s.at(5, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(2); });
  });
  s.at(5, [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was submitted later, so it fires after event 3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace l2s::des
