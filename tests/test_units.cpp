#include <gtest/gtest.h>

#include "l2sim/common/units.hpp"

namespace l2s {
namespace {

TEST(Units, SecondsToSimtimeRoundsToNearest) {
  EXPECT_EQ(seconds_to_simtime(0.0), 0);
  EXPECT_EQ(seconds_to_simtime(1.0), kNsPerSec);
  EXPECT_EQ(seconds_to_simtime(1e-9), 1);
  EXPECT_EQ(seconds_to_simtime(1.4e-9), 1);
  EXPECT_EQ(seconds_to_simtime(1.6e-9), 2);
}

TEST(Units, SimtimeToSecondsInverts) {
  for (const double s : {0.0, 1e-6, 0.25, 3.0, 12345.678}) {
    EXPECT_NEAR(simtime_to_seconds(seconds_to_simtime(s)), s, 1e-9);
  }
}

TEST(Units, ByteConversions) {
  EXPECT_DOUBLE_EQ(bytes_to_kib(1024), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_kib(512), 0.5);
  EXPECT_EQ(kib_to_bytes(1.0), 1024u);
  EXPECT_EQ(kib_to_bytes(42.9), static_cast<Bytes>(42.9 * 1024 + 0.5));
}

TEST(Units, TransferSeconds) {
  // 1 Gbit/s moves 125 MB/s: 125'000'000 bytes take exactly 1 s.
  EXPECT_NEAR(transfer_seconds(125'000'000, 1e9), 1.0, 1e-12);
  // A 4-byte VIA message is 32 bits: 32 ns on a gigabit link.
  EXPECT_NEAR(transfer_seconds(4, 1e9), 32e-9, 1e-15);
}

TEST(Units, ConstantsAreConsistent) {
  EXPECT_EQ(kMiB, 1024 * kKiB);
  EXPECT_EQ(kGiB, 1024 * kMiB);
  EXPECT_DOUBLE_EQ(simtime_ms(kNsPerSec), 1000.0);
}

}  // namespace
}  // namespace l2s
