#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::trace {
namespace {

TEST(Characterize, ReportsBasicStatistics) {
  SyntheticSpec spec;
  spec.files = 300;
  spec.avg_file_kb = 25.0;
  spec.requests = 30000;
  spec.avg_request_kb = 15.0;
  spec.alpha = 1.0;
  const Trace t = generate(spec);
  const auto c = characterize(t);
  EXPECT_EQ(c.files, 300u);
  EXPECT_EQ(c.requests, 30000u);
  EXPECT_NEAR(c.avg_file_kb, 25.0, 0.3);
  EXPECT_NEAR(c.avg_request_kb, 15.0, 1.2);
  EXPECT_EQ(c.working_set_bytes, t.files().total_bytes());
}

TEST(Characterize, RecoversAlphaApproximately) {
  for (const double alpha : {0.8, 1.0, 1.2}) {
    SyntheticSpec spec;
    spec.files = 2000;
    spec.avg_file_kb = 10.0;
    spec.requests = 200000;
    spec.avg_request_kb = 10.0;
    spec.alpha = alpha;
    spec.seed = 7;
    const auto c = characterize(generate(spec));
    EXPECT_NEAR(c.alpha, alpha, 0.18) << "alpha=" << alpha;
  }
}

TEST(Characterize, ToWorkloadStatsCopiesFields) {
  TraceCharacteristics c;
  c.files = 10;
  c.avg_file_kb = 1.0;
  c.avg_request_kb = 2.0;
  c.alpha = 0.9;
  const auto w = c.to_workload_stats();
  EXPECT_EQ(w.files, 10u);
  EXPECT_DOUBLE_EQ(w.avg_file_kb, 1.0);
  EXPECT_DOUBLE_EQ(w.avg_request_kb, 2.0);
  EXPECT_DOUBLE_EQ(w.alpha, 0.9);
}

TEST(FitZipfAlpha, ExactPowerLawRecovered) {
  // freq(rank) = round(C / (rank+1)^alpha) with alpha = 1.
  std::vector<std::uint64_t> freq;
  for (int r = 1; r <= 500; ++r)
    freq.push_back(static_cast<std::uint64_t>(100000.0 / r + 0.5));
  EXPECT_NEAR(fit_zipf_alpha(freq), 1.0, 0.02);
}

TEST(FitZipfAlpha, IgnoresSingletonTail) {
  std::vector<std::uint64_t> freq;
  for (int r = 1; r <= 100; ++r)
    freq.push_back(static_cast<std::uint64_t>(10000.0 / std::pow(r, 0.8) + 0.5));
  for (int i = 0; i < 5000; ++i) freq.push_back(1);  // singleton files
  EXPECT_NEAR(fit_zipf_alpha(freq), 0.8, 0.1);
}

TEST(FitZipfAlphaMle, RecoversGroundTruthBetterThanRegression) {
  for (const double alpha : {0.78, 1.0, 1.2}) {
    SyntheticSpec spec;
    spec.files = 3000;
    spec.avg_file_kb = 10.0;
    spec.requests = 150000;
    spec.avg_request_kb = 10.0;
    spec.alpha = alpha;
    spec.seed = 11;
    const auto tr = generate(spec);
    std::vector<std::uint64_t> freq(tr.files().count(), 0);
    for (const auto& r : tr.requests()) ++freq[r.file];
    const double mle = fit_zipf_alpha_mle(freq);
    EXPECT_NEAR(mle, alpha, 0.05) << "alpha=" << alpha;
  }
}

TEST(FitZipfAlphaMle, ExactPowerLaw) {
  std::vector<std::uint64_t> freq;
  for (int r = 1; r <= 800; ++r)
    freq.push_back(static_cast<std::uint64_t>(200000.0 / std::pow(r, 0.9) + 0.5));
  EXPECT_NEAR(fit_zipf_alpha_mle(freq), 0.9, 0.02);
}

TEST(FitZipfAlphaMle, TooFewPointsThrows) {
  EXPECT_THROW((void)fit_zipf_alpha_mle({5, 3}), l2s::Error);
}

TEST(FitZipfAlpha, TooFewPointsThrows) {
  EXPECT_THROW((void)fit_zipf_alpha({5, 1, 1, 1}), l2s::Error);
  EXPECT_THROW((void)fit_zipf_alpha({}), l2s::Error);
}

}  // namespace
}  // namespace l2s::trace
