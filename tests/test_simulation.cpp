#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace tiny_trace(std::uint64_t requests = 2000, std::uint64_t files = 200) {
  trace::SyntheticSpec spec;
  spec.name = "tiny";
  spec.files = files;
  spec.avg_file_kb = 12.0;
  spec.requests = requests;
  spec.avg_request_kb = 10.0;
  spec.alpha = 0.9;
  spec.seed = 77;
  return trace::generate(spec);
}

SimConfig small_config(int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 2 * kMiB;
  return cfg;
}

TEST(Simulation, CompletesEveryRequest) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(Simulation, ConnectionsAllClosedAtEnd) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::L2sPolicy>());
  (void)sim.run();
  for (int n = 0; n < 4; ++n) EXPECT_EQ(sim.node(n).open_connections(), 0);
}

TEST(Simulation, HitPlusMissEqualsLookups) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  // Every completed request makes exactly one cache lookup (at its service
  // node), so rates are complementary.
  EXPECT_NEAR(r.hit_rate + r.miss_rate, 1.0, 1e-12);
}

TEST(Simulation, TraditionalNeverForwards) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.forwarded, 0u);
  EXPECT_EQ(r.via_messages, 0u);
}

TEST(Simulation, LardForwardsEverythingOnMultiNode) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::LardPolicy>());
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.forwarded_fraction, 1.0);
}

TEST(Simulation, L2sForwardsLessThanLard) {
  const auto tr = tiny_trace();
  ClusterSimulation l2s_sim(small_config(4), tr, std::make_unique<policy::L2sPolicy>());
  const auto r = l2s_sim.run();
  EXPECT_LT(r.forwarded_fraction, 1.0);
  EXPECT_GT(r.forwarded_fraction, 0.0);
}

TEST(Simulation, SingleNodeDegeneratesForAllPolicies) {
  const auto tr = tiny_trace(1000);
  double throughput[3];
  int i = 0;
  for (auto kind : {PolicyKind::kTraditional, PolicyKind::kLard, PolicyKind::kL2s}) {
    const auto r = run_once(tr, small_config(1), kind);
    EXPECT_EQ(r.forwarded, 0u) << policy_kind_name(kind);
    throughput[i++] = r.throughput_rps;
  }
  // All three reduce to the same sequential server.
  EXPECT_NEAR(throughput[0], throughput[1], throughput[0] * 0.02);
  EXPECT_NEAR(throughput[0], throughput[2], throughput[0] * 0.02);
}

TEST(Simulation, DeterministicAcrossRuns) {
  const auto tr = tiny_trace();
  ClusterSimulation a(small_config(4), tr, std::make_unique<policy::L2sPolicy>());
  ClusterSimulation b(small_config(4), tr, std::make_unique<policy::L2sPolicy>());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_DOUBLE_EQ(ra.throughput_rps, rb.throughput_rps);
  EXPECT_DOUBLE_EQ(ra.hit_rate, rb.hit_rate);
  EXPECT_EQ(ra.forwarded, rb.forwarded);
  EXPECT_EQ(ra.via_messages, rb.via_messages);
}

TEST(Simulation, WarmupImprovesHitRate) {
  const auto tr = tiny_trace(4000);
  SimConfig warm = small_config(2);
  SimConfig cold = small_config(2);
  cold.warmup = false;
  const auto rw =
      ClusterSimulation(warm, tr, std::make_unique<policy::TraditionalPolicy>()).run();
  const auto rc =
      ClusterSimulation(cold, tr, std::make_unique<policy::TraditionalPolicy>()).run();
  EXPECT_GT(rw.hit_rate, rc.hit_rate);
}

TEST(Simulation, UtilizationWithinBounds) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(4), tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GE(r.cpu_idle_fraction, 0.0);
  EXPECT_LE(r.cpu_idle_fraction, 1.0);
  ASSERT_EQ(r.node_cpu_utilization.size(), 4u);
  for (const double u : r.node_cpu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(Simulation, ResponseTimesPositive) {
  const auto tr = tiny_trace();
  ClusterSimulation sim(small_config(2), tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_GT(r.mean_response_ms, 0.0);
  EXPECT_GE(r.max_response_ms, r.mean_response_ms);
}

TEST(Simulation, RunTwiceRejected) {
  const auto tr = tiny_trace(100);
  ClusterSimulation sim(small_config(2), tr, std::make_unique<policy::TraditionalPolicy>());
  (void)sim.run();
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulation, ConfigValidation) {
  const auto tr = tiny_trace(100);
  SimConfig bad = small_config(0);
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::TraditionalPolicy>()),
               Error);
  bad = small_config(2);
  bad.admission.buffer_slots_per_node = 0;
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::TraditionalPolicy>()),
               Error);
  EXPECT_THROW(ClusterSimulation(small_config(2), tr, nullptr), Error);
}

TEST(Simulation, EmptyTraceRejected) {
  const trace::Trace empty;
  EXPECT_THROW(
      ClusterSimulation(small_config(2), empty, std::make_unique<policy::TraditionalPolicy>()),
      Error);
}

TEST(Simulation, ResultCarriesMetadata) {
  const auto tr = tiny_trace(500);
  const auto r = run_once(tr, small_config(3), PolicyKind::kL2s);
  EXPECT_EQ(r.policy, "l2s");
  EXPECT_EQ(r.trace, "tiny");
  EXPECT_EQ(r.nodes, 3);
  EXPECT_FALSE(r.describe().empty());
}

}  // namespace
}  // namespace l2s::core
