// The deterministic chaos harness (ctest -L chaos): non-stationary
// arrivals (flash crowd, diurnal swing, popularity churn) composed with a
// fault::FaultPlan (crash, lossy links, heartbeat detection) and the full
// overload defense stack — replayed bit-identically run-over-run, across
// DES shard counts, and under core::run_parallel. A chaos experiment that
// cannot be replayed cannot be debugged; these suites pin that every
// scenario here is a pure function of (trace, config, seed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace chaos_trace() {
  trace::SyntheticSpec spec;
  spec.name = "chaos";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  // Long enough that the arrival phase outlasts the collapse transient:
  // at 3x the nominal 1600/s the flash holds for over a second of
  // arrivals, so defenses have load left to shed when the signal latches.
  spec.requests = 9000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 1337;
  return trace::generate(spec);
}

struct Scenario {
  std::string name;
  SimConfig cfg;
  PolicyKind kind;
};

/// Flash crowd at 3x landing right as a node crashes, over lossy links —
/// the metastable-failure recipe — in an undefended and a fully defended
/// variant, plus a diurnal + churn scenario for shape coverage.
std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  SimConfig base;
  base.nodes = 4;
  base.node.cache_bytes = 2 * kMiB;
  // Nominal 1600/s runs the warm 4-node cluster around one third
  // utilization; a 3x flash (4800/s) exceeds the ~3900/s capacity of the
  // 3 survivors after the crash, so the trigger overloads the cluster
  // without the defense-free baseline being doomed at nominal load.
  base.arrival.open_loop_rate = 1600.0;
  // Deep admission buffers: the failure mode under the flash is queueing
  // delay (the metastable ingredient), not window rejection.
  base.admission.buffer_slots_per_node = 256;
  base.retry.max_retries = 2;
  base.retry.attempt_timeout_seconds = 0.1;
  base.retry.deadline_seconds = 0.5;
  base.fault_plan.crashes.push_back({1, 0.15});
  base.fault_plan.message_faults.push_back(
      {.loss_prob = 0.01, .extra_delay_seconds = 0.0002, .duplicate_prob = 0.02});
  base.detection.heartbeats = true;
  base.detection.period_seconds = 0.02;
  base.detection.readmit_after_fresh = 3;
  base.goodput_interval_seconds = 0.1;

  {
    Scenario s;
    s.name = "flash-crash-undefended";
    s.cfg = base;
    s.cfg.arrival.shape = ArrivalShape::kFlashCrowd;
    s.cfg.arrival.flash_at_seconds = 0.15;
    s.cfg.arrival.flash_factor = 3.0;
    s.cfg.arrival.flash_ramp_seconds = 0.05;
    s.kind = PolicyKind::kL2s;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "flash-crash-defended";
    s.cfg = base;
    s.cfg.arrival.shape = ArrivalShape::kFlashCrowd;
    s.cfg.arrival.flash_at_seconds = 0.15;
    s.cfg.arrival.flash_factor = 3.0;
    s.cfg.arrival.flash_ramp_seconds = 0.05;
    // AIMD admission window: failures shrink the in-flight cap, bounding
    // the standing queue (and therefore sojourn) directly — the defense
    // that keeps attempts under the 0.1 s timeout so retries never storm.
    s.cfg.overload.shedder = ShedderKind::kAimd;
    s.cfg.overload.aimd_increase = 16.0;
    s.cfg.overload.delay_window_seconds = 0.05;
    s.cfg.overload.retry_budget_ratio = 0.1;
    s.cfg.overload.retry_budget_burst = 16.0;
    s.cfg.overload.brownout = true;
    s.cfg.overload.brownout_forward_delay_seconds = 0.08;
    s.cfg.overload.brownout_service_delay_seconds = 0.2;
    s.kind = PolicyKind::kL2s;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "diurnal-churn-hedged";
    s.cfg = base;
    s.cfg.arrival.shape = ArrivalShape::kDiurnal;
    s.cfg.arrival.diurnal_period_seconds = 0.5;
    s.cfg.arrival.diurnal_amplitude = 0.6;
    s.cfg.arrival.churn_period_seconds = 0.2;
    s.cfg.arrival.churn_stride = 41;
    s.cfg.overload.hedge_delay_seconds = 0.05;
    s.cfg.overload.retry_budget_ratio = 0.2;
    s.kind = PolicyKind::kLard;
    out.push_back(std::move(s));
  }
  return out;
}

void expect_partition(const SimResult& r, std::uint64_t requests) {
  EXPECT_EQ(r.completed + r.failed, requests);
  EXPECT_EQ(r.failed, r.failed_deadline + r.failed_retries_exhausted +
                          r.failed_rejected + r.failed_shed);
}

TEST(Chaos, ScenariosReplayBitIdentically) {
  const auto tr = chaos_trace();
  for (const auto& s : scenarios()) {
    const auto r1 = run_once(tr, s.cfg, s.kind);
    const auto r2 = run_once(tr, s.cfg, s.kind);
    EXPECT_EQ(result_digest_hex(r1), result_digest_hex(r2)) << s.name;
    expect_partition(r1, tr.request_count());
  }
}

TEST(Chaos, ShardedEngineMatchesSerialOnEveryScenario) {
  const auto tr = chaos_trace();
  for (const auto& s : scenarios()) {
    const std::string expected = result_digest_hex(run_once(tr, s.cfg, s.kind));
    for (const int shards : {1, 2, EngineConfig::kAutoShards}) {
      SimConfig cfg = s.cfg;
      cfg.engine.shards = shards;
      const auto r = run_once(tr, cfg, s.kind);
      EXPECT_EQ(expected, result_digest_hex(r)) << s.name << " shards=" << shards;
    }
  }
}

TEST(Chaos, RunParallelMatchesSerialOnEveryScenario) {
  const auto tr = chaos_trace();
  const auto ss = scenarios();
  std::vector<SimJob> jobs;
  for (const auto& s : ss) {
    SimJob j;
    j.trace = &tr;
    j.sim = s.cfg;
    j.kind = s.kind;
    jobs.push_back(std::move(j));
  }
  const auto parallel = run_parallel(jobs);
  ASSERT_EQ(parallel.size(), ss.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    const auto serial = run_once(tr, ss[i].cfg, ss[i].kind);
    EXPECT_EQ(result_digest_hex(serial), result_digest_hex(parallel[i]))
        << ss[i].name;
  }
}

TEST(Chaos, DefensesActuallyEngage) {
  // The defended scenario is not a placebo: the shedder refuses work and
  // the undefended twin does not shed at all (it fails the hard way).
  const auto tr = chaos_trace();
  const auto ss = scenarios();
  ASSERT_EQ(ss[0].name, "flash-crash-undefended");
  ASSERT_EQ(ss[1].name, "flash-crash-defended");
  const auto undefended = run_once(tr, ss[0].cfg, ss[0].kind);
  const auto defended = run_once(tr, ss[1].cfg, ss[1].kind);
  EXPECT_EQ(undefended.failed_shed, 0u);
  EXPECT_GT(defended.failed_shed, 0u);
  expect_partition(defended, tr.request_count());
  // The metastable story in one assertion pair: the undefended twin
  // collapses (most requests die in the retry storm), while shedding the
  // excess lets the defended cluster complete the large majority.
  const double n = static_cast<double>(tr.request_count());
  EXPECT_LT(static_cast<double>(undefended.completed), 0.40 * n);
  EXPECT_GT(static_cast<double>(defended.completed), 0.70 * n);
}

TEST(Chaos, ChaosSeedSelectsTheReplay) {
  // The seed is the replay handle: same seed, same universe; different
  // seed, different loss/gap draws (self-consistent either way).
  const auto tr = chaos_trace();
  auto cfg = scenarios()[1].cfg;
  const auto a1 = run_once(tr, cfg, PolicyKind::kL2s);
  const auto a2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest_hex(a1), result_digest_hex(a2));
  cfg.seed = 0xD15EA5E;
  const auto b1 = run_once(tr, cfg, PolicyKind::kL2s);
  const auto b2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest_hex(b1), result_digest_hex(b2));
  EXPECT_NE(result_digest_hex(a1), result_digest_hex(b1));
}

}  // namespace
}  // namespace l2s::core
