// Suite for the DES cell planner.
#include <gtest/gtest.h>

#include <set>

#include "l2sim/analytic/planner.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::analytic {
namespace {

HierarchicalParams base_params() {
  HierarchicalParams p;
  p.model.replication = 0.15;
  p.model.alpha = 0.9;
  p.workload.files = 20000;
  p.workload.avg_file_kb = 12.0;
  p.workload.avg_request_kb = 8.0;
  p.workload.alpha = 0.9;
  return p;
}

PlanAxes small_axes() {
  PlanAxes axes;
  axes.node_counts = {1, 2, 4, 8};
  axes.cache_mib = {2.0, 8.0, 32.0};
  return axes;
}

TEST(AnalyticPlanner, CoversGridRankedByScore) {
  const Plan plan = plan_cells(base_params(), small_axes());
  ASSERT_EQ(plan.cells.size(), 12u);
  for (std::size_t i = 1; i < plan.cells.size(); ++i)
    EXPECT_GE(plan.cells[i - 1].score, plan.cells[i].score);
  std::set<std::pair<int, double>> seen;
  for (const auto& c : plan.cells) {
    EXPECT_GE(c.score, 0.0);
    EXPECT_LE(c.score, 1.0 + 1e-12);
    EXPECT_GT(c.conscious_rps, 0.0);
    EXPECT_GT(c.oblivious_rps, 0.0);
    EXPECT_FALSE(c.bottleneck.empty());
    seen.insert({c.nodes, c.cache_mib});
  }
  EXPECT_EQ(seen.size(), 12u);  // every grid cell exactly once
}

// The predicted surfaces line up with the ranked cells and support
// off-grid interpolation via Surface::value_at.
TEST(AnalyticPlanner, SurfacesMatchCells) {
  const PlanAxes axes = small_axes();
  const Plan plan = plan_cells(base_params(), axes);
  ASSERT_EQ(plan.conscious.hit_rates.size(), axes.node_counts.size());
  ASSERT_EQ(plan.conscious.sizes_kb.size(), axes.cache_mib.size());
  for (const auto& c : plan.cells) {
    const double predicted =
        plan.conscious.value_at(static_cast<double>(c.nodes), c.cache_mib);
    EXPECT_DOUBLE_EQ(predicted, c.conscious_rps)
        << "cell n=" << c.nodes << " c=" << c.cache_mib;
  }
  // Off-grid query interpolates between columns, staying inside the hull.
  const double mid = plan.conscious.value_at(2.0, 5.0);
  const double lo = plan.conscious.value_at(2.0, 2.0);
  const double hi = plan.conscious.value_at(2.0, 8.0);
  EXPECT_GE(mid, std::min(lo, hi) - 1e-9);
  EXPECT_LE(mid, std::max(lo, hi) + 1e-9);
}

TEST(AnalyticPlanner, TopCellsBecomeRunnableSpecs) {
  const Plan plan = plan_cells(base_params(), small_axes());
  trace::SyntheticSpec synth;
  synth.name = "planner-base";
  synth.files = 500;
  synth.avg_file_kb = 8.0;
  synth.requests = 4000;
  synth.avg_request_kb = 6.0;
  synth.alpha = 0.9;
  core::ExperimentSpec base;
  base.name = "planner-base";
  base.trace = core::TraceSpec::synth(synth);

  const auto specs = plan_to_specs(base, plan, 3);
  ASSERT_EQ(specs.size(), 3u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].sim.nodes, plan.cells[i].nodes);
    EXPECT_EQ(specs[i].sim.node.cache_bytes,
              static_cast<Bytes>(plan.cells[i].cache_mib * kMiB));
    names.insert(specs[i].name);
  }
  EXPECT_EQ(names.size(), 3u);

  // And a planned spec actually runs on the analytic engine.
  core::ExperimentSpec first = specs.front();
  first.analytic.cache = true;
  const core::ModelResult r = core::run_model(first);
  EXPECT_GT(r.throughput_rps, 0.0);

  // Asking for more cells than the grid holds returns the whole plan.
  EXPECT_EQ(plan_to_specs(base, plan, 100).size(), plan.cells.size());
}

TEST(AnalyticPlanner, RejectsEmptyAxes) {
  PlanAxes axes;
  axes.node_counts.clear();
  EXPECT_THROW((void)plan_cells(base_params(), axes), Error);
}

}  // namespace
}  // namespace l2s::analytic
