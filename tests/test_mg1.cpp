#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/queueing/mg1.hpp"
#include "l2sim/queueing/mm1.hpp"

namespace l2s::queueing {
namespace {

TEST(Mg1, Cs2OneRecoversMm1) {
  const auto pk = mg1_metrics(0.7, 1.0, 1.0);
  const auto mm = mm1_metrics(0.7, 1.0);
  EXPECT_NEAR(pk.mean_waiting, mm.mean_waiting, 1e-12);
  EXPECT_NEAR(pk.mean_response, mm.mean_response, 1e-12);
  EXPECT_NEAR(pk.mean_customers, mm.mean_customers, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWaiting) {
  const auto md = md1_metrics(0.8, 1.0);
  const auto mm = mm1_metrics(0.8, 1.0);
  EXPECT_NEAR(md.mean_waiting, 0.5 * mm.mean_waiting, 1e-12);
  // Response includes service: strictly between service and M/M/1.
  EXPECT_GT(md.mean_response, 1.0);
  EXPECT_LT(md.mean_response, mm.mean_response);
}

TEST(Mg1, WaitingGrowsWithVariability) {
  double prev = 0.0;
  for (const double cs2 : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const auto m = mg1_metrics(0.6, 1.0, cs2);
    EXPECT_GT(m.mean_waiting, prev);
    prev = m.mean_waiting;
  }
}

TEST(Mg1, LittlesLaw) {
  const auto m = mg1_metrics(3.0, 5.0, 0.25);
  EXPECT_NEAR(m.mean_customers, 3.0 * m.mean_response, 1e-12);
}

TEST(Mg1, KnownMd1Value) {
  // M/D/1 at rho = 0.5, mu = 1: Wq = 0.5 * 0.5 / 0.5 = 0.5.
  EXPECT_NEAR(md1_metrics(0.5, 1.0).mean_waiting, 0.5, 1e-12);
}

TEST(Mg1, Validation) {
  EXPECT_THROW((void)mg1_metrics(1.0, 1.0, 0.0), Error);
  EXPECT_THROW((void)mg1_metrics(0.5, 0.0, 0.0), Error);
  EXPECT_THROW((void)mg1_metrics(0.5, 1.0, -1.0), Error);
  EXPECT_THROW((void)mg1_metrics(-0.5, 1.0, 0.0), Error);
}

TEST(Mg1, ZeroLoad) {
  const auto m = md1_metrics(0.0, 4.0);
  EXPECT_DOUBLE_EQ(m.mean_waiting, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_response, 0.25);
}

}  // namespace
}  // namespace l2s::queueing
