#include <gtest/gtest.h>

#include <sstream>

#include "l2sim/common/error.hpp"
#include "l2sim/trace/binary_io.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::trace {
namespace {

Trace sample_trace() {
  SyntheticSpec spec;
  spec.name = "bin-test";
  spec.files = 120;
  spec.avg_file_kb = 8.0;
  spec.requests = 2000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 1.0;
  spec.seed = 17;
  return generate(spec);
}

TEST(BinaryIo, RoundTripsExactly) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(original, buf);
  const Trace copy = read_binary(buf);

  EXPECT_EQ(copy.name(), original.name());
  ASSERT_EQ(copy.files().count(), original.files().count());
  for (FileId id = 0; id < original.files().count(); ++id)
    EXPECT_EQ(copy.files().size_of(id), original.files().size_of(id));
  ASSERT_EQ(copy.request_count(), original.request_count());
  for (std::size_t i = 0; i < original.requests().size(); ++i) {
    EXPECT_EQ(copy.requests()[i].file, original.requests()[i].file);
    EXPECT_EQ(copy.requests()[i].bytes, original.requests()[i].bytes);
  }
  EXPECT_EQ(copy.total_request_bytes(), original.total_request_bytes());
}

TEST(BinaryIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/l2sim_trace_test.l2st";
  write_binary_file(original, path);
  const Trace copy = read_binary_file(path);
  EXPECT_EQ(copy.request_count(), original.request_count());
  EXPECT_EQ(copy.files().total_bytes(), original.files().total_bytes());
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE this is not a trace";
  EXPECT_THROW((void)read_binary(buf), l2s::Error);
}

TEST(BinaryIo, RejectsTruncation) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(original, buf);
  const std::string full = buf.str();
  // Chop at several points: header, file table, request table.
  for (const std::size_t cut : {3ul, 10ul, 40ul, full.size() / 2, full.size() - 5}) {
    std::stringstream cut_buf(full.substr(0, cut));
    EXPECT_THROW((void)read_binary(cut_buf), l2s::Error) << "cut at " << cut;
  }
}

TEST(BinaryIo, RejectsDanglingFileReference) {
  // Handcraft a v1 stream whose request references a file id out of range.
  std::stringstream buf;
  buf.write("L2ST", 4);
  auto put32 = [&](std::uint32_t v) { buf.write(reinterpret_cast<char*>(&v), 4); };
  auto put64 = [&](std::uint64_t v) { buf.write(reinterpret_cast<char*>(&v), 8); };
  put32(kBinaryTraceVersion);
  put32(1);
  buf << "x";
  put64(1);        // one file
  put64(1024);     // of 1 KB
  put64(1);        // one request
  put32(7);        // referencing file 7 (invalid)
  put64(1024);
  EXPECT_THROW((void)read_binary(buf), l2s::Error);
}

TEST(BinaryIo, RejectsWrongVersion) {
  std::stringstream buf;
  buf.write("L2ST", 4);
  const std::uint32_t bad_version = 999;
  buf.write(reinterpret_cast<const char*>(&bad_version), 4);
  EXPECT_THROW((void)read_binary(buf), l2s::Error);
}

}  // namespace
}  // namespace l2s::trace
