// Open-loop (Poisson arrival) mode and its agreement with the analytic
// latency model.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/model/latency.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace cached_workload(std::uint64_t requests = 20000) {
  // Everything fits in cache after warm-up: the latency path is pure
  // CPU/NIC/router, matching the model's full-hit configuration.
  trace::SyntheticSpec spec;
  spec.name = "openloop";
  spec.files = 50;
  spec.avg_file_kb = 16.0;
  spec.avg_request_kb = 16.0;
  spec.size_sigma = 0.1;
  spec.alpha = 0.9;
  spec.requests = requests;
  return trace::generate(spec);
}

SimConfig open_loop_config(double rate) {
  SimConfig cfg;
  cfg.nodes = 1;
  cfg.node.cache_bytes = 8 * kMiB;
  cfg.arrival.open_loop_rate = rate;
  cfg.admission.buffer_slots_per_node = 1000;  // ample: we study latency, not loss
  return cfg;
}

TEST(OpenLoop, CompletesEverythingBelowSaturation) {
  const auto tr = cached_workload(5000);
  // Single node, full hit: capacity ~ 1/(parse + reply(16KB)) ~ 600/s.
  const auto r = run_once(tr, open_loop_config(200.0), PolicyKind::kTraditional);
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_EQ(r.failed, 0u);
  // Open loop at 200/s: measured throughput matches the arrival rate, not
  // the capacity.
  EXPECT_NEAR(r.throughput_rps, 200.0, 20.0);
}

TEST(OpenLoop, LatencyGrowsWithLoad) {
  const auto tr = cached_workload(8000);
  double prev = 0.0;
  for (const double rate : {100.0, 300.0, 500.0}) {
    const auto r = run_once(tr, open_loop_config(rate), PolicyKind::kTraditional);
    EXPECT_GT(r.mean_response_ms, prev) << rate;
    prev = r.mean_response_ms;
  }
}

TEST(OpenLoop, LatencyBracketedByModel) {
  // The model is M/M/1 (exponential service); the simulator's service
  // times are deterministic, so queueing is milder (M/D/1-like): the
  // simulated mean response must lie between the no-queueing service sum
  // and the M/M/1 prediction at the same load.
  const auto tr = cached_workload(30000);
  const double rate = 400.0;  // ~65% of the single-node capacity
  const auto r = run_once(tr, open_loop_config(rate), PolicyKind::kTraditional);

  model::ModelParams mp;
  mp.nodes = 1;
  const model::ClusterModel m(mp);
  const auto net = m.build_network(1.0, 0.0, 16.0, 16.0);
  const double service_sum_ms = net.solve(1e-6).mean_response * 1e3;
  const double mm1_ms = net.solve(rate).mean_response * 1e3;

  EXPECT_GT(r.mean_response_ms, service_sum_ms);
  EXPECT_LT(r.mean_response_ms, 1.2 * mm1_ms);
}

TEST(OpenLoop, OverloadDropsInsteadOfDiverging) {
  const auto tr = cached_workload(8000);
  SimConfig cfg = open_loop_config(5000.0);  // far beyond 1-node capacity
  cfg.admission.buffer_slots_per_node = 50;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  // Completed throughput sits near capacity, not near the offered load.
  EXPECT_LT(r.throughput_rps, 1000.0);
}

TEST(OpenLoop, PercentilesOrdered) {
  const auto tr = cached_workload(20000);
  const auto r = run_once(tr, open_loop_config(450.0), PolicyKind::kTraditional);
  EXPECT_GT(r.p50_response_ms, 0.0);
  EXPECT_LE(r.p50_response_ms, r.p95_response_ms);
  EXPECT_LE(r.p95_response_ms, r.p99_response_ms);
  EXPECT_LE(r.p99_response_ms, r.max_response_ms + 1e-9);
}

TEST(OpenLoop, WorksWithL2sOnCluster) {
  const auto tr = cached_workload(10000);
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 8 * kMiB;
  cfg.arrival.open_loop_rate = 800.0;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
  EXPECT_NEAR(r.throughput_rps, 800.0, 120.0);
}

TEST(OpenLoop, ValidatesRate) {
  const auto tr = cached_workload(100);
  SimConfig cfg = open_loop_config(-1.0);
  EXPECT_THROW(ClusterSimulation(cfg, tr, std::make_unique<policy::TraditionalPolicy>()),
               Error);
}

}  // namespace
}  // namespace l2s::core
