// Persistent (HTTP/1.1-style) connection support: multiple requests per
// connection, with either connection hand-off or back-end request
// forwarding when the content lives elsewhere.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload(std::uint64_t requests = 4000) {
  trace::SyntheticSpec spec;
  spec.name = "phttp";
  spec.files = 300;
  spec.avg_file_kb = 12.0;
  spec.requests = requests;
  spec.avg_request_kb = 10.0;
  spec.alpha = 0.9;
  spec.seed = 21;
  return trace::generate(spec);
}

SimConfig persistent_config(int nodes, double mean_rpc, PersistentMode mode) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.persistence.mean_requests_per_connection = mean_rpc;
  cfg.persistence.mode = mode;
  return cfg;
}

TEST(Persistent, AllRequestsStillComplete) {
  const auto tr = workload();
  for (const auto mode : {PersistentMode::kConnectionHandoff, PersistentMode::kBackendForwarding}) {
    for (const auto kind : all_policies()) {
      ClusterSimulation sim(persistent_config(4, 4.0, mode), tr, make_policy(kind));
      const auto r = sim.run();
      EXPECT_EQ(r.completed, tr.request_count()) << policy_kind_name(kind);
      for (int n = 0; n < 4; ++n) EXPECT_EQ(sim.node(n).open_connections(), 0);
    }
  }
}

TEST(Persistent, ConnectionCountMatchesMeanRoughly) {
  const auto tr = workload(8000);
  const auto cfg = persistent_config(4, 4.0, PersistentMode::kConnectionHandoff);
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_LT(r.connections, r.completed);
  const double mean = static_cast<double>(r.completed) / static_cast<double>(r.connections);
  EXPECT_NEAR(mean, 4.0, 1.0);
}

TEST(Persistent, Http10IsOneRequestPerConnection) {
  const auto tr = workload();
  const auto cfg = persistent_config(4, 1.0, PersistentMode::kConnectionHandoff);
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.connections, r.completed);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.remote_fetches, 0u);
}

TEST(Persistent, HandoffModeMigratesNeverFetches) {
  const auto tr = workload();
  const auto cfg = persistent_config(4, 6.0, PersistentMode::kConnectionHandoff);
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GT(r.migrations, 0u);
  EXPECT_EQ(r.remote_fetches, 0u);
}

TEST(Persistent, ForwardingModeFetchesNeverMigrates) {
  const auto tr = workload();
  const auto cfg = persistent_config(4, 6.0, PersistentMode::kBackendForwarding);
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_GT(r.remote_fetches, 0u);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(Persistent, IidWorkloadsMakeStickyConnectionsMigrate) {
  // Under IID request streams, consecutive requests of a connection are
  // unrelated, so "stay where the connection is" loses to per-request
  // placement: most subsequent requests need a migration and the
  // forwarded fraction *rises* with connection length. (With temporally
  // correlated workloads the effect reverses — see the persistent_study
  // bench.) Either way, hit rates must stay locality-conscious.
  const auto tr = workload(8000);
  const auto r1 =
      [&] {
        ClusterSimulation sim(persistent_config(4, 1.0, PersistentMode::kConnectionHandoff),
                              tr, std::make_unique<policy::L2sPolicy>());
        return sim.run();
      }();
  const auto r8 =
      [&] {
        ClusterSimulation sim(persistent_config(4, 8.0, PersistentMode::kConnectionHandoff),
                              tr, std::make_unique<policy::L2sPolicy>());
        return sim.run();
      }();
  EXPECT_GT(r8.forwarded_fraction, r1.forwarded_fraction);
  EXPECT_GT(r8.migrations, 0u);
  EXPECT_GT(r8.hit_rate, 0.8);
}

TEST(Persistent, TraditionalStaysPutAcrossRequests) {
  // The traditional policy returns the current node for every subsequent
  // request (select falls back to entry), so persistent connections never
  // migrate or fetch.
  const auto tr = workload();
  for (const auto mode :
       {PersistentMode::kConnectionHandoff, PersistentMode::kBackendForwarding}) {
    ClusterSimulation sim(persistent_config(4, 5.0, mode), tr,
                          std::make_unique<policy::TraditionalPolicy>());
    const auto r = sim.run();
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_EQ(r.remote_fetches, 0u);
    EXPECT_EQ(r.forwarded, 0u);
  }
}

TEST(Persistent, LardKeepsWorkingWithPersistentConnections) {
  const auto tr = workload();
  for (const auto mode :
       {PersistentMode::kConnectionHandoff, PersistentMode::kBackendForwarding}) {
    ClusterSimulation sim(persistent_config(4, 4.0, mode), tr,
                          std::make_unique<policy::LardPolicy>());
    const auto r = sim.run();
    EXPECT_EQ(r.completed, tr.request_count());
    EXPECT_GT(r.throughput_rps, 0.0);
  }
}

TEST(Persistent, DeterministicAcrossRuns) {
  const auto tr = workload();
  const auto cfg = persistent_config(4, 4.0, PersistentMode::kConnectionHandoff);
  ClusterSimulation a(cfg, tr, std::make_unique<policy::L2sPolicy>());
  ClusterSimulation b(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.connections, rb.connections);
  EXPECT_EQ(ra.migrations, rb.migrations);
  EXPECT_DOUBLE_EQ(ra.throughput_rps, rb.throughput_rps);
}

TEST(Persistent, ConfigValidation) {
  const auto tr = workload(100);
  SimConfig bad = persistent_config(2, 0.5, PersistentMode::kConnectionHandoff);
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::L2sPolicy>()), Error);
}

}  // namespace
}  // namespace l2s::core
