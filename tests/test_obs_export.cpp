// Decision-trace exporter round-trips: the CSV must reproduce every
// retained record field for field, and the combined Chrome trace must parse
// back with a real JSON parser — decision instants on the node tracks, flow
// arrows pairing up across cross-node dispatches, and shard sample series
// landing on their own named processes.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/obs/exporters.hpp"
#include "l2sim/telemetry/exporters.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::obs {
namespace {

// --- a tiny recursive-descent JSON parser (tests only) ---------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  [[nodiscard]] const JsonObject& object() const { return std::get<JsonObject>(v); }
  [[nodiscard]] const JsonArray& array() const { return std::get<JsonArray>(v); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
  [[nodiscard]] double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad literal at " + std::to_string(pos_));
    }
    pos_ += word.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // tests never need the decoded code point
            out += '?';
            break;
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number at " + std::to_string(pos_));
    return std::stod(text_.substr(start, pos_ - start));
  }

  JsonValue array() {
    expect('[');
    JsonArray items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(items)};
    }
    while (true) {
      items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(items)};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(members)};
    }
    while (true) {
      std::string key = string();
      expect(':');
      members.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(members)};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- fixtures ---------------------------------------------------------------

/// A live run with both telemetry and the recorder on, so the combined
/// trace carries span slices AND decision events.
core::SimResult instrumented_run(std::uint64_t ring_capacity = 0) {
  trace::SyntheticSpec spec;
  spec.name = "obs-export";
  spec.files = 150;
  spec.avg_file_kb = 8.0;
  spec.requests = 2000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 5;
  const auto tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.telemetry.enabled = true;
  cfg.telemetry.span_sample_every = 4;
  cfg.obs.enabled = true;
  cfg.obs.capacity = ring_capacity;
  return core::run_once(tr, cfg, core::PolicyKind::kL2s);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

// --- decisions CSV -----------------------------------------------------------

TEST(DecisionExport, CsvReproducesEveryRecordFieldForField) {
  const auto r = instrumented_run();
  ASSERT_NE(r.decisions, nullptr);
  const DecisionTrace& d = *r.decisions;
  ASSERT_GT(d.records.size(), 0u);

  std::ostringstream out;
  write_decisions_csv(out, d);
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), d.records.size() + 1);
  EXPECT_EQ(lines[0], "index,time_s,pass,kind,cause,request,node,target,attempt,detail");

  for (std::size_t i = 0; i < d.records.size(); ++i) {
    const DecisionRecord& rec = d.records[i];
    const auto f = split_csv(lines[i + 1]);
    ASSERT_EQ(f.size(), 10u) << lines[i + 1];
    EXPECT_EQ(std::stoull(f[0]), d.first_index() + i);
    EXPECT_DOUBLE_EQ(std::stod(f[1]), simtime_to_seconds(rec.time));
    EXPECT_EQ(std::stoi(f[2]), static_cast<int>(rec.pass));
    EXPECT_EQ(f[3], to_string(rec.kind));
    EXPECT_EQ(f[4], to_string(rec.cause));
    EXPECT_EQ(std::stoull(f[5]), rec.request);
    EXPECT_EQ(std::stoi(f[6]), rec.node);
    EXPECT_EQ(std::stoi(f[7]), rec.target);
    EXPECT_EQ(std::stoul(f[8]), rec.attempt);
    EXPECT_EQ(std::stoll(f[9]), rec.detail);
  }
}

TEST(DecisionExport, BoundedRingCsvStartsAtTheDropCount) {
  const auto r = instrumented_run(/*ring_capacity=*/128);
  ASSERT_NE(r.decisions, nullptr);
  const DecisionTrace& d = *r.decisions;
  ASSERT_GT(d.dropped, 0u) << "fixture too small to overflow a 128-record ring";

  std::ostringstream out;
  write_decisions_csv(out, d);
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 129u);
  EXPECT_EQ(std::stoull(split_csv(lines[1])[0]), d.dropped);
  EXPECT_EQ(std::stoull(split_csv(lines.back())[0]), d.recorded - 1);
}

// --- combined Chrome trace ---------------------------------------------------

TEST(DecisionExport, ChromeTraceWithDecisionsParsesBack) {
  const auto r = instrumented_run();
  ASSERT_NE(r.telemetry, nullptr);
  ASSERT_NE(r.decisions, nullptr);
  const DecisionTrace& d = *r.decisions;

  std::ostringstream out;
  write_chrome_trace_with_decisions(out, *r.telemetry, d);
  const std::string text = out.str();

  JsonValue root = JsonParser(text).parse();
  ASSERT_TRUE(root.is_object());
  const auto& events = root.object().at("traceEvents").array();

  // Decision instants are the only "s":"t" instants in the file; every
  // retained record contributes exactly one, named kind/cause.
  std::size_t instants = 0;
  std::size_t span_slices = 0;
  bool saw_first_index = false;
  for (const JsonValue& ev : events) {
    const JsonObject& obj = ev.object();
    const std::string& ph = obj.at("ph").str();
    if (ph == "X") ++span_slices;
    if (ph != "i") continue;
    const auto s = obj.find("s");
    if (s == obj.end() || s->second.str() != "t") continue;
    ++instants;
    EXPECT_NE(obj.at("name").str().find('/'), std::string::npos);
    const JsonObject& args = obj.at("args").object();
    if (static_cast<std::uint64_t>(args.at("index").num()) == d.first_index()) {
      saw_first_index = true;
    }
  }
  EXPECT_EQ(instants, d.records.size());
  EXPECT_TRUE(saw_first_index);
  // The telemetry side of the join survives: span slices are still there.
  EXPECT_GT(span_slices, 0u);
}

TEST(DecisionExport, DispatchFlowArrowsPairUpAcrossNodes) {
  const auto r = instrumented_run();
  const DecisionTrace& d = *r.decisions;
  std::size_t cross_node = 0;
  for (const DecisionRecord& rec : d.records) {
    if (rec.kind == DecisionKind::kDispatch && rec.target >= 0 && rec.target != rec.node) {
      ++cross_node;
    }
  }
  ASSERT_GT(cross_node, 0u) << "fixture produced no forwarded dispatches";

  std::ostringstream out;
  write_chrome_trace_with_decisions(out, *r.telemetry, d);
  JsonValue root = JsonParser(out.str()).parse();

  std::set<std::uint64_t> starts;
  std::set<std::uint64_t> finishes;
  for (const JsonValue& ev : root.object().at("traceEvents").array()) {
    const JsonObject& obj = ev.object();
    const auto cat = obj.find("cat");
    if (cat == obj.end() || cat->second.str() != "dispatch") continue;
    const auto id = static_cast<std::uint64_t>(obj.at("id").num());
    const std::string& ph = obj.at("ph").str();
    if (ph == "s") starts.insert(id);
    if (ph == "f") finishes.insert(id);
  }
  EXPECT_EQ(starts.size(), cross_node);
  EXPECT_EQ(starts, finishes);  // every arrow has both ends
}

TEST(DecisionExport, ShardSeriesGetNamedProcessTracks) {
  // A registry with a per-shard sample series must give the shard its own
  // trace process (pid 10000 + shard) with a "shard N" name, and route the
  // counter samples there — not onto node 0's track.
  telemetry::Registry registry;
  registry.sample_series("shard.window_timeline", {{"shard", "1"}}).add(1000, 7.0);
  const telemetry::Snapshot snap = registry.snapshot();

  std::ostringstream out;
  telemetry::write_chrome_trace(out, snap);
  JsonValue root = JsonParser(out.str()).parse();

  bool named = false;
  bool routed = false;
  for (const JsonValue& ev : root.object().at("traceEvents").array()) {
    const JsonObject& obj = ev.object();
    const std::string& ph = obj.at("ph").str();
    const int pid = static_cast<int>(obj.at("pid").num());
    if (ph == "M" && obj.at("name").str() == "process_name" && pid == 10001) {
      EXPECT_EQ(obj.at("args").object().at("name").str(), "shard 1");
      named = true;
    }
    if (ph == "C" && obj.at("name").str() == "shard.window_timeline") {
      EXPECT_EQ(pid, 10001);
      routed = true;
    }
  }
  EXPECT_TRUE(named);
  EXPECT_TRUE(routed);
}

}  // namespace
}  // namespace l2s::obs
