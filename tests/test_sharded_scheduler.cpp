// Sharded conservative-lookahead DES kernel tests: the ShardMap partition,
// both ShardedScheduler execution modes, the windowed protocol's
// synchronization accounting, and the schedule-independence guarantees
// (serial == merge == threaded for every shard/thread count). This suite
// is the one tools/check.sh repeats under TSan — the threaded cases
// exercise the mailbox locking and barrier protocol under real threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/des/shard_map.hpp"
#include "l2sim/des/sharded_scheduler.hpp"

namespace l2s::des {
namespace {

TEST(ShardMap, PartitionsContiguouslyWithBalancedBlocks) {
  for (const int entities : {1, 2, 5, 7, 16, 256, 1000}) {
    for (const int shards : {1, 2, 3, 7, 8, 64, 300}) {
      const ShardMap map(entities, shards);
      EXPECT_EQ(map.entities(), entities);
      EXPECT_LE(map.shards(), entities);  // never an empty shard
      EXPECT_GE(map.shards(), 1);

      int covered = 0;
      int prev_end = 0;
      int max_size = 0;
      int min_size = entities + 1;
      for (int s = 0; s < map.shards(); ++s) {
        const auto [begin, end] = map.range(s);
        EXPECT_EQ(begin, prev_end);  // contiguous, in order
        EXPECT_LT(begin, end);
        prev_end = end;
        covered += end - begin;
        max_size = std::max(max_size, end - begin);
        min_size = std::min(min_size, end - begin);
        for (int e = begin; e < end; ++e) EXPECT_EQ(map.shard_of(e), s);
      }
      EXPECT_EQ(covered, entities);
      EXPECT_LE(max_size - min_size, 1);  // balanced to within one entity
    }
  }
}

TEST(ShardMap, RejectsBadArguments) {
  EXPECT_THROW(ShardMap(0, 1), Error);
  const ShardMap map(4, 2);
  EXPECT_THROW((void)map.shard_of(-1), Error);
  EXPECT_THROW((void)map.shard_of(4), Error);
  EXPECT_THROW((void)map.range(2), Error);
}

TEST(ShardedScheduler, MergeModeExecutesInGlobalTimeSeqOrder) {
  // Interleave events across three shards, including cross-shard posts and
  // same-time ties; the observed execution order must equal what a single
  // Scheduler produces: time-ordered, submission-ordered at ties.
  ShardedScheduler engine(3, /*lookahead=*/10, ShardedScheduler::Mode::kSequentialMerge);
  std::vector<int> order;
  engine.shard(0).at(100, [&] { order.push_back(0); });
  engine.shard(1).at(100, [&] { order.push_back(1); });  // tie: after 0
  engine.shard(2).at(50, [&] {
    order.push_back(2);
    // Handler on shard 2 posts to shard 0 at a future time.
    engine.post(2, 0, 100, [&] { order.push_back(3); });  // tie: after 0, 1
  });
  engine.shard(0).at(40, [&] { order.push_back(4); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{4, 2, 0, 1, 3}));
  EXPECT_EQ(engine.events_processed(), 5u);
  EXPECT_EQ(engine.messages_posted(), 1u);
  EXPECT_EQ(engine.windows_executed(), 0u);  // merge mode has no windows
  // Merge keeps every shard's clock on the global event clock.
  for (int s = 0; s < 3; ++s) EXPECT_EQ(engine.shard(s).now(), 100);
}

TEST(ShardedScheduler, PostEnforcesTheLookaheadContract) {
  ShardedScheduler engine(2, /*lookahead=*/100, ShardedScheduler::Mode::kSequentialMerge);
  EXPECT_THROW(engine.post(0, 1, 99, [] {}), Error);   // inside the horizon
  engine.post(0, 1, 100, [] {});                       // exactly at it: ok
  EXPECT_THROW(engine.post(0, 2, 200, [] {}), Error);  // bad shard
  engine.run();
}

TEST(ShardedScheduler, ThreadedPostRequiresInlineCallables) {
  ShardedScheduler engine(2, /*lookahead=*/10, ShardedScheduler::Mode::kThreaded);
  struct Fat {
    char pad[64] = {};
    void operator()() const {}
  };
  EXPECT_THROW(engine.post(0, 1, 10, EventFn(Fat{})), Error);
  engine.post(0, 1, 10, [] {});  // small capture: fine
  engine.run(1);
}

TEST(ShardedScheduler, ThreadedRunCountsWindows) {
  const WorkloadParams p{/*nodes=*/8, /*requests_per_node=*/2, /*hops=*/16,
                         /*latency=*/10'000, /*mean_service=*/16'000,
                         /*seed=*/7};
  const auto r = run_cluster_workload_sharded(
      p, /*shards=*/4, ShardedScheduler::Mode::kThreaded, /*threads=*/2);
  EXPECT_GT(r.windows, 0u);
  // Every request executes hops + 1 handlers (hop 0 .. hops).
  EXPECT_EQ(r.events, static_cast<std::uint64_t>(p.nodes) *
                          static_cast<std::uint64_t>(p.requests_per_node) *
                          static_cast<std::uint64_t>(p.hops + 1));
}

TEST(ShardedScheduler, WorkloadFoldsAreScheduleIndependent) {
  // The core determinism guarantee: the serial reference, merge-mode runs
  // at several shard counts, and threaded runs at several shard x thread
  // combinations all produce identical (events, digest, makespan) folds.
  WorkloadParams p;
  p.nodes = 32;
  p.requests_per_node = 3;
  p.hops = 24;
  p.seed = 2026;
  const auto ref = run_cluster_workload_serial(p);
  EXPECT_GT(ref.events, 0u);
  EXPECT_GT(ref.makespan, 0);

  for (const int shards : {1, 2, 5, 8, 32}) {
    const auto merge = run_cluster_workload_sharded(
        p, shards, ShardedScheduler::Mode::kSequentialMerge);
    EXPECT_EQ(merge.digest, ref.digest) << "merge shards=" << shards;
    EXPECT_EQ(merge.events, ref.events) << "merge shards=" << shards;
    EXPECT_EQ(merge.makespan, ref.makespan) << "merge shards=" << shards;
  }
  for (const int shards : {2, 4, 8}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const auto thr = run_cluster_workload_sharded(
          p, shards, ShardedScheduler::Mode::kThreaded, threads);
      EXPECT_EQ(thr.digest, ref.digest)
          << "threaded shards=" << shards << " threads=" << threads;
      EXPECT_EQ(thr.events, ref.events)
          << "threaded shards=" << shards << " threads=" << threads;
      EXPECT_EQ(thr.makespan, ref.makespan)
          << "threaded shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedScheduler, ThreadedRunsAreRepeatable) {
  // Same parameters, fresh engines, full thread budget: bit-identical
  // folds every time (no dependence on scheduling luck).
  WorkloadParams p;
  p.nodes = 16;
  p.requests_per_node = 2;
  p.hops = 20;
  p.seed = 99;
  const auto first = run_cluster_workload_sharded(
      p, /*shards=*/8, ShardedScheduler::Mode::kThreaded);
  for (int i = 0; i < 3; ++i) {
    const auto again = run_cluster_workload_sharded(
        p, /*shards=*/8, ShardedScheduler::Mode::kThreaded);
    EXPECT_EQ(again.digest, first.digest);
    EXPECT_EQ(again.events, first.events);
    EXPECT_EQ(again.makespan, first.makespan);
  }
}

TEST(SchedulerHooks, PeekAdvanceAndWindowedExecution) {
  Scheduler s;
  std::vector<int> ran;
  s.at(10, [&] { ran.push_back(10); });
  s.at(20, [&] { ran.push_back(20); });
  s.at(20, [&] { ran.push_back(21); });
  EXPECT_EQ(s.peek().time, 10);

  s.run_window(20);  // strictly-below bound: the t=20 events stay put
  EXPECT_EQ(ran, std::vector<int>{10});
  EXPECT_EQ(s.now(), 10);  // run_window does not advance past the last event
  EXPECT_EQ(s.peek().time, 20);

  s.advance_now(15);
  EXPECT_EQ(s.now(), 15);
  EXPECT_THROW(s.advance_now(14), Error);  // no travelling backwards
  EXPECT_THROW(s.at(14, [] {}), Error);    // the clock moved: 14 is the past

  s.run_window(21);
  EXPECT_EQ(ran, (std::vector<int>{10, 20, 21}));  // ties in submission order
}

TEST(SchedulerHooks, SharedSequenceCountersMakeCrossHeapTiesOrderable) {
  std::uint64_t counter = 0;
  Scheduler a;
  Scheduler b;
  a.share_sequence(&counter);
  b.share_sequence(&counter);
  a.at(5, [] {});
  b.at(5, [] {});
  // Submission order is globally visible through the shared counter.
  EXPECT_LT(a.peek().seq, b.peek().seq);
  b.share_sequence(nullptr);  // restores the private counter
  b.at(6, [] {});
  a.run();
  b.run();
  EXPECT_EQ(counter, 2u);
}

TEST(ThreadBudget, EnvOverrideAndDefault) {
  ASSERT_EQ(setenv("L2SIM_THREADS", "3", 1), 0);
  EXPECT_EQ(thread_budget(), 3u);
  ASSERT_EQ(setenv("L2SIM_THREADS", "-1", 1), 0);
  EXPECT_THROW((void)thread_budget(), Error);
  ASSERT_EQ(unsetenv("L2SIM_THREADS"), 0);
  EXPECT_GE(thread_budget(), 1u);  // hardware concurrency, floored at 1
}

}  // namespace
}  // namespace l2s::des
