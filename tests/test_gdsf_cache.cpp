#include <gtest/gtest.h>

#include <vector>

#include "l2sim/cache/gdsf_cache.hpp"
#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/zipf/sampler.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"

namespace l2s::cache {
namespace {

TEST(GdsfCache, MissThenHit) {
  GdsfCache c(10 * kKiB);
  EXPECT_FALSE(c.lookup(1));
  c.insert(1, 4 * kKiB);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(GdsfCache, PrefersSmallFilesUnderPressure) {
  // One big file and several small ones with equal frequency: the big file
  // has the lowest priority (frequency/size) and is evicted first.
  GdsfCache c(100 * kKiB);
  c.insert(1, 60 * kKiB);  // big
  c.insert(2, 10 * kKiB);
  c.insert(3, 10 * kKiB);
  c.insert(4, 10 * kKiB);
  c.insert(5, 30 * kKiB);  // overflows: evicts the big file first
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(5));
}

TEST(GdsfCache, FrequencyProtectsBigFiles) {
  GdsfCache c(100 * kKiB);
  c.insert(1, 50 * kKiB);
  // Many hits raise the big file's priority far above fresh small files.
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(c.lookup(1));
  c.insert(2, 30 * kKiB);
  c.insert(3, 30 * kKiB);  // overflow: a small *cold* file should go, not 1
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.entries(), 2u);
}

TEST(GdsfCache, AgingFloorRisesWithEvictions) {
  GdsfCache c(20 * kKiB);
  EXPECT_DOUBLE_EQ(c.aging_floor(), 0.0);
  c.insert(1, 16 * kKiB);
  c.insert(2, 16 * kKiB);  // evicts 1
  EXPECT_GT(c.aging_floor(), 0.0);
}

TEST(GdsfCache, ByteAccountingExact) {
  GdsfCache c(100);
  c.insert(1, 40);
  c.insert(2, 30);
  EXPECT_EQ(c.used(), 70u);
  EXPECT_TRUE(c.erase(1));
  EXPECT_EQ(c.used(), 30u);
  EXPECT_FALSE(c.erase(1));
}

TEST(GdsfCache, OversizedNeverCached) {
  GdsfCache c(100);
  c.insert(1, 101);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.used(), 0u);
}

TEST(GdsfCache, ReinsertUpdatesSize) {
  GdsfCache c(100);
  c.insert(1, 40);
  c.insert(1, 60);
  EXPECT_EQ(c.used(), 60u);
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_EQ(c.stats().insertions, 1u);
}

TEST(GdsfCache, ClearResetsContentsAndFloor) {
  GdsfCache c(20 * kKiB);
  c.insert(1, 16 * kKiB);
  c.insert(2, 16 * kKiB);
  c.clear();
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_EQ(c.used(), 0u);
  EXPECT_DOUBLE_EQ(c.aging_floor(), 0.0);
}

TEST(GdsfCache, InvariantsUnderRandomWorkload) {
  GdsfCache c(64 * kKiB);
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<FileId>(rng.next_below(80));
    const Bytes size = (1 + rng.next_below(24)) * kKiB;
    if (!c.lookup(id)) c.insert(id, size);
    EXPECT_LE(c.used(), c.capacity());
  }
  EXPECT_GT(c.stats().hits, 0u);
  EXPECT_GT(c.stats().evictions, 0u);
}

TEST(GdsfCache, HigherRequestHitRateThanLruOnSizeSkewedZipf) {
  // The canonical GDSF claim: with Zipf popularity and variable sizes,
  // prioritizing frequency/size yields a better *request* hit rate than
  // LRU under the same capacity.
  LruCache lru(256 * kKiB);
  GdsfCache gdsf(256 * kKiB);
  Rng rng(7);
  // 400 files; sizes 1..64 KB independent of rank.
  std::vector<Bytes> sizes;
  for (int i = 0; i < 400; ++i) sizes.push_back((1 + rng.next_below(64)) * kKiB);
  const zipf::ZipfSampler pop(400, 1.0);
  for (int i = 0; i < 60000; ++i) {
    const auto id = static_cast<FileId>(pop.sample(rng));
    if (!lru.lookup(id)) lru.insert(id, sizes[id]);
    if (!gdsf.lookup(id)) gdsf.insert(id, sizes[id]);
  }
  EXPECT_GT(gdsf.stats().hit_rate(), lru.stats().hit_rate());
}

TEST(GdsfCache, ZeroCapacityRejected) { EXPECT_THROW(GdsfCache(0), l2s::Error); }

}  // namespace
}  // namespace l2s::cache
