// Heterogeneous CPU speeds and cache-policy selection through the full
// simulation stack.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload() {
  trace::SyntheticSpec spec;
  spec.name = "hetero";
  spec.files = 200;
  spec.avg_file_kb = 8.0;
  spec.requests = 8000;
  spec.avg_request_kb = 6.0;
  spec.size_sigma = 0.3;
  spec.alpha = 0.9;
  return trace::generate(spec);
}

TEST(Heterogeneity, NodeServiceTimesScaleWithSpeed) {
  des::Scheduler sched;
  const cluster::Node fast(sched, 0, cluster::NodeParams{}, 2.0);
  const cluster::Node slow(sched, 1, cluster::NodeParams{}, 0.5);
  EXPECT_EQ(fast.parse_time() * 4, slow.parse_time());
  // Nanosecond rounding allows one-count slack on the scaled comparison.
  EXPECT_NEAR(static_cast<double>(fast.reply_time(8 * kKiB) * 4),
              static_cast<double>(slow.reply_time(8 * kKiB)), 2.0);
  EXPECT_DOUBLE_EQ(fast.cpu_speed(), 2.0);
}

TEST(Heterogeneity, SlowClusterIsSlower) {
  const auto tr = workload();
  SimConfig fast_cfg;
  fast_cfg.nodes = 4;
  fast_cfg.node.cache_bytes = 4 * kMiB;
  SimConfig slow_cfg = fast_cfg;
  slow_cfg.node_speed_factors.assign(4, 0.5);
  const auto fast = run_once(tr, fast_cfg, PolicyKind::kL2s);
  const auto slow = run_once(tr, slow_cfg, PolicyKind::kL2s);
  EXPECT_GT(fast.throughput_rps, 1.5 * slow.throughput_rps);
}

TEST(Heterogeneity, LoadFeedbackShiftsWorkToFastNodes) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.node_speed_factors = {2.0, 2.0, 0.5, 0.5};
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, tr.request_count());
  // The fast nodes end up busier in absolute work served: their CPUs are
  // 4x faster, so equal utilization would already mean 4x the work. At
  // minimum they must not idle while slow nodes run hot.
  const double fast_util = r.node_cpu_utilization[0] + r.node_cpu_utilization[1];
  EXPECT_GT(fast_util, 0.1);
}

TEST(Heterogeneity, SpeedVectorValidated) {
  const auto tr = workload();
  SimConfig bad;
  bad.nodes = 4;
  bad.node_speed_factors = {1.0, 1.0};  // wrong length
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::L2sPolicy>()), Error);
  bad.node_speed_factors = {1.0, 1.0, -1.0, 1.0};
  EXPECT_THROW(ClusterSimulation(bad, tr, std::make_unique<policy::L2sPolicy>()), Error);
}

TEST(CachePolicySelection, GdsfRunsThroughSimulation) {
  const auto tr = workload();
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  cfg.node.cache_policy = cluster::CachePolicy::kGdsf;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_GT(r.hit_rate, 0.0);
}

TEST(CachePolicySelection, PoliciesProduceDifferentMissRates) {
  // A capacity-tight, size-varied workload separates LRU from GDSF.
  trace::SyntheticSpec spec;
  spec.name = "tight";
  spec.files = 600;
  spec.avg_file_kb = 24.0;
  spec.requests = 20000;
  spec.avg_request_kb = 24.0;
  spec.size_sigma = 1.4;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  SimConfig lru_cfg;
  lru_cfg.nodes = 2;
  lru_cfg.node.cache_bytes = 2 * kMiB;
  SimConfig gdsf_cfg = lru_cfg;
  gdsf_cfg.node.cache_policy = cluster::CachePolicy::kGdsf;
  const auto lru = run_once(tr, lru_cfg, PolicyKind::kTraditional);
  const auto gdsf = run_once(tr, gdsf_cfg, PolicyKind::kTraditional);
  EXPECT_NE(lru.miss_rate, gdsf.miss_rate);
  EXPECT_LT(gdsf.miss_rate, lru.miss_rate);  // GDSF keeps small hot files
}

}  // namespace
}  // namespace l2s::core
