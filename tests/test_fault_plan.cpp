// FaultPlan / DetectionParams / RetryParams validation: every malformed
// schedule must be rejected before the run starts, because a fault plan
// that silently no-ops (or crashes mid-run) would invalidate a whole
// availability study.
#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::fault {
namespace {

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.lossy());
  plan.validate(4);  // nothing to object to
}

TEST(FaultPlan, LossyOnlyWhenMessagesCanVanish) {
  FaultPlan plan;
  plan.message_faults.push_back({.extra_delay_seconds = 0.01, .duplicate_prob = 0.5});
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.lossy());  // delay and duplication never lose a message
  plan.message_faults.push_back({.loss_prob = 0.01});
  EXPECT_TRUE(plan.lossy());
}

TEST(FaultPlan, AcceptsAWellFormedSchedule) {
  FaultPlan plan;
  plan.crashes.push_back({3, 0.2});
  plan.recoveries.push_back({3, 0.6});
  plan.slowdowns.push_back({1, Resource::kDisk, 4.0, 0.1, 0.5});
  plan.message_faults.push_back({.loss_prob = 0.01, .src = -1, .dst = 2});
  plan.validate(4);
}

TEST(FaultPlan, RejectsOutOfRangeNodes) {
  FaultPlan plan;
  plan.crashes.push_back({4, 0.1});
  EXPECT_THROW(plan.validate(4), Error);

  plan = {};
  plan.slowdowns.push_back({-1, Resource::kCpu, 2.0, 0.0});
  EXPECT_THROW(plan.validate(4), Error);

  plan = {};
  plan.message_faults.push_back({.loss_prob = 0.5, .src = 7});
  EXPECT_THROW(plan.validate(4), Error);
  plan.message_faults[0] = {.loss_prob = 0.5, .src = -1, .dst = 9};
  EXPECT_THROW(plan.validate(4), Error);
}

TEST(FaultPlan, RejectsNegativeTimes) {
  FaultPlan plan;
  plan.crashes.push_back({0, -0.1});
  EXPECT_THROW(plan.validate(4), Error);

  plan = {};
  plan.message_faults.push_back({.loss_prob = 0.1, .from_seconds = -1.0});
  EXPECT_THROW(plan.validate(4), Error);
}

TEST(FaultPlan, RecoveryNeedsAnEarlierCrash) {
  FaultPlan plan;
  plan.recoveries.push_back({2, 0.5});
  EXPECT_THROW(plan.validate(4), Error);  // nothing to recover from

  plan.crashes.push_back({2, 0.8});
  EXPECT_THROW(plan.validate(4), Error);  // crash comes after the recovery

  plan.crashes[0].at_seconds = 0.2;
  plan.validate(4);  // crash at 0.2, recover at 0.5: fine
}

TEST(FaultPlan, RejectsBadFailSlowWindows) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, Resource::kDisk, 0.0, 0.1});  // factor must be > 0
  EXPECT_THROW(plan.validate(4), Error);

  plan.slowdowns[0] = {0, Resource::kDisk, 2.0, 0.5, 0.2};  // inverted window
  EXPECT_THROW(plan.validate(4), Error);
}

TEST(FaultPlan, RejectsBadMessageProbabilities) {
  FaultPlan plan;
  plan.message_faults.push_back({.loss_prob = 1.5});
  EXPECT_THROW(plan.validate(4), Error);
  plan.message_faults[0] = {.duplicate_prob = -0.1};
  EXPECT_THROW(plan.validate(4), Error);
  plan.message_faults[0] = {.loss_prob = 0.2, .from_seconds = 0.5, .until_seconds = 0.1};
  EXPECT_THROW(plan.validate(4), Error);
}

TEST(DetectionParams, OffIgnoresTheRest) {
  DetectionParams d;
  d.heartbeats = false;
  d.period_seconds = -1.0;  // nonsense, but unused while heartbeats are off
  d.validate();
}

TEST(DetectionParams, ValidatesWhenOn) {
  DetectionParams d;
  d.heartbeats = true;
  d.validate();

  d.period_seconds = 0.0;
  EXPECT_THROW(d.validate(), Error);

  d.period_seconds = 0.05;
  d.suspect_after_missed = 0;
  EXPECT_THROW(d.validate(), Error);
}

TEST(DetectionParams, SuspicionWindowIsKPeriods) {
  DetectionParams d;
  d.period_seconds = 0.02;
  d.suspect_after_missed = 3;
  EXPECT_EQ(d.suspicion_window(), seconds_to_simtime(0.06));
}

// --- SimConfig-level validation (wired through ClusterSimulation) --------

trace::Trace tiny_trace() {
  trace::SyntheticSpec spec;
  spec.name = "plan";
  spec.files = 50;
  spec.avg_file_kb = 4.0;
  spec.requests = 100;
  spec.avg_request_kb = 3.0;
  spec.seed = 7;
  return trace::generate(spec);
}

core::SimConfig base_config() {
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  return cfg;
}

TEST(SimConfigFaults, LossyPlanRequiresDeadlineOrAttemptTimeout) {
  const auto tr = tiny_trace();
  auto cfg = base_config();
  cfg.fault_plan.message_faults.push_back({.loss_prob = 0.01});
  // A lost hand-off would strand its admission slot forever: rejected.
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);

  auto with_timeout = cfg;
  with_timeout.retry.attempt_timeout_seconds = 0.05;
  core::ClusterSimulation ok1(with_timeout, tr, std::make_unique<policy::L2sPolicy>());

  auto with_deadline = cfg;
  with_deadline.retry.deadline_seconds = 1.0;
  core::ClusterSimulation ok2(with_deadline, tr, std::make_unique<policy::L2sPolicy>());
}

TEST(SimConfigFaults, RejectsBadRetryParams) {
  const auto tr = tiny_trace();
  auto cfg = base_config();
  cfg.retry.max_retries = -1;
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);

  cfg = base_config();
  cfg.retry.backoff_multiplier = 0.5;
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);

  cfg = base_config();
  cfg.retry.initial_backoff_seconds = -0.1;
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);

  cfg = base_config();
  cfg.goodput_interval_seconds = -1.0;
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);
}

TEST(SimConfigFaults, PlanValidatedAgainstClusterSize) {
  const auto tr = tiny_trace();
  auto cfg = base_config();
  cfg.fault_plan.crashes.push_back({cfg.nodes, 0.1});  // one past the end
  EXPECT_THROW(
      core::ClusterSimulation(cfg, tr, std::make_unique<policy::L2sPolicy>()), Error);
}

}  // namespace
}  // namespace l2s::fault
