// Fault-layer determinism: a FaultPlan must replay bit-identically — the
// fault Rng is split from the simulation seed and never touches the
// trace-side streams, so crashes, recoveries, message faults, heartbeats
// and retries land on exactly the same events run over run, serially or
// under core::run_parallel. Plus the accounting property that must hold
// under ANY plan: every request ends in exactly one bucket.
#include <gtest/gtest.h>

#include "l2sim/common/rng.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace seeded_trace(std::uint64_t requests = 4000) {
  trace::SyntheticSpec spec;
  spec.name = "fdet";
  spec.files = 300;
  spec.avg_file_kb = 12.0;
  spec.requests = requests;
  spec.avg_request_kb = 10.0;
  spec.alpha = 0.9;
  spec.seed = 4242;
  return trace::generate(spec);
}

/// The kitchen sink: crash + recovery, fail-slow window, lossy/laggy/
/// duplicating links, heartbeat detection, retries with timeout and
/// deadline, goodput timeline.
SimConfig full_fault_config(int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.fault_plan.crashes.push_back({nodes - 1, 0.05});
  cfg.fault_plan.recoveries.push_back({nodes - 1, 0.3});
  cfg.fault_plan.slowdowns.push_back({1, fault::Resource::kCpu, 3.0, 0.1, 0.4});
  cfg.fault_plan.message_faults.push_back(
      {.loss_prob = 0.02, .extra_delay_seconds = 0.0005, .duplicate_prob = 0.05});
  cfg.detection.heartbeats = true;
  cfg.detection.period_seconds = 0.02;
  cfg.retry.max_retries = 2;
  cfg.retry.attempt_timeout_seconds = 0.1;
  cfg.retry.deadline_seconds = 1.0;
  cfg.goodput_interval_seconds = 0.1;
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failed_deadline, b.failed_deadline);
  EXPECT_EQ(a.failed_retries_exhausted, b.failed_retries_exhausted);
  EXPECT_EQ(a.failed_rejected, b.failed_rejected);
  EXPECT_EQ(a.failed_shed, b.failed_shed);
  EXPECT_EQ(a.completed_after_retry, b.completed_after_retry);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.hedge_attempts, b.hedge_attempts);
  EXPECT_EQ(a.brownout_transitions, b.brownout_transitions);
  EXPECT_EQ(a.brownout_final_level, b.brownout_final_level);
  EXPECT_EQ(a.via_dropped, b.via_dropped);
  EXPECT_EQ(a.via_duplicated, b.via_duplicated);
  EXPECT_EQ(a.via_delayed, b.via_delayed);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_EQ(a.forwarded, b.forwarded);
  // Bit-exact, not EXPECT_NEAR: identical event orders give identical
  // floating-point reductions.
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.retry_amplification, b.retry_amplification);
  EXPECT_EQ(a.detection_latency_ms, b.detection_latency_ms);
  EXPECT_EQ(a.time_to_recover_ms, b.time_to_recover_ms);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
}

TEST(FaultDeterminism, FullPlanReplaysBitIdentically) {
  const auto tr = seeded_trace();
  for (const auto kind : all_policies()) {
    ClusterSimulation first(full_fault_config(4), tr, make_policy(kind));
    const auto r1 = first.run();
    const auto events1 = first.scheduler().events_processed();

    ClusterSimulation second(full_fault_config(4), tr, make_policy(kind));
    const auto r2 = second.run();
    const auto events2 = second.scheduler().events_processed();

    EXPECT_EQ(events1, events2) << "policy " << policy_kind_name(kind);
    expect_identical(r1, r2);
  }
}

TEST(FaultDeterminism, RunParallelMatchesSerialExecution) {
  const auto tr = seeded_trace();
  std::vector<SimJob> jobs;
  for (const auto kind : all_policies())
    jobs.push_back({&tr, full_fault_config(4), kind, 20.0});
  const auto parallel_results = run_parallel(jobs, 3);
  ASSERT_EQ(parallel_results.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ClusterSimulation serial(jobs[i].sim, tr, make_policy(jobs[i].kind));
    const auto r = serial.run();
    expect_identical(parallel_results[i], r);
  }
}

TEST(FaultDeterminism, SeedChangesTheFaultStreamButStaysSelfConsistent) {
  // Different seeds draw different loss/duplication outcomes (the fault Rng
  // derives from the seed), yet each seed still replays identically.
  const auto tr = seeded_trace();
  auto cfg = full_fault_config(4);
  ClusterSimulation a(cfg, tr, make_policy(PolicyKind::kL2s));
  const auto ra = a.run();
  cfg.seed ^= 0xABCDEF;
  ClusterSimulation b1(cfg, tr, make_policy(PolicyKind::kL2s));
  ClusterSimulation b2(cfg, tr, make_policy(PolicyKind::kL2s));
  const auto rb1 = b1.run();
  const auto rb2 = b2.run();
  expect_identical(rb1, rb2);
  // With 2% loss over thousands of messages, two independent streams
  // dropping the exact same count would be a coincidence we don't accept.
  EXPECT_NE(ra.via_dropped, rb1.via_dropped);
}

TEST(FaultDeterminism, EveryRequestLandsInExactlyOneBucket) {
  // Property test: under randomly generated fault plans (deterministic
  // generator seeds), completed + failed == request_count and the failure
  // buckets partition `failed`. Catches double-counting from stale
  // attempts, duplicate deliveries, or crash/retry races.
  const auto tr = seeded_trace(2000);
  for (std::uint64_t scenario = 0; scenario < 6; ++scenario) {
    Rng gen(0xF0 + scenario);
    const int nodes = 3 + static_cast<int>(gen.next_u64() % 4);  // 3..6
    SimConfig cfg;
    cfg.nodes = nodes;
    cfg.node.cache_bytes = 2 * kMiB;
    cfg.goodput_interval_seconds = 0.25;

    const int crash_node = static_cast<int>(gen.next_below(static_cast<std::uint64_t>(nodes)));
    const double crash_at = 0.02 + 0.2 * gen.next_double();
    cfg.fault_plan.crashes.push_back({crash_node, crash_at});
    if (gen.next_u64() % 2 == 0)
      cfg.fault_plan.recoveries.push_back({crash_node, crash_at + 0.1 + 0.2 * gen.next_double()});
    if (gen.next_u64() % 2 == 0)
      cfg.fault_plan.slowdowns.push_back(
          {static_cast<int>(gen.next_below(static_cast<std::uint64_t>(nodes))),
           gen.next_u64() % 2 == 0 ? fault::Resource::kCpu : fault::Resource::kDisk,
           1.5 + 4.0 * gen.next_double(), 0.1 * gen.next_double()});
    cfg.fault_plan.message_faults.push_back(
        {.loss_prob = 0.03 * gen.next_double(),
         .extra_delay_seconds = 0.001 * gen.next_double(),
         .duplicate_prob = 0.1 * gen.next_double()});
    cfg.retry.max_retries = static_cast<int>(gen.next_u64() % 3);
    cfg.retry.attempt_timeout_seconds = 0.05 + 0.1 * gen.next_double();
    if (gen.next_u64() % 2 == 0) cfg.retry.deadline_seconds = 0.5 + gen.next_double();
    cfg.detection.heartbeats = gen.next_u64() % 2 == 0;
    cfg.seed = 0xBEEF00 + scenario;

    const auto kind = all_policies()[scenario % all_policies().size()];
    ClusterSimulation sim(cfg, tr, make_policy(kind));
    const auto r = sim.run();
    EXPECT_EQ(r.completed + r.failed, tr.request_count())
        << "scenario " << scenario << " policy " << policy_kind_name(kind);
    EXPECT_EQ(r.failed, r.failed_deadline + r.failed_retries_exhausted +
                            r.failed_rejected + r.failed_shed)
        << "scenario " << scenario;
    EXPECT_GE(r.retry_amplification, 1.0);
  }
}

TEST(FaultDeterminism, RetryBudgetBoundsAmplificationUnderAnyPlan) {
  // Property test: under randomly generated fault plans AND randomly
  // generated overload defenses, total re-dispatch work (retries + hedges)
  // never exceeds what the token bucket can have issued — the initial
  // burst plus ratio tokens per admitted request — and plain retries never
  // exceed max_retries per offered request. This is the anti-retry-storm
  // guarantee: no plan can make the cluster amplify load past the budget.
  const auto tr = seeded_trace(2000);
  for (std::uint64_t scenario = 0; scenario < 8; ++scenario) {
    Rng gen(0x5107 + scenario);
    const int nodes = 3 + static_cast<int>(gen.next_u64() % 4);  // 3..6
    SimConfig cfg;
    cfg.nodes = nodes;
    cfg.node.cache_bytes = 2 * kMiB;
    cfg.seed = 0xCAFE00 + scenario;

    // Random faults: a crash, maybe a recovery, lossy links.
    const int crash_node =
        static_cast<int>(gen.next_below(static_cast<std::uint64_t>(nodes)));
    const double crash_at = 0.02 + 0.2 * gen.next_double();
    cfg.fault_plan.crashes.push_back({crash_node, crash_at});
    if (gen.next_u64() % 2 == 0)
      cfg.fault_plan.recoveries.push_back(
          {crash_node, crash_at + 0.1 + 0.2 * gen.next_double()});
    cfg.fault_plan.message_faults.push_back(
        {.loss_prob = 0.05 * gen.next_double(),
         .extra_delay_seconds = 0.001 * gen.next_double(),
         .duplicate_prob = 0.05 * gen.next_double()});
    cfg.detection.heartbeats = gen.next_u64() % 2 == 0;
    cfg.detection.readmit_after_fresh = 1 + static_cast<int>(gen.next_u64() % 3);

    // Retries aggressive enough to storm without a budget...
    cfg.retry.max_retries = 1 + static_cast<int>(gen.next_u64() % 3);
    cfg.retry.attempt_timeout_seconds = 0.04 + 0.08 * gen.next_double();
    cfg.retry.deadline_seconds = 0.5 + gen.next_double();
    // ...and a random token budget (sometimes with hedging on top).
    cfg.overload.retry_budget_ratio = 0.5 * gen.next_double();
    cfg.overload.retry_budget_burst = 1.0 + static_cast<double>(gen.next_u64() % 16);
    if (gen.next_u64() % 2 == 0) {
      cfg.overload.hedge_delay_seconds = 0.05 + 0.1 * gen.next_double();
      cfg.overload.max_hedges = 1 + static_cast<int>(gen.next_u64() % 2);
    }

    const auto kind = all_policies()[scenario % all_policies().size()];
    ClusterSimulation sim(cfg, tr, make_policy(kind));
    const auto r = sim.run();

    const auto offered = r.completed + r.failed;
    EXPECT_EQ(offered, tr.request_count()) << "scenario " << scenario;
    // The bucket starts at `burst` and earns `ratio` per admitted request;
    // every retry and every hedge spent one token, so:
    const double issued_bound = cfg.overload.retry_budget_burst +
                                cfg.overload.retry_budget_ratio *
                                    static_cast<double>(offered);
    EXPECT_LE(static_cast<double>(r.retry_attempts + r.hedge_attempts),
              issued_bound + 1e-9)
        << "scenario " << scenario << " policy " << policy_kind_name(kind);
    // And independently of the bucket, the per-request retry cap holds.
    EXPECT_LE(r.retry_attempts,
              static_cast<std::uint64_t>(cfg.retry.max_retries) * offered)
        << "scenario " << scenario;
  }
}

}  // namespace
}  // namespace l2s::core
