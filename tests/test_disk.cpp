#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/storage/disk.hpp"

namespace l2s::storage {
namespace {

TEST(Disk, ReadTimeMatchesPaperFormula) {
  des::Scheduler s;
  const Disk d(s, "d");
  // 28 ms fixed + transfer at 10000 KB/s. A 10000-KB read: 28ms + 1s.
  EXPECT_EQ(d.read_time(10000 * kKiB), seconds_to_simtime(0.028 + 1.0));
  // Tiny read dominated by the access cost.
  EXPECT_NEAR(static_cast<double>(d.read_time(1024)), 0.0281 * 1e9, 1e5);
}

TEST(Disk, ReadsQueueFifo) {
  des::Scheduler s;
  Disk d(s, "d");
  SimTime first = 0;
  SimTime second = 0;
  d.read(10 * kKiB, [&] { first = s.now(); });
  d.read(10 * kKiB, [&] { second = s.now(); });
  s.run();
  const SimTime one = seconds_to_simtime(0.028 + 10.0 / 10000.0);
  EXPECT_EQ(first, one);
  EXPECT_EQ(second, 2 * one);
}

TEST(Disk, CustomParameters) {
  des::Scheduler s;
  DiskParams p;
  p.access_seconds = 0.0;
  p.transfer_kb_per_s = 1000.0;
  const Disk d(s, "fast", p);
  EXPECT_EQ(d.read_time(1000 * kKiB), seconds_to_simtime(1.0));
}

TEST(Disk, RejectsBadParameters) {
  des::Scheduler s;
  DiskParams p;
  p.transfer_kb_per_s = 0.0;
  EXPECT_THROW(Disk(s, "bad", p), l2s::Error);
}

TEST(Disk, UtilizationVisibleThroughResource) {
  des::Scheduler s;
  Disk d(s, "d");
  d.read(10000 * kKiB, [] {});  // 1.028 s busy
  s.run();
  EXPECT_EQ(d.resource().busy_time(), seconds_to_simtime(1.028));
  EXPECT_EQ(d.resource().jobs_completed(), 1u);
}

}  // namespace
}  // namespace l2s::storage
