#include <gtest/gtest.h>

#include <cstdlib>

#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload() {
  trace::SyntheticSpec spec;
  spec.name = "par";
  spec.files = 200;
  spec.avg_file_kb = 10.0;
  spec.requests = 3000;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 5;
  return trace::generate(spec);
}

std::vector<SimJob> grid_jobs(const trace::Trace& tr) {
  std::vector<SimJob> jobs;
  for (const int nodes : {1, 2, 4}) {
    for (const auto kind : all_policies()) {
      SimJob job;
      job.trace = &tr;
      job.sim.nodes = nodes;
      job.sim.node.cache_bytes = kMiB;
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  return jobs;
}

TEST(Parallel, MatchesSerialExactly) {
  const auto tr = workload();
  const auto jobs = grid_jobs(tr);
  const auto serial = run_parallel(jobs, 1);
  const auto parallel = run_parallel(jobs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].completed, parallel[i].completed) << i;
    EXPECT_DOUBLE_EQ(serial[i].throughput_rps, parallel[i].throughput_rps) << i;
    EXPECT_DOUBLE_EQ(serial[i].hit_rate, parallel[i].hit_rate) << i;
    EXPECT_EQ(serial[i].forwarded, parallel[i].forwarded) << i;
  }
}

TEST(Parallel, ResultsInJobOrder) {
  const auto tr = workload();
  const auto jobs = grid_jobs(tr);
  const auto results = run_parallel(jobs, 3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].nodes, jobs[i].sim.nodes);
    EXPECT_EQ(results[i].policy, make_policy(jobs[i].kind)->name());
  }
}

TEST(Parallel, EmptyJobListIsFine) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
}

TEST(Parallel, NullTraceRejected) {
  std::vector<SimJob> jobs(1);
  EXPECT_THROW((void)run_parallel(jobs, 2), Error);
}

TEST(Parallel, JobErrorsPropagate) {
  const auto tr = workload();
  std::vector<SimJob> jobs = grid_jobs(tr);
  jobs[2].sim.nodes = 0;  // invalid: construction throws inside the worker
  EXPECT_THROW((void)run_parallel(jobs, 4), Error);
}

TEST(Parallel, JobErrorsCarryJobContext) {
  const auto tr = workload();
  std::vector<SimJob> jobs = grid_jobs(tr);
  jobs[2].sim.nodes = 0;  // third job (index 2) fails
  try {
    (void)run_parallel(jobs, 1);  // serial: job 2 is deterministically first
    FAIL() << "expected run_parallel to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("run_parallel: job 2"), std::string::npos) << what;
    EXPECT_NE(what.find("trace=par"), std::string::npos) << what;
    EXPECT_NE(what.find("nodes=0"), std::string::npos) << what;
    EXPECT_NE(what.find("policy="), std::string::npos) << what;
    // The original failure is nested inside and still reachable.
    bool found_cause = false;
    try {
      std::rethrow_if_nested(e);
    } catch (const Error& cause) {
      found_cause = true;
      EXPECT_EQ(what.find(cause.what()), std::string::npos)
          << "cause should not be duplicated into the context message";
    }
    EXPECT_TRUE(found_cause);
  }
}

std::vector<SimJob> telemetry_jobs(const trace::Trace& tr) {
  auto jobs = grid_jobs(tr);
  for (auto& job : jobs) {
    job.sim.telemetry.enabled = true;
    job.sim.telemetry.span_sample_every = 8;
  }
  return jobs;
}

TEST(Parallel, TelemetryRidesEachJobWithoutSharing) {
  // Each job owns a private registry (no shared mutable state between
  // workers — this test runs under TSan in tools/check.sh), and parallel
  // execution reproduces serial telemetry exactly.
  const auto tr = workload();
  const auto jobs = telemetry_jobs(tr);
  const auto serial = run_parallel(jobs, 1);
  const auto parallel = run_parallel(jobs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_NE(serial[i].telemetry, nullptr) << i;
    ASSERT_NE(parallel[i].telemetry, nullptr) << i;
    EXPECT_EQ(serial[i].telemetry->find("requests.completed")->count,
              parallel[i].telemetry->find("requests.completed")->count)
        << i;
    ASSERT_EQ(serial[i].telemetry->spans.size(), parallel[i].telemetry->spans.size()) << i;
    for (std::size_t j = 0; j < serial[i].telemetry->spans.size(); ++j) {
      EXPECT_TRUE(serial[i].telemetry->spans[j] == parallel[i].telemetry->spans[j]);
    }
  }
}

TEST(Parallel, TelemetryMergeIsDeterministicAcrossSchedules) {
  // merge_telemetry folds per-job snapshots in job-index order, so the
  // aggregate is identical no matter which worker finished first.
  const auto tr = workload();
  const auto jobs = telemetry_jobs(tr);
  const auto serial_merged = merge_telemetry(run_parallel(jobs, 1));
  const auto parallel_merged = merge_telemetry(run_parallel(jobs, 4));
  ASSERT_NE(serial_merged, nullptr);
  ASSERT_NE(parallel_merged, nullptr);

  // Scalars: the merged completed counter is the sum over all jobs.
  const auto results = run_parallel(jobs, 4);
  std::uint64_t total = 0;
  for (const auto& r : results) total += r.completed;
  EXPECT_EQ(serial_merged->find("requests.completed")->count, total);
  EXPECT_EQ(parallel_merged->find("requests.completed")->count, total);

  // Appends: spans concatenate in job-index order, bit-identically.
  ASSERT_EQ(serial_merged->spans.size(), parallel_merged->spans.size());
  for (std::size_t i = 0; i < serial_merged->spans.size(); ++i) {
    EXPECT_TRUE(serial_merged->spans[i] == parallel_merged->spans[i]);
  }
  EXPECT_EQ(serial_merged->spans_recorded, parallel_merged->spans_recorded);
}

TEST(Parallel, MergeTelemetrySkipsJobsWithoutIt) {
  const auto tr = workload();
  auto jobs = telemetry_jobs(tr);
  jobs[1].sim.telemetry.enabled = false;  // mixed batch
  const auto results = run_parallel(jobs, 2);
  const auto merged = merge_telemetry(results);
  ASSERT_NE(merged, nullptr);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 1) total += results[i].completed;
  }
  EXPECT_EQ(merged->find("requests.completed")->count, total);

  // And a batch with no telemetry at all merges to null.
  EXPECT_EQ(merge_telemetry(run_parallel(grid_jobs(tr), 2)), nullptr);
}

TEST(Parallel, FigureMatchesSerialRunner) {
  const auto tr = workload();
  ExperimentConfig cfg;
  cfg.sim.node.cache_bytes = kMiB;
  cfg.node_counts = {1, 2};
  const auto serial = run_throughput_figure(tr, cfg);
  const auto parallel = run_throughput_figure_parallel(tr, cfg, 4);
  ASSERT_EQ(serial.node_counts, parallel.node_counts);
  for (std::size_t i = 0; i < serial.node_counts.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.l2s[i].throughput_rps, parallel.l2s[i].throughput_rps);
    EXPECT_DOUBLE_EQ(serial.lard[i].throughput_rps, parallel.lard[i].throughput_rps);
    EXPECT_DOUBLE_EQ(serial.traditional[i].throughput_rps,
                     parallel.traditional[i].throughput_rps);
    EXPECT_DOUBLE_EQ(serial.model_rps[i], parallel.model_rps[i]);
  }
}

TEST(Parallel, WorkerCountRespectsTheSharedThreadBudget) {
  // jobs x per-job-threads must never exceed the budget: a sweep of
  // sharded simulations on an 8-way machine gets 8/k workers, not 8.
  EXPECT_EQ(compute_worker_threads(16, 1, 8), 8u);
  EXPECT_EQ(compute_worker_threads(16, 2, 8), 4u);
  EXPECT_EQ(compute_worker_threads(16, 3, 8), 2u);
  EXPECT_EQ(compute_worker_threads(16, 8, 8), 1u);
  // A single job may overshoot the budget alone (progress beats strictness).
  EXPECT_EQ(compute_worker_threads(16, 9, 8), 1u);
  // Never more workers than jobs.
  EXPECT_EQ(compute_worker_threads(3, 1, 8), 3u);
  EXPECT_EQ(compute_worker_threads(0, 1, 8), 0u);
  // Degenerate inputs are clamped rather than dividing by zero.
  EXPECT_EQ(compute_worker_threads(4, 0, 0), 1u);
}

TEST(Parallel, EngineThreadsIsOneForTheMergeModeClusterEngine) {
  // The sharded cluster engine executes in sequential-merge mode, so a
  // sharded job still occupies a single budget slot; this pin documents
  // the contract the threaded cluster engine will have to update.
  SimConfig serial;
  SimConfig sharded;
  sharded.engine.shards = EngineConfig::kAutoShards;
  EXPECT_EQ(engine_threads(serial), 1u);
  EXPECT_EQ(engine_threads(sharded), 1u);
}

TEST(Parallel, ThreadBudgetEnvOverrideBoundsTheWorkerPool) {
  // With L2SIM_THREADS=2, an auto-threaded run_parallel over many jobs is
  // still bit-identical to serial (the budget changes scheduling, never
  // results).
  ASSERT_EQ(setenv("L2SIM_THREADS", "2", 1), 0);
  EXPECT_EQ(thread_budget(), 2u);
  const auto tr = workload();
  auto jobs = grid_jobs(tr);
  jobs.resize(4);
  const auto budgeted = run_parallel(jobs, 0);  // 0 = take the budget
  ASSERT_EQ(unsetenv("L2SIM_THREADS"), 0);
  const auto serial = run_parallel(jobs, 1);
  ASSERT_EQ(budgeted.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].throughput_rps, budgeted[i].throughput_rps);
    EXPECT_EQ(serial[i].completed, budgeted[i].completed);
  }
}

}  // namespace
}  // namespace l2s::core
