#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/zipf/sampler.hpp"

namespace l2s::zipf {
namespace {

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  const ZipfSampler s(1000, 0.9);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < s.files(); ++r) sum += s.probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, ProbabilitiesFollowPowerLaw) {
  const ZipfSampler s(1000, 1.0);
  // p(r) ~ 1/(r+1): p(0)/p(9) == 10.
  EXPECT_NEAR(s.probability(0) / s.probability(9), 10.0, 1e-6);
}

TEST(ZipfSampler, SamplesMatchProbabilities) {
  const ZipfSampler s(100, 0.8);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  const int draws = 300000;
  for (int i = 0; i < draws; ++i) ++counts[s.sample(rng)];
  for (const std::uint64_t r : {0ull, 1ull, 5ull, 20ull}) {
    const double expected = s.probability(r) * draws;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 5.0) << "rank " << r;
  }
}

TEST(ZipfSampler, AllRanksInRange) {
  const ZipfSampler s(17, 1.1);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(s.sample(rng), 17u);
}

TEST(ZipfSampler, SingleFileAlwaysRankZero) {
  const ZipfSampler s(1, 1.0);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(s.probability(0), 1.0);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), l2s::Error);
  EXPECT_THROW(ZipfSampler(10, 0.0), l2s::Error);
}

TEST(ZipfSampler, ProbabilityOutOfRangeThrows) {
  const ZipfSampler s(10, 1.0);
  EXPECT_THROW(s.probability(10), l2s::Error);
}

}  // namespace
}  // namespace l2s::zipf
