#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/storage/file_set.hpp"

namespace l2s::storage {
namespace {

TEST(FileSet, SequentialIds) {
  FileSet fs;
  EXPECT_EQ(fs.add(100), 0u);
  EXPECT_EQ(fs.add(200), 1u);
  EXPECT_EQ(fs.count(), 2u);
}

TEST(FileSet, SizesAndWorkingSet) {
  FileSet fs;
  fs.add(1024);
  fs.add(2048);
  EXPECT_EQ(fs.size_of(0), 1024u);
  EXPECT_EQ(fs.size_of(1), 2048u);
  EXPECT_EQ(fs.total_bytes(), 3072u);
  EXPECT_DOUBLE_EQ(fs.avg_kb(), 1.5);
}

TEST(FileSet, EmptyAverageIsZero) {
  const FileSet fs;
  EXPECT_DOUBLE_EQ(fs.avg_kb(), 0.0);
  EXPECT_EQ(fs.total_bytes(), 0u);
}

TEST(FileSet, RejectsZeroSizeAndBadIds) {
  FileSet fs;
  EXPECT_THROW(fs.add(0), l2s::Error);
  fs.add(10);
  EXPECT_THROW(fs.size_of(5), l2s::Error);
}

}  // namespace
}  // namespace l2s::storage
