// SPECweb99-style class-mix workloads.
#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::trace {
namespace {

TEST(Specweb, ClassBoundsRespected) {
  const auto spec = specweb99_spec(2000, 10000);
  const Trace tr = generate(spec);
  for (FileId id = 0; id < tr.files().count(); ++id) {
    const double kb = bytes_to_kib(tr.files().size_of(id));
    EXPECT_GE(kb, 0.099);
    EXPECT_LE(kb, 1024.1);
  }
}

TEST(Specweb, ClassMixRoughlyMatches) {
  const auto spec = specweb99_spec(20000, 1000);
  const Trace tr = generate(spec);
  int tiny = 0;
  int small = 0;
  int medium = 0;
  int large = 0;
  for (FileId id = 0; id < tr.files().count(); ++id) {
    const double kb = bytes_to_kib(tr.files().size_of(id));
    if (kb <= 1.0)
      ++tiny;
    else if (kb <= 10.0)
      ++small;
    else if (kb <= 100.0)
      ++medium;
    else
      ++large;
  }
  const double n = 20000.0;
  EXPECT_NEAR(tiny / n, 0.35, 0.02);
  EXPECT_NEAR(small / n, 0.50, 0.02);
  EXPECT_NEAR(medium / n, 0.14, 0.02);
  EXPECT_NEAR(large / n, 0.01, 0.01);
}

TEST(Specweb, AverageFileSizeEmergesNearSpecwebValue) {
  // The SPECweb99 static mix averages roughly 15 KB per file (the 1% of
  // 100 KB-1 MB files carry a lot of the bytes).
  const auto spec = specweb99_spec(20000, 1000);
  const Trace tr = generate(spec);
  EXPECT_GT(tr.files().avg_kb(), 5.0);
  EXPECT_LT(tr.files().avg_kb(), 30.0);
}

TEST(Specweb, RunsThroughSimulation) {
  const auto spec = specweb99_spec(2000, 8000);
  const Trace tr = generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  const auto r = core::run_once(tr, cfg, core::PolicyKind::kL2s);
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_GT(r.hit_rate, 0.3);
}

TEST(Specweb, ValidationCatchesBadClasses) {
  auto spec = specweb99_spec(100, 100);
  spec.size_classes[0].weight = -1.0;
  EXPECT_THROW(generate(spec), l2s::Error);
  spec = specweb99_spec(100, 100);
  spec.size_classes[0].max_kb = 0.01;  // below min
  EXPECT_THROW(generate(spec), l2s::Error);
}

TEST(Specweb, DeterministicGivenSeed) {
  const Trace a = generate(specweb99_spec(500, 2000, 7));
  const Trace b = generate(specweb99_spec(500, 2000, 7));
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(a.requests()[i].file, b.requests()[i].file);
  for (FileId id = 0; id < 500; ++id)
    EXPECT_EQ(a.files().size_of(id), b.files().size_of(id));
}

}  // namespace
}  // namespace l2s::trace
