// Large-N sanity net (ctest -L largen): a 256-node cluster at heavy
// traffic, driven through the sharded DES engine, checked against the
// M/M/infinity ranked-servers asymptotics (Eschenfeldt, Gross & Pippenger;
// see PAPERS.md).
//
// The model: Poisson arrivals at rate lambda, each request dispatched to
// the LOWEST-indexed idle server (ordered hunting) and holding it for the
// network delivery latency plus an exponential service time. In heavy
// traffic with offered load a = lambda * E[holding] servers-worth of work,
// the busy-server count is asymptotically Poisson(a) — the M/G/infinity
// insensitivity result — so the idle-server count is N - Poisson(a), and
// ordered hunting concentrates the idleness in the highest ranks: server
// utilization is non-increasing in rank, near 1 at the low ranks and
// falling off around rank a. The tolerance bands below hold with large
// margin for the configured run length (they are sanity gates on the
// engine's large-N behaviour, not estimator-precision tests).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "l2sim/common/rng.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/des/shard_map.hpp"
#include "l2sim/des/sharded_scheduler.hpp"

namespace l2s::des {
namespace {

struct RankedClusterResult {
  double mean_busy = 0.0;       ///< time-average busy-server count
  double var_busy = 0.0;        ///< sample variance of the busy count
  double drop_fraction = 0.0;   ///< arrivals finding every server busy
  std::vector<double> utilization;  ///< per-rank busy-time fraction
  std::uint64_t arrivals = 0;
};

/// Simulate the ranked-servers cluster on the sharded engine (sequential
/// merge: the dispatcher's idle set is shared across shards). All
/// randomness comes from one sequential stream, consumed in deterministic
/// merge order.
RankedClusterResult run_ranked_cluster(int nodes, int shards, double lambda,
                                       double mean_service_s,
                                       double horizon_s, std::uint64_t seed) {
  const SimTime latency = 10'000;  // VIA minimum cross-node latency (10 us)
  const SimTime horizon = seconds_to_simtime(horizon_s);
  const SimTime sample_every = seconds_to_simtime(0.0005);

  ShardMap map(nodes, shards);
  ShardedScheduler engine(map.shards(), latency,
                          ShardedScheduler::Mode::kSequentialMerge);
  Rng rng(seed);

  std::vector<bool> busy(static_cast<std::size_t>(nodes), false);
  std::vector<SimTime> busy_since(static_cast<std::size_t>(nodes), 0);
  std::vector<SimTime> busy_ns(static_cast<std::size_t>(nodes), 0);
  int busy_count = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::uint64_t samples = 0;

  Scheduler& front = engine.shard(0);  // dispatcher + samplers live here

  // Periodic busy-count sampler.
  auto sample = [&](auto&& self) -> void {
    sum += busy_count;
    sum_sq += static_cast<double>(busy_count) * busy_count;
    ++samples;
    if (front.now() + sample_every <= horizon)
      front.after(sample_every, [self] { self(self); });
  };

  // Poisson arrival source with ordered-hunt dispatch.
  auto arrive = [&](auto&& self) -> void {
    ++arrivals;
    int server = -1;
    for (int i = 0; i < nodes; ++i) {
      if (!busy[static_cast<std::size_t>(i)]) {
        server = i;
        break;
      }
    }
    if (server < 0) {
      ++drops;  // every server busy: heavy-traffic loss, must stay rare
    } else {
      busy[static_cast<std::size_t>(server)] = true;
      busy_since[static_cast<std::size_t>(server)] = front.now();
      ++busy_count;
      const SimTime hold =
          latency + 1 +
          seconds_to_simtime(rng.next_exponential(1.0 / mean_service_s));
      // The release executes on the server's own shard, arriving there
      // through the cross-shard mailbox contract (hold > lookahead).
      engine.post(0, map.shard_of(server), front.now() + hold,
                  [&busy, &busy_since, &busy_ns, &busy_count, server,
                   release = front.now() + hold] {
                    busy[static_cast<std::size_t>(server)] = false;
                    busy_ns[static_cast<std::size_t>(server)] +=
                        release - busy_since[static_cast<std::size_t>(server)];
                    --busy_count;
                  });
    }
    const SimTime gap = 1 + seconds_to_simtime(rng.next_exponential(lambda));
    if (front.now() + gap <= horizon)
      front.after(gap, [self] { self(self); });
  };

  front.at(1, [&sample] { sample(sample); });
  front.at(1, [&arrive] { arrive(arrive); });
  engine.run();

  RankedClusterResult r;
  r.arrivals = arrivals;
  r.drop_fraction =
      arrivals == 0 ? 0.0 : static_cast<double>(drops) / static_cast<double>(arrivals);
  r.mean_busy = sum / static_cast<double>(samples);
  r.var_busy = sum_sq / static_cast<double>(samples) - r.mean_busy * r.mean_busy;
  const double span = static_cast<double>(front.now() - 1);
  for (int i = 0; i < nodes; ++i)
    r.utilization.push_back(static_cast<double>(busy_ns[static_cast<std::size_t>(i)]) /
                            span);
  return r;
}

TEST(LargeN, RankedServersMatchHeavyTrafficAsymptotics) {
  constexpr int kNodes = 256;
  constexpr double kLambda = 125'000.0;     // arrivals per second
  constexpr double kMeanService = 0.0016;   // 1.6 ms
  constexpr double kHorizon = 1.0;          // simulated seconds
  // Offered load in servers: lambda * (service + delivery latency).
  const double a = kLambda * (kMeanService + 10e-6);
  ASSERT_LT(a, kNodes * 0.85);  // heavy traffic, but below saturation

  const auto r = run_ranked_cluster(kNodes, /*shards=*/8, kLambda,
                                    kMeanService, kHorizon, /*seed=*/42);

  // ~125k arrivals in the horizon; enough for tight means.
  EXPECT_GT(r.arrivals, 100'000u);

  // M/G/infinity insensitivity: busy-server count ~ Poisson(a).
  EXPECT_NEAR(r.mean_busy, a, 0.05 * a);
  // Poisson: variance == mean (wide band: samples are correlated).
  EXPECT_GT(r.var_busy / r.mean_busy, 0.6);
  EXPECT_LT(r.var_busy / r.mean_busy, 1.6);
  // Loss (all 256 busy) sits ~3.9 sigma out: must be rare.
  EXPECT_LT(r.drop_fraction, 1e-3);

  // Ordered hunting concentrates idleness in the high ranks: block-mean
  // utilization is strictly decreasing, ~1 at the bottom, and the drop-off
  // straddles rank a.
  constexpr int kBlock = 64;
  std::vector<double> block_util;
  for (int b = 0; b < kNodes / kBlock; ++b) {
    double s = 0.0;
    for (int i = b * kBlock; i < (b + 1) * kBlock; ++i)
      s += r.utilization[static_cast<std::size_t>(i)];
    block_util.push_back(s / kBlock);
  }
  for (std::size_t b = 1; b < block_util.size(); ++b)
    EXPECT_LT(block_util[b], block_util[b - 1]) << "block " << b;
  EXPECT_GT(block_util.front(), 0.95);
  EXPECT_LT(block_util.back(), 0.6);

  // The idle-server distribution: mean idle count == N - a.
  EXPECT_NEAR(kNodes - r.mean_busy, kNodes - a, 0.05 * a);
}

TEST(LargeN, RankedClusterIsEnginePartitionInvariant) {
  // The shard count is an execution detail: identical streams, identical
  // merge order, identical statistics for any partition of the 256 nodes.
  const auto one = run_ranked_cluster(256, 1, 50'000.0, 0.0016, 0.1, 7);
  const auto eight = run_ranked_cluster(256, 8, 50'000.0, 0.0016, 0.1, 7);
  const auto many = run_ranked_cluster(256, 64, 50'000.0, 0.0016, 0.1, 7);
  EXPECT_EQ(one.arrivals, eight.arrivals);
  EXPECT_EQ(one.mean_busy, eight.mean_busy);
  EXPECT_EQ(one.var_busy, eight.var_busy);
  EXPECT_EQ(one.utilization, eight.utilization);
  EXPECT_EQ(one.arrivals, many.arrivals);
  EXPECT_EQ(one.mean_busy, many.mean_busy);
  EXPECT_EQ(one.utilization, many.utilization);
}

}  // namespace
}  // namespace l2s::des
