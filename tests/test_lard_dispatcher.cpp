#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/lard_dispatcher.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

trace::Trace light_workload(std::uint64_t requests = 40000) {
  // CPU-light: the original LARD front-end saturates near 5000 req/s on
  // this workload, well below the cluster's capacity.
  trace::SyntheticSpec spec;
  spec.name = "light";
  spec.files = 800;
  spec.avg_file_kb = 4.0;
  spec.avg_request_kb = 2.0;
  spec.alpha = 0.9;
  spec.requests = requests;
  return trace::generate(spec);
}

TEST(LardDispatcher, EntryAvoidsDispatcherNode) {
  PolicyFixture f(4);
  LardDispatcherPolicy p;
  p.attach(f.ctx);
  for (std::uint64_t seq = 0; seq < 20; ++seq)
    EXPECT_NE(p.entry_node(seq, PolicyFixture::request_for(0)),
              LardDispatcherPolicy::dispatcher());
}

TEST(LardDispatcher, DecisionIsAsynchronousAndSticky) {
  PolicyFixture f(4);
  LardDispatcherPolicy p;
  p.attach(f.ctx);
  EXPECT_TRUE(p.decides_asynchronously());
  int first = -1;
  p.select_service_node_async(1, PolicyFixture::request_for(7),
                              [&](int t) { first = t; });
  f.drain();  // the query round-trip is simulated traffic
  ASSERT_GE(first, 1);
  int second = -1;
  p.select_service_node_async(2, PolicyFixture::request_for(7),
                              [&](int t) { second = t; });
  f.drain();
  EXPECT_EQ(second, first);  // same file -> same server (locality)
}

TEST(LardDispatcher, QueryCostsWireTimeAndDispatcherCpu) {
  PolicyFixture f(4);
  LardDispatcherPolicy p;
  p.attach(f.ctx);
  SimTime decided_at = -1;
  p.select_service_node_async(1, PolicyFixture::request_for(3),
                              [&](int) { decided_at = f.sched.now(); });
  f.drain();
  // Two 19 us VIA sends plus 20 us dispatcher CPU ~= 58 us.
  EXPECT_NEAR(simtime_to_seconds(decided_at), 58e-6, 5e-6);
  EXPECT_TRUE(f.nodes[0]->cpu().busy_time() > 0);
}

TEST(LardDispatcher, OutscalesOriginalLardFrontEnd) {
  const auto tr = light_workload();
  core::SimConfig cfg;
  cfg.nodes = 16;
  cfg.node.cache_bytes = 4 * kMiB;
  const auto original = [&] {
    core::ClusterSimulation sim(cfg, tr, std::make_unique<LardPolicy>());
    return sim.run();
  }();
  const auto dispatcher = [&] {
    core::ClusterSimulation sim(cfg, tr, std::make_unique<LardDispatcherPolicy>());
    return sim.run();
  }();
  // The related-work claim: the dispatcher variant saturates at a higher
  // throughput than the accept-everything front-end.
  EXPECT_GT(dispatcher.throughput_rps, 1.3 * original.throughput_rps);
  EXPECT_EQ(dispatcher.completed, tr.request_count());
}

TEST(LardDispatcher, DispatcherCrashIsFatalButBackEndCrashIsNot) {
  const auto tr = light_workload(20000);
  core::SimConfig cfg;
  cfg.nodes = 8;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.fault_plan.crashes.push_back({LardDispatcherPolicy::dispatcher(), 0.2});
  {
    core::ClusterSimulation sim(cfg, tr, std::make_unique<LardDispatcherPolicy>());
    const auto r = sim.run();
    EXPECT_GT(r.failed, tr.request_count() / 2);
  }
  core::SimConfig cfg2;
  cfg2.nodes = 8;
  cfg2.node.cache_bytes = 4 * kMiB;
  cfg2.fault_plan.crashes.push_back({3, 0.2});
  {
    core::ClusterSimulation sim(cfg2, tr, std::make_unique<LardDispatcherPolicy>());
    const auto r = sim.run();
    EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
              0.9);
  }
}

TEST(LardDispatcher, SingleNodeDegenerates) {
  PolicyFixture f(1);
  LardDispatcherPolicy p;
  p.attach(f.ctx);
  int target = -1;
  p.select_service_node_async(0, PolicyFixture::request_for(0), [&](int t) { target = t; });
  EXPECT_EQ(target, 0);  // synchronous degenerate path
}

}  // namespace
}  // namespace l2s::policy
