#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/model/trace_model.hpp"

namespace l2s::model {
namespace {

WorkloadStats calgary_stats() {
  WorkloadStats s;
  s.files = 8397;
  s.avg_file_kb = 42.9;
  s.avg_request_kb = 19.7;
  s.alpha = 1.08;
  return s;
}

ModelParams paper_sim_params(double replication = 0.15) {
  ModelParams p;
  p.cache_bytes = 32 * kMiB;  // the paper's simulated memories
  p.replication = replication;
  p.alpha = 1.08;
  return p;
}

TEST(TraceModel, HitRatesGrowWithNodesUntilSaturation) {
  const TraceModel tm(paper_sim_params(), calgary_stats());
  double prev = 0.0;
  for (const int n : {1, 2, 4, 8, 16}) {
    const double h = tm.conscious_hit_rate(n);
    EXPECT_GE(h, prev);
    if (prev < 1.0) {
      EXPECT_GT(h, prev);  // strictly growing until capped
    }
    EXPECT_LE(h, 1.0);
    prev = h;
  }
}

TEST(TraceModel, ObliviousHitRateIndependentOfNodes) {
  const TraceModel tm(paper_sim_params(), calgary_stats());
  const double h = tm.oblivious_hit_rate();
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
  // One 32 MB cache holding ~19.7 KB hot files: well below full hit.
  EXPECT_LT(h, 0.95);
}

TEST(TraceModel, BoundScalesWithNodes) {
  const TraceModel tm(paper_sim_params(), calgary_stats());
  const double t1 = tm.bound(1).conscious.throughput;
  const double t16 = tm.bound(16).conscious.throughput;
  EXPECT_GT(t16, 5.0 * t1);
}

TEST(TraceModel, SixteenNodeCalgaryBoundNearPaperValue) {
  // The paper's Figure 7 model line reaches roughly 8300 req/s at 16
  // nodes. Our derivation should land in the same range.
  const TraceModel tm(paper_sim_params(), calgary_stats());
  const double t16 = tm.bound(16).conscious.throughput;
  EXPECT_GT(t16, 7000.0);
  EXPECT_LT(t16, 10000.0);
}

TEST(TraceModel, ConsciousBoundDominatesOblivious) {
  const TraceModel tm(paper_sim_params(), calgary_stats());
  for (const int n : {2, 8, 16}) {
    const auto b = tm.bound(n);
    EXPECT_GE(b.conscious.throughput, b.oblivious.throughput) << n;
  }
}

TEST(TraceModel, ReplicationLowersConsciousHitRateSlightly) {
  // Compare at 4 nodes, where the combined cache does not yet hold the
  // whole file population (at 16 nodes both hit rates are capped at 1).
  const TraceModel none(paper_sim_params(0.0), calgary_stats());
  const TraceModel some(paper_sim_params(0.30), calgary_stats());
  EXPECT_GT(none.conscious_hit_rate(4), some.conscious_hit_rate(4));
}

TEST(TraceModel, ReplicationReportsReplicatedHitRate) {
  const TraceModel tm(paper_sim_params(0.15), calgary_stats());
  const auto b = tm.bound(16);
  EXPECT_GT(b.conscious.replicated_hit_rate, 0.0);
  EXPECT_LT(b.conscious.replicated_hit_rate, 1.0);
  // Q = (N-1)(1-h)/N.
  EXPECT_NEAR(b.conscious.forwarded_fraction,
              15.0 / 16.0 * (1.0 - b.conscious.replicated_hit_rate), 1e-9);
}

TEST(TraceModel, RejectsBadStats) {
  WorkloadStats s = calgary_stats();
  s.files = 0;
  EXPECT_THROW(TraceModel(paper_sim_params(), s), Error);
  s = calgary_stats();
  s.avg_file_kb = 0.0;
  EXPECT_THROW(TraceModel(paper_sim_params(), s), Error);
  s = calgary_stats();
  s.alpha = 0.0;
  EXPECT_THROW(TraceModel(paper_sim_params(), s), Error);
}

TEST(TraceModel, BoundRejectsNonPositiveNodes) {
  const TraceModel tm(paper_sim_params(), calgary_stats());
  EXPECT_THROW((void)tm.bound(0), Error);
}

}  // namespace
}  // namespace l2s::model
