// Span capture: ring wraparound and overflow accounting, deterministic
// 1-in-N sampling replay, and the end-to-end property that fully-sampled
// spans reconstruct the engine's own per-stage breakdown.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "l2sim/core/simulation.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/telemetry/span.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::telemetry {
namespace {

Span make_span(std::uint64_t id) {
  Span s;
  s.request_id = id;
  s.arrival = static_cast<SimTime>(id) * 10;
  s.completion = s.arrival + 5;
  return s;
}

TEST(SpanRecorder, RejectsDegenerateParameters) {
  EXPECT_THROW(SpanRecorder(0, 1), std::invalid_argument);
  EXPECT_THROW(SpanRecorder(8, 0), std::invalid_argument);
}

TEST(SpanRecorder, RingOverwritesOldestAndCountsIt) {
  SpanRecorder rec(4, 1);
  for (std::uint64_t id = 0; id < 10; ++id) rec.record(make_span(id));
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto spans = rec.chronological();
  ASSERT_EQ(spans.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].request_id, 6 + i);
}

TEST(SpanRecorder, PartialRingIsChronological) {
  SpanRecorder rec(8, 1);
  for (std::uint64_t id = 0; id < 3; ++id) rec.record(make_span(id));
  EXPECT_EQ(rec.overwritten(), 0u);
  const auto spans = rec.chronological();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].request_id, 0u);
  EXPECT_EQ(spans[2].request_id, 2u);
}

TEST(SpanRecorder, SamplingIsDeterministicAndRoughlyUniform) {
  const std::uint64_t every = 64;
  SpanRecorder a(16, every);
  SpanRecorder b(16, every);
  std::uint64_t sampled = 0;
  for (std::uint64_t id = 0; id < 100000; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id));  // pure function of the id
    if (a.sampled(id)) ++sampled;
  }
  // splitmix64 mixing keeps 1-in-64 sampling of consecutive ids near 1/64.
  const double rate = static_cast<double>(sampled) / 100000.0;
  EXPECT_NEAR(rate, 1.0 / 64.0, 0.005);
}

TEST(SpanRecorder, SampleEveryOneTakesAll) {
  SpanRecorder rec(4, 1);
  for (std::uint64_t id = 0; id < 1000; ++id) EXPECT_TRUE(rec.sampled(id));
}

TEST(SpanRecorder, ResetClearsContentsKeepsShape) {
  SpanRecorder rec(4, 2);
  for (std::uint64_t id = 0; id < 6; ++id) rec.record(make_span(id));
  rec.reset();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.sample_every(), 2u);
  EXPECT_TRUE(rec.chronological().empty());
}

// --- end-to-end against the simulation engine -----------------------------

trace::Trace workload(std::uint64_t requests = 6000) {
  trace::SyntheticSpec spec;
  spec.name = "spans";
  spec.files = 300;
  spec.avg_file_kb = 8.0;
  spec.requests = requests;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 77;
  return trace::generate(spec);
}

core::SimConfig telemetry_config(std::uint64_t sample_every, std::size_t capacity) {
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  cfg.telemetry.span_sample_every = sample_every;
  cfg.telemetry.span_capacity = capacity;
  return cfg;
}

TEST(TelemetrySpans, FullSamplingReconstructsStageBreakdown) {
  const auto tr = workload();
  core::ClusterSimulation sim(telemetry_config(1, 1 << 14), tr,
                              std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);
  const Snapshot& snap = *r.telemetry;

  // Every completed request left a span (capacity exceeds the trace).
  EXPECT_EQ(snap.spans.size(), r.completed);
  EXPECT_EQ(snap.spans_overwritten, 0u);
  EXPECT_EQ(snap.find("requests.completed")->count, r.completed);

  // The per-resource stage means reconstructed from the spans equal the
  // engine's own SimResult stage accumulators (same timestamps, same math).
  double entry = 0.0;
  double forward = 0.0;
  double disk = 0.0;
  double reply = 0.0;
  for (const Span& s : snap.spans) {
    EXPECT_FALSE(s.failed());
    entry += s.entry_ms();
    forward += s.forward_ms();
    disk += s.disk_ms();
    reply += s.reply_ms();
  }
  const auto n = static_cast<double>(snap.spans.size());
  EXPECT_NEAR(entry / n, r.stage_entry_ms, 1e-9);
  EXPECT_NEAR(forward / n, r.stage_forward_ms, 1e-9);
  EXPECT_NEAR(disk / n, r.stage_disk_ms, 1e-9);
  EXPECT_NEAR(reply / n, r.stage_reply_ms, 1e-9);
}

TEST(TelemetrySpans, SampledSpanSetReplaysBitIdentically) {
  const auto tr = workload();
  core::ClusterSimulation a(telemetry_config(64, 1024), tr,
                            std::make_unique<policy::L2sPolicy>());
  core::ClusterSimulation b(telemetry_config(64, 1024), tr,
                            std::make_unique<policy::L2sPolicy>());
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_NE(ra.telemetry, nullptr);
  ASSERT_NE(rb.telemetry, nullptr);
  ASSERT_EQ(ra.telemetry->spans.size(), rb.telemetry->spans.size());
  EXPECT_GT(ra.telemetry->spans.size(), 0u);
  for (std::size_t i = 0; i < ra.telemetry->spans.size(); ++i) {
    EXPECT_TRUE(ra.telemetry->spans[i] == rb.telemetry->spans[i]);
  }
}

TEST(TelemetrySpans, SamplingIsASubsetOfFullCapture) {
  // 1-in-N sampling must select exactly the requests whose id passes the
  // pure sampling function — i.e. the sampled run's spans are a subset of
  // the fully-sampled run's spans with identical contents.
  const auto tr = workload(3000);
  core::ClusterSimulation full_sim(telemetry_config(1, 1 << 14), tr,
                                   std::make_unique<policy::L2sPolicy>());
  core::ClusterSimulation sampled_sim(telemetry_config(16, 1 << 14), tr,
                                      std::make_unique<policy::L2sPolicy>());
  const auto full = full_sim.run();
  const auto sampled = sampled_sim.run();
  ASSERT_NE(full.telemetry, nullptr);
  ASSERT_NE(sampled.telemetry, nullptr);

  SpanRecorder probe(1, 16);
  std::size_t expected = 0;
  for (const Span& s : full.telemetry->spans) {
    if (probe.sampled(s.request_id)) ++expected;
  }
  EXPECT_EQ(sampled.telemetry->spans.size(), expected);
  std::size_t j = 0;
  for (const Span& s : full.telemetry->spans) {
    if (!probe.sampled(s.request_id)) continue;
    ASSERT_LT(j, sampled.telemetry->spans.size());
    EXPECT_TRUE(sampled.telemetry->spans[j] == s);
    ++j;
  }
}

TEST(TelemetrySpans, FailedRequestsLeaveFailureSpans) {
  const auto tr = workload();
  core::SimConfig cfg = telemetry_config(1, 1 << 14);
  cfg.nodes = 8;
  cfg.fault_plan.crashes.push_back({3, 0.2});
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);
  std::uint64_t failed_spans = 0;
  std::uint64_t nonzero_epoch = 0;
  for (const Span& s : r.telemetry->spans) {
    if (s.failed()) ++failed_spans;
    if (s.fault_epoch > 0) ++nonzero_epoch;
  }
  // Every failure materialized a connection (no open-loop rejects here), so
  // span capture at 1-in-1 sees all of them.
  EXPECT_EQ(failed_spans, r.failed);
  EXPECT_GT(nonzero_epoch, 0u);  // spans after the crash carry the epoch
  EXPECT_FALSE(r.telemetry->fault_events.empty());
}

}  // namespace
}  // namespace l2s::telemetry
