// Exporter round-trips: the Chrome trace-event JSON must parse back with a
// real (if small) JSON parser, and the CSV / summary writers must produce
// the advertised shapes from a live simulation snapshot.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "l2sim/core/simulation.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/telemetry/exporters.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::telemetry {
namespace {

// --- a tiny recursive-descent JSON parser (tests only) ---------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  [[nodiscard]] const JsonObject& object() const { return std::get<JsonObject>(v); }
  [[nodiscard]] const JsonArray& array() const { return std::get<JsonArray>(v); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
  [[nodiscard]] double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad literal at " + std::to_string(pos_));
    }
    pos_ += word.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // tests never need the decoded code point
            out += '?';
            break;
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number at " + std::to_string(pos_));
    return std::stod(text_.substr(start, pos_ - start));
  }

  JsonValue array() {
    expect('[');
    JsonArray items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(items)};
    }
    while (true) {
      items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(items)};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(members)};
    }
    while (true) {
      std::string key = string();
      expect(':');
      members.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(members)};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- fixtures ---------------------------------------------------------------

Snapshot live_snapshot(int nodes = 4, bool with_crash = false) {
  trace::SyntheticSpec spec;
  spec.name = "export";
  spec.files = 300;
  spec.avg_file_kb = 8.0;
  spec.requests = 4000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 101;
  const auto tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  cfg.telemetry.span_sample_every = 1;
  cfg.telemetry.span_capacity = 1 << 14;
  if (with_crash) cfg.fault_plan.crashes.push_back({1, 0.2});
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  return *r.telemetry;
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

// --- Chrome trace ------------------------------------------------------------

TEST(TelemetryExport, ChromeTraceParsesBack) {
  const Snapshot snap = live_snapshot();
  std::ostringstream out;
  write_chrome_trace(out, snap);
  const std::string text = out.str();

  const JsonValue root = JsonParser(text).parse();
  ASSERT_TRUE(root.is_object());
  const auto& top = root.object();
  ASSERT_TRUE(top.contains("traceEvents"));
  ASSERT_TRUE(top.at("traceEvents").is_array());
  const JsonArray& events = top.at("traceEvents").array();
  ASSERT_GT(events.size(), snap.spans.size());  // slices + metadata + counters

  std::size_t slices = 0;
  std::size_t metadata = 0;
  std::size_t counters = 0;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const auto& obj = ev.object();
    ASSERT_TRUE(obj.contains("ph"));
    const std::string& ph = obj.at("ph").str();
    if (ph == "X") {
      ++slices;
      ASSERT_TRUE(obj.contains("ts"));
      ASSERT_TRUE(obj.contains("dur"));
      ASSERT_TRUE(obj.contains("pid"));
      EXPECT_GE(obj.at("ts").num(), 0.0);
      EXPECT_GE(obj.at("dur").num(), 0.0);
      const double pid = obj.at("pid").num();
      EXPECT_GE(pid, 0.0);
      EXPECT_LT(pid, static_cast<double>(snap.nodes));
    } else if (ph == "M") {
      ++metadata;
      EXPECT_TRUE(obj.contains("name"));
    } else if (ph == "C") {
      ++counters;
      ASSERT_TRUE(obj.contains("args"));
      EXPECT_TRUE(obj.at("args").is_object());
    }
  }
  // Every node contributes one process-name record plus four track names.
  EXPECT_EQ(metadata, static_cast<std::size_t>(snap.nodes) * 5u);
  EXPECT_GT(slices, 0u);
  EXPECT_GT(counters, 0u);  // probe series become counter tracks
}

TEST(TelemetryExport, ChromeTraceCarriesFaultInstants) {
  const Snapshot snap = live_snapshot(8, /*with_crash=*/true);
  ASSERT_FALSE(snap.fault_events.empty());
  std::ostringstream out;
  write_chrome_trace(out, snap);

  const JsonValue root = JsonParser(out.str()).parse();
  std::size_t instants = 0;
  for (const JsonValue& ev : root.object().at("traceEvents").array()) {
    if (ev.object().at("ph").str() == "i") ++instants;
  }
  EXPECT_GE(instants, snap.fault_events.size());
}

TEST(TelemetryExport, ChromeTraceEscapesStrings) {
  Registry reg;
  reg.sample_series("weird\"name\\with\nescapes").add(0, 1.0);
  Snapshot snap = reg.snapshot();
  snap.nodes = 1;
  std::ostringstream out;
  write_chrome_trace(out, snap);
  EXPECT_NO_THROW(JsonParser(out.str()).parse());
}

// --- CSV + summary -----------------------------------------------------------

TEST(TelemetryExport, MetricsCsvHasOneRowPerScalarMetric) {
  const Snapshot snap = live_snapshot();
  std::ostringstream out;
  write_metrics_csv(out, snap);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "name,labels,kind,count,value,min,max,p50,p95,p99");
  std::size_t scalar = 0;
  for (const auto& m : snap.metrics) {
    if (m.kind == MetricKind::kCounter || m.kind == MetricKind::kGauge ||
        m.kind == MetricKind::kHistogram) {
      ++scalar;
    }
  }
  EXPECT_GT(scalar, 0u);
  EXPECT_EQ(count_lines(text), scalar + 1);  // header + one row each
}

TEST(TelemetryExport, TimeseriesCsvCoversEverySeriesPoint) {
  const Snapshot snap = live_snapshot();
  std::ostringstream out;
  write_timeseries_csv(out, snap);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "name,labels,time_s,value");
  std::size_t points = 0;
  for (const auto& m : snap.metrics) {
    if (m.kind == MetricKind::kBucketSeries) points += m.series_buckets.size();
    if (m.kind == MetricKind::kSampleSeries) points += m.samples.size();
  }
  EXPECT_GT(points, 0u);
  EXPECT_EQ(count_lines(text), points + 1);
}

TEST(TelemetryExport, SpansCsvHasOneRowPerSpan) {
  const Snapshot snap = live_snapshot();
  std::ostringstream out;
  write_spans_csv(out, snap);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "request_id,entry_node,service_node,verdict,cache_hit,attempt,"
            "retries_used,fault_epoch,arrival_s,entry_ms,forward_ms,disk_ms,"
            "reply_ms,total_ms");
  EXPECT_EQ(count_lines(text), snap.spans.size() + 1);
}

TEST(TelemetryExport, SummaryMentionsHeadlineSections) {
  const Snapshot snap = live_snapshot();
  std::ostringstream out;
  write_summary(out, snap);
  const std::string text = out.str();
  EXPECT_NE(text.find("telemetry summary"), std::string::npos);
  EXPECT_NE(text.find("requests.completed"), std::string::npos);
  EXPECT_NE(text.find("Response time"), std::string::npos);
  EXPECT_NE(text.find("entry (cpu)"), std::string::npos);
  EXPECT_NE(text.find("spans: kept"), std::string::npos);
}

TEST(TelemetryExport, PathWrapperThrowsOnUnwritablePath) {
  const Snapshot snap;
  EXPECT_THROW(export_chrome_trace("/nonexistent-dir/trace.json", snap),
               std::runtime_error);
}

}  // namespace
}  // namespace l2s::telemetry
