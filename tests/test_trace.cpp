#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::trace {
namespace {

Trace small_trace() {
  storage::FileSet files;
  files.add(10 * kKiB);
  files.add(20 * kKiB);
  std::vector<Request> reqs = {{0, 10 * kKiB}, {1, 20 * kKiB}, {0, 10 * kKiB}};
  return Trace("small", std::move(files), std::move(reqs));
}

TEST(Trace, BasicAccessors) {
  const Trace t = small_trace();
  EXPECT_EQ(t.name(), "small");
  EXPECT_EQ(t.request_count(), 3u);
  EXPECT_EQ(t.files().count(), 2u);
  EXPECT_EQ(t.total_request_bytes(), 40 * kKiB);
  EXPECT_NEAR(t.avg_request_kb(), 40.0 / 3.0, 1e-9);
}

TEST(Trace, RejectsOutOfRangeFileIds) {
  storage::FileSet files;
  files.add(kKiB);
  std::vector<Request> reqs = {{5, kKiB}};
  EXPECT_THROW(Trace("bad", std::move(files), std::move(reqs)), l2s::Error);
}

TEST(Trace, TruncatedKeepsPrefix) {
  const Trace t = small_trace();
  const Trace head = t.truncated(2);
  EXPECT_EQ(head.request_count(), 2u);
  EXPECT_EQ(head.requests()[0].file, 0u);
  EXPECT_EQ(head.requests()[1].file, 1u);
  EXPECT_EQ(head.total_request_bytes(), 30 * kKiB);
  // Full file set is retained (ids must stay valid).
  EXPECT_EQ(head.files().count(), 2u);
}

TEST(Trace, TruncateBeyondLengthIsIdentity) {
  const Trace t = small_trace();
  const Trace same = t.truncated(100);
  EXPECT_EQ(same.request_count(), t.request_count());
  EXPECT_EQ(same.total_request_bytes(), t.total_request_bytes());
}

TEST(Trace, EmptyTraceBehaves) {
  const Trace t;
  EXPECT_EQ(t.request_count(), 0u);
  EXPECT_DOUBLE_EQ(t.avg_request_kb(), 0.0);
}

}  // namespace
}  // namespace l2s::trace
