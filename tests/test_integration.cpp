// Integration tests: full simulations on paper-shaped workloads,
// verifying the cross-module behaviours the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/model/trace_model.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s {
namespace {

trace::Trace mini_calgary() {
  // A scaled-down Calgary: same shape, fewer files/requests so the whole
  // integration suite stays fast.
  trace::SyntheticSpec spec;
  spec.name = "mini-calgary";
  spec.files = 1500;
  spec.avg_file_kb = 42.9;
  spec.requests = 40000;
  spec.avg_request_kb = 19.7;
  spec.alpha = 1.08;
  spec.seed = 0xCA15A21;
  return trace::generate(spec);
}

core::SimConfig paper_config(int nodes) {
  core::SimConfig cfg;
  cfg.nodes = nodes;
  // Cache scaled with the file population (1500/8397 of 32 MB ~ 6 MB).
  cfg.node.cache_bytes = 6 * kMiB;
  return cfg;
}

TEST(Integration, LocalityPoliciesBeatTraditionalAtScale) {
  const auto tr = mini_calgary();
  const auto l2s_r = core::run_once(tr, paper_config(8), core::PolicyKind::kL2s);
  const auto lard_r = core::run_once(tr, paper_config(8), core::PolicyKind::kLard);
  const auto trad_r = core::run_once(tr, paper_config(8), core::PolicyKind::kTraditional);
  EXPECT_GT(l2s_r.throughput_rps, 1.5 * trad_r.throughput_rps);
  EXPECT_GT(lard_r.throughput_rps, 1.5 * trad_r.throughput_rps);
}

TEST(Integration, LocalityPoliciesHaveLowerMissRates) {
  const auto tr = mini_calgary();
  const auto l2s_r = core::run_once(tr, paper_config(8), core::PolicyKind::kL2s);
  const auto trad_r = core::run_once(tr, paper_config(8), core::PolicyKind::kTraditional);
  EXPECT_LT(l2s_r.miss_rate, 0.6 * trad_r.miss_rate);
}

TEST(Integration, TraditionalMissRateFlatAcrossClusterSizes) {
  const auto tr = mini_calgary();
  const auto r2 = core::run_once(tr, paper_config(2), core::PolicyKind::kTraditional);
  const auto r8 = core::run_once(tr, paper_config(8), core::PolicyKind::kTraditional);
  // Independent caches replicate the same hot set: miss rate barely moves.
  EXPECT_NEAR(r2.miss_rate, r8.miss_rate, 0.05);
}

TEST(Integration, L2sMissRateFallsWithClusterSize) {
  const auto tr = mini_calgary();
  const auto r2 = core::run_once(tr, paper_config(2), core::PolicyKind::kL2s);
  const auto r8 = core::run_once(tr, paper_config(8), core::PolicyKind::kL2s);
  EXPECT_LT(r8.miss_rate, r2.miss_rate);
}

TEST(Integration, LardFrontEndBarrier) {
  // A CPU-light workload that would scale far beyond the front-end's
  // capacity: LARD must flatten near 5000 req/s while L2S keeps scaling.
  trace::SyntheticSpec spec;
  spec.name = "light";
  spec.files = 800;
  spec.avg_file_kb = 4.0;
  spec.requests = 60000;
  spec.avg_request_kb = 2.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 16;
  cfg.node.cache_bytes = 4 * kMiB;
  const auto lard_r = core::run_once(tr, cfg, core::PolicyKind::kLard);
  const auto l2s_r = core::run_once(tr, cfg, core::PolicyKind::kL2s);
  EXPECT_LT(lard_r.throughput_rps, 5600.0);
  EXPECT_GT(lard_r.throughput_rps, 4000.0);
  EXPECT_GT(l2s_r.throughput_rps, 1.5 * lard_r.throughput_rps);
}

TEST(Integration, SimulationRespectsModelBound) {
  // The analytic bound (at the sim's actual replication behaviour the
  // model's 15% is an approximation, so allow 20% headroom).
  const auto tr = mini_calgary();
  const auto ch = trace::characterize(tr);
  model::ModelParams mp;
  mp.cache_bytes = 6 * kMiB;
  mp.replication = 0.15;
  mp.alpha = ch.alpha;
  const model::TraceModel tm(mp, ch.to_workload_stats());
  for (const int nodes : {4, 8}) {
    const auto r = core::run_once(tr, paper_config(nodes), core::PolicyKind::kL2s);
    EXPECT_LT(r.throughput_rps, 1.2 * tm.bound(nodes).conscious.throughput) << nodes;
  }
}

TEST(Integration, ViaTrafficScalesWithPolicyChatter) {
  const auto tr = mini_calgary();
  const auto l2s_r = core::run_once(tr, paper_config(4), core::PolicyKind::kL2s);
  const auto trad_r = core::run_once(tr, paper_config(4), core::PolicyKind::kTraditional);
  EXPECT_GT(l2s_r.via_messages, 0u);
  EXPECT_GT(l2s_r.load_broadcasts, 0u);
  EXPECT_EQ(trad_r.via_messages, 0u);
}

TEST(Integration, ThroughputScalesWithNodesForL2s) {
  const auto tr = mini_calgary();
  const auto r2 = core::run_once(tr, paper_config(2), core::PolicyKind::kL2s);
  const auto r8 = core::run_once(tr, paper_config(8), core::PolicyKind::kL2s);
  EXPECT_GT(r8.throughput_rps, 2.0 * r2.throughput_rps);
}

}  // namespace
}  // namespace l2s
