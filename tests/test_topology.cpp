// Topology substrate tests (`ctest -L topo`): geometry validation, the
// per-pair latency/hop contracts of the three interconnects, message-mode
// store-and-forward traversal, flow-level bulk transfers, the pairwise
// shard-lookahead property (ShardedScheduler::post honours
// min_latency(src_shard, dst_shard) on every pair of every topology), and
// the topology axis of the golden-digest net: rack-aware / fat-tree /
// flow-level digests pinned and replayed across engine shard counts.
//
// Regenerating the topology digests (only after an *intentional*
// behaviour change):
//   L2SIM_GOLDEN_PRINT=1 ./build/tests/l2sim_topo_tests
//       --gtest_filter='TopologyGolden.*' 2>&1 | grep GOLDEN
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "l2sim/common/cli_args.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/core/spec.hpp"
#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/des/sharded_scheduler.hpp"
#include "l2sim/net/flow.hpp"
#include "l2sim/net/topology.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/obs/link_introspection.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s {
namespace {

using net::Topology;
using net::TopologyConfig;
using net::TopologyKind;

TopologyConfig rack_config(int racks) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kRackAware;
  cfg.racks = racks;
  return cfg;
}

TopologyConfig fat_tree_config(int k) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kFatTree;
  cfg.fat_tree_k = k;
  return cfg;
}

// --- geometry validation ----------------------------------------------------

TEST(TopologyConfig_, RejectsIndivisibleRacks) {
  try {
    rack_config(3).validate(4);
    FAIL() << "expected a geometry error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("not divisible"), std::string::npos);
  }
}

TEST(TopologyConfig_, RejectsBadFatTreeGeometry) {
  EXPECT_THROW(fat_tree_config(3).validate(4), Error);   // odd arity
  EXPECT_THROW(fat_tree_config(0).validate(1), Error);   // degenerate arity
  EXPECT_THROW(fat_tree_config(2).validate(4), Error);   // beyond k^3/4 = 2
  fat_tree_config(4).validate(16);                       // at capacity: fine
}

TEST(TopologyConfig_, RejectsZeroSegmentBytes) {
  TopologyConfig cfg;
  cfg.segment_bytes = 0;
  EXPECT_THROW(cfg.validate(4), Error);
}

TEST(TopologyConfig_, RackSpanIsTheShardAlignmentUnit) {
  EXPECT_EQ(TopologyConfig{}.rack_span(64), 1);         // single switch
  EXPECT_EQ(rack_config(4).rack_span(16), 4);
  EXPECT_EQ(fat_tree_config(8).rack_span(128), 4);      // k/2 hosts per edge
  EXPECT_EQ(rack_config(3).rack_span(4), 1);            // invalid: defensive 1
}

TEST(TopologyConfig_, SimConfigValidateReportsGeometry) {
  trace::SyntheticSpec spec;
  spec.files = 10;
  spec.requests = 20;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.topology = rack_config(3);  // 4 nodes, 3 racks: inconsistent
  EXPECT_THROW(core::run_once(tr, cfg, core::PolicyKind::kTraditional), Error);
}

// --- CLI pass-through -------------------------------------------------------

TEST(TopologyCli, ParsesEveryFlag) {
  const char* argv[] = {"l2sim",          "--topology",      "rack",
                        "--racks",        "2",               "--oversub",
                        "2.5",            "--fat-tree-k",    "8",
                        "--segment-bytes", "4096",           "--flow-level"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  core::ExperimentSpec spec;
  core::apply_topology_cli(args, spec);
  EXPECT_EQ(spec.sim.topology.kind, TopologyKind::kRackAware);
  EXPECT_EQ(spec.sim.topology.racks, 2);
  EXPECT_DOUBLE_EQ(spec.sim.topology.oversubscription, 2.5);
  EXPECT_EQ(spec.sim.topology.fat_tree_k, 8);
  EXPECT_EQ(spec.sim.topology.segment_bytes, 4096u);
  EXPECT_TRUE(spec.sim.topology.flow_level);
}

TEST(TopologyCli, RejectsUnknownKind) {
  const char* argv[] = {"l2sim", "--topology", "mesh"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  core::ExperimentSpec spec;
  try {
    core::apply_topology_cli(args, spec);
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--topology"), std::string::npos);
  }
}

// --- per-topology latency / hop / traversal contracts -----------------------

TEST(SingleSwitchTopo, IsThePaperFabric) {
  des::Scheduler sched;
  net::NetParams params;
  const auto topo = Topology::make(TopologyConfig{}, sched, params, 8);
  EXPECT_STREQ(topo->name(), "single-switch");
  EXPECT_EQ(topo->racks(), 1);
  EXPECT_EQ(topo->rack_of(7), 0);
  EXPECT_EQ(topo->hops(0, 7), 1);
  EXPECT_EQ(topo->min_latency(0, 7), params.switch_latency());
  EXPECT_EQ(topo->link_count(), 0u);  // contention-free: no Links at all

  SimTime delivered = 0;
  topo->traverse(0, 7, 1 << 20, [&] { delivered = sched.now(); });
  sched.run();
  // Payload-independent pure latency — the golden digests pin this.
  EXPECT_EQ(delivered, params.switch_latency());
  EXPECT_EQ(topo->traversals(), 1u);
}

struct RackFixture {
  des::Scheduler sched;
  net::NetParams params;
  std::unique_ptr<Topology> topo;

  explicit RackFixture(int nodes = 8, int racks = 2) {
    topo = Topology::make(rack_config(racks), sched, params, nodes);
  }
};

TEST(RackAwareTopo, GeometryAndLatencyTiers) {
  RackFixture f;
  EXPECT_STREQ(f.topo->name(), "rack-aware");
  EXPECT_EQ(f.topo->racks(), 2);
  EXPECT_EQ(f.topo->rack_of(3), 0);
  EXPECT_EQ(f.topo->rack_of(4), 1);
  EXPECT_EQ(f.topo->hops(0, 3), 1);
  EXPECT_EQ(f.topo->hops(0, 4), 3);
  EXPECT_EQ(f.topo->min_latency(0, 3), f.params.switch_latency());
  const SimTime core = seconds_to_simtime(rack_config(2).core_latency_s);
  EXPECT_EQ(f.topo->min_latency(0, 4), 2 * f.params.switch_latency() + core);
  // 2 links per rack: up + down.
  EXPECT_EQ(f.topo->link_count(), 4u);
}

TEST(RackAwareTopo, SameRackTraverseIsOneContentionFreeHop) {
  RackFixture f;
  SimTime delivered = 0;
  f.topo->traverse(0, 3, 1 << 20, [&] { delivered = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(delivered, f.params.switch_latency());  // payload-independent
  EXPECT_EQ(f.topo->link(0).transfers(), 0u);       // uplink untouched
}

TEST(RackAwareTopo, CrossRackTraversePaysLinksAndSwitches) {
  // Trunk capacity: 4 hosts/rack * 1 Gbit/s / oversubscription 4 = 1 Gbit/s,
  // so 1000 bytes take 8 us per capacitated hop. Path: ToR (1us) ->
  // uplink (8us) -> core (1us) -> downlink (8us) -> ToR (1us) = 19 us.
  RackFixture f;
  SimTime delivered = 0;
  f.topo->traverse(0, 4, 1000, [&] { delivered = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(delivered, 19'000);
  EXPECT_EQ(f.topo->link(0).transfers(), 1u);  // rack0.up
  EXPECT_EQ(f.topo->link(3).transfers(), 1u);  // rack1.down
  EXPECT_EQ(f.topo->link(0).bytes_carried(), 1000u);
}

TEST(RackAwareTopo, BulkTransfersSegmentStoreAndForward) {
  // 40960 bytes = 16KiB + 16KiB + 8KiB segments. The downlink stays busy
  // from the first segment's arrival, so delivery = ToR + first segment's
  // uplink time + core + all three downlink times + ToR:
  //   1000 + 131072 + 1000 + (131072 + 131072 + 65536) + 1000 = 461752 ns.
  RackFixture f;
  SimTime delivered = 0;
  f.topo->traverse(0, 4, 40'960, [&] { delivered = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(delivered, 461'752);
  EXPECT_EQ(f.topo->link(0).transfers(), 3u);
  EXPECT_EQ(f.topo->link(0).bytes_carried(), 40'960u);
}

TEST(RackAwareTopo, ConcurrentCrossRackTransfersQueueOnTheUplink) {
  RackFixture f;
  SimTime first = 0;
  SimTime second = 0;
  f.topo->traverse(0, 4, 1000, [&] { first = f.sched.now(); });
  f.topo->traverse(1, 5, 1000, [&] { second = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(first, 19'000);
  EXPECT_EQ(second, 27'000);  // 8 us behind on the shared uplink FIFO
}

TEST(RackAwareTopo, PathLinksNamesTheCapacitatedHops) {
  RackFixture f;
  std::vector<std::size_t> path;
  f.topo->path_links(0, 3, path);
  EXPECT_TRUE(path.empty());  // same rack: contention-free
  f.topo->path_links(0, 4, path);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(f.topo->link(path[0]).name(), "rack0.up");
  EXPECT_EQ(f.topo->link(path[1]).name(), "rack1.down");
}

struct FatTreeFixture {
  des::Scheduler sched;
  net::NetParams params;
  std::unique_ptr<Topology> topo;

  explicit FatTreeFixture(int k = 4) {
    topo = Topology::make(fat_tree_config(k), sched, params, k * k * k / 4);
  }
};

TEST(FatTreeTopo, HopAndLatencyTiers) {
  FatTreeFixture f;  // k = 4: 16 hosts, 2 per edge, 4 per pod
  EXPECT_STREQ(f.topo->name(), "fat-tree");
  EXPECT_EQ(f.topo->racks(), 8);  // 8 edge switches
  const SimTime sl = f.params.switch_latency();
  const SimTime core = seconds_to_simtime(fat_tree_config(4).core_latency_s);
  EXPECT_EQ(f.topo->hops(0, 1), 1);  // same edge
  EXPECT_EQ(f.topo->hops(0, 2), 3);  // same pod, different edge
  EXPECT_EQ(f.topo->hops(0, 4), 5);  // cross pod
  EXPECT_EQ(f.topo->min_latency(0, 1), sl);
  EXPECT_EQ(f.topo->min_latency(0, 2), 3 * sl);
  EXPECT_EQ(f.topo->min_latency(0, 4), 4 * sl + core);
}

TEST(FatTreeTopo, TraverseChargesEveryTier) {
  FatTreeFixture f;
  SimTime same_pod = 0;
  SimTime cross_pod = 0;
  // 1000 bytes = 8 us per capacitated hop at the 1 Gbit/s line rate.
  f.topo->traverse(0, 2, 1000, [&] { same_pod = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(same_pod, 19'000);  // 3 switches + 2 link hops

  FatTreeFixture g;
  g.topo->traverse(0, 4, 1000, [&] { cross_pod = g.sched.now(); });
  g.sched.run();
  EXPECT_EQ(cross_pod, 37'000);  // 4 switches + core + 4 link hops
}

TEST(FatTreeTopo, RoutingIsDeterministicPerPair) {
  FatTreeFixture f;
  std::vector<std::size_t> a;
  std::vector<std::size_t> b;
  f.topo->path_links(0, 12, a);
  f.topo->path_links(0, 12, b);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);  // cross-pod: edge-up, agg-up, agg-down, edge-down
  for (const std::size_t id : a) EXPECT_LT(id, f.topo->link_count());

  std::vector<std::size_t> same_edge;
  f.topo->path_links(0, 1, same_edge);
  EXPECT_TRUE(same_edge.empty());
  std::vector<std::size_t> same_pod;
  f.topo->path_links(0, 2, same_pod);
  EXPECT_EQ(same_pod.size(), 2u);
}

// --- flow-level bulk transfers ----------------------------------------------

TEST(FlowLevel, SingleFlowRunsAtTheBottleneckRatePlusLatencyFloor) {
  RackFixture f;
  net::FlowNetwork flow(f.sched, *f.topo, f.params);
  SimTime delivered = 0;
  flow.start(0, 4, 1 << 20, [&] { delivered = f.sched.now(); });
  f.sched.run();
  // 8388608 bits at the 1 Gbit/s bottleneck + 3 us cross-rack floor.
  EXPECT_NEAR(static_cast<double>(delivered), 8'388'608.0 + 3'000.0, 16.0);
  EXPECT_EQ(flow.flows_completed(), 1u);
  // One recompute at start; the finish leaves no flows to re-share.
  EXPECT_EQ(flow.rate_recomputes(), 1u);
  EXPECT_GT(f.topo->link(0).flow_bits(), 8'388'000.0);
}

TEST(FlowLevel, CompetingFlowsShareTheUplinkMaxMin) {
  RackFixture f;
  net::FlowNetwork flow(f.sched, *f.topo, f.params);
  SimTime first = 0;
  SimTime second = 0;
  flow.start(0, 4, 1 << 20, [&] { first = f.sched.now(); });
  flow.start(1, 5, 1 << 20, [&] { second = f.sched.now(); });
  f.sched.run();
  // Both flows cross rack0.up: max-min gives each half the trunk, so both
  // finish at ~2x the solo transmission time.
  EXPECT_NEAR(static_cast<double>(first), 16'777'216.0 + 3'000.0, 32.0);
  EXPECT_NEAR(static_cast<double>(second), 16'777'216.0 + 3'000.0, 32.0);
  EXPECT_EQ(flow.max_concurrent(), 2u);
  EXPECT_EQ(flow.flows_completed(), 2u);
}

TEST(FlowLevel, ViaBulkIsTransmitWhenNoFlowNetworkIsAttached) {
  // bulk() == transmit() without a flow network — the single-switch golden
  // digests depend on this equivalence.
  des::Scheduler s1;
  net::NetParams params;
  net::SingleSwitch t1{s1, params, 2};
  net::ViaNetwork v1{s1, t1, params};
  des::Scheduler s2;
  net::SingleSwitch t2{s2, params, 2};
  net::ViaNetwork v2{s2, t2, params};
  std::vector<std::unique_ptr<des::Resource>> cpus;
  std::vector<std::unique_ptr<net::Nic>> nics;
  struct Rig {
    des::Scheduler* sched;
    net::ViaNetwork* via;
  };
  for (const Rig rig : {Rig{&s1, &v1}, Rig{&s2, &v2}}) {
    for (int i = 0; i < 2; ++i) {
      cpus.push_back(std::make_unique<des::Resource>(*rig.sched, "cpu"));
      nics.push_back(std::make_unique<net::Nic>(*rig.sched, "node"));
      rig.via->add_endpoint({cpus.back().get(), nics.back().get()});
    }
  }
  SimTime bulk_done = 0;
  SimTime transmit_done = 0;
  v1.bulk(0, 1, 20'000, [&] { bulk_done = s1.now(); });
  s1.run();
  v2.transmit(0, 1, 20'000, [&] { transmit_done = s2.now(); });
  s2.run();
  EXPECT_EQ(bulk_done, transmit_done);
}

TEST(FlowLevel, ViaBulkRidesTheFlowNetworkWhenAttached) {
  des::Scheduler sched;
  net::NetParams params;
  const auto topo = Topology::make(rack_config(2), sched, params, 8);
  net::ViaNetwork via{sched, *topo, params};
  std::vector<std::unique_ptr<des::Resource>> cpus;
  std::vector<std::unique_ptr<net::Nic>> nics;
  for (int i = 0; i < 8; ++i) {
    cpus.push_back(std::make_unique<des::Resource>(sched, "cpu"));
    nics.push_back(std::make_unique<net::Nic>(sched, "node"));
    via.add_endpoint({cpus.back().get(), nics.back().get()});
  }
  net::FlowNetwork flow(sched, *topo, params);
  via.set_flow_network(&flow);
  SimTime delivered = 0;
  via.bulk(0, 4, 1 << 20, [&] { delivered = sched.now(); });
  sched.run();
  EXPECT_EQ(flow.flows_completed(), 1u);
  EXPECT_EQ(via.messages_delivered(), 1u);
  EXPECT_GT(delivered, 8'388'608);  // paid the fluid transmission time
}

// --- broadcast rides per-destination topology paths -------------------------

TEST(Broadcast, IsHopAccuratePerTopologyPath) {
  des::Scheduler sched;
  net::NetParams params;
  const auto topo = Topology::make(rack_config(2), sched, params, 4);
  net::ViaNetwork via{sched, *topo, params};
  std::vector<std::unique_ptr<des::Resource>> cpus;
  std::vector<std::unique_ptr<net::Nic>> nics;
  for (int i = 0; i < 4; ++i) {
    cpus.push_back(std::make_unique<des::Resource>(sched, "cpu"));
    nics.push_back(std::make_unique<net::Nic>(sched, "node"));
    via.add_endpoint({cpus.back().get(), nics.back().get()});
  }
  std::vector<SimTime> delivered(4, 0);
  via.broadcast(0, 16, [&](int dst) { delivered[static_cast<std::size_t>(dst)] = sched.now(); });
  sched.run();
  EXPECT_EQ(via.messages_sent(), 3u);
  EXPECT_EQ(topo->traversals(), 3u);  // one per-destination path, each charged
  // Node 1 shares node 0's rack (one ToR hop); nodes 2 and 3 cross the
  // oversubscribed core. The same-rack copy lands first even though the
  // sender NIC serialized it first/earlier copies.
  EXPECT_GT(delivered[1], 0);
  EXPECT_LT(delivered[1], delivered[2]);
  EXPECT_LT(delivered[2], delivered[3]);  // shared uplink FIFO ordering
}

// --- pairwise shard lookahead ----------------------------------------------

TEST(PairwiseLookahead, SetterValidatesShapeAndPositivity) {
  des::ShardedScheduler engine(2, 10, des::ShardedScheduler::Mode::kThreaded);
  EXPECT_THROW(engine.set_pairwise_lookahead({1, 2, 3}), Error);     // not 2x2
  EXPECT_THROW(engine.set_pairwise_lookahead({1, 0, 1, 1}), Error);  // zero entry
  engine.set_pairwise_lookahead({10, 40, 40, 10});
  EXPECT_TRUE(engine.pairwise_lookahead());
  EXPECT_EQ(engine.pair_lookahead(0, 1), 40);
  EXPECT_EQ(engine.lookahead(), 10);  // global = min entry
}

// The property the tentpole rests on: post() honours the topology's
// min_latency(src_shard, dst_shard) for EVERY shard pair, on all three
// topologies, with shards aligned to the topology's rack span.
TEST(PairwiseLookahead, PostHonoursMinLatencyOnEveryPairOfEveryTopology) {
  struct Case {
    const char* tag;
    TopologyConfig cfg;
    int nodes;
    int shards;
  };
  const std::vector<Case> cases = {
      {"single", TopologyConfig{}, 8, 4},
      {"rack", rack_config(2), 8, 2},
      {"fattree", fat_tree_config(4), 16, 4},
  };
  for (const auto& c : cases) {
    des::Scheduler sched;
    net::NetParams params;
    const auto topo = Topology::make(c.cfg, sched, params, c.nodes);
    const des::ShardMap map(c.nodes, c.shards, c.cfg.rack_span(c.nodes));
    const auto matrix = core::topology_lookahead_matrix(*topo, map, params);

    // The matrix really is the per-pair floor: brute-force over node pairs.
    const SimTime host = params.cpu_msg_time() + params.nic_transfer_time(0);
    for (int s = 0; s < map.shards(); ++s) {
      for (int d = 0; d < map.shards(); ++d) {
        SimTime best = std::numeric_limits<SimTime>::max();
        const auto [sb, se] = map.range(s);
        const auto [db, de] = map.range(d);
        for (int src = sb; src < se; ++src)
          for (int dst = db; dst < de; ++dst)
            best = std::min(best, topo->min_latency(src, dst));
        EXPECT_EQ(matrix[static_cast<std::size_t>(s * map.shards() + d)],
                  host + best)
            << c.tag << " pair " << s << "->" << d;
      }
    }

    des::ShardedScheduler engine(map.shards(), params.min_cross_node_latency(),
                                 des::ShardedScheduler::Mode::kThreaded);
    engine.set_pairwise_lookahead(matrix);
    for (int s = 0; s < map.shards(); ++s) {
      for (int d = 0; d < map.shards(); ++d) {
        if (s == d) continue;
        const SimTime bound = engine.pair_lookahead(s, d);
        EXPECT_EQ(bound,
                  matrix[static_cast<std::size_t>(s * map.shards() + d)]);
        EXPECT_THROW(engine.post(s, d, bound - 1, [] {}), Error)
            << c.tag << " pair " << s << "->" << d;
        engine.post(s, d, bound, [] {});  // exactly at the floor: accepted
      }
    }
    engine.run(2);  // drain the accepted posts; must not throw
  }
}

TEST(PairwiseLookahead, WorkloadMatrixMatchesRackOverlap) {
  des::WorkloadParams p;
  p.nodes = 16;
  p.racks = 4;
  p.latency = 10'000;
  p.cross_rack_latency = 40'000;
  const des::ShardMap map = des::workload_shard_map(p, 2);
  EXPECT_EQ(map.shards(), 2);
  // Rack-aligned partition: racks 0-1 in shard 0, racks 2-3 in shard 1.
  EXPECT_EQ(map.shard_of(7), 0);
  EXPECT_EQ(map.shard_of(8), 1);
  const auto m = des::workload_lookahead_matrix(p, map);
  EXPECT_EQ(m[0], 10'000);  // diagonal: shards hold same-rack node pairs
  EXPECT_EQ(m[3], 10'000);
  EXPECT_EQ(m[1], 40'000);  // cross-shard: no shared rack
  EXPECT_EQ(m[2], 40'000);
}

TEST(PairwiseLookahead, ShardedWorkloadMatchesSerialWithPairwiseWindows) {
  des::WorkloadParams p;
  p.nodes = 32;
  p.requests_per_node = 2;
  p.hops = 24;
  p.racks = 4;
  p.latency = 10'000;
  p.cross_rack_latency = 40'000;
  const auto serial = des::run_cluster_workload_serial(p);
  ASSERT_GT(serial.events, 0u);

  for (const int shards : {2, 4}) {
    for (const auto mode : {des::ShardedScheduler::Mode::kSequentialMerge,
                            des::ShardedScheduler::Mode::kThreaded}) {
      const des::ShardMap map = des::workload_shard_map(p, shards);
      des::ShardedScheduler uniform(map.shards(), p.latency, mode);
      const auto base = des::run_cluster_workload_on(p, uniform, 2);
      EXPECT_EQ(base.digest, serial.digest);
      EXPECT_EQ(base.events, serial.events);
      EXPECT_EQ(base.makespan, serial.makespan);

      des::ShardedScheduler pairwise(map.shards(), p.latency, mode);
      pairwise.set_pairwise_lookahead(des::workload_lookahead_matrix(p, map));
      const auto wide = des::run_cluster_workload_on(p, pairwise, 2);
      EXPECT_EQ(wide.digest, serial.digest)
          << "shards=" << shards << " mode=" << static_cast<int>(mode);
      EXPECT_EQ(wide.events, serial.events);
      EXPECT_EQ(wide.makespan, serial.makespan);
      // Wider cross-rack bounds can only widen windows (fewer barriers).
      EXPECT_LE(wide.windows, base.windows);
    }
  }
}

TEST(PairwiseLookahead, ClusterEngineInstallsTheTopologyMatrix) {
  trace::SyntheticSpec spec;
  spec.files = 20;
  spec.requests = 40;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.engine.shards = 2;
  cfg.topology = rack_config(2);
  core::ClusterSimulation sim(cfg, tr, core::make_policy(core::PolicyKind::kTraditional));
  ASSERT_NE(sim.sharded_engine(), nullptr);
  EXPECT_TRUE(sim.sharded_engine()->pairwise_lookahead());
  const net::NetParams params;
  const SimTime host = params.cpu_msg_time() + params.nic_transfer_time(0);
  const SimTime core_lat = seconds_to_simtime(rack_config(2).core_latency_s);
  // Shards align to racks (2 nodes each): the cross-shard floor is the
  // full cross-rack path, wider than the old global min_cross_node bound.
  EXPECT_EQ(sim.sharded_engine()->pair_lookahead(0, 1),
            host + 2 * params.switch_latency() + core_lat);
  EXPECT_EQ(sim.sharded_engine()->pair_lookahead(0, 0),
            host + params.switch_latency());
  EXPECT_GT(sim.sharded_engine()->pair_lookahead(0, 1),
            params.min_cross_node_latency());
}

// --- link introspection -----------------------------------------------------

TEST(LinkIntrospection, ExportsGaugesAndCounters) {
  RackFixture f;
  SimTime done = 0;
  f.topo->traverse(0, 4, 1000, [&] { done = f.sched.now(); });
  f.sched.run();
  ASSERT_GT(done, 0);
  telemetry::Registry registry;
  obs::export_link_utilization(registry, *f.topo, f.sched.now());
  const auto snap = registry.snapshot();
  const auto* traversals = snap.find("net.traversals");
  ASSERT_NE(traversals, nullptr);
  EXPECT_EQ(traversals->count, 1u);
  const auto* util = snap.find("net.link.utilization", {{"link", "rack0.up"}});
  ASSERT_NE(util, nullptr);
  EXPECT_GT(util->value, 0.0);
  const auto* bytes = snap.find("net.link.bytes", {{"link", "rack1.down"}});
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->count, 1000u);
}

TEST(LinkIntrospection, ReportRendersLinkTableAndRackMatrix) {
  RackFixture f;
  f.topo->traverse(0, 4, 1000, [] {});
  f.sched.run();
  std::ostringstream out;
  obs::write_topology_report(out, *f.topo, f.sched.now());
  const std::string report = out.str();
  EXPECT_NE(report.find("rack-aware"), std::string::npos);
  EXPECT_NE(report.find("rack0.up"), std::string::npos);
  EXPECT_NE(report.find("rack\\rack"), std::string::npos);
}

TEST(LinkIntrospection, ClusterRunExportsLinkGaugesIntoTelemetry) {
  trace::SyntheticSpec spec;
  spec.files = 30;
  spec.requests = 120;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.topology = rack_config(2);
  cfg.persistence.mean_requests_per_connection = 4.0;
  cfg.persistence.mode = core::PersistentMode::kBackendForwarding;
  cfg.telemetry.enabled = true;
  const auto r = core::run_once(tr, cfg, core::PolicyKind::kLard);
  ASSERT_NE(r.telemetry, nullptr);
  EXPECT_NE(r.telemetry->find("net.traversals"), nullptr);
  EXPECT_NE(r.telemetry->find("net.link.utilization", {{"link", "rack0.up"}}),
            nullptr);
}

// --- the topology golden-digest axis ----------------------------------------

struct TopoCell {
  std::string name;
  core::SimConfig cfg;
  core::PolicyKind kind;
};

trace::Trace topo_golden_trace() {
  trace::SyntheticSpec spec;
  spec.name = "golden";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  spec.requests = 3000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 2024;
  return trace::generate(spec);
}

std::vector<TopoCell> topology_matrix() {
  struct Policy {
    const char* tag;
    core::PolicyKind kind;
  };
  struct Topo {
    const char* tag;
    TopologyConfig cfg;
  };
  TopologyConfig rack = rack_config(2);
  TopologyConfig rackflow = rack_config(2);
  rackflow.flow_level = true;
  const std::vector<Policy> policies = {{"trad", core::PolicyKind::kTraditional},
                                        {"lard", core::PolicyKind::kLard},
                                        {"l2s", core::PolicyKind::kL2s}};
  const std::vector<Topo> topos = {
      {"rack", rack}, {"fattree", fat_tree_config(4)}, {"rackflow", rackflow}};

  std::vector<TopoCell> cells;
  for (const auto& p : policies) {
    for (const auto& t : topos) {
      for (const bool crash : {false, true}) {
        TopoCell c;
        c.kind = p.kind;
        c.name = std::string(p.tag) + "|" + t.tag + (crash ? "|crash" : "|nofault");
        c.cfg.nodes = 4;
        c.cfg.node.cache_bytes = 2 * kMiB;
        c.cfg.persistence.mean_requests_per_connection = 4.0;
        c.cfg.persistence.mode = core::PersistentMode::kBackendForwarding;
        c.cfg.topology = t.cfg;
        if (crash) c.cfg.fault_plan.crashes.push_back({1, 0.15});
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

// Digests recorded at the topology substrate's introduction; the rack and
// fat-tree cells extend the 36-cell single-switch net (which is pinned,
// unchanged, in test_golden_results.cpp) with a topology axis.
// Note the traditional-policy cells reproduce the single-switch backend
// digests from test_golden_results.cpp bit-for-bit: a traditional server
// never forwards between nodes, so no message ever crosses the fabric and
// the topology cannot perturb it. LARD and L2S forward constantly, so
// their digests move with the interconnect.
const std::vector<std::pair<std::string, std::string>> kTopoGolden = {
    {"trad|rack|nofault", "f81a1d14a59747f6"},
    {"trad|rack|crash", "83fefe0734008b30"},
    {"trad|fattree|nofault", "f81a1d14a59747f6"},
    {"trad|fattree|crash", "83fefe0734008b30"},
    {"trad|rackflow|nofault", "f81a1d14a59747f6"},
    {"trad|rackflow|crash", "83fefe0734008b30"},
    {"lard|rack|nofault", "3456f1ace5729135"},
    {"lard|rack|crash", "353fc14e95428c42"},
    {"lard|fattree|nofault", "11f14e5407ff7b7f"},
    {"lard|fattree|crash", "52080e48b0a6d290"},
    {"lard|rackflow|nofault", "9ca3ff4254acd326"},
    {"lard|rackflow|crash", "7ef3f05f1b878c5d"},
    {"l2s|rack|nofault", "15d9ad7e5580cafb"},
    {"l2s|rack|crash", "36fd24245f17290c"},
    {"l2s|fattree|nofault", "83dd37528ec29bd6"},
    {"l2s|fattree|crash", "8a4a78dc067af53e"},
    {"l2s|rackflow|nofault", "b184f65f71ebe76c"},
    {"l2s|rackflow|crash", "e5abe1c7ed657393"},
};

TEST(TopologyGolden, MatrixMatchesRecordedDigests) {
  const auto tr = topo_golden_trace();
  const auto cells = topology_matrix();
  const bool print = std::getenv("L2SIM_GOLDEN_PRINT") != nullptr;

  std::vector<std::pair<std::string, std::string>> got;
  for (const auto& c : cells) {
    const auto r = core::run_once(tr, c.cfg, c.kind);
    got.emplace_back(c.name, core::result_digest_hex(r));
  }
  if (print) {
    for (const auto& [name, d] : got)
      std::printf("GOLDEN    {\"%s\", \"%s\"},\n", name.c_str(), d.c_str());
    return;
  }
  ASSERT_EQ(got.size(), kTopoGolden.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, kTopoGolden[i].first);
    EXPECT_EQ(got[i].second, kTopoGolden[i].second) << got[i].first;
  }
}

TEST(TopologyGolden, DigestsReplayAcrossEngineShardCounts) {
  // The acceptance bar: rack-aware and fat-tree (and flow-level) runs are
  // bit-identical between the serial engine and the sharded engine at
  // every shard count — topology contention and flow completions replay
  // deterministically however the nodes are partitioned.
  if (std::getenv("L2SIM_GOLDEN_PRINT") != nullptr) GTEST_SKIP();
  const auto tr = topo_golden_trace();
  for (const auto& c : topology_matrix()) {
    const std::string expected = core::result_digest_hex(core::run_once(tr, c.cfg, c.kind));
    for (const int shards : {1, 2, core::EngineConfig::kAutoShards}) {
      core::SimConfig cfg = c.cfg;
      cfg.engine.shards = shards;
      const auto r = core::run_once(tr, cfg, c.kind);
      EXPECT_EQ(expected, core::result_digest_hex(r))
          << c.name << " shards=" << shards;
    }
  }
}

TEST(TopologyGolden, OneRackRackAwareMatchesTheSingleSwitch) {
  // A one-rack rack-aware fabric routes everything through the same
  // contention-free ToR hop the paper's switch models, so its digest must
  // equal the default single-switch run — the identity that anchors the
  // topology axis to the 36 pinned golden cells.
  const auto tr = topo_golden_trace();
  core::SimConfig base;
  base.nodes = 4;
  base.node.cache_bytes = 2 * kMiB;
  base.persistence.mean_requests_per_connection = 4.0;
  base.persistence.mode = core::PersistentMode::kBackendForwarding;
  const auto single = core::run_once(tr, base, core::PolicyKind::kLard);

  core::SimConfig one_rack = base;
  one_rack.topology = rack_config(1);
  const auto racked = core::run_once(tr, one_rack, core::PolicyKind::kLard);
  EXPECT_EQ(core::result_digest_hex(single), core::result_digest_hex(racked));
}

}  // namespace
}  // namespace l2s
