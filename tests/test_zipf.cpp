#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/harmonic.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace l2s::zipf {
namespace {

TEST(Z, BoundaryValues) {
  EXPECT_DOUBLE_EQ(z(0.0, 100.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(z(-1.0, 100.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(z(100.0, 100.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(z(200.0, 100.0, 1.0), 1.0);
}

TEST(Z, MatchesHarmonicRatio) {
  const double v = z(10.0, 100.0, 0.9);
  EXPECT_NEAR(v, harmonic(10.0, 0.9) / harmonic(100.0, 0.9), 1e-12);
}

TEST(Z, MonotoneInN) {
  double prev = 0.0;
  for (double n = 1.0; n <= 1000.0; n *= 2.0) {
    const double v = z(n, 1000.0, 1.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Z, DecreasingInPopulation) {
  double prev = 1.0;
  for (double f = 100.0; f <= 1e8; f *= 10.0) {
    const double v = z(50.0, f, 1.0);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Z, HigherAlphaConcentrates) {
  // With stronger skew, the same cache prefix captures more mass.
  EXPECT_GT(z(10.0, 10000.0, 1.2), z(10.0, 10000.0, 0.7));
}

TEST(InvertPopulation, RoundTripsThroughZ) {
  // For alpha > 1 the series converges and z(n, f) has a positive infimum
  // as f grows (~0.39 for n = 500, alpha = 1.08), so only targets above it
  // are reachable there.
  for (const double alpha : {0.78, 1.0, 1.08}) {
    for (const double target : {0.45, 0.6, 0.9}) {
      const double n = 500.0;
      const double f = invert_population(n, target, alpha);
      EXPECT_GE(f, n);
      EXPECT_NEAR(z(n, f, alpha), target, 1e-6)
          << "alpha=" << alpha << " target=" << target;
    }
  }
}

TEST(InvertPopulation, TargetOneReturnsN) {
  EXPECT_DOUBLE_EQ(invert_population(123.0, 1.0, 1.0), 123.0);
}

TEST(InvertPopulation, RejectsOutOfRangeTargets) {
  EXPECT_THROW(invert_population(10.0, 0.0, 1.0), l2s::Error);
  EXPECT_THROW(invert_population(10.0, -0.5, 1.0), l2s::Error);
  EXPECT_THROW(invert_population(10.0, 1.5, 1.0), l2s::Error);
}

TEST(InvertPopulation, UnreachableTargetThrows) {
  // For alpha > 1 the harmonic series converges: z(n, f) has a positive
  // infimum as f -> infinity, so tiny targets are unreachable.
  EXPECT_THROW(invert_population(1000.0, 1e-6, 1.5), l2s::Error);
}

TEST(InvertPopulation, LargePopulationsForLowTargets) {
  // Low hit-rate targets require astronomically large populations; the
  // log-space bisection must handle them without overflow.
  const double f = invert_population(1000.0, 0.05, 1.0);
  EXPECT_GT(f, 1e50);
  EXPECT_NEAR(z(1000.0, f, 1.0), 0.05, 1e-6);
}

}  // namespace
}  // namespace l2s::zipf
