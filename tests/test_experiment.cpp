#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "l2sim/common/error.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/core/report.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload() {
  trace::SyntheticSpec spec;
  spec.name = "exp";
  spec.files = 400;
  spec.avg_file_kb = 16.0;
  spec.requests = 6000;
  spec.avg_request_kb = 12.0;
  spec.alpha = 0.9;
  spec.seed = 3;
  return trace::generate(spec);
}

ExperimentConfig small_experiment() {
  ExperimentConfig cfg;
  cfg.sim.node.cache_bytes = 2 * kMiB;
  cfg.node_counts = {1, 2, 4};
  return cfg;
}

TEST(Experiment, MakePolicyProducesRightTypes) {
  EXPECT_STREQ(make_policy(PolicyKind::kTraditional)->name(), "traditional");
  EXPECT_STREQ(make_policy(PolicyKind::kLard)->name(), "lard");
  EXPECT_STREQ(make_policy(PolicyKind::kL2s)->name(), "l2s");
}

TEST(Experiment, PolicyKindNames) {
  EXPECT_STREQ(policy_kind_name(PolicyKind::kTraditional), "trad");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kLard), "LARD");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kL2s), "L2S");
  EXPECT_EQ(all_policies().size(), 3u);
}

TEST(Experiment, FigureSeriesShape) {
  const auto tr = workload();
  const auto fig = run_throughput_figure(tr, small_experiment());
  EXPECT_EQ(fig.trace_name, "exp");
  ASSERT_EQ(fig.node_counts.size(), 3u);
  EXPECT_EQ(fig.model_rps.size(), 3u);
  EXPECT_EQ(fig.l2s.size(), 3u);
  EXPECT_EQ(fig.lard.size(), 3u);
  EXPECT_EQ(fig.traditional.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(fig.model_rps[i], 0.0);
    EXPECT_GT(fig.l2s[i].throughput_rps, 0.0);
    EXPECT_EQ(fig.l2s[i].nodes, fig.node_counts[i]);
  }
}

TEST(Experiment, ModelSeriesGrowsWithNodes) {
  const auto tr = workload();
  const auto ch = trace::characterize(tr);
  const auto series = model_series(ch, small_experiment());
  ASSERT_EQ(series.size(), 3u);
  EXPECT_LT(series[0], series[1]);
  EXPECT_LT(series[1], series[2]);
}

TEST(Experiment, CharacteristicsStoredInFigure) {
  const auto tr = workload();
  const auto fig = run_throughput_figure(tr, small_experiment());
  EXPECT_EQ(fig.characteristics.files, 400u);
  EXPECT_EQ(fig.characteristics.requests, 6000u);
}

TEST(Report, PrintedTableHasAllSeries) {
  const auto tr = workload();
  const auto fig = run_throughput_figure(tr, small_experiment());
  std::ostringstream os;
  print_throughput_figure(os, fig);
  const std::string out = os.str();
  for (const char* needle : {"Nodes", "model", "L2S", "LARD", "trad", "exp"})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Report, MetricFigureAndValues) {
  const auto tr = workload();
  const auto fig = run_throughput_figure(tr, small_experiment());
  for (const std::string metric : {"missrate", "idle", "forwarded", "response", "throughput"}) {
    std::ostringstream os;
    print_metric_figure(os, fig, metric);
    EXPECT_FALSE(os.str().empty());
  }
  EXPECT_THROW((void)metric_value(fig.l2s[0], "bogus"), Error);
  EXPECT_DOUBLE_EQ(metric_value(fig.l2s[0], "throughput"), fig.l2s[0].throughput_rps);
  EXPECT_DOUBLE_EQ(metric_value(fig.l2s[0], "missrate"), fig.l2s[0].miss_rate * 100.0);
}

TEST(Report, CsvWrittenWhenDirGiven) {
  const auto tr = workload();
  ExperimentConfig cfg = small_experiment();
  cfg.node_counts = {1, 2};
  const auto fig = run_throughput_figure(tr, cfg);
  const std::string dir = ::testing::TempDir();
  write_throughput_csv(fig, dir, "l2sim_fig_test");
  std::ifstream in(dir + "/l2sim_fig_test.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "nodes,model,l2s,lard,trad");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove((dir + "/l2sim_fig_test.csv").c_str());
}

TEST(Experiment, ShrinkSecondsPlumbedThrough) {
  // Just verifies the parameterized path runs; behaviour is covered by the
  // policy tests.
  const auto tr = workload();
  const auto r = run_once(tr, small_experiment().sim, PolicyKind::kL2s, 0.5);
  EXPECT_GT(r.completed, 0u);
}

}  // namespace
}  // namespace l2s::core
