#include <gtest/gtest.h>

#include "l2sim/core/experiment.hpp"
#include "l2sim/policy/round_robin.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

TEST(RoundRobinPolicy, CyclesThroughNodes) {
  PolicyFixture f(4);
  RoundRobinPolicy p;
  p.attach(f.ctx);
  p.on_pass_start(0);
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    EXPECT_EQ(p.entry_node(seq, PolicyFixture::request_for(0)),
              static_cast<int>(seq % 4));
}

TEST(RoundRobinPolicy, ServesAtEntryAndIsDns) {
  PolicyFixture f(4);
  RoundRobinPolicy p;
  p.attach(f.ctx);
  EXPECT_TRUE(p.entry_is_dns());
  for (int n = 0; n < 4; ++n)
    EXPECT_EQ(p.select_service_node(n, PolicyFixture::request_for(1)), n);
}

TEST(RoundRobinPolicy, PassRotationShiftsMapping) {
  PolicyFixture f(4);
  RoundRobinPolicy p;
  p.attach(f.ctx);
  p.on_pass_start(0);
  const int first = p.entry_node(0, PolicyFixture::request_for(0));
  p.on_pass_start(1);
  const int second = p.entry_node(0, PolicyFixture::request_for(0));
  EXPECT_NE(first, second);
}

TEST(RoundRobinPolicy, EndToEndCompletesAndNeverForwards) {
  trace::SyntheticSpec spec;
  spec.name = "rr";
  spec.files = 100;
  spec.requests = 2000;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = kMiB;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<RoundRobinPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.forwarded, 0u);
}

TEST(RoundRobinPolicy, DnsSkewConcentratesEntries) {
  // A CPU-bound workload (small, near-uniform file sizes; everything fits
  // in every cache) isolates the load-balance effect of entry skew.
  trace::SyntheticSpec spec;
  spec.name = "rr-skew";
  spec.files = 100;
  spec.requests = 6000;
  spec.avg_file_kb = 4.0;
  spec.avg_request_kb = 4.0;
  spec.size_sigma = 0.2;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig balanced;
  balanced.nodes = 8;
  balanced.node.cache_bytes = 4 * kMiB;
  core::SimConfig skewed = balanced;
  skewed.arrival.dns_entry_skew = 0.8;
  const auto rb = [&] {
    core::ClusterSimulation sim(balanced, tr, std::make_unique<RoundRobinPolicy>());
    return sim.run();
  }();
  const auto rs = [&] {
    core::ClusterSimulation sim(skewed, tr, std::make_unique<RoundRobinPolicy>());
    return sim.run();
  }();
  EXPECT_GT(rs.load_cov, rb.load_cov);        // skew shows up as imbalance
  EXPECT_LT(rs.throughput_rps, rb.throughput_rps);  // and costs throughput
}

TEST(RoundRobinPolicy, SkewDoesNotTouchNonDnsPolicies) {
  trace::SyntheticSpec spec;
  spec.name = "lard-skew";
  spec.files = 100;
  spec.requests = 1500;
  spec.avg_file_kb = 8.0;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  const auto tr = trace::generate(spec);
  core::SimConfig plain;
  plain.nodes = 4;
  plain.node.cache_bytes = kMiB;
  core::SimConfig skewed = plain;
  skewed.arrival.dns_entry_skew = 0.9;
  const auto a = core::run_once(tr, plain, core::PolicyKind::kLard);
  const auto b = core::run_once(tr, skewed, core::PolicyKind::kLard);
  // LARD's front door is its front-end, not DNS: identical runs.
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
}

}  // namespace
}  // namespace l2s::policy
