#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/queueing/mm1.hpp"
#include "l2sim/queueing/mmc.hpp"

namespace l2s::queueing {
namespace {

TEST(Mmc, SingleServerReducesToMm1) {
  const auto m1 = mm1_metrics(0.7, 1.0);
  const auto mc = mmc_metrics(0.7, 1.0, 1);
  EXPECT_NEAR(mc.mean_response, m1.mean_response, 1e-12);
  EXPECT_NEAR(mc.mean_waiting, m1.mean_waiting, 1e-12);
  EXPECT_NEAR(mc.mean_customers, m1.mean_customers, 1e-12);
  // For M/M/1 the probability of waiting equals the utilization.
  EXPECT_NEAR(mc.prob_wait, 0.7, 1e-12);
}

TEST(Mmc, ErlangCKnownValues) {
  // Classic call-center value: a = 8 Erlangs, c = 10 -> C ~ 0.4092.
  EXPECT_NEAR(erlang_c(8.0, 10), 0.4092, 0.0005);
  // a = 1, c = 2: C = 1/3.
  EXPECT_NEAR(erlang_c(1.0, 2), 1.0 / 3.0, 1e-9);
  // Zero load never waits.
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 4), 0.0);
  // Saturated (a >= c) always waits.
  EXPECT_DOUBLE_EQ(erlang_c(5.0, 4), 1.0);
}

TEST(Mmc, PoolingBeatsPartitioning) {
  // Same total capacity, same total load: one M/M/16 queue responds faster
  // than 16 independent M/M/1 queues (the resource-pooling advantage).
  const double mu = 100.0;
  const double total_lambda = 1280.0;  // 80% utilization
  const auto pooled = mmc_metrics(total_lambda, mu, 16);
  const auto partitioned = mm1_metrics(total_lambda / 16.0, mu);
  EXPECT_LT(pooled.mean_response, partitioned.mean_response);
  // At 80% load the gap is large (most M/M/16 arrivals do not wait at all).
  EXPECT_LT(pooled.mean_response, 0.5 * partitioned.mean_response);
}

TEST(Mmc, LittlesLawHolds) {
  const auto m = mmc_metrics(30.0, 10.0, 4);
  EXPECT_NEAR(m.mean_customers, 30.0 * m.mean_response, 1e-9);
}

TEST(Mmc, StabilityBoundary) {
  EXPECT_TRUE(mmc_stable(39.9, 10.0, 4));
  EXPECT_FALSE(mmc_stable(40.0, 10.0, 4));
  EXPECT_THROW((void)mmc_metrics(40.0, 10.0, 4), Error);
  EXPECT_THROW((void)mmc_metrics(1.0, 0.0, 4), Error);
  EXPECT_THROW((void)erlang_c(1.0, 0), Error);
  EXPECT_THROW((void)erlang_c(-1.0, 2), Error);
}

TEST(Mmc, MoreServersLowerWait) {
  const double lambda = 50.0;
  const double mu = 10.0;
  double prev = 1e9;
  for (const int c : {6, 8, 12, 24}) {
    const auto m = mmc_metrics(lambda, mu, c);
    EXPECT_LT(m.mean_waiting, prev);
    prev = m.mean_waiting;
  }
}

TEST(Mmc, ZeroLoadResponseIsServiceTime) {
  const auto m = mmc_metrics(0.0, 5.0, 3);
  EXPECT_DOUBLE_EQ(m.mean_response, 0.2);
  EXPECT_DOUBLE_EQ(m.prob_wait, 0.0);
}

}  // namespace
}  // namespace l2s::queueing
