// Digest-divergence debugger: `diff_decisions` must report the EXACT first
// record where two replays disagree (pinned against an offline record-by-
// record comparison of two full collector runs), stay silent on identical
// configurations, and treat serial-vs-sharded as identical (they are, by
// the sequential-merge equivalence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/spec.hpp"
#include "l2sim/obs/diff.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::obs {
namespace {

trace::Trace diff_trace() {
  trace::SyntheticSpec spec;
  spec.name = "diff";
  spec.files = 150;
  spec.avg_file_kb = 8.0;
  spec.requests = 2000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 11;
  return trace::generate(spec);
}

core::ExperimentSpec base_spec() {
  core::ExperimentSpec spec;
  spec.name = "diff";
  spec.sim.nodes = 4;
  spec.sim.node.cache_bytes = 2 * kMiB;
  spec.sim.arrival.open_loop_rate = 2000.0;
  spec.sim.persistence.mean_requests_per_connection = 2.0;
  spec.policy = core::PolicyKind::kL2s;
  spec.set_shrink_seconds = 2.0;
  return spec;
}

/// Offline reference: both sides replayed in full with the recorder
/// retaining everything, then compared record by record.
std::vector<DecisionRecord> full_stream(const trace::Trace& tr,
                                        const core::ExperimentSpec& spec) {
  core::SimConfig sim = spec.sim;
  sim.obs.enabled = true;
  sim.obs.capacity = 0;
  const auto r = core::run_once(tr, sim, spec.policy, spec.set_shrink_seconds);
  EXPECT_NE(r.decisions, nullptr);
  return r.decisions->records;
}

TEST(DecisionDiff, IdenticalSpecsReportNoDivergence) {
  const auto tr = diff_trace();
  const auto spec = base_spec();
  const DiffReport report = diff_decisions(spec, spec, tr);
  EXPECT_FALSE(report.diverged);
  EXPECT_GT(report.records_a, 0u);
  EXPECT_EQ(report.records_a, report.records_b);
  EXPECT_NE(report.summary().find("identical"), std::string::npos);
}

TEST(DecisionDiff, SerialVersusShardedIsIdentical) {
  const auto tr = diff_trace();
  const auto a = base_spec();
  auto b = base_spec();
  b.sim.engine.shards = 2;
  const DiffReport report = diff_decisions(a, b, tr);
  EXPECT_FALSE(report.diverged) << report.summary();
}

TEST(DecisionDiff, SeededDivergenceReportsTheExactFirstRecord) {
  // The open-loop arrival stream draws inter-arrival gaps from the seeded
  // RNG, so perturbing the seed diverges the decision log almost
  // immediately — and the diff must name precisely the record the offline
  // comparison finds first.
  const auto tr = diff_trace();
  const auto a = base_spec();
  auto b = base_spec();
  b.sim.seed = a.sim.seed ^ 1;

  const auto stream_a = full_stream(tr, a);
  const auto stream_b = full_stream(tr, b);
  const auto mismatch =
      std::mismatch(stream_a.begin(), stream_a.end(), stream_b.begin(), stream_b.end());
  ASSERT_TRUE(mismatch.first != stream_a.end() || mismatch.second != stream_b.end())
      << "seed perturbation failed to diverge the streams";
  const auto expected =
      static_cast<std::uint64_t>(mismatch.first - stream_a.begin());

  DiffOptions options;
  options.context = 3;
  const DiffReport report = diff_decisions(a, b, tr, options);
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergence, expected);
  EXPECT_EQ(report.records_a, stream_a.size());
  // B stops the moment it disagrees: one past the divergent index.
  EXPECT_EQ(report.records_b, expected + 1);
  EXPECT_FALSE(report.length_only);

  // The context windows end at the divergent record and agree with the
  // offline streams.
  ASSERT_FALSE(report.context_a.empty());
  ASSERT_FALSE(report.context_b.empty());
  EXPECT_LE(report.context_a.size(), options.context);
  EXPECT_EQ(report.context_a.back(), stream_a[expected]);
  EXPECT_EQ(report.context_b.back(), stream_b[expected]);
  EXPECT_NE(report.context_a.back(), report.context_b.back());
  EXPECT_EQ(report.context_start + report.context_a.size() - 1, expected);

  // The rendered summary names the index.
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("#" + std::to_string(expected)), std::string::npos) << summary;
}

TEST(DecisionDiff, PolicyChangeDivergesAtTheFirstDispatch) {
  const auto tr = diff_trace();
  auto a = base_spec();
  auto b = base_spec();
  a.policy = core::PolicyKind::kTraditional;
  b.policy = core::PolicyKind::kLard;
  const DiffReport report = diff_decisions(a, b, tr);
  ASSERT_TRUE(report.diverged);
  // Different distribution policies disagree on an early dispatch; both
  // sides still agree the divergent record is a dispatch decision.
  ASSERT_FALSE(report.context_a.empty());
  EXPECT_EQ(report.context_a.back().kind, DecisionKind::kDispatch);
}

TEST(DecisionDiff, RealizesTracesFromSpecsWhenNotShared) {
  // The two-spec overload realizes each side's TraceSpec; identical specs
  // must realize identical workloads and report no divergence.
  auto a = base_spec();
  auto b = base_spec();
  trace::SyntheticSpec synth;
  synth.name = "diff-realize";
  synth.files = 100;
  synth.avg_file_kb = 8.0;
  synth.requests = 800;
  synth.avg_request_kb = 6.0;
  synth.alpha = 0.9;
  synth.seed = 3;
  a.trace = core::TraceSpec::synth(synth);
  b.trace = core::TraceSpec::synth(synth);
  const DiffReport report = diff_decisions(a, b);
  EXPECT_FALSE(report.diverged) << report.summary();
}

}  // namespace
}  // namespace l2s::obs
