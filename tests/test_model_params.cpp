#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/model/parameters.hpp"

namespace l2s::model {
namespace {

TEST(ModelParams, PaperDefaults) {
  const ModelParams p;
  EXPECT_EQ(p.nodes, 16);
  EXPECT_DOUBLE_EQ(p.replication, 0.0);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_EQ(p.cache_bytes, 128 * kMiB);
  EXPECT_DOUBLE_EQ(p.ni_request_rate, 140000.0);
  EXPECT_DOUBLE_EQ(p.parse_rate, 6300.0);
  EXPECT_DOUBLE_EQ(p.forward_rate, 10000.0);
}

TEST(ModelParams, RouterRateFormula) {
  const ModelParams p;
  // mu_r = 500000/size ops/s.
  EXPECT_NEAR(p.router_rate(1.0), 500000.0, 1e-9);
  EXPECT_NEAR(p.router_rate(47.0), 500000.0 / 47.0, 1e-9);
}

TEST(ModelParams, ReplyRateFormula) {
  const ModelParams p;
  // mu_m = 1/(0.0001 + S/12000).
  EXPECT_NEAR(p.reply_rate(12.0), 1.0 / (0.0001 + 12.0 / 12000.0), 1e-9);
  // Small files are dominated by the fixed term.
  EXPECT_NEAR(p.reply_rate(0.0), 10000.0, 1e-6);
}

TEST(ModelParams, DiskRateFormula) {
  const ModelParams p;
  // mu_d = 1/(0.028 + S/10000): ~35.6/s at 1 KB, ~24.5/s at 128 KB.
  EXPECT_NEAR(p.disk_rate(1.0), 1.0 / 0.0281, 1e-6);
  EXPECT_NEAR(p.disk_rate(128.0), 1.0 / (0.028 + 0.0128), 1e-6);
}

TEST(ModelParams, NiReplyRateFormula) {
  const ModelParams p;
  EXPECT_NEAR(p.ni_reply_rate(128.0), 1.0 / (0.000003 + 0.001), 1e-6);
}

TEST(ModelParams, ConsciousCacheSpace) {
  ModelParams p;
  p.nodes = 16;
  p.cache_bytes = 128 * kMiB;
  // R = 0: N*C.
  EXPECT_DOUBLE_EQ(p.conscious_cache_bytes(), 16.0 * 128 * kMiB);
  // R = 1 degenerates to a single cache (the oblivious server).
  p.replication = 1.0;
  EXPECT_DOUBLE_EQ(p.conscious_cache_bytes(), static_cast<double>(128 * kMiB));
  // R = 0.15: N*(1-R)*C + R*C.
  p.replication = 0.15;
  EXPECT_NEAR(p.conscious_cache_bytes(),
              16.0 * 0.85 * static_cast<double>(128 * kMiB) +
                  0.15 * static_cast<double>(128 * kMiB),
              1.0);
}

TEST(ModelParams, ValidateCatchesNonsense) {
  ModelParams p;
  p.nodes = 0;
  EXPECT_THROW(p.validate(), Error);
  p = ModelParams{};
  p.replication = 1.5;
  EXPECT_THROW(p.validate(), Error);
  p = ModelParams{};
  p.alpha = -1.0;
  EXPECT_THROW(p.validate(), Error);
  p = ModelParams{};
  p.cache_bytes = 0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(ModelParams, DescribeMentionsEveryParameter) {
  const std::string d = ModelParams{}.describe();
  for (const char* needle : {"mu_r", "mu_i", "mu_p", "mu_f", "mu_m", "mu_d", "mu_o"}) {
    EXPECT_NE(d.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace l2s::model
