#include <gtest/gtest.h>

#include "l2sim/policy/lard.hpp"
#include "policy_fixture.hpp"

namespace l2s::policy {
namespace {

using testing::PolicyFixture;

TEST(LardPolicy, AllRequestsEnterAtFrontEnd) {
  PolicyFixture f(4);
  LardPolicy p;
  p.attach(f.ctx);
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    EXPECT_EQ(p.entry_node(seq, PolicyFixture::request_for(static_cast<storage::FileId>(seq % 3))), 0);
}

TEST(LardPolicy, FirstRequestGoesToLeastLoadedBackend) {
  PolicyFixture f(4);
  LardPolicy p;
  p.attach(f.ctx);
  // Views start at zero; least-loaded backend is node 1 (ties by id,
  // node 0 excluded as front-end).
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(7)), 1);
  // A request for a different file now prefers node 2 (node 1's view was
  // bumped by the assignment).
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(8)), 2);
}

TEST(LardPolicy, StickyAssignmentForSameFile) {
  PolicyFixture f(4);
  LardPolicy p;
  p.attach(f.ctx);
  const int first = p.select_service_node(0, PolicyFixture::request_for(7));
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(7)), first);
}

TEST(LardPolicy, FrontEndViewTracksAssignments) {
  PolicyFixture f(3);
  LardPolicy p;
  p.attach(f.ctx);
  const int b = p.select_service_node(0, PolicyFixture::request_for(1));
  EXPECT_EQ(p.front_end_view(b), 1);
  (void)p.select_service_node(0, PolicyFixture::request_for(1));
  EXPECT_EQ(p.front_end_view(b), 2);
}

TEST(LardPolicy, CompletionUpdatesArriveInBatches) {
  PolicyFixture f(3);
  LardPolicy p;  // update_batch = 4
  p.attach(f.ctx);
  int backend = -1;
  for (int i = 0; i < 4; ++i) backend = p.select_service_node(0, PolicyFixture::request_for(1));
  EXPECT_EQ(p.front_end_view(backend), 4);
  // Three completions: no update message yet.
  for (int i = 0; i < 3; ++i) p.on_complete(backend, PolicyFixture::request_for(1));
  f.drain();
  EXPECT_EQ(p.front_end_view(backend), 4);
  // Fourth completion triggers one message carrying -4.
  p.on_complete(backend, PolicyFixture::request_for(1));
  f.drain();
  EXPECT_EQ(p.front_end_view(backend), 0);
  EXPECT_EQ(f.via.messages_sent(), 1u);
}

TEST(LardPolicy, ReplicatesUnderImbalance) {
  LardParams params;
  params.t_low = 2;
  params.t_high = 5;
  PolicyFixture f(4);
  LardPolicy p(params);
  p.attach(f.ctx);
  // Pin file 9 on its first backend, then inflate that backend's view past
  // t_high while another backend sits below t_low.
  const int first = p.select_service_node(0, PolicyFixture::request_for(9));
  for (int i = 0; i < 7; ++i) (void)p.select_service_node(0, PolicyFixture::request_for(9));
  const int now_chosen = p.select_service_node(0, PolicyFixture::request_for(9));
  EXPECT_NE(now_chosen, first);  // set grew; the spare backend takes over
  EXPECT_TRUE(p.server_sets().contains(9, now_chosen));
  EXPECT_GE(p.counters().get("set_grow"), 1u);
}

TEST(LardPolicy, SingleNodeClusterServesLocally) {
  PolicyFixture f(1);
  LardPolicy p;
  p.attach(f.ctx);
  EXPECT_EQ(p.select_service_node(0, PolicyFixture::request_for(0)), 0);
  p.on_complete(0, PolicyFixture::request_for(0));  // must not send messages
  f.drain();
  EXPECT_EQ(f.via.messages_sent(), 0u);
}

TEST(LardPolicy, HandoffCostIsFrontEndCalibration) {
  PolicyFixture f(2);
  LardPolicy p;
  p.attach(f.ctx);
  EXPECT_EQ(p.forward_cpu_time(0), f.nodes[0]->handoff_initiate_time());
}

TEST(LardPolicy, RejectsBadParams) {
  LardParams bad;
  bad.t_low = 10;
  bad.t_high = 5;
  EXPECT_THROW(LardPolicy{bad}, l2s::Error);
  bad = LardParams{};
  bad.update_batch = 0;
  EXPECT_THROW(LardPolicy{bad}, l2s::Error);
}

}  // namespace
}  // namespace l2s::policy
