#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/harmonic.hpp"

namespace l2s::zipf {
namespace {

TEST(Harmonic, ExactSmallValues) {
  EXPECT_DOUBLE_EQ(harmonic_exact(0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_exact(1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(harmonic_exact(2, 1.0), 1.5);
  EXPECT_NEAR(harmonic_exact(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(Harmonic, ExactMatchesKnownAlpha2) {
  // sum 1/i^2 for i=1..10 = 1.549767731...
  EXPECT_NEAR(harmonic_exact(10, 2.0), 1.5497677311665407, 1e-12);
}

TEST(Harmonic, ContinuousAgreesWithExactBelowPrefix) {
  for (const double alpha : {0.5, 0.78, 1.0, 1.08, 1.5}) {
    for (const std::uint64_t n : {1ull, 10ull, 1000ull, 50000ull}) {
      EXPECT_NEAR(harmonic(static_cast<double>(n), alpha), harmonic_exact(n, alpha),
                  1e-9 * harmonic_exact(n, alpha))
          << "alpha=" << alpha << " n=" << n;
    }
  }
}

TEST(Harmonic, TailIntegralAccurate) {
  // Compare the midpoint-tail path against brute-force summation just past
  // the internal exact prefix (100000).
  const double alpha = 0.9;
  const std::uint64_t n = 150000;
  EXPECT_NEAR(harmonic(static_cast<double>(n), alpha), harmonic_exact(n, alpha),
              1e-7 * harmonic_exact(n, alpha));
}

TEST(Harmonic, MonotoneInX) {
  const double alpha = 1.0;
  double prev = 0.0;
  for (double x = 0.5; x < 2e6; x *= 3.7) {
    const double h = harmonic(x, alpha);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(Harmonic, FractionalInterpolation) {
  const double alpha = 1.0;
  const double h2 = harmonic(2.0, alpha);
  const double h25 = harmonic(2.5, alpha);
  const double h3 = harmonic(3.0, alpha);
  EXPECT_GT(h25, h2);
  EXPECT_LT(h25, h3);
  EXPECT_NEAR(h25, h2 + 0.5 * std::pow(3.0, -alpha), 1e-12);
}

TEST(Harmonic, LogGrowthForAlphaOne) {
  // H_n ~ ln n + gamma for alpha = 1.
  const double gamma = 0.5772156649015329;
  const double n = 1e9;
  EXPECT_NEAR(harmonic(n, 1.0), std::log(n) + gamma, 1e-3);
}

TEST(Harmonic, PowerGrowthForAlphaBelowOne) {
  // H_n ~ n^(1-a)/(1-a) for alpha < 1 (leading term).
  const double a = 0.5;
  const double n = 1e12;
  const double expected = std::pow(n, 1.0 - a) / (1.0 - a);
  EXPECT_NEAR(harmonic(n, a) / expected, 1.0, 1e-4);
}

TEST(Harmonic, ConvergesForAlphaAboveOne) {
  // zeta(2) = pi^2/6.
  EXPECT_NEAR(harmonic(1e12, 2.0), M_PI * M_PI / 6.0, 1e-6);
}

TEST(Harmonic, ZeroAndNegativeXAreZero) {
  EXPECT_DOUBLE_EQ(harmonic(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(-5.0, 1.0), 0.0);
}

TEST(Harmonic, RejectsNonPositiveAlpha) {
  EXPECT_THROW(harmonic(10.0, 0.0), l2s::Error);
  EXPECT_THROW(harmonic_exact(10, -1.0), l2s::Error);
}

}  // namespace
}  // namespace l2s::zipf
