#include <gtest/gtest.h>

#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::cache {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache c(10 * kKiB);
  EXPECT_FALSE(c.lookup(1));
  c.insert(1, 4 * kKiB);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(10 * kKiB);
  c.insert(1, 4 * kKiB);
  c.insert(2, 4 * kKiB);
  EXPECT_TRUE(c.lookup(1));         // 1 is now MRU
  c.insert(3, 4 * kKiB);            // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, ByteAccountingExact) {
  LruCache c(100);
  c.insert(1, 40);
  c.insert(2, 30);
  EXPECT_EQ(c.used(), 70u);
  c.insert(3, 40);  // must evict 1 (LRU)
  EXPECT_EQ(c.used(), 70u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LruCache, OversizedFileNeverCached) {
  LruCache c(100);
  c.insert(1, 50);
  c.insert(2, 101);  // larger than whole capacity
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));  // existing contents untouched
  EXPECT_EQ(c.used(), 50u);
}

TEST(LruCache, FileExactlyCapacityFits) {
  LruCache c(100);
  c.insert(1, 60);
  c.insert(2, 100);  // evicts everything else, fits exactly
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.used(), 100u);
}

TEST(LruCache, ReinsertRefreshesRecency) {
  LruCache c(100);
  c.insert(1, 40);
  c.insert(2, 40);
  c.insert(1, 40);  // 1 becomes MRU again
  c.insert(3, 40);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, ReinsertWithNewSizeAdjustsBytes) {
  LruCache c(100);
  c.insert(1, 40);
  c.insert(1, 60);
  EXPECT_EQ(c.used(), 60u);
  EXPECT_EQ(c.entries(), 1u);
  // Insertions counter only counts new entries.
  EXPECT_EQ(c.stats().insertions, 1u);
}

TEST(LruCache, EraseFreesSpace) {
  LruCache c(100);
  c.insert(1, 70);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.used(), 0u);
  c.insert(2, 100);
  EXPECT_TRUE(c.contains(2));
}

TEST(LruCache, ContainsDoesNotTouchStatsOrRecency) {
  LruCache c(100);
  c.insert(1, 40);
  c.insert(2, 40);
  (void)c.contains(1);  // must NOT promote 1
  c.insert(3, 40);      // evicts 1 (still LRU)
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(LruCache, ClearDropsContentsKeepsStats) {
  LruCache c(100);
  c.insert(1, 40);
  (void)c.lookup(1);
  c.clear();
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_EQ(c.used(), 0u);
  EXPECT_EQ(c.stats().hits, 1u);
  c.reset_stats();
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(LruCache, MultiEvictionForLargeInsert) {
  LruCache c(100);
  c.insert(1, 30);
  c.insert(2, 30);
  c.insert(3, 30);
  c.insert(4, 90);  // must evict all three
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_EQ(c.stats().evictions, 3u);
  EXPECT_EQ(c.stats().bytes_evicted, 90u);
}

TEST(LruCache, ZeroCapacityRejected) {
  EXPECT_THROW(LruCache(0), l2s::Error);
}

TEST(CacheStats, RatesAndMerge) {
  CacheStats a;
  a.hits = 3;
  a.misses = 1;
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(a.miss_rate(), 0.25);
  CacheStats b;
  b.hits = 1;
  b.misses = 3;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  const CacheStats empty;
  EXPECT_DOUBLE_EQ(empty.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.miss_rate(), 0.0);
}

}  // namespace
}  // namespace l2s::cache
