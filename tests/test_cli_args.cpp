#include <gtest/gtest.h>

#include "l2sim/common/cli_args.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/spec.hpp"

namespace l2s {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  for (const char* t : tokens) argv.push_back(t);
  return CliArgs(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto a = parse({"--nodes", "16", "--policy", "l2s"});
  EXPECT_EQ(a.get_int("nodes", 0), 16);
  EXPECT_EQ(a.get("policy"), "l2s");
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto a = parse({"--scale=0.25", "--csv=/tmp/out"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), 0.25);
  EXPECT_EQ(a.get("csv"), "/tmp/out");
}

TEST(CliArgs, BooleanFlags) {
  const auto a = parse({"--gdsf", "--nodes", "4"});
  EXPECT_TRUE(a.has("gdsf"));
  EXPECT_EQ(a.get("gdsf"), "");
  EXPECT_FALSE(a.has("absent"));
}

TEST(CliArgs, TrailingBooleanFlag) {
  const auto a = parse({"--nodes", "4", "--conscious"});
  EXPECT_TRUE(a.has("conscious"));
  EXPECT_EQ(a.get_int("nodes", 0), 4);
}

TEST(CliArgs, PositionalArguments) {
  const auto a = parse({"point", "--hlo", "0.6", "extra"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "point");
  EXPECT_EQ(a.positional()[1], "extra");
  EXPECT_DOUBLE_EQ(a.get_double("hlo", 0.0), 0.6);
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean) {
  const auto a = parse({"--verbose", "--nodes", "8"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose"), "");
  EXPECT_EQ(a.get_int("nodes", 0), 8);
}

TEST(CliArgs, Fallbacks) {
  const auto a = parse({});
  EXPECT_EQ(a.get("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_TRUE(a.positional().empty());
}

TEST(CliArgs, NegativeNumbersAsValues) {
  // "-1" does not start with "--", so it is consumed as the flag's value.
  const auto a = parse({"--offset", "-1"});
  EXPECT_EQ(a.get_int("offset", 0), -1);
}

TEST(CliArgs, LastOccurrenceWins) {
  const auto a = parse({"--nodes", "4", "--nodes", "8"});
  EXPECT_EQ(a.get_int("nodes", 0), 8);
}

TEST(OverloadCli, FlashArrivalAndChaosSeed) {
  const auto a = parse({"--arrival", "flash", "--flash-at", "5", "--flash-factor",
                        "4.5", "--flash-ramp", "1.5", "--flash-hold", "10",
                        "--chaos-seed", "777"});
  core::ExperimentSpec spec;
  core::apply_overload_cli(a, spec);
  EXPECT_EQ(spec.sim.arrival.shape, core::ArrivalShape::kFlashCrowd);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.flash_at_seconds, 5.0);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.flash_factor, 4.5);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.flash_ramp_seconds, 1.5);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.flash_hold_seconds, 10.0);
  EXPECT_EQ(spec.sim.seed, 777u);
}

TEST(OverloadCli, DiurnalChurnAndDefenses) {
  const auto a = parse({"--arrival=diurnal", "--diurnal-period=30",
                        "--diurnal-amp=0.25", "--churn-period=8",
                        "--churn-stride=3", "--shedder=codel",
                        "--target-delay=0.02", "--retry-budget=0.1",
                        "--retry-burst=8", "--hedge-delay=0.05",
                        "--max-hedges=2", "--brownout"});
  core::ExperimentSpec spec;
  core::apply_overload_cli(a, spec);
  EXPECT_EQ(spec.sim.arrival.shape, core::ArrivalShape::kDiurnal);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.diurnal_period_seconds, 30.0);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.diurnal_amplitude, 0.25);
  EXPECT_DOUBLE_EQ(spec.sim.arrival.churn_period_seconds, 8.0);
  EXPECT_EQ(spec.sim.arrival.churn_stride, 3u);
  EXPECT_EQ(spec.sim.overload.shedder, core::ShedderKind::kQueueDelay);
  EXPECT_DOUBLE_EQ(spec.sim.overload.target_delay_seconds, 0.02);
  EXPECT_DOUBLE_EQ(spec.sim.overload.retry_budget_ratio, 0.1);
  EXPECT_DOUBLE_EQ(spec.sim.overload.retry_budget_burst, 8.0);
  EXPECT_DOUBLE_EQ(spec.sim.overload.hedge_delay_seconds, 0.05);
  EXPECT_EQ(spec.sim.overload.max_hedges, 2);
  EXPECT_TRUE(spec.sim.overload.brownout);
  EXPECT_TRUE(spec.sim.overload.any_on());
}

TEST(OverloadCli, NoFlagsLeaveSpecUntouched) {
  const auto a = parse({"--nodes", "8"});
  core::ExperimentSpec spec;
  const auto seed = spec.sim.seed;
  core::apply_overload_cli(a, spec);
  EXPECT_EQ(spec.sim.arrival.shape, core::ArrivalShape::kStationary);
  EXPECT_EQ(spec.sim.overload.shedder, core::ShedderKind::kNone);
  EXPECT_FALSE(spec.sim.overload.any_on());
  EXPECT_EQ(spec.sim.seed, seed);
}

TEST(OverloadCli, StaticAndAimdShedderNames) {
  core::ExperimentSpec spec;
  core::apply_overload_cli(parse({"--shedder=static", "--static-cap=64"}), spec);
  EXPECT_EQ(spec.sim.overload.shedder, core::ShedderKind::kStaticCap);
  EXPECT_EQ(spec.sim.overload.static_cap, 64);
  core::apply_overload_cli(parse({"--shedder=aimd"}), spec);
  EXPECT_EQ(spec.sim.overload.shedder, core::ShedderKind::kAimd);
}

TEST(OverloadCli, UnknownNamesThrow) {
  core::ExperimentSpec spec;
  EXPECT_THROW(core::apply_overload_cli(parse({"--arrival=bursty"}), spec), Error);
  EXPECT_THROW(core::apply_overload_cli(parse({"--shedder=drop-tail"}), spec), Error);
}

}  // namespace
}  // namespace l2s
