#include <gtest/gtest.h>

#include "l2sim/common/cli_args.hpp"

namespace l2s {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  for (const char* t : tokens) argv.push_back(t);
  return CliArgs(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto a = parse({"--nodes", "16", "--policy", "l2s"});
  EXPECT_EQ(a.get_int("nodes", 0), 16);
  EXPECT_EQ(a.get("policy"), "l2s");
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto a = parse({"--scale=0.25", "--csv=/tmp/out"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), 0.25);
  EXPECT_EQ(a.get("csv"), "/tmp/out");
}

TEST(CliArgs, BooleanFlags) {
  const auto a = parse({"--gdsf", "--nodes", "4"});
  EXPECT_TRUE(a.has("gdsf"));
  EXPECT_EQ(a.get("gdsf"), "");
  EXPECT_FALSE(a.has("absent"));
}

TEST(CliArgs, TrailingBooleanFlag) {
  const auto a = parse({"--nodes", "4", "--conscious"});
  EXPECT_TRUE(a.has("conscious"));
  EXPECT_EQ(a.get_int("nodes", 0), 4);
}

TEST(CliArgs, PositionalArguments) {
  const auto a = parse({"point", "--hlo", "0.6", "extra"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "point");
  EXPECT_EQ(a.positional()[1], "extra");
  EXPECT_DOUBLE_EQ(a.get_double("hlo", 0.0), 0.6);
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean) {
  const auto a = parse({"--verbose", "--nodes", "8"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose"), "");
  EXPECT_EQ(a.get_int("nodes", 0), 8);
}

TEST(CliArgs, Fallbacks) {
  const auto a = parse({});
  EXPECT_EQ(a.get("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_TRUE(a.positional().empty());
}

TEST(CliArgs, NegativeNumbersAsValues) {
  // "-1" does not start with "--", so it is consumed as the flag's value.
  const auto a = parse({"--offset", "-1"});
  EXPECT_EQ(a.get_int("offset", 0), -1);
}

TEST(CliArgs, LastOccurrenceWins) {
  const auto a = parse({"--nodes", "4", "--nodes", "8"});
  EXPECT_EQ(a.get_int("nodes", 0), 8);
}

}  // namespace
}  // namespace l2s
