#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/common/table.hpp"

namespace l2s {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.cell("xx").cell(1.5, 1).end_row();
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a   long-header"), std::string::npos);
  EXPECT_NE(out.find("xx  1.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"x", "y", "z"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.cell(1LL).cell(2LL).cell(3LL).end_row();
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(10.0, 0), "10");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(CsvWriter, InactiveWhenDirEmpty) {
  CsvWriter csv("", "name", {"a"});
  EXPECT_FALSE(csv.active());
  csv.add_row({"1"});  // must not crash
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string dir = ::testing::TempDir();
  {
    CsvWriter csv(dir, "l2sim_test_csv", {"a", "b"});
    EXPECT_TRUE(csv.active());
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
  }
  std::ifstream in(dir + "/l2sim_test_csv.csv");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n3,4\n");
  std::remove((dir + "/l2sim_test_csv.csv").c_str());
}

TEST(CsvDirFromArgs, ExplicitFlagWins) {
  char prog[] = "prog";
  char flag[] = "--csv=/tmp/somewhere";
  char* argv[] = {prog, flag};
  EXPECT_EQ(csv_dir_from_args(2, argv), "/tmp/somewhere");
}

TEST(Env, DoubleFallback) {
  ::unsetenv("L2SIM_TEST_UNSET");
  EXPECT_DOUBLE_EQ(env_double("L2SIM_TEST_UNSET", 2.5), 2.5);
  ::setenv("L2SIM_TEST_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("L2SIM_TEST_D", 1.0), 0.25);
  ::setenv("L2SIM_TEST_D", "garbage", 1);
  EXPECT_THROW(env_double("L2SIM_TEST_D", 1.0), Error);
  ::unsetenv("L2SIM_TEST_D");
}

TEST(Env, IntFallback) {
  ::unsetenv("L2SIM_TEST_UNSET");
  EXPECT_EQ(env_int("L2SIM_TEST_UNSET", 7), 7);
  ::setenv("L2SIM_TEST_I", "42", 1);
  EXPECT_EQ(env_int("L2SIM_TEST_I", 7), 42);
  ::unsetenv("L2SIM_TEST_I");
}

TEST(Env, BenchScaleValidates) {
  ::setenv("L2SIM_SCALE", "0", 1);
  EXPECT_THROW(bench_scale(), Error);
  ::setenv("L2SIM_SCALE", "1.5", 1);
  EXPECT_THROW(bench_scale(), Error);
  ::setenv("L2SIM_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.5);
  ::unsetenv("L2SIM_SCALE");
}

}  // namespace
}  // namespace l2s
