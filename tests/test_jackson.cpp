#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/queueing/jackson.hpp"

namespace l2s::queueing {
namespace {

JacksonNetwork two_station_net() {
  JacksonNetwork net;
  net.add_station({"cpu", 100.0, 1.0});
  net.add_station({"disk", 50.0, 0.2});
  return net;
}

TEST(Jackson, MaxThroughputIsBottleneckBound) {
  const auto net = two_station_net();
  // cpu caps at 100/1 = 100; disk caps at 50/0.2 = 250 -> cpu binds.
  EXPECT_DOUBLE_EQ(net.max_throughput(), 100.0);
  EXPECT_EQ(net.bottleneck(), "cpu");
}

TEST(Jackson, VisitRatioScalesBound) {
  JacksonNetwork net;
  net.add_station({"a", 10.0, 2.0});  // cap 5
  net.add_station({"b", 100.0, 1.0});
  EXPECT_DOUBLE_EQ(net.max_throughput(), 5.0);
  EXPECT_EQ(net.bottleneck(), "a");
}

TEST(Jackson, ZeroVisitStationsNeverBind) {
  JacksonNetwork net;
  net.add_station({"unused", 0.001, 0.0});
  net.add_station({"real", 10.0, 1.0});
  EXPECT_DOUBLE_EQ(net.max_throughput(), 10.0);
  EXPECT_EQ(net.bottleneck(), "real");
}

TEST(Jackson, EmptyOrAllZeroThrows) {
  JacksonNetwork empty;
  EXPECT_THROW((void)empty.max_throughput(), Error);
  JacksonNetwork zeros;
  zeros.add_station({"z", 1.0, 0.0});
  EXPECT_THROW((void)zeros.max_throughput(), Error);
}

TEST(Jackson, StableAtRespectsAllStations) {
  const auto net = two_station_net();
  EXPECT_TRUE(net.stable_at(99.0));
  EXPECT_FALSE(net.stable_at(100.0));
  EXPECT_FALSE(net.stable_at(1000.0));
}

TEST(Jackson, SolveSumsResidenceTimes) {
  const auto net = two_station_net();
  const auto report = net.solve(50.0);
  ASSERT_EQ(report.stations.size(), 2u);
  // cpu: lambda 50, mu 100 -> W = 1/50. disk: lambda 10, mu 50 -> W = 1/40,
  // weighted by visit ratio 0.2 -> 0.005. Total 0.025.
  EXPECT_NEAR(report.mean_response, 1.0 / 50.0 + 0.2 / 40.0, 1e-12);
}

TEST(Jackson, SolveThrowsWhenUnstable) {
  const auto net = two_station_net();
  EXPECT_THROW(net.solve(150.0), Error);
}

TEST(Jackson, AddStationValidates) {
  JacksonNetwork net;
  EXPECT_THROW(net.add_station({"bad-mu", 0.0, 1.0}), Error);
  EXPECT_THROW(net.add_station({"bad-visit", 1.0, -0.5}), Error);
}

}  // namespace
}  // namespace l2s::queueing
