#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::trace {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec s;
  s.name = "unit";
  s.files = 500;
  s.avg_file_kb = 20.0;
  s.requests = 20000;
  s.avg_request_kb = 12.0;
  s.alpha = 0.9;
  s.seed = 123;
  return s;
}

TEST(Synthetic, ProducesRequestedCounts) {
  const Trace t = generate(small_spec());
  EXPECT_EQ(t.files().count(), 500u);
  EXPECT_EQ(t.request_count(), 20000u);
}

TEST(Synthetic, AverageFileSizeMatchesSpec) {
  const Trace t = generate(small_spec());
  EXPECT_NEAR(t.files().avg_kb(), 20.0, 0.2);
}

TEST(Synthetic, AverageRequestSizeMatchesSpec) {
  const Trace t = generate(small_spec());
  EXPECT_NEAR(t.avg_request_kb(), 12.0, 1.0);
}

TEST(Synthetic, RequestMeanAboveFileMeanAlsoReachable) {
  // ClarkNet-style: the requested mean slightly exceeds the file mean.
  SyntheticSpec s = small_spec();
  s.avg_request_kb = 23.0;
  const Trace t = generate(s);
  EXPECT_NEAR(t.avg_request_kb(), 23.0, 1.5);
  EXPECT_NEAR(t.files().avg_kb(), 20.0, 0.2);
}

TEST(Synthetic, DeterministicGivenSeed) {
  const Trace a = generate(small_spec());
  const Trace b = generate(small_spec());
  ASSERT_EQ(a.request_count(), b.request_count());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.requests()[i].file, b.requests()[i].file);
    EXPECT_EQ(a.requests()[i].bytes, b.requests()[i].bytes);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s2 = small_spec();
  s2.seed = 999;
  const Trace a = generate(small_spec());
  const Trace b = generate(s2);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i) same += (a.requests()[i].file == b.requests()[i].file);
  EXPECT_LT(same, 60);  // popular ranks will coincide sometimes
}

TEST(Synthetic, RequestBytesEqualFileSize) {
  const Trace t = generate(small_spec());
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& r = t.requests()[i];
    EXPECT_EQ(r.bytes, t.files().size_of(r.file));
  }
}

TEST(Synthetic, PopularityFollowsRankOrder) {
  const Trace t = generate(small_spec());
  std::vector<std::uint64_t> freq(t.files().count(), 0);
  for (const auto& r : t.requests()) ++freq[r.file];
  // File id == popularity rank: rank 0 must be requested far more often
  // than a mid-tail rank.
  EXPECT_GT(freq[0], 4 * freq[100]);
}

TEST(Synthetic, ValidatesSpec) {
  SyntheticSpec s = small_spec();
  s.files = 0;
  EXPECT_THROW(generate(s), l2s::Error);
  s = small_spec();
  s.requests = 0;
  EXPECT_THROW(generate(s), l2s::Error);
  s = small_spec();
  s.avg_file_kb = -1.0;
  EXPECT_THROW(generate(s), l2s::Error);
  s = small_spec();
  s.alpha = 0.0;
  EXPECT_THROW(generate(s), l2s::Error);
  s = small_spec();
  s.size_sigma = 0.0;
  EXPECT_THROW(generate(s), l2s::Error);
}

TEST(PaperTraces, FourSpecsWithTable2Values) {
  const auto specs = paper_trace_specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "Calgary");
  EXPECT_EQ(specs[0].files, 8397u);
  EXPECT_DOUBLE_EQ(specs[0].avg_file_kb, 42.9);
  EXPECT_EQ(specs[0].requests, 567895u);
  EXPECT_DOUBLE_EQ(specs[0].avg_request_kb, 19.7);
  EXPECT_DOUBLE_EQ(specs[0].alpha, 1.08);
  EXPECT_EQ(specs[1].name, "Clarknet");
  EXPECT_EQ(specs[1].files, 35885u);
  EXPECT_EQ(specs[2].name, "NASA");
  EXPECT_EQ(specs[2].requests, 3147719u);
  EXPECT_EQ(specs[3].name, "Rutgers");
  EXPECT_DOUBLE_EQ(specs[3].alpha, 0.79);
}

TEST(PaperTraces, LookupByNameCaseInsensitive) {
  EXPECT_EQ(paper_trace_spec("calgary").name, "Calgary");
  EXPECT_EQ(paper_trace_spec("NASA").name, "NASA");
  EXPECT_EQ(paper_trace_spec("ClArKnEt").name, "Clarknet");
  EXPECT_THROW(paper_trace_spec("unknown"), l2s::Error);
}

TEST(PaperTraces, WorkingSetsInPaperRange) {
  // The paper reports working sets from 288 MB to 717 MB.
  for (auto spec : paper_trace_specs()) {
    spec.requests = 1000;  // size distribution does not depend on requests
    const Trace t = generate(spec);
    const double mb = static_cast<double>(t.files().total_bytes()) / (1024.0 * 1024.0);
    EXPECT_GT(mb, 270.0) << spec.name;
    EXPECT_LT(mb, 740.0) << spec.name;
  }
}

}  // namespace
}  // namespace l2s::trace
