// Regression suite for model::Surface::value_at — in particular the
// grid-boundary case: querying exactly the last grid line (or beyond) must
// clamp to the boundary cell instead of indexing one row/column past the
// end of the value grid.
#include <gtest/gtest.h>

#include "l2sim/model/surface.hpp"

namespace l2s::model {
namespace {

// A surface sampled from an affine function is reproduced exactly by
// bilinear interpolation everywhere, including between grid lines.
Surface affine_surface() {
  Surface s;
  s.hit_rates = {0.0, 0.25, 0.5, 1.0};  // deliberately non-uniform
  s.sizes_kb = {2.0, 4.0, 8.0};
  for (double h : s.hit_rates) {
    std::vector<double> row;
    for (double kb : s.sizes_kb) row.push_back(3.0 * h + 2.0 * kb + 1.0);
    s.values.push_back(row);
  }
  return s;
}

double affine(double h, double kb) { return 3.0 * h + 2.0 * kb + 1.0; }

TEST(SurfaceLookup, InteriorBilinear) {
  const Surface s = affine_surface();
  EXPECT_DOUBLE_EQ(s.value_at(0.1, 3.0), affine(0.1, 3.0));
  EXPECT_DOUBLE_EQ(s.value_at(0.375, 6.0), affine(0.375, 6.0));
  EXPECT_DOUBLE_EQ(s.value_at(0.75, 5.5), affine(0.75, 5.5));
}

TEST(SurfaceLookup, ExactGridNodes) {
  const Surface s = affine_surface();
  for (std::size_t i = 0; i < s.hit_rates.size(); ++i)
    for (std::size_t j = 0; j < s.sizes_kb.size(); ++j)
      EXPECT_DOUBLE_EQ(s.value_at(s.hit_rates[i], s.sizes_kb[j]), s.at(i, j))
          << "grid node (" << i << ", " << j << ")";
}

// The regression proper: the last grid line on either axis. A lookup that
// maps x == axis.back() to (index = size() - 1, frac > 0) reads values one
// past the end; the clamped form must return the boundary value itself.
TEST(SurfaceLookup, LastGridLineClampsInsteadOfIndexingPastEnd) {
  const Surface s = affine_surface();
  const std::size_t last_i = s.hit_rates.size() - 1;
  const std::size_t last_j = s.sizes_kb.size() - 1;
  EXPECT_DOUBLE_EQ(s.value_at(1.0, 4.0), affine(1.0, 4.0));
  EXPECT_DOUBLE_EQ(s.value_at(0.25, 8.0), affine(0.25, 8.0));
  EXPECT_DOUBLE_EQ(s.value_at(1.0, 8.0), s.at(last_i, last_j));
}

TEST(SurfaceLookup, OutOfRangeClampsToBoundary) {
  const Surface s = affine_surface();
  EXPECT_DOUBLE_EQ(s.value_at(-1.0, 3.0), s.value_at(0.0, 3.0));
  EXPECT_DOUBLE_EQ(s.value_at(2.0, 3.0), s.value_at(1.0, 3.0));
  EXPECT_DOUBLE_EQ(s.value_at(0.5, 0.0), s.value_at(0.5, 2.0));
  EXPECT_DOUBLE_EQ(s.value_at(0.5, 100.0), s.value_at(0.5, 8.0));
  EXPECT_DOUBLE_EQ(s.value_at(5.0, 100.0), s.at(s.hit_rates.size() - 1,
                                                s.sizes_kb.size() - 1));
}

TEST(SurfaceLookup, SinglePointGrid) {
  Surface s;
  s.hit_rates = {0.5};
  s.sizes_kb = {16.0};
  s.values = {{42.0}};
  EXPECT_DOUBLE_EQ(s.value_at(0.5, 16.0), 42.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0, 100.0), 42.0);
}

}  // namespace
}  // namespace l2s::model
