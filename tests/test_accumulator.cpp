#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/stats/accumulator.hpp"

namespace l2s::stats {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
  EXPECT_THROW(a.variance(), Error);  // needs n >= 2
}

TEST(Accumulator, EmptyThrows) {
  const Accumulator a;
  EXPECT_THROW(a.mean(), Error);
  EXPECT_THROW(a.min(), Error);
  EXPECT_THROW(a.max(), Error);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i < 50 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a;
  a.add(1.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Accumulator target;
  target.merge(a);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(5.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_THROW(a.mean(), Error);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
  // Welford must not lose the small variance under a huge mean.
  Accumulator a;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) a.add(base + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(a.variance(), 1.001, 0.01);
}

}  // namespace
}  // namespace l2s::stats
