#include <gtest/gtest.h>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::cluster {
namespace {

TEST(Node, ServiceTimesMatchTable1) {
  des::Scheduler s;
  Node n(s, 0, NodeParams{});
  EXPECT_EQ(n.parse_time(), seconds_to_simtime(1.0 / 6300.0));
  EXPECT_EQ(n.forward_time(), seconds_to_simtime(1.0 / 10000.0));
  // mu_m at 12 KB: 0.0001 + 12/12000 = 1.1 ms.
  EXPECT_EQ(n.reply_time(12 * kKiB), seconds_to_simtime(0.0001 + 12.0 / 12000.0));
}

TEST(Node, HandoffInitiateCalibration) {
  des::Scheduler s;
  const Node n(s, 0, NodeParams{});
  // 40 us: with parse (158.7 us) this saturates a LARD front-end near the
  // paper's ~5000 req/s.
  const double per_request =
      simtime_to_seconds(n.parse_time() + n.handoff_initiate_time());
  EXPECT_NEAR(1.0 / per_request, 5000.0, 100.0);
}

TEST(Node, ConnectionCounting) {
  des::Scheduler s;
  Node n(s, 2, NodeParams{});
  EXPECT_EQ(n.open_connections(), 0);
  n.connection_opened();
  n.connection_opened();
  EXPECT_EQ(n.open_connections(), 2);
  n.connection_closed();
  EXPECT_EQ(n.open_connections(), 1);
  n.connection_closed();
  EXPECT_THROW(n.connection_closed(), l2s::Error);
}

TEST(Node, OwnsCacheOfConfiguredSize) {
  des::Scheduler s;
  NodeParams p;
  p.cache_bytes = 8 * kMiB;
  Node n(s, 1, p);
  EXPECT_EQ(n.file_cache().capacity(), 8 * kMiB);
  EXPECT_EQ(n.name(), "node1");
}

TEST(Node, ResetStatsClearsAllComponents) {
  des::Scheduler s;
  Node n(s, 0, NodeParams{});
  n.cpu().submit(100, [] {});
  n.nic().tx().submit(100, [] {});
  n.disk().read(kKiB, [] {});
  (void)n.file_cache().lookup(0);
  s.run();
  n.reset_stats();
  EXPECT_EQ(n.cpu().busy_time(), 0);
  EXPECT_EQ(n.nic().tx().busy_time(), 0);
  EXPECT_EQ(n.disk().resource().busy_time(), 0);
  EXPECT_EQ(n.file_cache().stats().misses, 0u);
}

TEST(Node, CustomCpuParams) {
  des::Scheduler s;
  NodeParams p;
  p.cpu.parse_rate = 1000.0;
  p.cpu.reply_overhead_s = 0.001;
  p.cpu.reply_kb_per_s = 1000.0;
  const Node n(s, 0, p);
  EXPECT_EQ(n.parse_time(), seconds_to_simtime(0.001));
  EXPECT_EQ(n.reply_time(kKiB), seconds_to_simtime(0.002));
}

}  // namespace
}  // namespace l2s::cluster
