#include <gtest/gtest.h>

#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/des/resource.hpp"

namespace l2s::des {
namespace {

TEST(Resource, ServesFifo) {
  Scheduler s;
  Resource r(s, "cpu");
  std::vector<int> order;
  r.submit(10, [&] { order.push_back(1); });
  r.submit(10, [&] { order.push_back(2); });
  r.submit(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Resource, QueueingDelaysLaterJobs) {
  Scheduler s;
  Resource r(s, "disk");
  SimTime first = 0;
  SimTime second = 0;
  r.submit(100, [&] { first = s.now(); });
  r.submit(100, [&] { second = s.now(); });
  s.run();
  EXPECT_EQ(first, 100);
  EXPECT_EQ(second, 200);
}

TEST(Resource, TracksBusyTimeAndJobs) {
  Scheduler s;
  Resource r(s, "x");
  r.submit(30, [] {});
  r.submit(20, [] {});
  s.run();
  EXPECT_EQ(r.busy_time(), 50);
  EXPECT_EQ(r.jobs_completed(), 2u);
}

TEST(Resource, UtilizationFraction) {
  Scheduler s;
  Resource r(s, "x");
  r.submit(25, [] {});
  s.run();
  s.run_until(100);
  EXPECT_DOUBLE_EQ(r.utilization(100), 0.25);
  EXPECT_DOUBLE_EQ(r.utilization(0), 0.0);
}

TEST(Resource, IdleBetweenBursts) {
  Scheduler s;
  Resource r(s, "x");
  r.submit(10, [] {});
  s.run();
  EXPECT_FALSE(r.busy());
  // A job submitted later starts immediately (no phantom queueing).
  s.run_until(100);
  SimTime done_at = 0;
  r.submit(5, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 105);
}

TEST(Resource, CompletionMayResubmit) {
  Scheduler s;
  Resource r(s, "x");
  int rounds = 0;
  std::function<void()> again = [&] {
    if (++rounds < 5) r.submit(10, again);
  };
  r.submit(10, again);
  s.run();
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(Resource, ZeroServiceTimeJobs) {
  Scheduler s;
  Resource r(s, "x");
  int done = 0;
  r.submit(0, [&] { ++done; });
  r.submit(0, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(s.now(), 0);
}

TEST(Resource, NegativeServiceRejected) {
  Scheduler s;
  Resource r(s, "x");
  EXPECT_THROW(r.submit(-1, [] {}), l2s::Error);
}

TEST(Resource, ResetStatsKeepsQueue) {
  Scheduler s;
  Resource r(s, "x");
  r.submit(10, [] {});
  s.run();
  r.reset_stats();
  EXPECT_EQ(r.busy_time(), 0);
  EXPECT_EQ(r.jobs_completed(), 0u);
  r.submit(10, [] {});
  s.run();
  EXPECT_EQ(r.busy_time(), 10);
}

TEST(Resource, QueueLengthReflectsWaiters) {
  Scheduler s;
  Resource r(s, "x");
  r.submit(10, [] {});
  r.submit(10, [] {});
  r.submit(10, [] {});
  // One in service, two waiting.
  EXPECT_TRUE(r.busy());
  EXPECT_EQ(r.queue_length(), 2u);
  s.run();
  EXPECT_EQ(r.queue_length(), 0u);
}

}  // namespace
}  // namespace l2s::des
