// Suite for the hierarchical hybrid solver and its run_model integration.
#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/analytic/hierarchical.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/spec.hpp"
#include "l2sim/model/cluster_model.hpp"

namespace l2s::analytic {
namespace {

HierarchicalParams paper_like_params() {
  HierarchicalParams p;
  p.model.nodes = 8;
  p.model.replication = 0.15;
  p.model.cache_bytes = 8 * kMiB;  // ~683 files per node (8192 KiB / 12 KB)
  p.model.alpha = 0.9;
  p.workload.files = 200000;  // catalogue far larger than the combined cache
  p.workload.avg_file_kb = 12.0;
  p.workload.avg_request_kb = 8.0;
  p.workload.alpha = 0.9;
  return p;
}

// Stationary arrivals close the fixed point in a single pass, and the
// reported throughput must be self-consistent with the queueing level
// re-evaluated at the reported (H, Q).
TEST(AnalyticHierarchical, StationarySelfConsistent) {
  const HierarchicalParams p = paper_like_params();
  const HierarchicalResult r = solve_hierarchical(p);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_FALSE(r.transient_active);
  EXPECT_GT(r.hit_rate, 0.0);
  EXPECT_LT(r.hit_rate, 1.0);
  ASSERT_EQ(r.per_node_hit.size(), 8u);
  EXPECT_FALSE(r.bottleneck.empty());

  const model::ClusterModel queueing(p.model);
  const model::ServerEval eval = queueing.evaluate(
      r.hit_rate, r.forwarded_fraction, p.workload.avg_request_kb,
      p.workload.avg_request_kb);
  EXPECT_DOUBLE_EQ(r.max_throughput_rps, eval.throughput);
  EXPECT_EQ(r.bottleneck, eval.bottleneck);
  EXPECT_DOUBLE_EQ(r.served_rate_rps, r.max_throughput_rps);  // saturation
  EXPECT_DOUBLE_EQ(r.mean_response_seconds, 0.0);
}

TEST(AnalyticHierarchical, ConsciousOutperformsOblivious) {
  HierarchicalParams p = paper_like_params();
  const HierarchicalResult conscious = solve_hierarchical(p);
  p.conscious = false;
  const HierarchicalResult oblivious = solve_hierarchical(p);
  EXPECT_GT(conscious.hit_rate, oblivious.hit_rate);
  EXPECT_GT(conscious.max_throughput_rps, oblivious.max_throughput_rps);
  EXPECT_DOUBLE_EQ(oblivious.forwarded_fraction, 0.0);
}

// Below saturation the solver reports the offered rate as served and a
// positive Jackson mean response; above it, the bottleneck clips.
TEST(AnalyticHierarchical, OfferedRateRegimes) {
  HierarchicalParams p = paper_like_params();
  const double saturation = solve_hierarchical(p).max_throughput_rps;

  p.offered_rate_rps = 0.5 * saturation;
  const HierarchicalResult below = solve_hierarchical(p);
  EXPECT_DOUBLE_EQ(below.served_rate_rps, p.offered_rate_rps);
  EXPECT_GT(below.mean_response_seconds, 0.0);

  p.offered_rate_rps = 2.0 * saturation;
  const HierarchicalResult above = solve_hierarchical(p);
  EXPECT_NEAR(above.served_rate_rps, saturation, 1e-6 * saturation);
  EXPECT_DOUBLE_EQ(above.mean_response_seconds, 0.0);
}

// Churn activates the transient level and costs hit rate.
TEST(AnalyticHierarchical, ChurnLowersHitRate) {
  HierarchicalParams p = paper_like_params();
  p.offered_rate_rps = 500.0;
  const HierarchicalResult stationary = solve_hierarchical(p);

  p.arrival.open_loop_rate = 500.0;
  p.arrival.churn_period_seconds = 5.0;
  p.arrival.churn_stride = 40000;  // rotate 20% of the catalogue per epoch
  p.horizon_seconds = 30.0;
  p.transient_samples = 24;
  const HierarchicalResult churned = solve_hierarchical(p);
  EXPECT_TRUE(churned.transient_active);
  EXPECT_FALSE(churned.transient.points.empty());
  EXPECT_LT(churned.hit_rate, stationary.hit_rate);
  EXPECT_GE(churned.iterations, 1);
}

TEST(AnalyticHierarchical, ValidatesWorkload) {
  HierarchicalParams p = paper_like_params();
  p.workload.files = 0;
  EXPECT_THROW((void)solve_hierarchical(p), Error);
  p = paper_like_params();
  p.workload.avg_request_kb = 0.0;
  EXPECT_THROW((void)solve_hierarchical(p), Error);
  p = paper_like_params();
  p.workload.alpha = 0.0;
  EXPECT_THROW((void)solve_hierarchical(p), Error);
}

core::ExperimentSpec small_spec() {
  trace::SyntheticSpec synth;
  synth.name = "analytic-spec";
  synth.files = 500;
  synth.avg_file_kb = 8.0;
  synth.requests = 4000;
  synth.avg_request_kb = 6.0;
  synth.alpha = 0.9;
  synth.seed = 7;
  core::ExperimentSpec spec;
  spec.name = "analytic-spec";
  spec.trace = core::TraceSpec::synth(synth);
  spec.sim.nodes = 4;
  spec.sim.node.cache_bytes = 1 * kMiB;
  return spec;
}

// run_model with spec.analytic.cache: per-node hit rates and a bottleneck
// from the spec alone — no measured axis anywhere.
TEST(AnalyticRunModel, AnalyticCachePathPopulatesEverything) {
  core::ExperimentSpec spec = small_spec();
  spec.analytic.cache = true;
  const core::ModelResult r = core::run_model(spec);
  EXPECT_TRUE(r.analytic);
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_GT(r.hit_rate, 0.0);
  EXPECT_LE(r.hit_rate, 1.0);
  ASSERT_EQ(r.per_node_hit.size(), 4u);
  EXPECT_FALSE(r.bottleneck.empty());
  EXPECT_GE(r.iterations, 1);

  // The legacy path on the same spec answers the same question with the
  // z(n, F) step function; the two engines must be in the same ballpark.
  spec.analytic.cache = false;
  const core::ModelResult legacy = core::run_model(spec);
  EXPECT_FALSE(legacy.analytic);
  EXPECT_TRUE(legacy.per_node_hit.empty());
  EXPECT_NEAR(r.hit_rate, legacy.hit_rate, 0.15);
}

// kTraditional maps to the oblivious split: lower hit rate than the
// conscious policies on the same spec.
TEST(AnalyticRunModel, PolicySelectsCacheSplit) {
  core::ExperimentSpec spec = small_spec();
  spec.analytic.cache = true;
  spec.policy = core::PolicyKind::kL2s;
  const core::ModelResult conscious = core::run_model(spec);
  spec.policy = core::PolicyKind::kTraditional;
  const core::ModelResult oblivious = core::run_model(spec);
  EXPECT_GT(conscious.hit_rate, oblivious.hit_rate);
  EXPECT_DOUBLE_EQ(oblivious.forwarded_fraction, 0.0);
}

// The analytic model only covers the paper's single-switch topology;
// rack-aware or fat-tree specs must be rejected with a clear error on
// both run_model paths.
TEST(AnalyticRunModel, RejectsNonSingleSwitchTopology) {
  core::ExperimentSpec spec = small_spec();
  spec.sim.topology.kind = net::TopologyKind::kRackAware;
  EXPECT_THROW((void)core::run_model(spec), Error);
  spec.analytic.cache = true;
  EXPECT_THROW((void)core::run_model(spec), Error);
  spec.sim.topology.kind = net::TopologyKind::kFatTree;
  EXPECT_THROW((void)core::run_model(spec), Error);
}

}  // namespace
}  // namespace l2s::analytic
