// TimelineProbe and the engine bridge: probe series riding the load
// sampler, registry counters agreeing with SimResult, and the null-object
// guarantee when telemetry is disabled.
#include <gtest/gtest.h>

#include <memory>

#include "l2sim/core/simulation.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/telemetry/probe.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::telemetry {
namespace {

TEST(TimelineProbe, RecordsPerNodeSeriesAndDifferentiatesUtilization) {
  Registry reg;
  TimelineProbe probe(reg, 2);
  probe.begin(0);

  ClusterSample first;
  first.now = seconds_to_simtime(1.0);
  first.nodes.resize(2);
  first.nodes[0].open_connections = 3;
  first.nodes[0].cpu_queue = 5;
  first.nodes[0].cpu_busy = seconds_to_simtime(0.5);  // 50% busy over 1 s
  first.nodes[1].cache_used = 1024;
  first.via_in_flight = 2;
  probe.record(first);

  ClusterSample second = first;
  second.now = seconds_to_simtime(2.0);
  second.nodes[0].cpu_busy = seconds_to_simtime(1.5);  // fully busy window
  second.nodes[0].cpu_queue = 1;
  probe.record(second);

  const auto& util = reg.sample_series("node.cpu_utilization", {{"node", "0"}}).points();
  ASSERT_EQ(util.size(), 2u);
  EXPECT_NEAR(util[0].second, 0.5, 1e-12);
  EXPECT_NEAR(util[1].second, 1.0, 1e-12);  // differentiated, not cumulative

  EXPECT_EQ(reg.sample_series("node.cpu_queue", {{"node", "0"}}).points().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("node.peak_cpu_queue", {{"node", "0"}}).max(), 5.0);
  EXPECT_DOUBLE_EQ(
      reg.sample_series("node.cache_used_bytes", {{"node", "1"}}).points()[0].second,
      1024.0);
  EXPECT_DOUBLE_EQ(reg.sample_series("via.in_flight").points()[0].second, 2.0);
}

// --- end-to-end -----------------------------------------------------------

trace::Trace workload() {
  trace::SyntheticSpec spec;
  spec.name = "probe";
  spec.files = 300;
  spec.avg_file_kb = 8.0;
  spec.requests = 6000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 91;
  return trace::generate(spec);
}

TEST(TelemetryProbe, DisabledTelemetryIsNullObject) {
  const auto tr = workload();
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  EXPECT_EQ(sim.telemetry(), nullptr);
  const auto r = sim.run();
  EXPECT_EQ(r.telemetry, nullptr);
}

TEST(TelemetryProbe, RegistryCountersMatchSimResult) {
  const auto tr = workload();
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);
  const Snapshot& snap = *r.telemetry;
  EXPECT_EQ(snap.nodes, 4);
  EXPECT_EQ(snap.find("requests.completed")->count, r.completed);
  EXPECT_EQ(snap.find("cluster.forwards")->count, r.forwarded);
  EXPECT_EQ(snap.find("requests.failed", {{"reason", "deadline"}})->count,
            r.failed_deadline);
  EXPECT_EQ(snap.find("requests.failed", {{"reason", "retries"}})->count,
            r.failed_retries_exhausted);
  EXPECT_EQ(snap.find("requests.failed", {{"reason", "rejected"}})->count,
            r.failed_rejected);
  EXPECT_EQ(snap.find("requests.response_ms")->count, r.completed);
}

TEST(TelemetryProbe, ProbeSeriesRideTheLoadSampler) {
  const auto tr = workload();
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);

  const auto* cpu_q = r.telemetry->find("node.cpu_queue", {{"node", "0"}});
  ASSERT_NE(cpu_q, nullptr);
  EXPECT_GT(cpu_q->samples.size(), 0u);
  // One sample per node per tick: every node's series has the same length.
  for (int n = 1; n < 4; ++n) {
    const auto* other =
        r.telemetry->find("node.cpu_queue", {{"node", std::to_string(n)}});
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->samples.size(), cpu_q->samples.size());
  }
  // Utilization samples are fractions of the sampling window. The resource
  // credits a service's busy time when it completes, so a service spanning
  // a window boundary can push one window slightly past 1.0 — allow that,
  // but rule out cumulative (unbounded-growth) accounting.
  const auto* util = r.telemetry->find("node.cpu_utilization", {{"node", "0"}});
  ASSERT_NE(util, nullptr);
  for (const auto& [t, v] : util->samples) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.25);
  }
}

TEST(TelemetryProbe, ProbeOffKeepsMetricsWithoutSeries) {
  const auto tr = workload();
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  cfg.telemetry.probe = false;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);
  EXPECT_EQ(r.telemetry->find("node.cpu_queue", {{"node", "0"}}), nullptr);
  EXPECT_EQ(r.telemetry->find("requests.completed")->count, r.completed);
}

TEST(TelemetryProbe, GoodputSeriesMatchesSimResultTimeline) {
  const auto tr = workload();
  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.telemetry.enabled = true;
  cfg.goodput_interval_seconds = 0.2;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_NE(r.telemetry, nullptr);

  // The telemetry goodput series and the AvailabilityTracker timeline in
  // SimResult::goodput_rps are fed by the same events through the same
  // BucketSeries arithmetic: bucket-for-bucket identical rates.
  const auto* series = r.telemetry->find("goodput.completed");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(r.goodput_rps.empty());
  const double per_bucket_s = simtime_to_seconds(series->series_interval);
  ASSERT_GT(per_bucket_s, 0.0);
  ASSERT_LE(series->series_buckets.size(), r.goodput_rps.size());
  for (std::size_t i = 0; i < series->series_buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(series->series_buckets[i] / per_bucket_s, r.goodput_rps[i]);
  }
  // Trailing goodput buckets (after the last completion) are zero.
  for (std::size_t i = series->series_buckets.size(); i < r.goodput_rps.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.goodput_rps[i], 0.0);
  }
}

}  // namespace
}  // namespace l2s::telemetry
