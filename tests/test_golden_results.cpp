// Golden-digest regression net for the simulation engine.
//
// Every cell of a {policy × arrival mode × persistent mode × fault plan}
// matrix is run on a small synthetic trace and the *entire* SimResult is
// folded into a 64-bit digest (counts and doubles alike, bit-for-bit).
// The digests recorded below pin the engine's behaviour: any refactor
// that reorders a single event or RNG draw changes at least one digest.
//
// Regenerating (only legitimate after an *intentional* behaviour change):
//   L2SIM_GOLDEN_PRINT=1 ./build/tests/l2sim_tests
//       --gtest_filter='GoldenResults.*' 2>&1 | grep GOLDEN
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/obs/decision.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

// The digest itself lives in core (metrics.cpp) so the parallel-DES bench
// gates on exactly the fold this suite pins.
std::string digest_hex(const SimResult& r) { return result_digest_hex(r); }

trace::Trace golden_trace() {
  trace::SyntheticSpec spec;
  spec.name = "golden";
  spec.files = 250;
  spec.avg_file_kb = 8.0;
  spec.requests = 3000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 2024;
  return trace::generate(spec);
}

struct Cell {
  std::string name;
  SimConfig cfg;
  PolicyKind kind;
};

std::vector<Cell> matrix() {
  struct Policy {
    const char* tag;
    PolicyKind kind;
  };
  struct Persist {
    const char* tag;
    double rpc;
    PersistentMode mode;
  };
  const std::vector<Policy> policies = {{"trad", PolicyKind::kTraditional},
                                        {"lard", PolicyKind::kLard},
                                        {"l2s", PolicyKind::kL2s}};
  const std::vector<Persist> persists = {
      {"http10", 1.0, PersistentMode::kConnectionHandoff},
      {"handoff", 4.0, PersistentMode::kConnectionHandoff},
      {"backend", 4.0, PersistentMode::kBackendForwarding}};

  std::vector<Cell> cells;
  for (const auto& p : policies) {
    for (const bool open_loop : {false, true}) {
      for (const auto& ps : persists) {
        for (const bool crash : {false, true}) {
          Cell c;
          c.kind = p.kind;
          c.name = std::string(p.tag) + (open_loop ? "|open" : "|replay") + "|" +
                   ps.tag + (crash ? "|crash" : "|nofault");
          c.cfg.nodes = 4;
          c.cfg.node.cache_bytes = 2 * kMiB;
          if (open_loop) c.cfg.arrival.open_loop_rate = 1500.0;
          c.cfg.persistence.mean_requests_per_connection = ps.rpc;
          c.cfg.persistence.mode = ps.mode;
          if (crash) c.cfg.fault_plan.crashes.push_back({1, 0.15});
          cells.push_back(std::move(c));
        }
      }
    }
  }
  return cells;
}

// Recorded on the reference traces at the pre-decomposition engine; the
// composable-engine refactor must reproduce every digest bit-for-bit.
const std::vector<std::pair<std::string, std::string>> kGolden = {
    {"trad|replay|http10|nofault", "26956899c12ac828"},
    {"trad|replay|http10|crash", "efba2e5fa87eea78"},
    {"trad|replay|handoff|nofault", "f81a1d14a59747f6"},
    {"trad|replay|handoff|crash", "83fefe0734008b30"},
    {"trad|replay|backend|nofault", "f81a1d14a59747f6"},
    {"trad|replay|backend|crash", "83fefe0734008b30"},
    {"trad|open|http10|nofault", "64692821822ca713"},
    {"trad|open|http10|crash", "de36d8fdcb525382"},
    {"trad|open|handoff|nofault", "0aff25d563e59686"},
    {"trad|open|handoff|crash", "6bbd63f1b01cc30c"},
    {"trad|open|backend|nofault", "0aff25d563e59686"},
    {"trad|open|backend|crash", "6bbd63f1b01cc30c"},
    {"lard|replay|http10|nofault", "f260cf8e585ce35d"},
    {"lard|replay|http10|crash", "4e03e6a28c5c157a"},
    {"lard|replay|handoff|nofault", "7158bb95f269170c"},
    {"lard|replay|handoff|crash", "1369ca764222e133"},
    {"lard|replay|backend|nofault", "ba8e033be958a791"},
    {"lard|replay|backend|crash", "75084301f10128a4"},
    {"lard|open|http10|nofault", "ae5839e116754fdb"},
    {"lard|open|http10|crash", "9c93baf4665e1f39"},
    {"lard|open|handoff|nofault", "aacd8b3c52df1d2a"},
    {"lard|open|handoff|crash", "55bbaee8543f1214"},
    {"lard|open|backend|nofault", "6c51fc7b6aee5c5d"},
    {"lard|open|backend|crash", "abfcc60e8b75e0fe"},
    {"l2s|replay|http10|nofault", "7036a8bb0c04280c"},
    {"l2s|replay|http10|crash", "5fe77a03b966f3bc"},
    {"l2s|replay|handoff|nofault", "3d1d4e63ad6ed5b5"},
    {"l2s|replay|handoff|crash", "14cab32fbc92c810"},
    {"l2s|replay|backend|nofault", "1b6aa2ad71b06810"},
    {"l2s|replay|backend|crash", "1ba89f36fe76722a"},
    {"l2s|open|http10|nofault", "2bd5717c9dad4a74"},
    {"l2s|open|http10|crash", "b363c69209b5bb58"},
    {"l2s|open|handoff|nofault", "c1c9bfbdd6de4b26"},
    {"l2s|open|handoff|crash", "00b6c1ec9970cdb4"},
    {"l2s|open|backend|nofault", "26ed63791d3de095"},
    {"l2s|open|backend|crash", "ea5fdae4ee70c638"},
};

TEST(GoldenResults, MatrixMatchesRecordedDigests) {
  const auto tr = golden_trace();
  const auto cells = matrix();
  const bool print = std::getenv("L2SIM_GOLDEN_PRINT") != nullptr;

  std::vector<std::pair<std::string, std::string>> got;
  for (const auto& c : cells) {
    const auto r = run_once(tr, c.cfg, c.kind);
    got.emplace_back(c.name, digest_hex(r));
  }
  if (print) {
    for (const auto& [name, d] : got)
      std::printf("GOLDEN    {\"%s\", \"%s\"},\n", name.c_str(), d.c_str());
    return;
  }
  ASSERT_EQ(got.size(), kGolden.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, kGolden[i].first);
    EXPECT_EQ(got[i].second, kGolden[i].second) << got[i].first;
  }
}

TEST(GoldenResults, DefaultOverloadConfigIsDigestInert) {
  // The overload-resilience layer (SimConfig::overload, arrival shapes,
  // churn) must be invisible when off: an explicitly default-constructed
  // OverloadConfig and stationary arrival shape reproduce every recorded
  // digest bit-for-bit. This is the contract that lets the resilience
  // subsystem ride inside the engine rather than beside it.
  ASSERT_FALSE(OverloadConfig{}.any_on());
  const auto tr = golden_trace();
  const auto cells = matrix();
  ASSERT_EQ(cells.size(), kGolden.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SimConfig cfg = cells[i].cfg;
    cfg.overload = OverloadConfig{};
    cfg.arrival.shape = ArrivalShape::kStationary;
    cfg.arrival.churn_period_seconds = 0.0;
    const auto r = run_once(tr, cfg, cells[i].kind);
    EXPECT_EQ(digest_hex(r), kGolden[i].second) << kGolden[i].first;
    EXPECT_EQ(r.failed_shed, 0u);
    EXPECT_EQ(r.hedge_attempts, 0u);
    EXPECT_EQ(r.brownout_transitions, 0u);
  }
}

TEST(GoldenResults, TelemetrySamplingDoesNotPerturbDigests) {
  // Telemetry is a passive observer: it schedules no events and draws no
  // random numbers, so enabling it — span capture, probe, registry and all
  // — must leave every digested quantity bit-for-bit unchanged. Exercised
  // on the densest cells (crash + goodput timeline, both arrival modes).
  const auto tr = golden_trace();
  for (const bool open_loop : {false, true}) {
    Cell c;
    c.kind = PolicyKind::kL2s;
    c.cfg.nodes = 4;
    c.cfg.node.cache_bytes = 2 * kMiB;
    if (open_loop) c.cfg.arrival.open_loop_rate = 1500.0;
    c.cfg.persistence.mean_requests_per_connection = 4.0;
    c.cfg.fault_plan.crashes.push_back({1, 0.15});
    c.cfg.goodput_interval_seconds = 0.1;
    const auto plain = run_once(tr, c.cfg, c.kind);

    SimConfig instrumented = c.cfg;
    instrumented.telemetry.enabled = true;
    instrumented.telemetry.span_sample_every = 1;  // record *every* span
    instrumented.telemetry.span_capacity = 1 << 14;
    const auto traced = run_once(tr, instrumented, c.kind);

    EXPECT_EQ(digest_hex(plain), digest_hex(traced))
        << (open_loop ? "open" : "replay");
    ASSERT_NE(traced.telemetry, nullptr);
    EXPECT_GT(traced.telemetry->spans.size(), 0u);
    EXPECT_EQ(plain.telemetry, nullptr);
  }
}

TEST(GoldenResults, FlightRecorderDoesNotPerturbDigests) {
  // The flight recorder is the same kind of passive tap as telemetry: it
  // rides the lifecycle fan-out, schedules zero events and draws no
  // randomness. Turning it on (warm-up included, generous ring) must
  // reproduce every one of the 36 pinned digests bit-for-bit — the
  // recorder-off bit-identity contract of the observability subsystem.
  // (SimResult::decisions is a shared_ptr deliberately excluded from
  // result_digest, like result.telemetry.)
  const auto tr = golden_trace();
  const auto cells = matrix();
  ASSERT_EQ(cells.size(), kGolden.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SimConfig cfg = cells[i].cfg;
    cfg.obs.enabled = true;
    cfg.obs.capacity = 0;  // unbounded: retention must not matter either
    const auto r = run_once(tr, cfg, cells[i].kind);
    EXPECT_EQ(digest_hex(r), kGolden[i].second) << kGolden[i].first;
    ASSERT_NE(r.decisions, nullptr) << kGolden[i].first;
    EXPECT_GT(r.decisions->recorded, 0u) << kGolden[i].first;
  }
}

TEST(GoldenResults, ShardedEngineMatchesSerialDigests) {
  // The sharded engine (engine.shards != 0) partitions each cell's nodes
  // across per-shard heaps and drains them in sequential-merge order; it
  // must reproduce the serial engine's pinned digest on EVERY golden cell
  // for one shard, two shards, and the auto (thread-budget) shard count.
  // These runs pin the sharded engine to the same goldens as serial, so a
  // partitioning or merge-order bug in the engine restructuring cannot
  // hide behind "serial still passes".
  const auto tr = golden_trace();
  const auto cells = matrix();
  for (const auto& c : cells) {
    const std::string expected = digest_hex(run_once(tr, c.cfg, c.kind));
    for (const int shards : {1, 2, EngineConfig::kAutoShards}) {
      SimConfig cfg = c.cfg;
      cfg.engine.shards = shards;
      const auto r = run_once(tr, cfg, c.kind);
      EXPECT_EQ(expected, digest_hex(r))
          << c.name << " shards=" << shards;
    }
  }
}

TEST(GoldenResults, RunParallelIsBitIdenticalToSerial) {
  const auto tr = golden_trace();
  const auto cells = matrix();

  std::vector<SimJob> jobs;
  for (const auto& c : cells) {
    SimJob j;
    j.trace = &tr;
    j.sim = c.cfg;
    j.kind = c.kind;
    jobs.push_back(std::move(j));
  }
  const auto parallel = run_parallel(jobs);
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto serial = run_once(tr, cells[i].cfg, cells[i].kind);
    EXPECT_EQ(digest_hex(serial), digest_hex(parallel[i])) << cells[i].name;
  }
}

}  // namespace
}  // namespace l2s::core
