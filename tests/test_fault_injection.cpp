// Fault-injection behaviour: crash/recover lifecycle invariants, heartbeat
// detection, LARD front-end failover, client retries and deadlines under
// message loss, fail-slow degradation, and the VIA fault-layer accounting.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <utility>

#include "l2sim/core/simulation.hpp"
#include "l2sim/fault/detector.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace workload(std::uint64_t requests = 20000) {
  trace::SyntheticSpec spec;
  spec.name = "fault";
  spec.files = 400;
  spec.avg_file_kb = 8.0;
  spec.requests = requests;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 31;
  return trace::generate(spec);
}

SimConfig base(int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 4 * kMiB;
  return cfg;
}

void expect_bucket_invariant(const SimResult& r, std::uint64_t request_count) {
  EXPECT_EQ(r.completed + r.failed, request_count);
  EXPECT_EQ(r.failed, r.failed_deadline + r.failed_retries_exhausted +
                          r.failed_rejected + r.failed_shed);
}

// --- node restart semantics ----------------------------------------------

TEST(FaultInjection, NodeRestartIsColdAndCountsANewEpoch) {
  des::Scheduler sched;
  cluster::NodeParams params;
  params.cache_bytes = 1 * kMiB;
  cluster::Node n(sched, 0, params);
  n.file_cache().insert(7, 1000);
  n.connection_opened();
  ASSERT_TRUE(n.alive());
  ASSERT_EQ(n.epoch(), 0);

  n.fail();
  EXPECT_FALSE(n.alive());

  n.recover();
  EXPECT_TRUE(n.alive());
  EXPECT_EQ(n.epoch(), 1);
  EXPECT_EQ(n.open_connections(), 0);           // the crash orphaned the count
  EXPECT_FALSE(n.file_cache().contains(7));     // main memory did not survive
}

// --- VIA fault layer (unit) ----------------------------------------------

struct ScriptedFaults final : net::LinkFaultModel {
  net::LinkFault next;
  net::LinkFault on_message(int, int) override { return next; }
};

struct ViaFixture {
  des::Scheduler sched;
  net::NetParams params;
  net::SingleSwitch fabric{sched, params, 64};
  net::ViaNetwork via{sched, fabric, params};
  std::vector<std::unique_ptr<des::Resource>> cpus;
  std::vector<std::unique_ptr<net::Nic>> nics;

  explicit ViaFixture(int nodes) {
    for (int i = 0; i < nodes; ++i) {
      cpus.push_back(std::make_unique<des::Resource>(sched, "cpu" + std::to_string(i)));
      nics.push_back(std::make_unique<net::Nic>(sched, "node" + std::to_string(i)));
      via.add_endpoint({cpus.back().get(), nics.back().get()});
    }
  }
};

TEST(FaultInjection, DroppedMessageNeverDeliversAndIsCounted) {
  ViaFixture f(2);
  ScriptedFaults faults;
  faults.next.drop = true;
  f.via.set_fault_model(&faults);
  int delivered = 0;
  f.via.send(0, 1, 16, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(f.via.messages_dropped(), 1u);
  EXPECT_EQ(f.via.messages_sent(), 1u);  // the bytes left the sender
}

TEST(FaultInjection, DuplicateDeliversHandlerExactlyOnce) {
  ViaFixture f(2);
  ScriptedFaults faults;
  faults.next.duplicate = true;
  f.via.set_fault_model(&faults);
  int delivered = 0;
  f.via.send(0, 1, 16, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);  // the copy burns NIC time but is suppressed
  EXPECT_EQ(f.via.messages_duplicated(), 1u);
}

TEST(FaultInjection, ExtraDelayPostponesDelivery) {
  ViaFixture healthy(2);
  SimTime base_arrival = 0;
  healthy.via.send(0, 1, 16, [&] { base_arrival = healthy.sched.now(); });
  healthy.sched.run();

  ViaFixture f(2);
  ScriptedFaults faults;
  faults.next.extra_delay = seconds_to_simtime(0.003);
  f.via.set_fault_model(&faults);
  SimTime arrival = 0;
  f.via.send(0, 1, 16, [&] { arrival = f.sched.now(); });
  f.sched.run();
  EXPECT_EQ(f.via.messages_delayed(), 1u);
  EXPECT_EQ(arrival - base_arrival, seconds_to_simtime(0.003));
}

TEST(FaultInjection, ResetStatsClearsTheFaultCountersToo) {
  // Regression: reset_stats() used to clear only messages_, so warm-up
  // faults would bleed into measured statistics.
  ViaFixture f(2);
  ScriptedFaults faults;
  faults.next.drop = true;
  f.via.set_fault_model(&faults);
  f.via.send(0, 1, 16, [] {});
  f.sched.run();
  faults.next = {};
  faults.next.duplicate = true;
  faults.next.extra_delay = seconds_to_simtime(0.001);
  f.via.send(0, 1, 16, [] {});
  f.sched.run();
  ASSERT_GT(f.via.messages_dropped() + f.via.messages_duplicated() +
                f.via.messages_delayed(),
            0u);
  f.via.reset_stats();
  EXPECT_EQ(f.via.messages_sent(), 0u);
  EXPECT_EQ(f.via.messages_dropped(), 0u);
  EXPECT_EQ(f.via.messages_duplicated(), 0u);
  EXPECT_EQ(f.via.messages_delayed(), 0u);
}

// --- crash / recover integration -----------------------------------------

TEST(FaultInjection, CrashThenRecoverServesTheWholeTail) {
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.crashes.push_back({3, 0.2});
  cfg.fault_plan.recoveries.push_back({3, 0.6});
  cfg.failure_detection_seconds = 0.1;  // detect well before the restart
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  EXPECT_GT(r.failed, 0u);  // in-flight work died with the node
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.95);
  EXPECT_GT(r.detection_latency_ms, 0.0);
  EXPECT_GT(r.time_to_recover_ms, 0.0);
  EXPECT_EQ(sim.node(3).epoch(), 1);  // exactly one restart happened
  EXPECT_TRUE(sim.node(3).alive());
}

TEST(FaultInjection, RecoveredNodeComesBackCold) {
  const auto tr = workload();
  ClusterSimulation healthy_sim(base(8), tr, std::make_unique<policy::L2sPolicy>());
  const auto healthy = healthy_sim.run();

  auto cfg = base(8);
  cfg.fault_plan.crashes.push_back({3, 0.2});
  cfg.fault_plan.recoveries.push_back({3, 0.5});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  // The restarted node re-faults everything it serves: strictly more
  // misses than the uninterrupted run.
  EXPECT_LT(r.hit_rate, healthy.hit_rate);
}

TEST(FaultInjection, HeartbeatsDetectAndReadmit) {
  const auto tr = workload();
  auto cfg = base(4);
  cfg.fault_plan.crashes.push_back({1, 0.2});
  cfg.fault_plan.recoveries.push_back({1, 0.5});
  cfg.detection.heartbeats = true;
  cfg.detection.period_seconds = 0.02;
  cfg.detection.suspect_after_missed = 3;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  EXPECT_GT(r.heartbeats, 0u);
  // Suspicion needs K silent periods; the monitor sweeps once per period,
  // and heartbeats queue behind real work, so detection lands near the
  // 60 ms suspicion window — well inside an order of magnitude.
  EXPECT_GE(r.detection_latency_ms, 0.02 * 1000.0);
  EXPECT_LE(r.detection_latency_ms, 250.0);
  // Readmission: the restarted node's next heartbeat round brings it back.
  EXPECT_GT(r.time_to_recover_ms, 0.0);
  EXPECT_LE(r.time_to_recover_ms, 200.0);
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.9);
}

// A link whose loss pattern flaps: heartbeats from node 1 vanish during an
// outage window except for one lucky beat in the middle. Time-driven, not
// random, so the flap count is exact.
struct FlappyLink final : net::LinkFaultModel {
  des::Scheduler& sched;
  explicit FlappyLink(des::Scheduler& s) : sched(s) {}
  net::LinkFault on_message(int src, int /*dst*/) override {
    net::LinkFault f;
    if (src != 1) return f;
    const double now = simtime_to_seconds(sched.now());
    const bool lucky = now >= 0.44 && now <= 0.46;  // the 0.45 s beat survives
    f.drop = now >= 0.21 && now <= 0.699 && !lucky;
    return f;
  }
};

/// Drive the detector over the flapping link and count node 1's suspect /
/// readmit notifications.
std::pair<int, int> run_flappy_detector(int readmit_after_fresh) {
  des::Scheduler sched;
  net::NetParams params;
  net::SingleSwitch fabric{sched, params, 64};
  net::ViaNetwork via{sched, fabric, params};
  cluster::NodeParams node_params;
  node_params.cache_bytes = 1 * kMiB;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::vector<cluster::Node*> node_ptrs;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<cluster::Node>(sched, i, node_params));
    via.add_endpoint({&nodes.back()->cpu(), &nodes.back()->nic()});
    node_ptrs.push_back(nodes.back().get());
  }
  FlappyLink link(sched);
  via.set_fault_model(&link);

  fault::DetectionParams det;
  det.heartbeats = true;
  det.period_seconds = 0.05;
  det.suspect_after_missed = 3;
  det.readmit_after_fresh = readmit_after_fresh;
  fault::FailureDetector detector(sched, via, node_ptrs, det, 16);
  int suspects = 0;
  int readmits = 0;
  detector.start([&] { return sched.now() < seconds_to_simtime(1.0); },
                 [&](int node, SimTime) { suspects += node == 1 ? 1 : 0; },
                 [&](int node, SimTime) { readmits += node == 1 ? 1 : 0; });
  sched.run();
  return {suspects, readmits};
}

TEST(FaultInjection, ReadmitHysteresisDampsFlapping) {
  // Legacy readmit-on-first-fresh-sweep: the lucky 0.45 s heartbeat
  // readmits the node mid-outage, which then gets suspected again when the
  // loss resumes — the node flaps in and out of the cluster.
  const auto [legacy_suspects, legacy_readmits] = run_flappy_detector(1);
  EXPECT_EQ(legacy_suspects, 2);
  EXPECT_EQ(legacy_readmits, 2);

  // With a 4-sweep streak requirement the lone heartbeat buys only 3 fresh
  // sweeps (the suspicion window spans 3 periods) before the loss resumes
  // and resets the streak: one suspicion, one readmission, no flapping.
  const auto [damped_suspects, damped_readmits] = run_flappy_detector(4);
  EXPECT_EQ(damped_suspects, 1);
  EXPECT_EQ(damped_readmits, 1);
}

// --- LARD warm-spare failover --------------------------------------------

TEST(FaultInjection, LardFrontEndFailoverConvertsSpofIntoAWindow) {
  const auto tr = workload();

  auto cfg = base(8);
  cfg.fault_plan.crashes.push_back({policy::LardPolicy::front_end(), 0.2});
  cfg.failure_detection_seconds = 0.1;

  ClusterSimulation doomed(cfg, tr, std::make_unique<policy::LardPolicy>());
  const auto without = doomed.run();
  EXPECT_GT(without.failed, tr.request_count() / 2);  // the paper's SPOF

  policy::LardParams params;
  params.front_end_failover = true;
  auto policy = std::make_unique<policy::LardPolicy>(params);
  const auto* lard = policy.get();
  ClusterSimulation sim(cfg, tr, std::move(policy));
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  // Only the detection window is lost; the promoted back-end carries on.
  EXPECT_GT(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.8);
  EXPECT_LT(r.failed, without.failed / 4);
  EXPECT_NE(lard->current_front_end(), policy::LardPolicy::front_end());
  EXPECT_EQ(sim.policy().counters().get("front_end_failover"), 1u);
}

// --- client-side robustness ----------------------------------------------

TEST(FaultInjection, RetriesRecoverRequestsKilledByACrash) {
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.crashes.push_back({3, 0.2});
  cfg.failure_detection_seconds = 0.5;  // long exposure window

  ClusterSimulation failfast(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto without = failfast.run();
  ASSERT_GT(without.failed, 0u);
  EXPECT_EQ(without.retry_attempts, 0u);
  EXPECT_EQ(without.retry_amplification, 1.0);

  auto retry_cfg = cfg;
  retry_cfg.retry.max_retries = 3;
  ClusterSimulation sim(retry_cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  EXPECT_LT(r.failed, without.failed);
  EXPECT_GT(r.completed_after_retry, 0u);
  EXPECT_GT(r.retry_attempts, 0u);
  EXPECT_GT(r.retry_amplification, 1.0);
}

TEST(FaultInjection, OnePercentLossCompletesAlmostEverythingWithRetries) {
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.message_faults.push_back({.loss_prob = 0.01});
  cfg.retry.max_retries = 3;
  // The timeout must clear the saturation-replay queueing delays by a wide
  // margin, or healthy-but-queued attempts get retried into a retry storm.
  cfg.retry.attempt_timeout_seconds = 0.5;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  EXPECT_GT(r.via_dropped, 0u);
  EXPECT_GE(static_cast<double>(r.completed) / static_cast<double>(tr.request_count()),
            0.99);
}

TEST(FaultInjection, DeadlineReapsRequestsStrandedByLoss) {
  // Loss with no retries and no attempt timeout: only the per-request
  // deadline keeps stranded hand-offs from holding their slots forever.
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.message_faults.push_back({.loss_prob = 0.05});
  cfg.retry.deadline_seconds = 0.2;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  expect_bucket_invariant(r, tr.request_count());
  EXPECT_GT(r.failed_deadline, 0u);
}

// --- fail-slow and benign message faults ---------------------------------

TEST(FaultInjection, FailSlowCpuDegradesThroughput) {
  const auto tr = workload();
  ClusterSimulation healthy_sim(base(8), tr, std::make_unique<policy::TraditionalPolicy>());
  const auto healthy = healthy_sim.run();

  auto cfg = base(8);
  for (int n = 0; n < 4; ++n)
    cfg.fault_plan.slowdowns.push_back({n, fault::Resource::kCpu, 8.0, 0.0});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_LT(r.throughput_rps, healthy.throughput_rps);
  EXPECT_EQ(r.completed + r.failed, tr.request_count());
}

TEST(FaultInjection, FailSlowWindowEndsAndTheFactorResets) {
  const auto tr = workload(4000);
  auto cfg = base(4);
  cfg.fault_plan.slowdowns.push_back({2, fault::Resource::kCpu, 8.0, 0.0, 0.05});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::TraditionalPolicy>());
  const auto r = sim.run();
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_EQ(sim.node(2).cpu_slow(), 1.0);  // restored when the window closed
}

TEST(FaultInjection, DuplicationAndDelayAreHarmless) {
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.message_faults.push_back(
      {.extra_delay_seconds = 0.001, .duplicate_prob = 0.3});
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  // Not lossy: nothing fails, dedup keeps semantics intact.
  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.via_duplicated, 0u);
  EXPECT_GT(r.via_delayed, 0u);
}

// --- goodput timeline ----------------------------------------------------

TEST(FaultInjection, GoodputTimelineAccountsForEveryCompletion) {
  const auto tr = workload();
  auto cfg = base(8);
  cfg.fault_plan.crashes.push_back({3, 0.2});
  cfg.goodput_interval_seconds = 0.1;
  ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  const auto r = sim.run();
  ASSERT_FALSE(r.goodput_rps.empty());
  EXPECT_EQ(r.goodput_interval_seconds, 0.1);
  const double total =
      std::accumulate(r.goodput_rps.begin(), r.goodput_rps.end(), 0.0) * 0.1;
  EXPECT_NEAR(total, static_cast<double>(r.completed), 1e-6);
}

}  // namespace
}  // namespace l2s::core
