#include <gtest/gtest.h>

#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/des/resource.hpp"
#include "l2sim/net/via.hpp"

namespace l2s::net {
namespace {

struct ViaFixture {
  des::Scheduler sched;
  NetParams params;
  SingleSwitch fabric{sched, params, 64};
  ViaNetwork via{sched, fabric, params};
  std::vector<std::unique_ptr<des::Resource>> cpus;
  std::vector<std::unique_ptr<Nic>> nics;

  explicit ViaFixture(int nodes) {
    for (int i = 0; i < nodes; ++i) {
      cpus.push_back(std::make_unique<des::Resource>(sched, "cpu" + std::to_string(i)));
      nics.push_back(std::make_unique<Nic>(sched, "node" + std::to_string(i)));
      via.add_endpoint({cpus.back().get(), nics.back().get()});
    }
  }
};

TEST(Via, SendTakes19usOneWayForTinyMessage) {
  ViaFixture f(2);
  SimTime delivered = 0;
  f.via.send(0, 1, 4, [&] { delivered = f.sched.now(); });
  f.sched.run();
  EXPECT_NEAR(simtime_to_seconds(delivered), 19e-6, 0.1e-6);
}

TEST(Via, TransmitSkipsCpuOverheads) {
  ViaFixture f(2);
  SimTime delivered = 0;
  f.via.transmit(0, 1, 4, [&] { delivered = f.sched.now(); });
  f.sched.run();
  // 6us + wire each NIC + 1us switch = ~13us.
  EXPECT_NEAR(simtime_to_seconds(delivered), 13e-6, 0.2e-6);
}

TEST(Via, PayloadAddsTransferTime) {
  ViaFixture f(2);
  SimTime small = 0;
  SimTime large = 0;
  f.via.transmit(0, 1, 4, [&] { small = f.sched.now(); });
  f.sched.run();
  ViaFixture g(2);
  g.via.transmit(0, 1, 125000, [&] { large = g.sched.now(); });
  g.sched.run();
  // 125000 bytes = 1 ms on the wire, paid at both NICs.
  EXPECT_NEAR(simtime_to_seconds(large - small), 2e-3, 1e-5);
}

TEST(Via, BroadcastReachesAllOthers) {
  ViaFixture f(4);
  std::vector<int> arrived;
  f.via.broadcast(1, 16, [&](int dst) { arrived.push_back(dst); });
  f.sched.run();
  std::sort(arrived.begin(), arrived.end());
  EXPECT_EQ(arrived, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(f.via.messages_sent(), 3u);
}

TEST(Via, MessagesShareCpuWithOtherWork) {
  ViaFixture f(2);
  // Occupy the sender's CPU; the VIA send must wait its turn.
  f.cpus[0]->submit(seconds_to_simtime(1e-3), [] {});
  SimTime delivered = 0;
  f.via.send(0, 1, 4, [&] { delivered = f.sched.now(); });
  f.sched.run();
  EXPECT_NEAR(simtime_to_seconds(delivered), 1e-3 + 19e-6, 1e-6);
}

TEST(Via, SelfTransmitRejected) {
  ViaFixture f(2);
  EXPECT_THROW(f.via.transmit(1, 1, 4, [] {}), l2s::Error);
}

TEST(Via, BadEndpointRejected) {
  ViaFixture f(2);
  EXPECT_THROW(f.via.transmit(0, 5, 4, [] {}), l2s::Error);
  EXPECT_THROW(f.via.send(-1, 0, 4, [] {}), l2s::Error);
  EXPECT_THROW(f.via.add_endpoint({nullptr, nullptr}), l2s::Error);
}

TEST(Via, StatsCountAndReset) {
  ViaFixture f(3);
  f.via.send(0, 1, 4, [] {});
  f.via.send(1, 2, 4, [] {});
  f.sched.run();
  EXPECT_EQ(f.via.messages_sent(), 2u);
  f.via.reset_stats();
  EXPECT_EQ(f.via.messages_sent(), 0u);
}

}  // namespace
}  // namespace l2s::net
