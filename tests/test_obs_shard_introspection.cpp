// Sharded-DES introspection: the counters a threaded run collects must
// reconcile exactly with the engine totals (events, posts, windows), the
// simulation-derived fields must be deterministic run-over-run and across
// thread counts, and the telemetry export / text report must surface them
// without touching the scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "l2sim/core/simulation.hpp"
#include "l2sim/des/cluster_workload.hpp"
#include "l2sim/obs/shard_introspection.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::obs {
namespace {

using des::ShardedScheduler;
using des::ShardIntrospection;

des::WorkloadParams small_params() {
  des::WorkloadParams p;
  p.nodes = 32;
  p.requests_per_node = 2;
  p.hops = 16;
  return p;
}

/// Run the shard-confined workload on a fresh engine with introspection on.
std::unique_ptr<ShardedScheduler> introspected_run(ShardedScheduler::Mode mode,
                                                   unsigned threads) {
  const auto p = small_params();
  auto engine = std::make_unique<ShardedScheduler>(4, p.latency, mode);
  engine->enable_introspection();
  const auto result = des::run_cluster_workload_on(p, *engine, threads);
  EXPECT_GT(result.events, 0u);
  return engine;
}

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : v) total += c;
  return total;
}

TEST(ShardIntrospectionTest, ThreadedRunSatisfiesTheCountingInvariants) {
  const auto engine = introspected_run(ShardedScheduler::Mode::kThreaded, 4);
  const ShardIntrospection* intro = engine->introspection();
  ASSERT_NE(intro, nullptr);
  ASSERT_EQ(intro->shards.size(), 4u);
  ASSERT_GT(engine->windows_executed(), 0u);

  std::uint64_t window_events = 0;
  std::uint64_t posted = 0;
  for (std::size_t s = 0; s < intro->shards.size(); ++s) {
    const ShardIntrospection::Shard& row = intro->shards[s];
    window_events += row.window_events;
    posted += row.posted;

    // The message matrix row sums to the shard's post count, and this
    // workload never posts to itself (local hand-offs stay in the heap).
    EXPECT_EQ(sum(row.sent_to), row.posted) << "shard " << s;
    EXPECT_EQ(row.sent_to[s], 0u) << "shard " << s;
    // One occupancy observation per active window; one slack observation
    // per post.
    EXPECT_EQ(sum(row.occupancy_log2), row.active_windows) << "shard " << s;
    EXPECT_EQ(sum(row.slack_log2_us), row.posted) << "shard " << s;
    EXPECT_LE(row.active_windows, engine->windows_executed());

    // The timeline retains every active window up to the cap, floors
    // strictly increasing, event counts summing back to window_events.
    ASSERT_EQ(row.timeline.size(),
              std::min<std::size_t>(row.active_windows, ShardIntrospection::kTimelineCap));
    std::uint64_t timeline_events = 0;
    SimTime prev_floor = -1;
    for (const auto& [floor, events] : row.timeline) {
      EXPECT_GT(floor, prev_floor);
      prev_floor = floor;
      EXPECT_GT(events, 0u);
      timeline_events += events;
    }
    if (row.active_windows <= ShardIntrospection::kTimelineCap) {
      EXPECT_EQ(timeline_events, row.window_events) << "shard " << s;
    }
  }

  // Every event of a threaded run executes inside a window; every post
  // shows up in exactly one shard's row.
  EXPECT_EQ(window_events, engine->events_processed());
  EXPECT_GT(posted, 0u);

  // Worker stall accounting is sized to the pool that actually ran.
  EXPECT_EQ(intro->worker_barrier_seconds.size(), 4u);
  EXPECT_EQ(intro->worker_run_seconds.size(), 4u);
}

TEST(ShardIntrospectionTest, SimulationDerivedFieldsAreDeterministic) {
  // Same workload, different worker counts: window membership is a pure
  // function of the event stream, so everything except wall-clock seconds
  // must match exactly.
  const auto a = introspected_run(ShardedScheduler::Mode::kThreaded, 2);
  const auto b = introspected_run(ShardedScheduler::Mode::kThreaded, 4);
  const ShardIntrospection* ia = a->introspection();
  const ShardIntrospection* ib = b->introspection();
  ASSERT_NE(ia, nullptr);
  ASSERT_NE(ib, nullptr);
  ASSERT_EQ(ia->shards.size(), ib->shards.size());
  EXPECT_EQ(a->windows_executed(), b->windows_executed());
  for (std::size_t s = 0; s < ia->shards.size(); ++s) {
    const ShardIntrospection::Shard& ra = ia->shards[s];
    const ShardIntrospection::Shard& rb = ib->shards[s];
    EXPECT_EQ(ra.window_events, rb.window_events) << "shard " << s;
    EXPECT_EQ(ra.active_windows, rb.active_windows) << "shard " << s;
    EXPECT_EQ(ra.posted, rb.posted) << "shard " << s;
    EXPECT_EQ(ra.sent_to, rb.sent_to) << "shard " << s;
    EXPECT_EQ(ra.occupancy_log2, rb.occupancy_log2) << "shard " << s;
    EXPECT_EQ(ra.slack_log2_us, rb.slack_log2_us) << "shard " << s;
    EXPECT_EQ(ra.timeline, rb.timeline) << "shard " << s;
  }
}

TEST(ShardIntrospectionTest, MergeModeCountsPostsButHasNoWindows) {
  const auto engine = introspected_run(ShardedScheduler::Mode::kSequentialMerge, 0);
  const ShardIntrospection* intro = engine->introspection();
  ASSERT_NE(intro, nullptr);
  EXPECT_EQ(engine->windows_executed(), 0u);

  std::uint64_t posted = 0;
  for (const ShardIntrospection::Shard& row : intro->shards) {
    EXPECT_EQ(row.window_events, 0u);
    EXPECT_EQ(row.active_windows, 0u);
    EXPECT_TRUE(row.timeline.empty());
    EXPECT_EQ(sum(row.occupancy_log2), 0u);
    EXPECT_EQ(sum(row.sent_to), row.posted);
    EXPECT_EQ(sum(row.slack_log2_us), row.posted);
    posted += row.posted;
  }
  EXPECT_GT(posted, 0u);
  EXPECT_EQ(posted, engine->messages_posted());
}

TEST(ShardIntrospectionTest, ExportFillsTheRegistry) {
  const auto engine = introspected_run(ShardedScheduler::Mode::kThreaded, 2);
  const ShardIntrospection* intro = engine->introspection();
  ASSERT_NE(intro, nullptr);

  telemetry::Registry registry;
  export_shard_introspection(registry, *engine);
  const telemetry::Snapshot snap = registry.snapshot();

  std::uint64_t events = 0;
  for (int s = 0; s < engine->shards(); ++s) {
    const telemetry::Labels label = {{"shard", std::to_string(s)}};
    const auto* m = snap.find("shard.window_events", label);
    ASSERT_NE(m, nullptr) << "shard " << s;
    events += m->count;
    ASSERT_NE(snap.find("shard.posted", label), nullptr);
    ASSERT_NE(snap.find("shard.run_seconds", label), nullptr);
  }
  EXPECT_EQ(events, engine->events_processed());

  // The occupancy histogram mirrors the raw log2 buckets one-to-one.
  const ShardIntrospection::Shard& row0 = intro->shards[0];
  const auto* h = snap.find("shard.window_occupancy", {{"shard", "0"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, telemetry::MetricKind::kHistogram);
  EXPECT_EQ(h->count, row0.active_windows);
  ASSERT_GE(h->histogram_buckets.size(), row0.occupancy_log2.size());
  for (std::size_t b = 0; b < row0.occupancy_log2.size(); ++b) {
    EXPECT_EQ(h->histogram_buckets[b], row0.occupancy_log2[b]) << "bucket " << b;
  }

  // The timeline lands as a sample series, point for point.
  const auto* t = snap.find("shard.window_timeline", {{"shard", "0"}});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, telemetry::MetricKind::kSampleSeries);
  ASSERT_EQ(t->samples.size(), row0.timeline.size());
  for (std::size_t i = 0; i < row0.timeline.size(); ++i) {
    EXPECT_EQ(t->samples[i].first, row0.timeline[i].first);
    EXPECT_EQ(t->samples[i].second, static_cast<double>(row0.timeline[i].second));
  }

  ASSERT_NE(snap.find("worker.barrier_seconds", {{"worker", "0"}}), nullptr);
  ASSERT_NE(snap.find("worker.run_seconds", {{"worker", "0"}}), nullptr);
}

TEST(ShardIntrospectionTest, ExportIsANoOpWhenNeverEnabled) {
  ShardedScheduler engine(2, 1000, ShardedScheduler::Mode::kSequentialMerge);
  telemetry::Registry registry;
  export_shard_introspection(registry, engine);
  EXPECT_EQ(registry.metric_count(), 0u);

  std::ostringstream out;
  write_shard_report(out, engine);
  EXPECT_NE(out.str().find("not enabled"), std::string::npos);
}

TEST(ShardIntrospectionTest, ReportRendersShardAndWorkerTables) {
  const auto engine = introspected_run(ShardedScheduler::Mode::kThreaded, 2);
  std::ostringstream out;
  write_shard_report(out, *engine);
  const std::string report = out.str();
  EXPECT_NE(report.find("shard introspection: 4 shards"), std::string::npos) << report;
  EXPECT_NE(report.find("Shard"), std::string::npos);
  EXPECT_NE(report.find("src\\dst"), std::string::npos);
  EXPECT_NE(report.find("Stall %"), std::string::npos);
}

TEST(ShardIntrospectionTest, ClusterEngineConfigFlagEnablesCollection) {
  // The engine-level switch: engine.shards selects the merge-mode sharded
  // engine, engine.introspect arms collection, and the engine stays
  // reachable for post-run export.
  trace::SyntheticSpec spec;
  spec.name = "intro";
  spec.files = 100;
  spec.avg_file_kb = 8.0;
  spec.requests = 1000;
  spec.avg_request_kb = 6.0;
  spec.alpha = 0.9;
  spec.seed = 13;
  const auto tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;
  cfg.engine.shards = 2;
  cfg.engine.introspect = true;
  core::ClusterSimulation sim(cfg, tr, std::make_unique<policy::L2sPolicy>());
  sim.run();

  ShardedScheduler* engine = sim.sharded_engine();
  ASSERT_NE(engine, nullptr);
  const ShardIntrospection* intro = engine->introspection();
  ASSERT_NE(intro, nullptr);
  std::uint64_t posted = 0;
  for (const ShardIntrospection::Shard& row : intro->shards) posted += row.posted;
  EXPECT_EQ(posted, engine->messages_posted());

  telemetry::Registry registry;
  export_shard_introspection(registry, *engine);
  EXPECT_GT(registry.metric_count(), 0u);
}

}  // namespace
}  // namespace l2s::obs
