// telemetry::Registry and the metric value types: registration and label
// canonicalization, snapshotting, and the deterministic merge semantics
// run_parallel leans on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "l2sim/telemetry/registry.hpp"

namespace l2s::telemetry {
namespace {

TEST(TelemetryMetrics, CounterAddsAndMerges) {
  Counter a;
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  Counter b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.value(), 12u);
  a.reset();
  EXPECT_EQ(a.value(), 0u);
}

TEST(TelemetryMetrics, GaugeTracksExtrema) {
  Gauge g;
  EXPECT_EQ(g.count(), 0u);
  g.set(3.0);
  g.set(-1.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), -1.0);
  EXPECT_DOUBLE_EQ(g.max(), 3.0);
  EXPECT_EQ(g.count(), 3u);

  Gauge h;
  h.set(10.0);
  g.merge(h);
  EXPECT_DOUBLE_EQ(g.min(), -1.0);
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);  // merged gauges keep the peak last-value
  EXPECT_EQ(g.count(), 4u);

  // Merging an empty gauge changes nothing; merging into an empty adopts.
  Gauge empty;
  g.merge(empty);
  EXPECT_EQ(g.count(), 4u);
  Gauge fresh;
  fresh.merge(g);
  EXPECT_DOUBLE_EQ(fresh.min(), -1.0);
  EXPECT_EQ(fresh.count(), 4u);
}

TEST(TelemetryMetrics, HistogramBucketsAndQuantiles) {
  Histogram h{HistogramParams{1.0, 2.0, 8}};
  for (int i = 0; i < 100; ++i) h.add(0.5);  // below base -> bucket 0
  h.add(1000.0);                             // overflow bucket
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.buckets().front(), 100u);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(3), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_GT(h.quantile(1.0), 0.0);

  Histogram g{HistogramParams{1.0, 2.0, 8}};
  g.add(0.5);
  h.merge(g);
  EXPECT_EQ(h.count(), 102u);
  EXPECT_EQ(h.buckets().front(), 101u);

  Histogram other{HistogramParams{2.0, 2.0, 8}};
  EXPECT_THROW(h.merge(other), std::invalid_argument);
  EXPECT_THROW(Histogram(HistogramParams{0.0, 2.0, 8}), std::invalid_argument);
  EXPECT_THROW(Histogram(HistogramParams{1.0, 1.0, 8}), std::invalid_argument);
}

TEST(TelemetryMetrics, BucketSeriesUsesExactIntegerBuckets) {
  BucketSeries s;
  s.bump(100);  // un-begun series ignore bumps
  EXPECT_TRUE(s.buckets().empty());

  const SimTime start = 1000;
  const SimTime interval = 250;
  s.begin(start, interval);
  s.bump(999);   // before start: dropped
  s.bump(1000);  // bucket 0
  s.bump(1249);  // bucket 0 (integer division, not rounding)
  s.bump(1250);  // bucket 1
  s.bump(2000);  // bucket 4
  ASSERT_EQ(s.buckets().size(), 5u);
  EXPECT_DOUBLE_EQ(s.buckets()[0], 2.0);
  EXPECT_DOUBLE_EQ(s.buckets()[1], 1.0);
  EXPECT_DOUBLE_EQ(s.buckets()[4], 1.0);

  // rate_per_second covers [start, end) with ceil division, zero-padded.
  const auto rps = s.rate_per_second(2600);
  ASSERT_EQ(rps.size(), 7u);
  EXPECT_DOUBLE_EQ(rps[0], 2.0 / simtime_to_seconds(interval));
  EXPECT_DOUBLE_EQ(rps[5], 0.0);
  EXPECT_TRUE(s.rate_per_second(start).empty());
}

TEST(TelemetryMetrics, SampleSeriesAppends) {
  SampleSeries s;
  s.add(10, 1.0);
  s.add(20, 2.0);
  SampleSeries t;
  t.add(15, 9.0);
  s.merge(t);
  ASSERT_EQ(s.points().size(), 3u);
  EXPECT_EQ(s.points()[2].first, 15);
}

TEST(TelemetryRegistry, LabelsAreCanonicalized) {
  Registry reg;
  Counter& a = reg.counter("reqs", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.counter("reqs", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_EQ(metric_key("reqs", canonical_labels({{"b", "2"}, {"a", "1"}})),
            "reqs{a=1,b=2}");
  EXPECT_EQ(metric_key("reqs", {}), "reqs");
}

TEST(TelemetryRegistry, SameKeyDifferentKindThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  // Same name under different labels is a different metric: fine.
  EXPECT_NO_THROW(reg.gauge("x", {{"node", "0"}}));
}

TEST(TelemetryRegistry, ReferencesStableAcrossRegistrations) {
  Registry reg;
  Counter& first = reg.counter("c0");
  for (int i = 1; i < 200; ++i) reg.counter("c" + std::to_string(i));
  first.add(3);
  EXPECT_EQ(reg.counter("c0").value(), 3u);
}

TEST(TelemetryRegistry, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.counter("one").add(1);
  reg.gauge("two").set(2.0);
  reg.histogram("three").add(3.0);
  reg.bucket_series("four");
  reg.sample_series("five").add(1, 5.0);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 5u);
  EXPECT_EQ(snap.metrics[0].name, "one");
  EXPECT_EQ(snap.metrics[4].name, "five");
  EXPECT_EQ(snap.metrics[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.metrics[1].value, 2.0);
  EXPECT_EQ(snap.metrics[2].count, 1u);
  EXPECT_EQ(snap.metrics[4].samples.size(), 1u);

  ASSERT_NE(snap.find("two"), nullptr);
  EXPECT_EQ(snap.find("two")->kind, MetricKind::kGauge);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(TelemetryRegistry, ResetKeepsRegistrations) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(1.0);
  reg.reset();
  EXPECT_EQ(reg.metric_count(), 2u);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.gauge("g").count(), 0u);
}

TEST(TelemetrySnapshot, MergeCombinesEveryKind) {
  Registry a;
  a.counter("c").add(2);
  a.gauge("g").set(5.0);
  a.histogram("h", {}, HistogramParams{1.0, 2.0, 4}).add(0.5);
  a.bucket_series("b").begin(0, 100);
  a.bucket_series("b").bump(50);
  a.sample_series("s").add(1, 1.0);

  Registry b;
  b.counter("c").add(3);
  b.counter("extra").add(1);
  b.gauge("g").set(-2.0);
  b.histogram("h", {}, HistogramParams{1.0, 2.0, 4}).add(0.5);
  b.bucket_series("b").begin(0, 100);
  b.bucket_series("b").bump(250);  // bucket 2: longer than a's series
  b.sample_series("s").add(2, 2.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  EXPECT_EQ(merged.find("c")->count, 5u);
  ASSERT_NE(merged.find("extra"), nullptr);  // unknown metrics are adopted
  EXPECT_EQ(merged.find("extra")->count, 1u);
  EXPECT_DOUBLE_EQ(merged.find("g")->min, -2.0);
  EXPECT_DOUBLE_EQ(merged.find("g")->max, 5.0);
  EXPECT_EQ(merged.find("h")->count, 2u);
  EXPECT_EQ(merged.find("h")->histogram_buckets[0], 2u);
  ASSERT_EQ(merged.find("b")->series_buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.find("b")->series_buckets[0], 1.0);
  EXPECT_DOUBLE_EQ(merged.find("b")->series_buckets[2], 1.0);
  EXPECT_EQ(merged.find("s")->samples.size(), 2u);
}

TEST(TelemetrySnapshot, MergeKindMismatchThrows) {
  Registry a;
  a.counter("x");
  Registry b;
  b.gauge("x");
  Snapshot sa = a.snapshot();
  EXPECT_THROW(sa.merge(b.snapshot()), std::invalid_argument);
}

TEST(TelemetrySnapshot, MergeIsOrderDependentOnlyForAppends) {
  // Scalar aggregates are order-independent; span/sample appends are why
  // run_parallel merges in job-index order. Verify the scalar half.
  Registry a;
  a.counter("c").add(2);
  Registry b;
  b.counter("c").add(3);
  Snapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  Snapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(ab.find("c")->count, ba.find("c")->count);
}

}  // namespace
}  // namespace l2s::telemetry
