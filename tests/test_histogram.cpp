#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/stats/counter_set.hpp"
#include "l2sim/stats/histogram.hpp"

namespace l2s::stats {
namespace {

TEST(LogHistogram, BucketBoundariesGrowGeometrically) {
  const LogHistogram h(1.0, 2.0, 8);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(3), 4.0);
}

TEST(LogHistogram, ValuesLandInRightBuckets) {
  LogHistogram h(1.0, 2.0, 6);
  h.add(0.5);   // bucket 0
  h.add(1.5);   // bucket 1 [1,2)
  h.add(3.0);   // bucket 2 [2,4)
  h.add(1e9);   // overflow -> last
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(LogHistogram, QuantileApproximation) {
  LogHistogram h(1.0, 2.0, 12);
  for (int i = 0; i < 90; ++i) h.add(1.5);
  for (int i = 0; i < 10; ++i) h.add(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);   // bucket [1,2)
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 64.0); // bucket [64,128)
}

TEST(LogHistogram, QuantileRequiresData) {
  const LogHistogram h(1.0, 2.0, 4);
  EXPECT_THROW(h.quantile(0.5), Error);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 2.0, 4), Error);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 1), Error);
}

TEST(LogHistogram, ToStringSkipsEmptyBuckets) {
  LogHistogram h(1.0, 10.0, 5);
  h.add(5.0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find(": 1"), std::string::npos);
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  c.add("y", 2);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 2u);
}

TEST(CounterSet, PreservesFirstTouchOrder) {
  CounterSet c;
  c.add("b");
  c.add("a");
  c.add("b");
  ASSERT_EQ(c.items().size(), 2u);
  EXPECT_EQ(c.items()[0].first, "b");
  EXPECT_EQ(c.items()[1].first, "a");
}

TEST(CounterSet, ResetClears) {
  CounterSet c;
  c.add("x");
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.items().empty());
}

}  // namespace
}  // namespace l2s::stats
