#include <gtest/gtest.h>

#include "l2sim/net/nic.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/net/router.hpp"
#include "l2sim/net/topology.hpp"

namespace l2s::net {
namespace {

TEST(NetParams, ViaMessageTimingMatchesPaper) {
  const NetParams p;
  // A 4-byte message: 3 us CPU + 6 us NIC (+32 ns wire) each side + 1 us
  // switch = 19 us one way (the paper's M-VIA measurement).
  const double one_way = 2.0 * simtime_to_seconds(p.cpu_msg_time()) +
                         2.0 * simtime_to_seconds(p.nic_transfer_time(4)) +
                         simtime_to_seconds(p.switch_latency());
  EXPECT_NEAR(one_way, 19e-6, 0.1e-6);
}

TEST(NetParams, NiRequestRateIsMuI) {
  const NetParams p;
  EXPECT_EQ(p.ni_request_time(), seconds_to_simtime(1.0 / 140000.0));
}

TEST(NetParams, NiReplyTimeIsMuO) {
  const NetParams p;
  // mu_o = 1/(3us + S/128000 KB/s); 128 KB reply -> ~1.003 ms.
  const SimTime t = p.ni_reply_time(128 * kKiB);
  EXPECT_NEAR(simtime_to_seconds(t), 0.000003 + 128.0 * 1024.0 * 8.0 / 1e9, 1e-8);
}

TEST(NetParams, RouterTimeIsMuR) {
  const NetParams p;
  // 500000 KB/s: a 500-KB transfer takes 1 ms.
  EXPECT_EQ(p.router_time(500 * kKiB), seconds_to_simtime(0.001));
}

TEST(Router, SharedQueueSerializes) {
  des::Scheduler s;
  const NetParams p;
  Router r(s, p);
  SimTime first = 0;
  SimTime second = 0;
  r.forward(500 * kKiB, [&] { first = s.now(); });
  r.forward(500 * kKiB, [&] { second = s.now(); });
  s.run();
  EXPECT_EQ(first, seconds_to_simtime(0.001));
  EXPECT_EQ(second, seconds_to_simtime(0.002));
}

TEST(SingleSwitch, PureLatencyNoQueueing) {
  des::Scheduler s;
  const NetParams p;
  SingleSwitch f(s, p, 4);
  SimTime a = 0;
  SimTime b = 0;
  f.traverse(0, 1, 4, [&] { a = s.now(); });
  f.traverse(2, 3, 4, [&] { b = s.now(); });
  s.run();
  // Both deliveries complete after exactly one latency (no serialization).
  EXPECT_EQ(a, p.switch_latency());
  EXPECT_EQ(b, p.switch_latency());
  EXPECT_EQ(f.traversals(), 2u);
}

TEST(SingleSwitch, StatsReset) {
  des::Scheduler s;
  const NetParams p;
  SingleSwitch f(s, p, 4);
  f.traverse(0, 1, 16, [] {});
  s.run();
  f.reset_stats();
  EXPECT_EQ(f.traversals(), 0u);
}

TEST(Nic, IndependentRxTxQueues) {
  des::Scheduler s;
  Nic nic(s, "n");
  SimTime rx_done = 0;
  SimTime tx_done = 0;
  nic.rx().submit(100, [&] { rx_done = s.now(); });
  nic.tx().submit(100, [&] { tx_done = s.now(); });
  s.run();
  // rx and tx do not serialize against each other.
  EXPECT_EQ(rx_done, 100);
  EXPECT_EQ(tx_done, 100);
}

TEST(Nic, NamesIncludeNode) {
  des::Scheduler s;
  const Nic nic(s, "node3");
  EXPECT_EQ(nic.rx().name(), "node3/nic-rx");
  EXPECT_EQ(nic.tx().name(), "node3/nic-tx");
}

}  // namespace
}  // namespace l2s::net
