#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/model/cluster_model.hpp"
#include "l2sim/zipf/zipf.hpp"

#include <algorithm>

namespace l2s::model {
namespace {

ClusterModel default_model() { return ClusterModel{ModelParams{}}; }

TEST(ClusterModel, ConsciousHitRateExceedsOblivious) {
  const auto m = default_model();
  for (const double hlo : {0.2, 0.5, 0.8}) {
    for (const double s : {4.0, 32.0, 128.0}) {
      EXPECT_GE(m.conscious_hit_rate(hlo, s), hlo) << hlo << " " << s;
    }
  }
}

TEST(ClusterModel, ConsciousHitRateCapsAtOne) {
  const auto m = default_model();
  EXPECT_DOUBLE_EQ(m.conscious_hit_rate(0.99, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(m.conscious_hit_rate(1.0, 64.0), 1.0);
}

TEST(ClusterModel, ZeroHitRateStaysZero) {
  const auto m = default_model();
  EXPECT_DOUBLE_EQ(m.conscious_hit_rate(0.0, 32.0), 0.0);
  EXPECT_DOUBLE_EQ(m.replicated_hit_rate(0.0, 32.0), 0.0);
}

TEST(ClusterModel, NoReplicationMeansFullForwardingFraction) {
  const auto m = default_model();  // R = 0
  // Q = (N-1)/N = 15/16 when h = 0.
  EXPECT_NEAR(m.forwarded_fraction(0.5, 32.0), 15.0 / 16.0, 1e-12);
}

TEST(ClusterModel, ReplicationReducesForwarding) {
  ModelParams p;
  p.replication = 0.15;
  const ClusterModel m(p);
  const double q = m.forwarded_fraction(0.6, 16.0);
  EXPECT_LT(q, 15.0 / 16.0);
  EXPECT_GT(q, 0.0);
  // h <= Hlo always (the replicated slice is a subset of one cache).
  EXPECT_LE(m.replicated_hit_rate(0.6, 16.0), 0.6 + 1e-12);
}

TEST(ClusterModel, VirtualPopulationRoundTrips) {
  const auto m = default_model();
  const double f = m.virtual_population(0.7, 32.0);
  // z(Clo/S, f) must equal Hlo by construction.
  const double n = 128.0 * 1024.0 / 32.0;
  EXPECT_NEAR(zipf::z(n, f, 1.0), 0.7, 1e-6);
}

TEST(ClusterModel, ObliviousThroughputDiskBoundAtLowHitRates) {
  const auto m = default_model();
  const auto e = m.oblivious(0.2, 32.0);
  EXPECT_EQ(e.bottleneck, "disk");
  // N * mu_d / (1 - H): 16 / (0.8 * 0.0312).
  EXPECT_NEAR(e.throughput, 16.0 / (0.8 * (0.028 + 32.0 / 10000.0)), 1.0);
}

TEST(ClusterModel, ObliviousThroughputCpuBoundAtFullHit) {
  const auto m = default_model();
  const auto e = m.oblivious(1.0, 32.0);
  EXPECT_EQ(e.bottleneck, "cpu");
  const double cpu_demand = 1.0 / 6300.0 + (0.0001 + 32.0 / 12000.0);
  EXPECT_NEAR(e.throughput, 16.0 / cpu_demand, 1.0);
}

TEST(ClusterModel, ConsciousBeatsObliviousMidRange) {
  const auto m = default_model();
  const auto lo = m.oblivious(0.6, 16.0);
  const auto lc = m.conscious(0.6, 16.0);
  EXPECT_GT(lc.throughput, 1.5 * lo.throughput);
}

TEST(ClusterModel, ForwardingOverheadBitesAtHighHitRates) {
  // Paper: for Hlo >= 0.95 and small files the increase dips below 1.
  const auto m = default_model();
  const auto lo = m.oblivious(1.0, 4.0);
  const auto lc = m.conscious(1.0, 4.0);
  EXPECT_LT(lc.throughput, lo.throughput);
}

TEST(ClusterModel, PeakIncreaseNearPaperSevenfold) {
  // The paper reports "up to 7-fold" on its grid; on ours the peak lands
  // between 6x and 9x (it is sensitive to the smallest sampled size).
  const auto m = default_model();
  double best = 0.0;
  for (double hlo = 0.05; hlo <= 1.0; hlo += 0.05) {
    for (double s = 4.0; s <= 128.0; s += 4.0) {
      best = std::max(best, m.conscious(hlo, s).throughput / m.oblivious(hlo, s).throughput);
    }
  }
  EXPECT_GT(best, 6.0);
  EXPECT_LT(best, 9.0);
}

TEST(ClusterModel, RouterBindsForLargeTransfersManyNodes) {
  ModelParams p;
  p.nodes = 64;
  const ClusterModel m(p);
  const auto e = m.evaluate(1.0, 0.0, 64.0, 64.0);
  EXPECT_EQ(e.bottleneck, "router");
  EXPECT_NEAR(e.throughput, 500000.0 / 64.0, 1.0);
}

TEST(ClusterModel, EvaluateRejectsOutOfRange) {
  const auto m = default_model();
  EXPECT_THROW(m.evaluate(1.5, 0.0, 32.0, 32.0), Error);
  EXPECT_THROW(m.evaluate(0.5, -0.1, 32.0, 32.0), Error);
}

TEST(ImbalanceFactor, PerfectBalanceForOneNode) {
  EXPECT_DOUBLE_EQ(imbalance_factor(1000.0, 1.0, 1, 0.0), 1.0);
}

TEST(ImbalanceFactor, SkewCreatesImbalance) {
  const double f = imbalance_factor(10000.0, 1.0, 16, 0.0);
  EXPECT_GT(f, 1.2);  // node 0 holds the hottest file of every stripe
}

TEST(ImbalanceFactor, ReplicationRestoresBalance) {
  const double without = imbalance_factor(10000.0, 1.0, 16, 0.0);
  const double with = imbalance_factor(10000.0, 1.0, 16, 100.0);
  EXPECT_LT(with, without);
  EXPECT_NEAR(with, 1.0, 0.15);
}

TEST(ImbalanceFactor, HigherAlphaWorse) {
  EXPECT_GT(imbalance_factor(10000.0, 1.2, 16, 0.0),
            imbalance_factor(10000.0, 0.7, 16, 0.0));
}

}  // namespace
}  // namespace l2s::model
