#include <gtest/gtest.h>

#include "l2sim/common/error.hpp"
#include "l2sim/queueing/mm1.hpp"

namespace l2s::queueing {
namespace {

TEST(Mm1, StabilityBoundary) {
  EXPECT_TRUE(mm1_stable(0.0, 1.0));
  EXPECT_TRUE(mm1_stable(0.999, 1.0));
  EXPECT_FALSE(mm1_stable(1.0, 1.0));
  EXPECT_FALSE(mm1_stable(2.0, 1.0));
  EXPECT_FALSE(mm1_stable(-0.1, 1.0));
}

TEST(Mm1, ClassicTextbookValues) {
  // lambda = 2, mu = 3: rho = 2/3, L = 2, W = 1, Wq = 2/3.
  const auto m = mm1_metrics(2.0, 3.0);
  EXPECT_NEAR(m.utilization, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.mean_customers, 2.0, 1e-12);
  EXPECT_NEAR(m.mean_response, 1.0, 1e-12);
  EXPECT_NEAR(m.mean_waiting, 2.0 / 3.0, 1e-12);
}

TEST(Mm1, LittlesLawHolds) {
  for (const double lambda : {0.1, 0.5, 0.9}) {
    const auto m = mm1_metrics(lambda, 1.0);
    EXPECT_NEAR(m.mean_customers, lambda * m.mean_response, 1e-12);
  }
}

TEST(Mm1, ResponseDivergesNearSaturation) {
  const auto low = mm1_metrics(0.5, 1.0);
  const auto high = mm1_metrics(0.995, 1.0);
  EXPECT_GT(high.mean_response, 50.0 * low.mean_response);
}

TEST(Mm1, IdleQueueHasServiceOnlyResponse) {
  const auto m = mm1_metrics(0.0, 4.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_customers, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_response, 0.25);
}

TEST(Mm1, RejectsInvalidInputs) {
  EXPECT_THROW(mm1_metrics(1.0, 0.0), Error);
  EXPECT_THROW(mm1_metrics(-1.0, 1.0), Error);
  EXPECT_THROW(mm1_metrics(1.0, 1.0), Error);
  EXPECT_THROW(mm1_metrics(2.0, 1.0), Error);
}

}  // namespace
}  // namespace l2s::queueing
