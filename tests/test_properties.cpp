// Property-based suites (parameterized sweeps over the input space).
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/model/cluster_model.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace l2s {
namespace {

// ---------------------------------------------------------------------------
// Model properties over the (Hlo, S) plane.

class ModelPointProperty : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ModelPointProperty, ConsciousDominatesUnlessForwardingBites) {
  const auto [hlo, size_kb] = GetParam();
  const model::ClusterModel m{model::ModelParams{}};
  const double lo = m.oblivious(hlo, size_kb).throughput;
  const double lc = m.conscious(hlo, size_kb).throughput;
  // The conscious server may lose only to forwarding overhead, which is
  // bounded: never worse than 20% below the oblivious server.
  EXPECT_GT(lc, 0.8 * lo);
}

TEST_P(ModelPointProperty, DerivedQuantitiesInRange) {
  const auto [hlo, size_kb] = GetParam();
  const model::ClusterModel m{model::ModelParams{}};
  const double hlc = m.conscious_hit_rate(hlo, size_kb);
  EXPECT_GE(hlc, hlo - 1e-12);
  EXPECT_LE(hlc, 1.0);
  const double q = m.forwarded_fraction(hlo, size_kb);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 15.0 / 16.0 + 1e-12);
}

TEST_P(ModelPointProperty, ObliviousThroughputDecreasesWithSize) {
  // Holds for the oblivious server (every station slows with size at a
  // fixed hit rate). It does NOT hold universally for the conscious
  // server: a larger S shrinks the per-node cache in files, which *raises*
  // the derived Hlc/Hlo ratio and can outweigh the per-byte costs in
  // disk-bound regions.
  const auto [hlo, size_kb] = GetParam();
  const model::ClusterModel m{model::ModelParams{}};
  EXPECT_GE(m.oblivious(hlo, size_kb).throughput,
            m.oblivious(hlo, size_kb * 1.5).throughput * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Plane, ModelPointProperty,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85, 0.95),
                       ::testing::Values(4.0, 16.0, 48.0, 96.0, 128.0)));

// ---------------------------------------------------------------------------
// Zipf math properties across alphas.

class ZipfAlphaProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaProperty, ZIsAProbability) {
  const double alpha = GetParam();
  for (double n = 1.0; n <= 1e6; n *= 10.0) {
    const double v = zipf::z(n, 1e6, alpha);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_P(ZipfAlphaProperty, InversionConsistency) {
  const double alpha = GetParam();
  for (const double target : {0.25, 0.5, 0.75, 0.95}) {
    // For alpha > 1 the series converges, so very low targets may be
    // unreachable (z has a positive infimum); that must surface as a
    // clean Error, never a wrong answer.
    try {
      const double f = zipf::invert_population(200.0, target, alpha);
      EXPECT_NEAR(zipf::z(200.0, f, alpha), target, 1e-5);
    } catch (const Error&) {
      EXPECT_GT(alpha, 1.0);
      EXPECT_LT(target, 0.95);
    }
  }
}

TEST_P(ZipfAlphaProperty, MorePopulationLowersHitRate) {
  const double alpha = GetParam();
  EXPECT_GT(zipf::z(100.0, 1e4, alpha), zipf::z(100.0, 1e5, alpha));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaProperty,
                         ::testing::Values(0.5, 0.78, 0.91, 1.0, 1.08, 1.3));

// ---------------------------------------------------------------------------
// LRU cache vs a reference implementation under random workloads.

class LruReferenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruReferenceProperty, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Bytes capacity = 64 * kKiB;
  cache::LruCache cache(capacity);

  // Reference: ordered list of (id, size), front = MRU.
  std::list<std::pair<cache::FileId, Bytes>> ref;
  auto ref_find = [&](cache::FileId id) {
    return std::find_if(ref.begin(), ref.end(),
                        [id](const auto& kv) { return kv.first == id; });
  };
  auto ref_bytes = [&] {
    Bytes total = 0;
    for (const auto& [id, size] : ref) total += size;
    return total;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto id = static_cast<cache::FileId>(rng.next_below(60));
    const Bytes size = (1 + rng.next_below(16)) * kKiB;
    const int op = static_cast<int>(rng.next_below(10));
    if (op < 6) {  // lookup
      const auto it = ref_find(id);
      const bool expect_hit = it != ref.end();
      EXPECT_EQ(cache.lookup(id), expect_hit) << "step " << step;
      if (expect_hit) ref.splice(ref.begin(), ref, it);
    } else if (op < 9) {  // insert
      cache.insert(id, size);
      if (size <= capacity) {
        const auto it = ref_find(id);
        if (it != ref.end()) ref.erase(it);
        ref.emplace_front(id, size);
        while (ref_bytes() > capacity) ref.pop_back();
      }
    } else {  // erase
      const auto it = ref_find(id);
      EXPECT_EQ(cache.erase(id), it != ref.end());
      if (it != ref.end()) ref.erase(it);
    }
    EXPECT_EQ(cache.used(), ref_bytes()) << "step " << step;
    EXPECT_EQ(cache.entries(), ref.size()) << "step " << step;
    EXPECT_LE(cache.used(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruReferenceProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------------
// Simulation invariants across the (nodes x policy) grid.

class SimulationGridProperty
    : public ::testing::TestWithParam<std::tuple<int, core::PolicyKind>> {};

TEST_P(SimulationGridProperty, InvariantsHold) {
  const auto [nodes, kind] = GetParam();
  trace::SyntheticSpec spec;
  spec.name = "grid";
  spec.files = 300;
  spec.avg_file_kb = 10.0;
  spec.requests = 3000;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 1234;
  const auto tr = trace::generate(spec);

  core::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 1 * kMiB;
  const auto r = core::run_once(tr, cfg, kind);

  EXPECT_EQ(r.completed, tr.request_count());
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_NEAR(r.hit_rate + r.miss_rate, 1.0, 1e-12);
  EXPECT_LE(r.forwarded, r.completed);
  EXPECT_GE(r.cpu_idle_fraction, 0.0);
  EXPECT_LE(r.cpu_idle_fraction, 1.0);
  EXPECT_GT(r.mean_response_ms, 0.0);
  if (kind == core::PolicyKind::kTraditional) {
    EXPECT_EQ(r.forwarded, 0u);
  }
  if (kind == core::PolicyKind::kLard && nodes > 1) {
    EXPECT_EQ(r.forwarded, r.completed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulationGridProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(core::PolicyKind::kTraditional,
                                         core::PolicyKind::kLard,
                                         core::PolicyKind::kL2s)));

// ---------------------------------------------------------------------------
// Synthetic generator hits its calibration targets across specs.

class SyntheticCalibrationProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SyntheticCalibrationProperty, MeansWithinTolerance) {
  const auto [avg_file, avg_req, alpha] = GetParam();
  trace::SyntheticSpec spec;
  spec.name = "cal";
  spec.files = 800;
  spec.requests = 40000;
  spec.avg_file_kb = avg_file;
  spec.avg_request_kb = avg_req;
  spec.alpha = alpha;
  spec.seed = 99;
  const auto tr = trace::generate(spec);
  EXPECT_NEAR(tr.files().avg_kb(), avg_file, 0.02 * avg_file);
  EXPECT_NEAR(tr.avg_request_kb(), avg_req, 0.10 * avg_req);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, SyntheticCalibrationProperty,
    ::testing::Values(std::make_tuple(42.9, 19.7, 1.08), std::make_tuple(11.6, 11.9, 0.78),
                      std::make_tuple(53.7, 47.0, 0.91), std::make_tuple(30.5, 26.2, 0.79),
                      std::make_tuple(20.0, 10.0, 1.0)));

}  // namespace
}  // namespace l2s
