// Unit suite for the Che-approximation layer: the strided popularity sums,
// the characteristic-time fixed point, and the cluster cache splits.
#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/analytic/che.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace l2s::analytic {
namespace {

TEST(AnalyticPopularity, ProbabilitiesSumToOne) {
  const auto pop = ZipfPopularity::make(5000.0, 0.9);
  const double total = strided_sum(1.0, pop.files, 1.0,
                                   [&](double r) { return pop.prob(r); });
  // The geometric tail rule is a midpoint quadrature: ~1e-6 relative, far
  // inside the 5-percentage-point validation budget.
  EXPECT_NEAR(total, 1.0, 1e-4);
}

// The geometric tail rule must agree with brute force on strided subsets.
TEST(AnalyticPopularity, StridedSumMatchesBruteForce) {
  const auto pop = ZipfPopularity::make(60000.0, 1.1);
  for (double stride : {1.0, 3.0, 7.0}) {
    double brute = 0.0;
    for (double r = 5.0; r <= pop.files; r += stride) brute += pop.prob(r);
    const double fast =
        strided_sum(5.0, pop.files, stride, [&](double r) { return pop.prob(r); });
    EXPECT_NEAR(fast, brute, 1e-4 * brute) << "stride " << stride;
  }
  EXPECT_DOUBLE_EQ(strided_count(5.0, 4.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(strided_count(5.0, 5.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(strided_count(1.0, 10.0, 4.0), 3.0);
}

TEST(AnalyticChe, OccupancyMatchesCapacityAtTheRoot) {
  const auto pop = ZipfPopularity::make(10000.0, 0.8);
  const CheSolution sol = che_lru(pop, 500.0);
  EXPECT_FALSE(sol.everything_fits);
  EXPECT_NEAR(sol.occupancy_files, 500.0, 1e-6 * 500.0);
  EXPECT_GT(sol.hit_rate, 0.0);
  EXPECT_LT(sol.hit_rate, 1.0);
}

// Under stationary IRM the hit rate is invariant to the absolute request
// rate; only the characteristic time scales (as 1/rate).
TEST(AnalyticChe, HitRateInvariantToRate) {
  const auto pop = ZipfPopularity::make(10000.0, 0.8);
  const CheSolution slow = che_solve(pop, {{1.0, pop.files, 1.0, 1.0}}, 1.0, 500.0);
  const CheSolution fast = che_solve(pop, {{1.0, pop.files, 1.0, 1.0}}, 1000.0, 500.0);
  EXPECT_NEAR(slow.hit_rate, fast.hit_rate, 1e-9);
  EXPECT_NEAR(slow.characteristic_seconds / fast.characteristic_seconds, 1000.0,
              1e-6 * 1000.0);
}

TEST(AnalyticChe, EverythingFitsShortCircuit) {
  const auto pop = ZipfPopularity::make(100.0, 0.9);
  const CheSolution sol = che_lru(pop, 200.0);
  EXPECT_TRUE(sol.everything_fits);
  EXPECT_DOUBLE_EQ(sol.hit_rate, 1.0);
  EXPECT_TRUE(std::isinf(sol.characteristic_seconds));
}

TEST(AnalyticChe, HitRateMonotoneInCapacity) {
  const auto pop = ZipfPopularity::make(20000.0, 1.0);
  double prev = 0.0;
  for (double cache : {50.0, 200.0, 1000.0, 5000.0}) {
    const double hit = che_lru(pop, cache).hit_rate;
    EXPECT_GT(hit, prev) << "cache " << cache;
    prev = hit;
  }
}

// The Che curve and the paper's z(n, F) step function answer the same
// question (what does a cache of n files catch?). For alpha < 1 and small
// caches LRU genuinely trails the clairvoyant hottest-n cache by well over
// ten points — that gap is the point of modelling LRU instead of assuming
// the optimum — but the curves must track and Che must never exceed the
// prefix optimum (greedy is the maximizer of sum p_r * x_r at fixed
// occupancy).
TEST(AnalyticChe, TracksZipfStepFunction) {
  const auto pop = ZipfPopularity::make(20000.0, 0.9);
  for (double cache : {200.0, 1000.0, 5000.0}) {
    const double che = che_lru(pop, cache).hit_rate;
    const double step = zipf::z(cache, pop.files, pop.alpha);
    EXPECT_NEAR(che, step, 0.20) << "cache " << cache;
    EXPECT_LE(che, step + 1e-12) << "cache " << cache;
  }
}

TEST(AnalyticChe, ValidatesInputs) {
  const auto pop = ZipfPopularity::make(100.0, 1.0);
  EXPECT_THROW((void)che_solve(pop, {}, 1.0, 10.0), Error);
  EXPECT_THROW((void)che_lru(pop, 0.0), Error);
  EXPECT_THROW((void)che_solve(pop, {{1.0, 100.0, 1.0, 1.0}}, 0.0, 10.0), Error);
  EXPECT_THROW((void)ZipfPopularity::make(0.5, 1.0), Error);
  EXPECT_THROW((void)ZipfPopularity::make(100.0, 0.0), Error);
}

// Oblivious cluster: every node is statistically the same single cache
// (the full catalogue at 1/N rate), so the cluster hit rate equals the
// single-cache hit rate at the same per-node capacity.
TEST(AnalyticCluster, ObliviousEqualsSingleCache) {
  ClusterCacheParams p;
  p.files = 10000.0;
  p.alpha = 0.9;
  p.nodes = 4;
  p.cache_files_per_node = 400.0;
  p.conscious = false;
  const ClusterCacheResult cluster = solve_cluster_cache(p);
  const auto pop = ZipfPopularity::make(p.files, p.alpha);
  const double single = che_lru(pop, p.cache_files_per_node).hit_rate;
  EXPECT_NEAR(cluster.hit_rate, single, 1e-9);
  EXPECT_DOUBLE_EQ(cluster.forwarded_fraction, 0.0);
  ASSERT_EQ(cluster.per_node_hit.size(), 4u);
  for (double h : cluster.per_node_hit) EXPECT_NEAR(h, single, 1e-9);
}

TEST(AnalyticCluster, ConsciousBeatsObliviousAndOneNodeDegenerates) {
  ClusterCacheParams p;
  p.files = 10000.0;
  p.alpha = 0.9;
  p.nodes = 8;
  p.replication = 0.15;
  p.cache_files_per_node = 400.0;
  p.conscious = true;
  const ClusterCacheResult conscious = solve_cluster_cache(p);
  p.conscious = false;
  const ClusterCacheResult oblivious = solve_cluster_cache(p);
  // Striping multiplies effective capacity by ~N; the hit rate must gain.
  EXPECT_GT(conscious.hit_rate, oblivious.hit_rate + 0.05);
  EXPECT_GT(conscious.forwarded_fraction, 0.0);
  EXPECT_LE(conscious.forwarded_fraction, 7.0 / 8.0);
  EXPECT_GT(conscious.replicated_hit, 0.0);
  EXPECT_LE(conscious.replicated_hit, 1.0);

  p.nodes = 1;
  p.conscious = true;
  const ClusterCacheResult one_conscious = solve_cluster_cache(p);
  p.conscious = false;
  const ClusterCacheResult one_oblivious = solve_cluster_cache(p);
  EXPECT_NEAR(one_conscious.hit_rate, one_oblivious.hit_rate, 1e-9);
  EXPECT_DOUBLE_EQ(one_conscious.forwarded_fraction, 0.0);
}

// Q = (N-1)(1-h)/N exactly, from the reported h.
TEST(AnalyticCluster, ForwardedFractionFollowsPaperAlgebra) {
  ClusterCacheParams p;
  p.files = 5000.0;
  p.alpha = 1.0;
  p.nodes = 6;
  p.replication = 0.2;
  p.cache_files_per_node = 300.0;
  p.conscious = true;
  const ClusterCacheResult res = solve_cluster_cache(p);
  EXPECT_NEAR(res.forwarded_fraction, 5.0 * (1.0 - res.replicated_hit) / 6.0, 1e-12);
}

}  // namespace
}  // namespace l2s::analytic
