// The l2s::overload resilience layer: non-stationary arrival shapes,
// popularity churn, adaptive admission shedders (static cap / CoDel-style
// queue delay / AIMD), the retry token bucket, request hedging, and
// brownout — plus the end-of-pass goodput-bucket flush the overload bench
// depends on. Every defended run must replay bit-identically (the chaos
// suite extends this across shards), and a default OverloadConfig must
// leave every new counter at zero.
#include <gtest/gtest.h>

#include <numeric>

#include "l2sim/core/experiment.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/stats/availability.hpp"
#include "l2sim/telemetry/metrics.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {
namespace {

trace::Trace cached_workload(std::uint64_t requests = 8000) {
  trace::SyntheticSpec spec;
  spec.name = "overload";
  spec.files = 60;
  spec.avg_file_kb = 16.0;
  spec.avg_request_kb = 16.0;
  spec.size_sigma = 0.1;
  spec.alpha = 0.9;
  spec.requests = requests;
  spec.seed = 77;
  return trace::generate(spec);
}

SimConfig open_loop_config(int nodes, double rate) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.node.cache_bytes = 8 * kMiB;
  cfg.arrival.open_loop_rate = rate;
  cfg.admission.buffer_slots_per_node = 500;  // deep enough to queue badly
  return cfg;
}

void expect_partition(const SimResult& r, std::uint64_t requests) {
  EXPECT_EQ(r.completed + r.failed, requests);
  EXPECT_EQ(r.failed, r.failed_deadline + r.failed_retries_exhausted +
                          r.failed_rejected + r.failed_shed);
}

// --- arrival shapes (pure math) ------------------------------------------

TEST(ArrivalShape, FlashStepMultiplier) {
  ArrivalConfig a;
  a.open_loop_rate = 100.0;
  a.shape = ArrivalShape::kFlashCrowd;
  a.flash_at_seconds = 5.0;
  a.flash_factor = 3.0;
  EXPECT_DOUBLE_EQ(a.shape_multiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.shape_multiplier(4.999), 1.0);
  EXPECT_DOUBLE_EQ(a.shape_multiplier(5.0), 3.0);  // step: no ramp
  EXPECT_DOUBLE_EQ(a.shape_multiplier(500.0), 3.0);  // hold defaults to forever
  EXPECT_DOUBLE_EQ(a.peak_multiplier(), 3.0);
  EXPECT_DOUBLE_EQ(a.rate_at(6.0), 300.0);
}

TEST(ArrivalShape, FlashRampAndRelease) {
  ArrivalConfig a;
  a.open_loop_rate = 100.0;
  a.shape = ArrivalShape::kFlashCrowd;
  a.flash_at_seconds = 10.0;
  a.flash_factor = 4.0;
  a.flash_ramp_seconds = 2.0;
  a.flash_hold_seconds = 5.0;
  EXPECT_DOUBLE_EQ(a.shape_multiplier(10.0), 1.0);   // ramp start
  EXPECT_DOUBLE_EQ(a.shape_multiplier(11.0), 2.5);   // halfway up
  EXPECT_DOUBLE_EQ(a.shape_multiplier(12.0), 4.0);   // peak
  EXPECT_DOUBLE_EQ(a.shape_multiplier(17.0), 4.0);   // still holding
  EXPECT_DOUBLE_EQ(a.shape_multiplier(18.0), 2.5);   // halfway down
  EXPECT_DOUBLE_EQ(a.shape_multiplier(19.0), 1.0);   // released
  EXPECT_DOUBLE_EQ(a.shape_multiplier(100.0), 1.0);
  EXPECT_DOUBLE_EQ(a.peak_multiplier(), 4.0);
}

TEST(ArrivalShape, DiurnalSinusoid) {
  ArrivalConfig a;
  a.open_loop_rate = 200.0;
  a.shape = ArrivalShape::kDiurnal;
  a.diurnal_period_seconds = 8.0;
  a.diurnal_amplitude = 0.5;
  EXPECT_DOUBLE_EQ(a.shape_multiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.shape_multiplier(2.0), 1.5);  // quarter period: peak
  EXPECT_NEAR(a.shape_multiplier(4.0), 1.0, 1e-12);
  EXPECT_NEAR(a.shape_multiplier(6.0), 0.5, 1e-12);  // trough
  EXPECT_DOUBLE_EQ(a.peak_multiplier(), 1.5);
}

TEST(ArrivalShape, ValidationRejectsNonsense) {
  const auto tr = cached_workload(100);
  {
    SimConfig cfg = open_loop_config(1, 0.0);  // shaped arrivals need a rate
    cfg.arrival.shape = ArrivalShape::kFlashCrowd;
    EXPECT_THROW(run_once(tr, cfg, PolicyKind::kTraditional), Error);
  }
  {
    SimConfig cfg = open_loop_config(1, 100.0);
    cfg.arrival.shape = ArrivalShape::kDiurnal;
    cfg.arrival.diurnal_amplitude = 1.5;  // would make the rate negative
    EXPECT_THROW(run_once(tr, cfg, PolicyKind::kTraditional), Error);
  }
  {
    SimConfig cfg = open_loop_config(1, 100.0);
    cfg.overload.shedder = ShedderKind::kStaticCap;  // cap of 0 admits nothing
    EXPECT_THROW(run_once(tr, cfg, PolicyKind::kTraditional), Error);
  }
}

// --- non-stationary arrivals in the engine -------------------------------

TEST(Overload, FlashCrowdReplaysBitIdentically) {
  const auto tr = cached_workload(6000);
  SimConfig cfg = open_loop_config(2, 400.0);
  cfg.arrival.shape = ArrivalShape::kFlashCrowd;
  cfg.arrival.flash_at_seconds = 2.0;
  cfg.arrival.flash_factor = 3.0;
  cfg.arrival.flash_ramp_seconds = 0.5;
  const auto r1 = run_once(tr, cfg, PolicyKind::kL2s);
  const auto r2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest(r1), result_digest(r2));
  expect_partition(r1, tr.request_count());
  EXPECT_GT(r1.completed, 0u);
}

TEST(Overload, FlashCrowdRaisesOfferedLoad) {
  // Same trace, same base rate: the flash run must finish the trace in
  // less simulated time than the stationary run (more arrivals per
  // second), which is what makes it an overload generator.
  const auto tr = cached_workload(6000);
  SimConfig cfg = open_loop_config(2, 300.0);
  const auto stationary = run_once(tr, cfg, PolicyKind::kTraditional);
  cfg.arrival.shape = ArrivalShape::kFlashCrowd;
  cfg.arrival.flash_at_seconds = 0.0;
  cfg.arrival.flash_factor = 2.0;
  const auto flash = run_once(tr, cfg, PolicyKind::kTraditional);
  expect_partition(flash, tr.request_count());
  EXPECT_LT(flash.elapsed_seconds, stationary.elapsed_seconds);
}

TEST(Overload, DiurnalShapeRunsAndReplays) {
  const auto tr = cached_workload(6000);
  SimConfig cfg = open_loop_config(2, 400.0);
  cfg.arrival.shape = ArrivalShape::kDiurnal;
  cfg.arrival.diurnal_period_seconds = 3.0;
  cfg.arrival.diurnal_amplitude = 0.6;
  const auto r1 = run_once(tr, cfg, PolicyKind::kLard);
  const auto r2 = run_once(tr, cfg, PolicyKind::kLard);
  EXPECT_EQ(result_digest(r1), result_digest(r2));
  expect_partition(r1, tr.request_count());
}

TEST(Overload, PopularityChurnIsDeterministicAndMovesTheHotSet) {
  // Churn remaps file ids on a fixed rotation schedule: bit-identical
  // run-over-run, but a different cache story than the unchurned replay.
  trace::SyntheticSpec spec;
  spec.name = "churn";
  spec.files = 500;
  spec.avg_file_kb = 24.0;
  spec.requests = 12000;
  spec.avg_request_kb = 16.0;
  spec.alpha = 1.0;
  spec.seed = 9;
  const auto tr = trace::generate(spec);

  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 2 * kMiB;  // small enough that locality matters
  const auto baseline = run_once(tr, cfg, PolicyKind::kL2s);

  cfg.arrival.churn_period_seconds = 0.5;
  cfg.arrival.churn_stride = 137;
  const auto churn1 = run_once(tr, cfg, PolicyKind::kL2s);
  const auto churn2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest(churn1), result_digest(churn2));
  EXPECT_NE(result_digest(churn1), result_digest(baseline));
  expect_partition(churn1, tr.request_count());
}

// --- admission shedders --------------------------------------------------

TEST(Overload, StaticCapShedsAboveTheCap) {
  const auto tr = cached_workload();
  SimConfig cfg = open_loop_config(1, 2000.0);  // ~3x one node's capacity
  cfg.overload.shedder = ShedderKind::kStaticCap;
  cfg.overload.static_cap = 20;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  expect_partition(r, tr.request_count());
  EXPECT_GT(r.failed_shed, 0u);
  // The cap holds the queue short, so nothing should die any other way.
  EXPECT_EQ(r.failed_rejected, 0u);
}

TEST(Overload, QueueDelayShedderBoundsSojourn) {
  const auto tr = cached_workload();
  SimConfig cfg = open_loop_config(1, 2000.0);
  const auto undefended = run_once(tr, cfg, PolicyKind::kTraditional);

  cfg.overload.shedder = ShedderKind::kQueueDelay;
  cfg.overload.target_delay_seconds = 0.02;
  cfg.overload.delay_window_seconds = 0.05;
  const auto defended = run_once(tr, cfg, PolicyKind::kTraditional);
  expect_partition(defended, tr.request_count());
  EXPECT_GT(defended.failed_shed, 0u);
  // Shedding converts queueing into refusals: the served requests see far
  // better latency than the undefended pile-up.
  EXPECT_LT(defended.p95_response_ms, undefended.p95_response_ms);
}

TEST(Overload, AimdShedderReactsToFailures) {
  const auto tr = cached_workload();
  SimConfig cfg = open_loop_config(1, 2000.0);
  cfg.retry.deadline_seconds = 0.2;  // deep queues blow the deadline -> signal
  cfg.overload.shedder = ShedderKind::kAimd;
  cfg.overload.aimd_period_seconds = 0.05;
  cfg.overload.aimd_min_window = 4;
  const auto r = run_once(tr, cfg, PolicyKind::kTraditional);
  expect_partition(r, tr.request_count());
  EXPECT_GT(r.failed_shed, 0u);
  const auto r2 = run_once(tr, cfg, PolicyKind::kTraditional);
  EXPECT_EQ(result_digest(r), result_digest(r2));
}

// --- retry budget / hedging ----------------------------------------------

TEST(Overload, RetryBudgetCapsRetryStorms) {
  trace::SyntheticSpec spec;
  spec.name = "storm";
  spec.files = 300;
  spec.avg_file_kb = 10.0;
  spec.requests = 6000;
  spec.avg_request_kb = 8.0;
  spec.alpha = 0.9;
  spec.seed = 5;
  const auto tr = trace::generate(spec);

  SimConfig cfg;
  cfg.nodes = 4;
  cfg.node.cache_bytes = 4 * kMiB;
  cfg.fault_plan.message_faults.push_back({.loss_prob = 0.05});
  cfg.retry.max_retries = 2;
  cfg.retry.attempt_timeout_seconds = 0.05;
  cfg.retry.deadline_seconds = 1.0;

  const auto unlimited = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_GT(unlimited.retry_attempts, 8u);  // losses do trigger retries

  cfg.overload.retry_budget_ratio = 0.0;  // nothing earned...
  cfg.overload.retry_budget_burst = 8.0;  // ...beyond the initial burst
  const auto budgeted = run_once(tr, cfg, PolicyKind::kL2s);
  expect_partition(budgeted, tr.request_count());
  EXPECT_LE(budgeted.retry_attempts + budgeted.hedge_attempts, 8u);
  EXPECT_LT(budgeted.retry_attempts, unlimited.retry_attempts);
}

TEST(Overload, HedgingLaunchesBackupsAndKeepsAccounting) {
  const auto tr = cached_workload();
  SimConfig cfg = open_loop_config(4, 1500.0);
  // Between the healthy p50 (~0.5 ms) and p95 (~2 ms): the slow tail of a
  // healthy measured pass hedges, the typical request never does.
  cfg.overload.hedge_delay_seconds = 0.002;
  cfg.overload.max_hedges = 1;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  expect_partition(r, tr.request_count());
  EXPECT_GT(r.hedge_attempts, 0u);
  const auto r2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest(r), result_digest(r2));
}

// --- brownout ------------------------------------------------------------

TEST(Overload, BrownoutEngagesUnderOverloadAndReplays) {
  const auto tr = cached_workload();
  SimConfig cfg = open_loop_config(2, 2500.0);
  cfg.overload.brownout = true;
  cfg.overload.brownout_forward_delay_seconds = 0.01;
  cfg.overload.brownout_service_delay_seconds = 0.05;
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  expect_partition(r, tr.request_count());
  EXPECT_GT(r.brownout_transitions, 0u);
  const auto r2 = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(result_digest(r), result_digest(r2));
}

// --- defenses off == all-zero counters -----------------------------------

TEST(Overload, DefaultConfigLeavesEveryOverloadCounterZero) {
  const auto tr = cached_workload(4000);
  SimConfig cfg = open_loop_config(2, 400.0);
  ASSERT_FALSE(cfg.overload.any_on());
  const auto r = run_once(tr, cfg, PolicyKind::kL2s);
  EXPECT_EQ(r.failed_shed, 0u);
  EXPECT_EQ(r.hedge_attempts, 0u);
  EXPECT_EQ(r.brownout_transitions, 0u);
  EXPECT_EQ(r.brownout_final_level, 0);
}

// --- goodput final-bucket flush (regression) -----------------------------

TEST(Overload, RatePerSecondKeepsThePopulatedFinalBucket) {
  // Regression: an event landing exactly at `end` falls into bucket
  // floor((end-start)/interval) == ceil count, one past the old result
  // size, and silently vanished from the timeline.
  telemetry::BucketSeries s;
  const SimTime second = seconds_to_simtime(1.0);
  s.begin(0, second);
  s.bump(seconds_to_simtime(0.5));
  s.bump(seconds_to_simtime(1.5));
  s.bump(seconds_to_simtime(3.0));  // exactly at end
  const auto rates = s.rate_per_second(seconds_to_simtime(3.0));
  ASSERT_EQ(rates.size(), 4u);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_DOUBLE_EQ(total * 1.0, 3.0);  // every bump accounted for
  EXPECT_DOUBLE_EQ(rates[3], 1.0);
}

TEST(Overload, AvailabilityGoodputCountsTheFinalCompletion) {
  stats::AvailabilityTracker tracker;
  const SimTime second = seconds_to_simtime(1.0);
  tracker.begin(0, second, 1);
  tracker.record_completion(seconds_to_simtime(0.2));
  tracker.record_completion(seconds_to_simtime(2.0));  // exactly at end
  const auto rps = tracker.goodput_rps(seconds_to_simtime(2.0));
  ASSERT_EQ(rps.size(), 3u);
  EXPECT_DOUBLE_EQ(std::accumulate(rps.begin(), rps.end(), 0.0), 2.0);
}

}  // namespace
}  // namespace l2s::core
