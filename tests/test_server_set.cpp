#include <gtest/gtest.h>

#include "l2sim/policy/server_set.hpp"

namespace l2s::policy {
namespace {

TEST(ServerSetMap, EmptyForUnknownFile) {
  const ServerSetMap m;
  EXPECT_TRUE(m.members(42).empty());
  EXPECT_FALSE(m.contains(42, 0));
  EXPECT_EQ(m.last_modified(42), 0);
}

TEST(ServerSetMap, AddAndContains) {
  ServerSetMap m;
  m.add(1, 3, 100);
  m.add(1, 5, 200);
  EXPECT_TRUE(m.contains(1, 3));
  EXPECT_TRUE(m.contains(1, 5));
  EXPECT_FALSE(m.contains(1, 4));
  EXPECT_EQ(m.members(1).size(), 2u);
  EXPECT_EQ(m.last_modified(1), 200);
}

TEST(ServerSetMap, AddDuplicateIsNoOp) {
  ServerSetMap m;
  m.add(1, 3, 100);
  m.add(1, 3, 500);
  EXPECT_EQ(m.members(1).size(), 1u);
  EXPECT_EQ(m.last_modified(1), 100);  // unchanged: no modification occurred
}

TEST(ServerSetMap, RemoveUpdatesTimestamp) {
  ServerSetMap m;
  m.add(1, 3, 100);
  m.add(1, 4, 100);
  m.remove(1, 3, 300);
  EXPECT_FALSE(m.contains(1, 3));
  EXPECT_EQ(m.last_modified(1), 300);
  // Removing an absent member changes nothing.
  m.remove(1, 9, 999);
  EXPECT_EQ(m.last_modified(1), 300);
  m.remove(77, 0, 999);  // unknown file: no-op
}

TEST(ServerSetMap, ReplaceAdoptsMembership) {
  ServerSetMap m;
  m.add(1, 0, 10);
  m.replace(1, {4, 5, 6}, 50);
  EXPECT_EQ(m.members(1), (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(m.last_modified(1), 50);
  // Replace can also create a set for a new file.
  m.replace(2, {7}, 60);
  EXPECT_TRUE(m.contains(2, 7));
}

TEST(ServerSetMap, CountsFilesAndMembers) {
  ServerSetMap m;
  m.add(1, 0, 0);
  m.add(1, 1, 0);
  m.add(2, 0, 0);
  EXPECT_EQ(m.tracked_files(), 2u);
  EXPECT_EQ(m.total_members(), 3u);
  m.clear();
  EXPECT_EQ(m.tracked_files(), 0u);
}

}  // namespace
}  // namespace l2s::policy
