// Suite for the Olmos-style time-varying miss curves.
#include <gtest/gtest.h>

#include <cmath>

#include "l2sim/analytic/che.hpp"
#include "l2sim/analytic/transient.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::analytic {
namespace {

core::ArrivalConfig stationary_arrival() {
  core::ArrivalConfig a;
  a.shape = core::ArrivalShape::kStationary;
  return a;
}

// With a stationary shape and no churn, every sample must reproduce the
// stationary Che solution: same hit rate, window T(t) = T_C.
TEST(AnalyticTransient, StationaryReducesToChe) {
  const auto pop = ZipfPopularity::make(4000.0, 0.9);
  const double cache = 300.0;
  const double rate = 800.0;
  const CheSolution che = che_lru(pop, cache, rate);
  TransientOptions opt;
  opt.samples = 8;
  const TransientCurve curve =
      transient_curve(pop, cache, rate, stationary_arrival(), 10.0, opt);
  ASSERT_EQ(curve.points.size(), 8u);
  for (const auto& p : curve.points) {
    EXPECT_NEAR(p.hit_rate, che.hit_rate, 1e-6);
    EXPECT_NEAR(p.window_seconds, che.characteristic_seconds,
                1e-4 * che.characteristic_seconds);
    EXPECT_DOUBLE_EQ(p.rate_rps, rate);
  }
  EXPECT_NEAR(curve.mean_hit, che.hit_rate, 1e-6);
}

// Pure rate modulation under IRM leaves the hit rate unchanged: the
// characteristic window shrinks exactly as fast as the intensity grows
// (A_i depends only on the integrated window intensity). This is the
// model's — correct — claim that an IRM flash crowd hurts via queueing,
// not via the cache.
TEST(AnalyticTransient, FlashCrowdPreservesHitRateShrinksWindow) {
  const auto pop = ZipfPopularity::make(4000.0, 0.9);
  const double cache = 300.0;
  core::ArrivalConfig a;
  a.shape = core::ArrivalShape::kFlashCrowd;
  a.flash_at_seconds = 4.0;
  a.flash_factor = 3.0;
  a.flash_ramp_seconds = 0.0;
  TransientOptions opt;
  opt.samples = 33;
  const TransientCurve curve = transient_curve(pop, cache, 500.0, a, 16.0, opt);
  const CheSolution che = che_lru(pop, cache, 500.0);
  EXPECT_NEAR(curve.min_hit, che.hit_rate, 1e-3);
  EXPECT_NEAR(curve.max_hit, che.hit_rate, 1e-3);

  // Deep inside the flash the window has shrunk ~3x.
  double window_before = 0.0;
  double window_inside = 0.0;
  for (const auto& p : curve.points) {
    if (p.t_seconds < 3.5) window_before = p.window_seconds;
    if (p.t_seconds > 12.0 && window_inside == 0.0) window_inside = p.window_seconds;
  }
  EXPECT_GT(window_before, 2.0 * window_inside);
}

// The saturation clip bounds the modelled served rate: with the clip at
// the nominal rate a flash crowd cannot churn the cache at all.
TEST(AnalyticTransient, ClipBoundsServedRate) {
  const auto pop = ZipfPopularity::make(4000.0, 0.9);
  core::ArrivalConfig a;
  a.shape = core::ArrivalShape::kFlashCrowd;
  a.flash_at_seconds = 2.0;
  a.flash_factor = 5.0;
  TransientOptions opt;
  opt.samples = 9;
  opt.clip_rate_rps = 500.0;
  const TransientCurve curve = transient_curve(pop, 300.0, 500.0, a, 8.0, opt);
  for (const auto& p : curve.points) EXPECT_LE(p.rate_rps, 500.0 + 1e-9);
}

// Popularity churn is the genuinely non-stationary case: right after a
// rotation the promoted files are not cached yet, so the hit rate dips
// below stationary and recovers as the window refills.
TEST(AnalyticTransient, ChurnDipsHitRateAfterRotation) {
  const auto pop = ZipfPopularity::make(2000.0, 1.0);
  const double cache = 150.0;
  const double rate = 400.0;
  core::ArrivalConfig a = stationary_arrival();
  a.churn_period_seconds = 5.0;
  a.churn_stride = 400;
  TransientOptions opt;
  opt.samples = 41;
  const TransientCurve curve = transient_curve(pop, cache, rate, a, 20.0, opt);
  const double stationary = che_lru(pop, cache, rate).hit_rate;
  EXPECT_LT(curve.min_hit, stationary - 0.02);
  EXPECT_LE(curve.mean_hit, stationary + 1e-9);
  // Before the first rotation the ranking is still the warmup ranking.
  EXPECT_NEAR(curve.points.front().hit_rate, stationary, 1e-3);

  // The dip recovers within an epoch: the sample right before the next
  // rotation must sit above the sample right after the previous one.
  double after_rotation = 0.0;
  double before_next = 0.0;
  for (const auto& p : curve.points) {
    if (p.t_seconds >= 5.0 && after_rotation == 0.0) after_rotation = p.hit_rate;
    if (p.t_seconds < 10.0) before_next = p.hit_rate;
  }
  EXPECT_GT(before_next, after_rotation);
}

TEST(AnalyticTransient, EverythingFitsStaysPerfect) {
  const auto pop = ZipfPopularity::make(100.0, 1.0);
  core::ArrivalConfig a = stationary_arrival();
  a.churn_period_seconds = 2.0;
  a.churn_stride = 30;
  TransientOptions opt;
  opt.samples = 5;
  const TransientCurve curve = transient_curve(pop, 200.0, 100.0, a, 10.0, opt);
  for (const auto& p : curve.points) EXPECT_DOUBLE_EQ(p.hit_rate, 1.0);
}

TEST(AnalyticTransient, ValidatesInputs) {
  const auto pop = ZipfPopularity::make(100.0, 1.0);
  EXPECT_THROW((void)transient_curve(pop, 0.0, 1.0, stationary_arrival(), 1.0), Error);
  EXPECT_THROW((void)transient_curve(pop, 10.0, 0.0, stationary_arrival(), 1.0), Error);
  EXPECT_THROW((void)transient_curve(pop, 10.0, 1.0, stationary_arrival(), 0.0), Error);
  TransientOptions opt;
  opt.samples = 1;
  EXPECT_THROW((void)transient_curve(pop, 10.0, 1.0, stationary_arrival(), 1.0, opt), Error);
}

}  // namespace
}  // namespace l2s::analytic
