#include <gtest/gtest.h>

#include <vector>

#include "l2sim/des/process.hpp"

namespace l2s::des {
namespace {

TEST(StageChain, RunsStagesInOrder) {
  Scheduler s;
  Resource a(s, "a");
  Resource b(s, "b");
  std::vector<std::string> log;
  StageChain(s)
      .then([&] { log.push_back("start"); })
      .use(a, 10)
      .then([&] { log.push_back("after-a"); })
      .use(b, 5)
      .run([&] { log.push_back("done"); });
  s.run();
  EXPECT_EQ(log, (std::vector<std::string>{"start", "after-a", "done"}));
  EXPECT_EQ(s.now(), 15);
}

TEST(StageChain, DelayAddsLatencyWithoutQueueing) {
  Scheduler s;
  SimTime done_at = -1;
  StageChain(s).delay(7).delay(3).run([&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 10);
}

TEST(StageChain, EmptyChainCompletesImmediately) {
  Scheduler s;
  bool done = false;
  StageChain(s).run([&] { done = true; });
  EXPECT_TRUE(done);  // no stages: completion is synchronous
}

TEST(StageChain, SharesResourceQueuesWithOtherChains) {
  Scheduler s;
  Resource r(s, "shared");
  SimTime first = 0;
  SimTime second = 0;
  StageChain(s).use(r, 10).run([&] { first = s.now(); });
  StageChain(s).use(r, 10).run([&] { second = s.now(); });
  s.run();
  EXPECT_EQ(first, 10);
  EXPECT_EQ(second, 20);
}

TEST(StageChain, CompletionMayStartNewChain) {
  Scheduler s;
  Resource r(s, "r");
  int rounds = 0;
  std::function<void()> start = [&] {
    StageChain(s).use(r, 5).run([&] {
      if (++rounds < 3) start();
    });
  };
  start();
  s.run();
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(s.now(), 15);
}

TEST(StageChain, TemporaryChainObjectIsSafe) {
  Scheduler s;
  Resource r(s, "r");
  bool done = false;
  {
    StageChain chain(s);
    chain.use(r, 50);
    chain.run([&] { done = true; });
    // chain goes out of scope while the work is still pending
  }
  s.run();
  EXPECT_TRUE(done);
}

TEST(StageChain, ManyStages) {
  Scheduler s;
  Resource r(s, "r");
  StageChain chain(s);
  for (int i = 0; i < 100; ++i) chain.use(r, 1);
  bool done = false;
  chain.run([&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), 100);
}

}  // namespace
}  // namespace l2s::des
