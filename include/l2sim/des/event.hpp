// Allocation-free event callable for the DES kernel.
//
// InlineEvent is a move-only, type-erased `void()` callable with a fixed
// inline buffer sized for the capture sets the simulator actually creates
// (`[this, conn]`, `[this, conn, bytes]`, ... — a pointer, a shared_ptr and
// a few scalars). Callables that fit are stored in place: scheduling an
// event performs zero heap allocations. Oversized captures (mostly nested
// continuations that capture another InlineEvent) spill into EventArena, a
// thread-local size-classed free list, so even the spill path stops
// allocating once the simulation reaches steady state.
//
// Contrast with std::function: libstdc++'s inline buffer is 16 bytes, so
// nearly every event the simulator schedules used to heap-allocate, and the
// scheduler's heap moved those 32-byte std::function objects around on
// every sift. InlineEvent gives the kernel a buffer sized for the workload
// and a stable home (the scheduler's slot pool) so the hot path never
// touches the allocator and the heap sifts 24-byte POD keys instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace l2s::des {

/// Thread-local free-list arena for event captures that do not fit the
/// inline buffer. Blocks are binned by size class and recycled instead of
/// returned to the global allocator; each simulation runs on one thread,
/// so allocate/deallocate always hit the same arena and need no locks.
class EventArena {
 public:
  struct Stats {
    std::uint64_t fresh_blocks = 0;  ///< blocks obtained from operator new
    std::uint64_t reused_blocks = 0; ///< blocks served from a free list
    std::uint64_t oversize = 0;      ///< requests too big for any size class
    std::uint64_t outstanding = 0;   ///< blocks currently live
  };

  [[nodiscard]] static void* allocate(std::size_t size);
  static void deallocate(void* p, std::size_t size) noexcept;

  /// This thread's counters (tests and the kernel bench read these).
  [[nodiscard]] static Stats stats() noexcept;

  /// Release every cached free block to the global allocator and zero the
  /// counters. Outstanding blocks are untouched.
  static void trim() noexcept;
};

/// Move-only type-erased `void()` callable with inline small-buffer storage.
class InlineEvent {
 public:
  /// Inline capture capacity. 48 bytes holds the simulator's common shapes
  /// — `[this, conn]` (8 + 16), `[this, conn, current, owner, file_bytes]`
  /// (40) — while keeping sizeof(InlineEvent) to a single cache line.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = 16;

  InlineEvent() noexcept = default;
  InlineEvent(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineEvent> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineEvent(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_.inline_buf)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      void* block = EventArena::allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      storage_.heap = block;
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept { move_from(other); }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  InlineEvent& operator=(std::nullptr_t) noexcept {
    destroy();
    ops_ = nullptr;
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { destroy(); }

  void operator()() { ops_->invoke(target()); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const InlineEvent& e, std::nullptr_t) noexcept { return !e; }

  /// True when the callable lives in the inline buffer (no arena block).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->spill_size == 0;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct `dst` from `src` and destroy `src`. nullptr means the
    // callable is trivially copyable and relocates via plain memcpy — the
    // common case (captures of `this`, raw pointers and scalars), kept
    // branch-cheap because the kernel relocates every event twice (into
    // its slot, then out to fire). Spilled events relocate by stealing
    // the arena block pointer and never consult this.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;  ///< nullptr = trivially destructible
    std::size_t spill_size;           ///< arena block size; 0 = stored inline
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      0,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      nullptr,  // heap relocation steals the pointer; never consulted
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn),
  };

  [[nodiscard]] void* target() noexcept {
    return ops_->spill_size == 0 ? static_cast<void*>(storage_.inline_buf)
                                 : storage_.heap;
  }

  void destroy() noexcept {
    if (ops_ == nullptr) return;
    if (ops_->spill_size == 0) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_.inline_buf);
    } else {
      if (ops_->destroy != nullptr) ops_->destroy(storage_.heap);
      EventArena::deallocate(storage_.heap, ops_->spill_size);
    }
  }

  void move_from(InlineEvent& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->spill_size != 0) {
        storage_.heap = other.storage_.heap;
      } else if (ops_->relocate == nullptr) {
        // Trivially copyable: copying the whole buffer (tail included)
        // beats an indirect call for these 48 bytes.
        __builtin_memcpy(storage_.inline_buf, other.storage_.inline_buf, kInlineSize);
      } else {
        ops_->relocate(storage_.inline_buf, other.storage_.inline_buf);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  union Storage {
    alignas(kInlineAlign) unsigned char inline_buf[kInlineSize];
    void* heap;
  } storage_;
};

static_assert(sizeof(InlineEvent) == 64, "one event header per cache line");

}  // namespace l2s::des
