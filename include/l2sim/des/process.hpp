// StageChain: a small helper to express a request's journey through a
// sequence of resources and latencies without hand-written callback
// pyramids. Each stage runs when the previous completes:
//
//   StageChain(sched)
//       .use(nic_out, send_time)
//       .delay(switch_latency)
//       .use(nic_in, recv_time)
//       .run([&] { deliver(); });
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "l2sim/des/resource.hpp"
#include "l2sim/des/scheduler.hpp"

namespace l2s::des {

class StageChain {
 public:
  explicit StageChain(Scheduler& sched) : sched_(sched) {}

  /// Queue at `resource` for `service` time.
  StageChain& use(Resource& resource, SimTime service);

  /// Pure latency (no queueing, e.g. wire/switch delay).
  StageChain& delay(SimTime d);

  /// Immediate side effect between stages.
  StageChain& then(EventFn action);

  /// Start the chain; `on_complete` fires after the last stage. The chain
  /// owns its continuation state, so the StageChain object itself may be a
  /// temporary.
  void run(EventFn on_complete);

 private:
  using Stage = std::function<void(EventFn next)>;
  Scheduler& sched_;
  std::vector<Stage> stages_;
};

}  // namespace l2s::des
