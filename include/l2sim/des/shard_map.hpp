// ShardMap: the static partition of simulated entities (cluster nodes)
// across DES shards.
//
// Entities are assigned in contiguous blocks — node i and node i+1 land on
// the same shard unless a block boundary falls between them — because the
// cluster's locality structure is index-contiguous too (rack-aware and
// fat-tree topologies, when they arrive, will partition the same way).
// Blocks differ in size by at most one entity, so no shard carries more
// than ceil(entities / shards) nodes.
#pragma once

#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::des {

class ShardMap {
 public:
  /// Partition `entities` (>= 1) across `shards` (clamped to
  /// [1, entities]): more shards than entities would leave empty shards
  /// paying synchronization cost for nothing.
  ShardMap(int entities, int shards)
      : entities_(entities),
        shards_(shards < 1 ? 1 : (shards > entities ? entities : shards)) {
    L2S_REQUIRE(entities >= 1);
    base_ = entities_ / shards_;
    extra_ = entities_ % shards_;  // the first `extra_` blocks get one more
  }

  /// Group-aligned partition: entities come in contiguous groups of `group`
  /// (rack spans), and no group is ever split across two shards — the
  /// grouping that lets rack-aware lookahead give intra-shard traffic the
  /// narrow same-rack latency bound. Groups are balanced across shards like
  /// entities are in the plain constructor; `group` == 1 (or not dividing
  /// `entities`) degenerates to the plain entity partition.
  ShardMap(int entities, int shards, int group)
      : ShardMap(entities, shards) {
    if (group <= 1 || entities % group != 0) return;
    const int groups = entities / group;
    if (shards_ > groups) shards_ = groups;  // never split a group
    // Re-express the balanced-blocks partition in units of whole groups.
    base_ = (groups / shards_) * group;
    extra_ = groups % shards_;
    group_ = group;
  }

  [[nodiscard]] int entities() const { return entities_; }
  [[nodiscard]] int shards() const { return shards_; }

  /// The group size the partition is aligned to (1 = plain entity blocks).
  [[nodiscard]] int group() const { return group_; }

  /// Which shard owns entity `e`. The first `extra_` blocks are oversized
  /// by one allocation unit (an entity, or a whole group when aligned).
  [[nodiscard]] int shard_of(int e) const {
    L2S_REQUIRE(e >= 0 && e < entities_);
    const int fat = extra_ * (base_ + group_);  // entities in oversized blocks
    if (e < fat) return e / (base_ + group_);
    return extra_ + (e - fat) / base_;
  }

  /// The [begin, end) entity range of shard `s`.
  [[nodiscard]] std::pair<int, int> range(int s) const {
    L2S_REQUIRE(s >= 0 && s < shards_);
    const int fat = (s < extra_ ? s : extra_) * group_;
    const int begin = s * base_ + fat;
    const int size = base_ + (s < extra_ ? group_ : 0);
    return {begin, begin + size};
  }

 private:
  int entities_;
  int shards_;
  int base_ = 0;
  int extra_ = 0;
  int group_ = 1;  ///< allocation unit (plain ctor: one entity)
};

}  // namespace l2s::des
