// ShardMap: the static partition of simulated entities (cluster nodes)
// across DES shards.
//
// Entities are assigned in contiguous blocks — node i and node i+1 land on
// the same shard unless a block boundary falls between them — because the
// cluster's locality structure is index-contiguous too (rack-aware and
// fat-tree topologies, when they arrive, will partition the same way).
// Blocks differ in size by at most one entity, so no shard carries more
// than ceil(entities / shards) nodes.
#pragma once

#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::des {

class ShardMap {
 public:
  /// Partition `entities` (>= 1) across `shards` (clamped to
  /// [1, entities]): more shards than entities would leave empty shards
  /// paying synchronization cost for nothing.
  ShardMap(int entities, int shards)
      : entities_(entities),
        shards_(shards < 1 ? 1 : (shards > entities ? entities : shards)) {
    L2S_REQUIRE(entities >= 1);
    base_ = entities_ / shards_;
    extra_ = entities_ % shards_;  // the first `extra_` blocks get one more
  }

  [[nodiscard]] int entities() const { return entities_; }
  [[nodiscard]] int shards() const { return shards_; }

  /// Which shard owns entity `e`.
  [[nodiscard]] int shard_of(int e) const {
    L2S_REQUIRE(e >= 0 && e < entities_);
    const int fat = extra_ * (base_ + 1);  // entities in the oversized blocks
    if (e < fat) return e / (base_ + 1);
    return extra_ + (e - fat) / base_;
  }

  /// The [begin, end) entity range of shard `s`.
  [[nodiscard]] std::pair<int, int> range(int s) const {
    L2S_REQUIRE(s >= 0 && s < shards_);
    const int fat = s < extra_ ? s : extra_;
    const int begin = s * base_ + fat;
    const int size = base_ + (s < extra_ ? 1 : 0);
    return {begin, begin + size};
  }

 private:
  int entities_;
  int shards_;
  int base_ = 0;
  int extra_ = 0;
};

}  // namespace l2s::des
