// A shard-confined cluster forwarding workload for the sharded DES kernel.
//
// This is the kernel-level stand-in for a saturated cluster: every node
// carries a population of requests that alternate service (node-local
// compute) with forwarding to a hashed-random peer, paying the fixed
// cross-node network latency — exactly the communication shape of the
// cluster engine, but with handlers that touch only shard-local state, so
// it satisfies the ShardedScheduler threaded-mode contract and measures
// the window protocol's real concurrency.
//
// Determinism is schedule-independent by construction:
//   * all randomness is counter-based — a splitmix64 hash of
//     (seed, request, hop) — so a draw never depends on execution order;
//   * per-shard accumulators fold commutatively (xor for the digest, sum
//     for counts, max for the makespan), so merged results are invariant
//     under any event interleaving;
//   * timestamps are pure functions of the request history, so the serial
//     reference, the merge-mode run, and any threaded shard count produce
//     identical folds. The tests pin this equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/des/shard_map.hpp"
#include "l2sim/des/sharded_scheduler.hpp"

namespace l2s::des {

struct WorkloadParams {
  int nodes = 256;
  int requests_per_node = 4;  ///< closed-loop population per node
  int hops = 64;              ///< forwards before a request completes
  SimTime latency = 10'000;   ///< cross-node latency (ns) == lookahead
  SimTime mean_service = 16'000;  ///< per-hop service, uniform [m/2, 3m/2)
  std::uint64_t seed = 1;
  /// Rack geometry: nodes split into `racks` contiguous blocks; a forward
  /// between different racks pays `cross_rack_latency` instead of
  /// `latency` (0 = same as `latency`). racks == 1 reproduces the classic
  /// uniform workload exactly — the equivalence tests pin it.
  int racks = 1;
  SimTime cross_rack_latency = 0;

  [[nodiscard]] SimTime cross_latency() const {
    return cross_rack_latency > 0 ? cross_rack_latency : latency;
  }
  [[nodiscard]] int rack_span() const {
    return racks > 1 && nodes % racks == 0 ? nodes / racks : nodes;
  }
  [[nodiscard]] int rack_of(int node) const { return node / rack_span(); }
};

struct WorkloadResult {
  std::uint64_t events = 0;  ///< hop handlers executed
  std::uint64_t digest = 0;  ///< order-insensitive fold over every hop
  SimTime makespan = 0;      ///< latest request completion time
  std::uint64_t windows = 0; ///< threaded-mode synchronization windows
};

/// Run on a single PR-1 Scheduler — the serial reference engine.
[[nodiscard]] WorkloadResult run_cluster_workload_serial(
    const WorkloadParams& p);

/// Run on a ShardedScheduler with `shards` shards (clamped to [1, nodes])
/// in the given mode; `threads` as in ShardedScheduler::run. The result
/// folds (events, digest, makespan) are identical to the serial reference
/// for every shard count, mode, and thread count.
[[nodiscard]] WorkloadResult run_cluster_workload_sharded(
    const WorkloadParams& p, int shards, ShardedScheduler::Mode mode,
    unsigned threads = 0);

/// Run on a caller-constructed ShardedScheduler (fresh, never run), so the
/// caller can configure it first — e.g. enable_introspection() — and
/// inspect it afterwards. engine.lookahead() must not exceed p.latency
/// (the workload's conservative bound).
[[nodiscard]] WorkloadResult run_cluster_workload_on(const WorkloadParams& p,
                                                     ShardedScheduler& engine,
                                                     unsigned threads = 0);

/// The rack-aligned shard partition for this workload: contiguous racks
/// never straddle shards (plain balanced partition when racks == 1).
[[nodiscard]] ShardMap workload_shard_map(const WorkloadParams& p, int shards);

/// The pairwise lookahead matrix implied by the workload's rack geometry
/// over `map`: entry (r, s) is the minimum interconnect latency any
/// message from a node of shard r to a node of shard s can pay — the
/// same-rack `latency` when the two shards touch a common rack, the wider
/// `cross_rack_latency` otherwise. Feed it to
/// ShardedScheduler::set_pairwise_lookahead before running.
[[nodiscard]] std::vector<SimTime> workload_lookahead_matrix(
    const WorkloadParams& p, const ShardMap& map);

}  // namespace l2s::des
