// Single-server FIFO resource: the building block for CPUs, disks, NICs
// and the router. Jobs queue in arrival order; the resource tracks busy
// time (for utilization/idle-time reports) and queue statistics.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "l2sim/des/scheduler.hpp"

namespace l2s::des {

class Resource {
 public:
  Resource(Scheduler& sched, std::string name);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueue a job needing `service` time; `done` fires at completion.
  void submit(SimTime service, EventFn done);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_; }
  [[nodiscard]] SimTime busy_time() const { return busy_time_; }

  /// Fraction of [0, elapsed] the server was busy.
  [[nodiscard]] double utilization(SimTime elapsed) const;

  /// Zero the accumulated statistics (measurement starts after warm-up);
  /// in-flight work is unaffected.
  void reset_stats();

 private:
  struct Job {
    SimTime service;
    EventFn done;
  };

  void start_next();

  Scheduler& sched_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  SimTime busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace l2s::des
