// Sharded DES kernel: the event space split across per-shard replicas of
// the PR-1 kernel (InlineEvent arena + 4-ary indexed heap, one l2s::des::
// Scheduler per shard), synchronized conservatively.
//
// The cluster interconnect gives every cross-node interaction a fixed
// minimum latency — a VIA message pays 3 us sender CPU + 6 us sender NIC +
// 1 us switch before anything can happen at the receiver (net/params.hpp;
// NetParams::min_cross_node_latency() derives the constant). That latency
// is guaranteed *lookahead* in the PDES sense: an event executing at time t
// on one shard cannot affect another shard before t + L, so a shard may
// safely run ahead of its neighbors by up to L without ever receiving a
// message in its past. This class exploits that bound with the classic
// bounded-window (null-message family) conservative protocol:
//
//   repeat:
//     barrier; M := min over shards of next-event time      (global floor)
//     window  := [M, M + L)
//     each shard runs its events in the window, in parallel; cross-shard
//     hand-offs (post) carry a stamp >= sender-now + L >= M + L, so they
//     can only land in FUTURE windows — never the one executing
//     barrier; mailboxes drain, sorted by (time, src shard, send seq)
//
// Determinism is by construction, not by luck: within a window each shard
// executes its own heap order (time, seq); the set of mailbox messages
// observable at a barrier is exactly the sends of the previous window (the
// barrier is the happens-before edge), and they enter the heap in the
// deterministic (time, src, seq) sort order. No outcome depends on which
// worker thread ran which shard when. Two execution modes share the data
// structures:
//
//   kSequentialMerge  all shards drained by one thread in exact global
//                     (time, seq) order — the shards share one sequence
//                     counter, so execution is bit-identical to a single
//                     Scheduler no matter how events are partitioned.
//                     This is the mode the cluster engine runs today (its
//                     components still share front-end state across
//                     shards); the golden-digest net pins the equivalence.
//   kThreaded         the windowed protocol on a worker pool, for event
//                     graphs whose handlers touch only shard-local state
//                     (the des-level cluster workload, large-N studies).
//
// Threaded-mode application contract:
//   * a handler running on shard s touches only shard-s state, the shard-s
//     Scheduler (local events), and post() for everything cross-shard;
//   * post() stamps must be >= sender now + lookahead (checked);
//   * post() callables must fit InlineEvent's inline buffer (checked) —
//     cross-shard messages are small, like real packets; the restriction
//     keeps the thread-local spill arenas out of cross-thread traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/des/scheduler.hpp"

namespace l2s::des {

/// Measured behaviour of a sharded run, collected only when
/// enable_introspection() was called before run(). Everything here is an
/// *observation*: collecting it never changes event order, and the
/// simulation-derived fields (window events, occupancy, message matrix)
/// are deterministic run-over-run — only the wall-clock seconds vary.
struct ShardIntrospection {
  /// log2 histograms: bucket b counts values v with bit_width(v) == b,
  /// i.e. v in [2^(b-1), 2^b); bucket 0 counts v == 0.
  static constexpr std::size_t kLog2Buckets = 33;
  /// Per-shard (floor, events) window timeline entries retained at most.
  static constexpr std::size_t kTimelineCap = 1 << 14;

  struct Shard {
    std::uint64_t window_events = 0;   ///< events executed inside threaded windows
    std::uint64_t active_windows = 0;  ///< windows where this shard ran >= 1 event
    std::uint64_t posted = 0;          ///< cross-shard sends originating here
    std::vector<std::uint64_t> sent_to;         ///< messages to each destination shard
    std::vector<std::uint64_t> occupancy_log2;  ///< events-per-active-window histogram
    std::vector<std::uint64_t> slack_log2_us;   ///< post() slack beyond the minimum
                                                ///< stamp (now + L), in microseconds
    /// (window floor M, events run) for this shard's first kTimelineCap
    /// active windows — the raw material for per-shard utilization tracks.
    std::vector<std::pair<SimTime, std::uint32_t>> timeline;
    double run_seconds = 0.0;  ///< wall time spent inside run_window
  };

  std::vector<Shard> shards;
  /// Wall time each worker spent blocked at window barriers / running
  /// windows. Nondeterministic by nature (these ARE the stall data the
  /// shard-confined front-end design needs); sized by the worker count of
  /// the last threaded run.
  std::vector<double> worker_barrier_seconds;
  std::vector<double> worker_run_seconds;
};

class ShardedScheduler {
 public:
  enum class Mode { kSequentialMerge, kThreaded };

  /// `lookahead` is the guaranteed minimum cross-shard latency (> 0 in
  /// threaded mode; the window width). `shards` >= 1.
  ShardedScheduler(int shards, SimTime lookahead, Mode mode);
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  /// The effective global lookahead: the constructor value, or the minimum
  /// pairwise entry once set_pairwise_lookahead() installed a matrix.
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  /// Replace the single global lookahead with a per-shard-pair bound:
  /// `matrix` is row-major shards() x shards(), entry (src, dst) the
  /// guaranteed minimum latency of any cross-shard effect from src to dst
  /// (the diagonal bounds self-posts). All entries must be positive.
  ///
  /// Soundness: the raw matrix bounds single messages, but a shard's
  /// window end must lower-bound *chains* (src relays through a third
  /// shard, or an echo returns to its originator after the originator ran
  /// ahead). The scheduler therefore derives a min-plus closure E of the
  /// matrix (Floyd-Warshall; E(s,s) becomes the shortest cycle through s)
  /// and opens per-shard windows [M, w_s) with
  ///     w_s = min over r of (next_r + E(r, s)),
  /// which widens windows between far-apart shard pairs (rack-aligned
  /// shards under the rack-aware topology) while the pair actually sharing
  /// a rack keeps the tight bound. post() stamps are checked against the
  /// raw (src, dst) entry. Call before run(); not while a run is active.
  void set_pairwise_lookahead(std::vector<SimTime> matrix);
  [[nodiscard]] bool pairwise_lookahead() const { return !pairwise_.empty(); }
  /// The raw post() bound for a pair (the global lookahead when no matrix).
  [[nodiscard]] SimTime pair_lookahead(int src, int dst) const {
    if (pairwise_.empty()) return lookahead_;
    return pairwise_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(shards()) +
                     static_cast<std::size_t>(dst)];
  }

  /// Shard `s`'s kernel: local scheduling (at/after), now(), stats. In
  /// threaded mode, only the worker currently executing shard `s` (or the
  /// single setup thread before run()) may touch it.
  [[nodiscard]] Scheduler& shard(int s) {
    L2S_REQUIRE(s >= 0 && s < shards());
    return *shards_[static_cast<std::size_t>(s)];
  }

  /// Cross-shard hand-off: run `fn` on shard `dst`'s timeline at absolute
  /// time `t`, with t >= shard(src).now() + lookahead (the conservative
  /// promise that makes the window protocol sound; checked in both modes).
  /// Messages from one source drain at the destination in (time, src, seq)
  /// order, so results are independent of thread schedule.
  void post(int src, int dst, SimTime t, EventFn fn);

  /// Drain every shard. kSequentialMerge ignores `threads` and executes on
  /// the caller in exact global (time, seq) order. kThreaded runs the
  /// bounded-window protocol on min(shards, threads) workers; threads == 0
  /// takes the process thread budget (L2SIM_THREADS / hardware
  /// concurrency). May be called repeatedly as new events are scheduled.
  void run(unsigned threads = 0);

  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::uint64_t messages_posted() const { return posted_; }
  /// Windows executed by threaded runs (merge mode leaves it at 0).
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_; }

  /// Start collecting ShardIntrospection. Call before run(); counters
  /// accumulate across repeated runs. Off by default — the hot paths pay
  /// nothing (a null check) when disabled.
  void enable_introspection();
  /// The collected data, or null when introspection was never enabled.
  [[nodiscard]] const ShardIntrospection* introspection() const { return intro_.get(); }

 private:
  struct Msg {
    SimTime time = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;  ///< per-source send counter: FIFO per link
    EventFn fn;
  };
  /// One inbox per shard. Senders append under the lock (many writers);
  /// the owner swaps the vector out at a barrier (single reader, never
  /// concurrent with a send — sends only happen inside a window).
  struct Mailbox {
    std::mutex mu;
    std::vector<Msg> msgs;
  };

  void run_merge();
  void run_windows(unsigned threads);
  /// Move every pending inbox message of shard `s` into its heap, in
  /// (time, src, seq) order. Caller must be the shard's current owner.
  void drain_inbox(int s);

  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::vector<std::unique_ptr<Mailbox>> inbox_;
  std::vector<std::uint64_t> msg_seq_;  ///< per-source send counters
  SimTime lookahead_;
  /// Raw per-pair bounds (row-major; empty = uniform lookahead_) and their
  /// min-plus closure used for window ends (see set_pairwise_lookahead).
  std::vector<SimTime> pairwise_;
  std::vector<SimTime> closure_;
  Mode mode_;
  std::uint64_t global_seq_ = 0;  ///< merge mode: shared by all shards
  std::uint64_t posted_ = 0;      ///< merge-mode increments are unsynchronized;
                                  ///< threaded mode counts via msg_seq_ sum
  std::uint64_t windows_ = 0;
  /// Introspection (null = off). Per-shard rows are written only by the
  /// shard's current owner (same exclusivity argument as the shard heaps:
  /// dynamic claiming hands a shard to one worker per window, barriers
  /// order the hand-offs), per-worker rows only by that worker.
  std::unique_ptr<ShardIntrospection> intro_;
  /// Floor M of the window being executed; written by the barrier
  /// completion step, read by workers in phase B (barrier-ordered).
  SimTime window_floor_ = 0;
};

}  // namespace l2s::des
