// Discrete-event simulation kernel.
//
// A Scheduler owns the simulation clock and a min-heap of pending events.
// Events scheduled for the same instant fire in submission order (a strict
// monotone sequence number breaks ties), which makes runs deterministic —
// a property every reproduction experiment in this repository relies on.
//
// Kernel layout (the trace replays push hundreds of millions of events
// through here, so the hot path is allocation-free and defined inline):
//
//  * Events are InlineEvent callables (see event.hpp): captures up to 48
//    bytes live inline, larger ones in a thread-local free-list arena.
//  * The priority queue is a 4-ary implicit min-heap over 16-byte POD
//    keys `(time, seq·slot)`. Sifting moves only these keys; the
//    callables themselves sit still in a slot pool recycled through a
//    free list. A 4-ary heap halves the tree depth of the binary heap the
//    kernel used to borrow from std::priority_queue, and the four
//    children of a node share one 64-byte cache line of keys.
//  * step() relocates the due event into a local before invoking it, so
//    handlers may schedule new events (growing the pool) safely.
//
// History note: the previous std::priority_queue-based kernel had to move
// the type-erased callable out of `top()` through a `const_cast` (top()
// returns const&), which is UB-adjacent and also forced std::function —
// i.e. copyable — events. The indexed heap owns its storage outright, so
// move-only callables are supported and `step()` needs no casts; a
// regression test (Scheduler.MoveOnlyCallables) pins this down. The old
// kernel survives as the baseline in bench/legacy_scheduler.hpp, measured
// against this one by bench/des_kernel_bench.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/des/event.hpp"

namespace l2s::des {

using EventFn = InlineEvent;

class Scheduler {
 public:
  Scheduler() = default;
  // Not movable: seq_src_ may point at next_seq_ (self-referential), and
  // resources hold long-lived Scheduler&. Shards live behind unique_ptr.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void at(SimTime t, EventFn fn) {
    L2S_REQUIRE(t >= now_);
    L2S_REQUIRE(*seq_src_ < kMaxSeq);
    const std::uint32_t slot = acquire_slot(std::move(fn));
    heap_.push_back(Key{((*seq_src_)++ << kSlotBits) | slot, t});
    sift_up(heap_.size() - 1);
  }

  /// Schedule `fn` `delay` nanoseconds from now (delay >= 0).
  void after(SimTime delay, EventFn fn) {
    L2S_REQUIRE(delay >= 0);
    at(now_ + delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const { return now_; }

  /// Execute the next event. Returns false if no events remain.
  bool step() {
    if (heap_.empty()) return false;
    const Key top = heap_[0];
    const auto slot = static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
    // The due slot is a likely cache miss at deep backlogs; start the load
    // now so it overlaps the sift-down below.
    __builtin_prefetch(&slots_[slot], 1 /*write: moved-from*/);
    const std::size_t last = heap_.size() - 1;
    if (last > 0) {
      heap_[0] = heap_[last];
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    // Relocate the callable into a local before invoking: the handler may
    // schedule further events, and a slot-pool grow must not move a
    // running callable out from under itself.
    EventFn fn = std::move(slots_[slot]);  // move leaves the slot empty
    free_slots_.push_back(slot);
    now_ = top.time;
    ++processed_;
    fn();
    return true;
  }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run events with time <= `t`; afterwards now() == t (even if idle).
  void run_until(SimTime t) {
    L2S_REQUIRE(t >= now_);
    while (!heap_.empty() && heap_[0].time <= t) step();
    now_ = t;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  // --- sharded-execution hooks (see sharded_scheduler.hpp) ----------------

  /// Priority of the next due event. The sequence number is globally unique
  /// when shards share a counter (share_sequence), so a merge loop can order
  /// whole shards by (time, seq) exactly as one heap would.
  struct PeekKey {
    SimTime time = 0;
    std::uint64_t seq = 0;
  };
  [[nodiscard]] PeekKey peek() const {
    L2S_REQUIRE(!heap_.empty());
    return PeekKey{heap_[0].time, heap_[0].seq_slot >> kSlotBits};
  }

  /// Move the clock forward without running anything (t >= now()). The
  /// sharded merge loop uses this to keep every shard's notion of "now"
  /// equal to the global event clock, so a handler on shard A scheduling
  /// through a reference to shard B sees the same time a single-heap run
  /// would.
  void advance_now(SimTime t) {
    L2S_REQUIRE(t >= now_);
    now_ = t;
  }

  /// Execute every event with time strictly below `end` (a conservative
  /// window bound: events at exactly `end` may still gain same-time
  /// predecessors from other shards, so they stay put). Unlike run_until
  /// the clock is NOT advanced to `end` — it stops at the last event run.
  void run_window(SimTime end) {
    while (!heap_.empty() && heap_[0].time < end) step();
  }

  /// Draw sequence numbers from `counter` instead of the private one.
  /// Shards of one ShardedScheduler share a counter in merge mode, making
  /// the cross-heap (time, seq) order identical to a single heap's.
  /// Passing nullptr restores the private counter.
  void share_sequence(std::uint64_t* counter) {
    seq_src_ = counter != nullptr ? counter : &next_seq_;
  }

  /// Drop all pending events and reset the clock (new run). Capacity is
  /// retained so a reused scheduler stays allocation-free.
  void reset();

 private:
  // 16-byte POD heap key; the callable lives in slots_[slot] and never
  // moves while sifting. The sequence number and slot index share one
  // qword (seq in the high 40 bits, slot in the low 24), so ordering by
  // (time, seq_slot) IS ordering by (time, seq) — seq is unique — and
  // four children pack into a single 64-byte cache line.
  struct Key {
    std::uint64_t seq_slot;  ///< (seq << kSlotBits) | slot — low qword
    SimTime time;            ///< high qword: compared first
  };
  static constexpr unsigned kSlotBits = 24;  // <= 16.7M pending events
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << 40;  // ~1.1e12/run

  static bool earlier(const Key& a, const Key& b) {
#if defined(__SIZEOF_INT128__) && defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // Single compare (cmp/sbb, no branch): time occupies the high qword
    // of the 128-bit image, seq the high bits of the low qword (time is
    // non-negative).
    __extension__ using U128 = unsigned __int128;
    U128 ka;
    U128 kb;
    std::memcpy(&ka, &a, sizeof(ka));
    std::memcpy(&kb, &b, sizeof(kb));
    return ka < kb;
#else
    if (a.time != b.time) return a.time < b.time;
    return a.seq_slot < b.seq_slot;
#endif
  }

  [[nodiscard]] std::uint32_t acquire_slot(EventFn&& fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
      return slot;
    }
    L2S_REQUIRE(slots_.size() < (std::size_t{1} << kSlotBits));
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void sift_up(std::size_t i) {
    Key* const h = heap_.data();
    const Key key = h[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(key, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = key;
  }

  void sift_down(std::size_t i);

  static constexpr std::size_t kArity = 4;

  std::vector<Key> heap_;
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t* seq_src_ = &next_seq_;  ///< shared counter in merge mode
  std::uint64_t processed_ = 0;
};

}  // namespace l2s::des
