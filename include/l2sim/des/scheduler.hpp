// Discrete-event simulation kernel.
//
// A Scheduler owns the simulation clock and a min-heap of pending events.
// Events scheduled for the same instant fire in submission order (a strict
// monotone sequence number breaks ties), which makes runs deterministic —
// a property every reproduction experiment in this repository relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::des {

using EventFn = std::function<void()>;

class Scheduler {
 public:
  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void at(SimTime t, EventFn fn);

  /// Schedule `fn` `delay` nanoseconds from now (delay >= 0).
  void after(SimTime delay, EventFn fn);

  [[nodiscard]] SimTime now() const { return now_; }

  /// Execute the next event. Returns false if no events remain.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= `t`; afterwards now() == t (even if idle).
  void run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Drop all pending events and reset the clock (new run).
  void reset();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace l2s::des
