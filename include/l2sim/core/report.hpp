// Rendering of experiment results as paper-style tables and CSV series.
#pragma once

#include <iosfwd>
#include <string>

#include "l2sim/core/experiment.hpp"

namespace l2s::core {

/// Print a Figure 7-10 style table: one row per node count with the model
/// bound and the three servers' throughputs.
void print_throughput_figure(std::ostream& os, const FigureSeries& fig);

/// Emit the same series as CSV (`<dir>/<name>.csv`); no-op when dir empty.
void write_throughput_csv(const FigureSeries& fig, const std::string& dir,
                          const std::string& name);

/// Print per-node-count detail for one metric extracted from the stored
/// SimResults: "missrate", "idle", "forwarded" or "response".
void print_metric_figure(std::ostream& os, const FigureSeries& fig,
                         const std::string& metric);

/// Extract one metric value from a result (shared by table and CSV paths).
[[nodiscard]] double metric_value(const SimResult& r, const std::string& metric);

}  // namespace l2s::core
