// Experiment runner: node-count sweeps over the three simulated servers
// plus the trace-calibrated model bound — the structure of Figures 7-10
// and of the miss-rate / idle-time / forwarding studies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "l2sim/core/simulation.hpp"
#include "l2sim/model/trace_model.hpp"
#include "l2sim/trace/characterize.hpp"

namespace l2s::core {

enum class PolicyKind { kTraditional, kLard, kL2s };

/// `set_shrink_seconds` is LARD's K and L2S's server-set decay window
/// (paper value: 20 s). Benches that replay truncated traces scale it down
/// proportionally so replication decays as it would over a full-length run.
[[nodiscard]] std::unique_ptr<policy::Policy> make_policy(PolicyKind kind,
                                                          double set_shrink_seconds = 20.0);
[[nodiscard]] const char* policy_kind_name(PolicyKind kind);

/// All simulated policies, in the order the paper's legends list them.
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

struct ExperimentConfig {
  SimConfig sim;  ///< base configuration; `sim.nodes` is overridden per point
  std::vector<int> node_counts = {1, 2, 4, 8, 12, 16};
  double model_replication = 0.15;  ///< R for the model bound (paper: 15%)
  double set_shrink_seconds = 20.0; ///< LARD K / L2S decay window
};

/// One trace's full figure: per node count, the model bound and the three
/// simulated servers' results.
struct FigureSeries {
  std::string trace_name;
  trace::TraceCharacteristics characteristics;
  std::vector<int> node_counts;
  std::vector<double> model_rps;
  std::vector<SimResult> l2s;
  std::vector<SimResult> lard;
  std::vector<SimResult> traditional;
};

/// Run one simulation.
[[nodiscard]] SimResult run_once(const trace::Trace& trace, SimConfig sim, PolicyKind kind,
                                 double set_shrink_seconds = 20.0);

/// Model bound (requests/s) for the trace at each node count.
[[nodiscard]] std::vector<double> model_series(const trace::TraceCharacteristics& ch,
                                               const ExperimentConfig& cfg);

/// The full sweep behind one of Figures 7-10.
[[nodiscard]] FigureSeries run_throughput_figure(const trace::Trace& trace,
                                                 const ExperimentConfig& cfg);

}  // namespace l2s::core
