// MetricsCollector: the measured-pass statistics of a run, kept entirely
// behind the LifecycleObserver interface so the engine components carry no
// counters of their own. Also owns the periodic load sampler (imbalance
// statistics + optional per-node timeline CSV) and assembles the final
// SimResult.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>

#include "l2sim/core/engine/context.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/fault/detector.hpp"
#include "l2sim/stats/accumulator.hpp"
#include "l2sim/stats/availability.hpp"
#include "l2sim/stats/histogram.hpp"

namespace l2s::core::engine {

class MetricsCollector final : public LifecycleObserver {
 public:
  explicit MetricsCollector(EngineContext& ctx) : ctx_(ctx) {}

  /// Start the availability/goodput timeline and open the timeline CSV
  /// sink (if configured) for the measured pass.
  void begin_measurement(SimTime measure_start);

  /// Kick off the periodic load sampler (no-op for single-node runs or
  /// when sampling is disabled).
  void start_sampling();

  /// Zero every counter and accumulator (end of the warm-up pass).
  void reset();

  /// Assemble the SimResult for the measured pass.
  [[nodiscard]] SimResult collect(SimTime measure_start,
                                  const fault::FailureDetector* detector) const;

  // --- LifecycleObserver --------------------------------------------------
  void on_request_completed(const cluster::Connection& conn, SimTime now) override;
  void on_connection_closed(const cluster::Connection& conn) override;
  void on_request_failed(const cluster::Connection* conn, FailureKind kind,
                         SimTime now) override;
  void on_retry_scheduled(SimTime now) override;
  void on_hedge(SimTime /*now*/) override { ++hedge_attempts_; }
  void on_brownout(int level, SimTime /*now*/) override {
    ++brownout_transitions_;
    brownout_level_ = level;
  }
  void on_forward() override { ++forwarded_; }
  void on_migration() override { ++migrations_; }
  void on_remote_fetch() override { ++remote_fetches_; }
  void on_node_crashed(int node, SimTime at) override {
    availability_.record_crash(node, at);
  }
  void on_node_repaired(int node, SimTime at) override {
    availability_.record_repair(node, at);
  }
  void on_node_detected(int node, SimTime at) override {
    availability_.record_detection(node, at);
  }
  void on_node_readmitted(int node, SimTime at) override {
    availability_.record_readmission(node, at);
  }

 private:
  void sample_loads();

  EngineContext& ctx_;

  std::uint64_t completed_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t remote_fetches_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failed_deadline_ = 0;
  std::uint64_t failed_retries_ = 0;
  std::uint64_t failed_rejected_ = 0;
  std::uint64_t failed_shed_ = 0;
  std::uint64_t completed_after_retry_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t hedge_attempts_ = 0;
  std::uint64_t brownout_transitions_ = 0;
  int brownout_level_ = 0;
  stats::AvailabilityTracker availability_;
  stats::Accumulator response_times_;
  stats::LogHistogram response_hist_{0.01, 1.3, 64};  ///< ms buckets
  stats::Accumulator stage_entry_;
  stats::Accumulator stage_forward_;
  stats::Accumulator stage_disk_;
  stats::Accumulator stage_reply_;
  stats::Accumulator load_cov_;       ///< per-sample load coefficient of variation
  stats::Accumulator load_max_mean_;  ///< per-sample max/mean load ratio
  std::unique_ptr<std::ofstream> timeline_;  ///< optional load timeline sink
};

}  // namespace l2s::core::engine
