// PersistentPath: HTTP/1.1-style persistent connections. Pulls the next
// request over an already-open connection (no connection establishment),
// asks the policy where it should be served, and resolves a non-local
// answer with one of the paper's two mechanisms: TCP connection hand-off
// (the connection migrates to the caching node) or back-end request
// forwarding (the content is fetched over the cluster network and the
// current node replies, proxy-style).
#pragma once

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class PersistentPath {
 public:
  explicit PersistentPath(EngineContext& ctx) : ctx_(ctx) {}

  /// The client pipelines its next request over the open connection: it
  /// passes the router and the current node's NI-in, is parsed, and then
  /// redistributed without the connection-establishment work.
  void continue_connection(const ConnPtr& conn);

 private:
  /// Policy decision for a request on an open connection, then local
  /// service, migration or remote fetch per persistence.mode.
  void persistent_distribute(const ConnPtr& conn);
  /// TCP connection hand-off: state moves to `target`, which owns the
  /// connection (and the client) from here on.
  void migrate_connection(const ConnPtr& conn, int target);
  /// Back-end request forwarding: `owner` supplies the content over the
  /// VIA; the connection stays put and its node replies to the client.
  void remote_fetch(const ConnPtr& conn, int owner);

  EngineContext& ctx_;
};

}  // namespace l2s::core::engine
