// Request-lifecycle vocabulary shared by the engine components: the
// connection state machine (cluster::ConnectionState), the failure
// buckets, the attempt-staleness guard, and the LifecycleObserver fan-out
// through which the engine publishes every lifecycle event without
// knowing who listens (metrics, availability tracking, timelines).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "l2sim/cluster/connection.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/obs/decision.hpp"

namespace l2s::core::engine {

using cluster::ConnectionState;
using ConnPtr = std::shared_ptr<cluster::Connection>;

/// Why a request finally failed — one per SimResult failure bucket.
enum class FailureKind {
  kDeadline,          ///< the per-request deadline expired
  kRetriesExhausted,  ///< every attempt died (includes fail-fast aborts)
  kRejected,          ///< open-loop arrival found the admission buffers full
  kShed,              ///< the overload shedder turned the arrival away
};

/// A callback belongs to a superseded attempt (or a finished request).
/// Every event the engine schedules on behalf of an attempt captures the
/// attempt id and checks this first; kDone is absorbing.
[[nodiscard]] inline bool attempt_stale(const ConnPtr& conn, std::uint32_t att) {
  return conn->state == ConnectionState::kDone || conn->attempt != att;
}

/// Passive taps on the request lifecycle and the fault timeline. Handlers
/// must not schedule events or mutate engine state: observers exist so
/// that statistics, availability tracking and CSV emission stay out of the
/// simulation path — and adding one can never perturb event order.
class LifecycleObserver {
 public:
  virtual ~LifecycleObserver() = default;

  // Request lifecycle.
  virtual void on_request_completed(const cluster::Connection& /*conn*/, SimTime /*now*/) {}
  virtual void on_connection_closed(const cluster::Connection& /*conn*/) {}
  /// `conn` is null for admission rejects (the request never materialized a
  /// connection); non-null for deadline / retries-exhausted failures.
  virtual void on_request_failed(const cluster::Connection* /*conn*/, FailureKind /*kind*/,
                                 SimTime /*now*/) {}
  virtual void on_retry_scheduled(SimTime /*now*/) {}
  /// A hedged (speculative backup) attempt was dispatched for a request.
  virtual void on_hedge(SimTime /*now*/) {}
  /// The overload controller changed the brownout level (0 = healthy,
  /// 1 = shed forwarding, 2 = shed service).
  virtual void on_brownout(int /*level*/, SimTime /*now*/) {}
  virtual void on_forward() {}       ///< hand-off or remote fetch left the entry node
  virtual void on_migration() {}     ///< persistent connection migrated
  virtual void on_remote_fetch() {}  ///< back-end request forwarding used
  /// The periodic load sampler ticked (MetricsCollector::sample_loads).
  /// Telemetry probes ride this existing event instead of scheduling their
  /// own, so enabling them cannot change the event stream.
  virtual void on_load_sample(SimTime /*now*/) {}
  /// An engine component made a discrete decision (dispatch target picked,
  /// arrival shed, brownout transition, retry-budget spend/deny, ...). The
  /// record is emitted via EngineContext::note_decision at the point the
  /// decision is taken; the flight recorder and telemetry cause counters
  /// listen here. Same contract as every other hook: passive only.
  virtual void on_decision(const obs::DecisionRecord& /*record*/) {}

  // Fault timeline (from the coordinator's fault arming / detection).
  virtual void on_node_crashed(int /*node*/, SimTime /*at*/) {}
  virtual void on_node_repaired(int /*node*/, SimTime /*at*/) {}
  virtual void on_node_detected(int /*node*/, SimTime /*at*/) {}
  virtual void on_node_readmitted(int /*node*/, SimTime /*at*/) {}
};

/// Fan-out: the engine talks to exactly one observer, which forwards to
/// every registered listener in registration order.
class LifecycleFanout final : public LifecycleObserver {
 public:
  void add(LifecycleObserver* obs) { observers_.push_back(obs); }

  void on_request_completed(const cluster::Connection& c, SimTime now) override {
    for (auto* o : observers_) o->on_request_completed(c, now);
  }
  void on_connection_closed(const cluster::Connection& c) override {
    for (auto* o : observers_) o->on_connection_closed(c);
  }
  void on_request_failed(const cluster::Connection* conn, FailureKind kind,
                         SimTime now) override {
    for (auto* o : observers_) o->on_request_failed(conn, kind, now);
  }
  void on_retry_scheduled(SimTime now) override {
    for (auto* o : observers_) o->on_retry_scheduled(now);
  }
  void on_hedge(SimTime now) override {
    for (auto* o : observers_) o->on_hedge(now);
  }
  void on_brownout(int level, SimTime now) override {
    for (auto* o : observers_) o->on_brownout(level, now);
  }
  void on_load_sample(SimTime now) override {
    for (auto* o : observers_) o->on_load_sample(now);
  }
  void on_decision(const obs::DecisionRecord& record) override {
    for (auto* o : observers_) o->on_decision(record);
  }
  void on_forward() override {
    for (auto* o : observers_) o->on_forward();
  }
  void on_migration() override {
    for (auto* o : observers_) o->on_migration();
  }
  void on_remote_fetch() override {
    for (auto* o : observers_) o->on_remote_fetch();
  }
  void on_node_crashed(int node, SimTime at) override {
    for (auto* o : observers_) o->on_node_crashed(node, at);
  }
  void on_node_repaired(int node, SimTime at) override {
    for (auto* o : observers_) o->on_node_repaired(node, at);
  }
  void on_node_detected(int node, SimTime at) override {
    for (auto* o : observers_) o->on_node_detected(node, at);
  }
  void on_node_readmitted(int node, SimTime at) override {
    for (auto* o : observers_) o->on_node_readmitted(node, at);
  }

 private:
  std::vector<LifecycleObserver*> observers_;
};

}  // namespace l2s::core::engine
