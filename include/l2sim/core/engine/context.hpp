// EngineContext: the wiring loom of the decomposed simulation engine.
//
// The coordinator (core::ClusterSimulation) owns the simulated hardware
// and one instance of every engine component; each component receives a
// reference to this context and reaches its collaborators exclusively
// through it. Components never own each other, so the request lifecycle
// can flow ArrivalSource -> Dispatcher -> ServicePath -> PersistentPath
// with RetryManager re-entering the cycle on failures, without a single
// circular include.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/core/config.hpp"
#include "l2sim/core/engine/lifecycle.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/net/router.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::core::engine {

class ArrivalSource;
class AdmissionController;
class Dispatcher;
class RetryManager;
class ServicePath;
class PersistentPath;
class OverloadController;

struct EngineContext {
  // Simulated hardware and configuration (owned by the coordinator).
  const SimConfig* config = nullptr;
  const trace::Trace* trace = nullptr;
  des::Scheduler* sched = nullptr;
  net::Router* router = nullptr;
  net::ViaNetwork* via = nullptr;
  /// The interconnect (owned by the coordinator); telemetry reads per-link
  /// utilization off it, the engine itself only talks through `via`.
  net::Topology* topology = nullptr;
  /// Flow-level bulk-transfer network (null unless topology.flow_level).
  net::FlowNetwork* flow = nullptr;
  policy::Policy* policy = nullptr;
  std::vector<std::unique_ptr<cluster::Node>>* nodes = nullptr;
  /// The simulation's own random stream (connection lengths, DNS skew,
  /// open-loop gaps). Exactly one component draws at a time, so sharing
  /// the stream keeps the draw order identical to the monolithic engine.
  Rng* rng = nullptr;

  // Engine components (owned by the coordinator, wired here).
  ArrivalSource* arrival = nullptr;
  AdmissionController* admission = nullptr;
  Dispatcher* dispatcher = nullptr;
  RetryManager* retry = nullptr;
  ServicePath* service = nullptr;
  PersistentPath* persistent = nullptr;
  /// Overload defenses (admission shedding, retry budget, brownout); always
  /// wired, inert unless SimConfig::overload enables a defense.
  OverloadController* overload = nullptr;
  /// All lifecycle events go through this fan-out (metrics, availability).
  LifecycleFanout* observers = nullptr;

  /// False during the warm-up pass, true for the measured pass. Warm-up is
  /// the paper's cache-warming protocol — nominal stationary load, no
  /// faults (arm_faults already waits for the measured pass), no arrival
  /// shaping and no overload defenses — so the measured pass starts from
  /// the warm steady state the chaos is supposed to disrupt.
  bool measured_pass = false;

  [[nodiscard]] const SimConfig& cfg() const { return *config; }
  [[nodiscard]] SimTime now() const { return sched->now(); }
  [[nodiscard]] cluster::Node& node(int id) const {
    return *(*nodes)[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool node_alive(int id) const { return node(id).alive(); }

  /// Publish one engine decision through the observer fan-out. Stamps the
  /// current simulated time and pass; pure notification — the fan-out's
  /// listeners are passive, so calling this never perturbs the event
  /// stream (which is what lets the flight recorder stay digest-inert).
  void note_decision(obs::DecisionKind kind, obs::DecisionCause cause,
                     std::uint64_t request, int node, int target = -1,
                     std::uint32_t attempt = 0, std::int64_t detail = 0) const {
    obs::DecisionRecord rec;
    rec.time = now();
    rec.request = request;
    rec.node = node;
    rec.target = target;
    rec.detail = detail;
    rec.attempt = attempt;
    rec.kind = kind;
    rec.cause = cause;
    rec.pass = measured_pass ? 1 : 0;
    observers->on_decision(rec);
  }
};

}  // namespace l2s::core::engine
