// OverloadController: the l2s::overload resilience layer, threaded through
// the engine components. Three defenses, each independently configurable
// via SimConfig::overload and each OFF by default:
//
//   * adaptive admission — pluggable shedders (static in-flight cap,
//     CoDel-style queue-delay target, AIMD goodput-tracking window) that
//     turn open-loop arrivals away *before* they occupy cluster resources;
//   * a retry token bucket — every admitted request earns
//     retry_budget_ratio tokens, every retry or hedge spends one, so
//     retries cannot amplify an overload into a storm;
//   * brownout — a circuit breaker on the policy side: level 1 sheds
//     forwarding (L2S serves at the entry node, LARD freezes replication
//     and migration), level 2 additionally sheds every other arrival.
//
// Determinism: the controller draws no random numbers and, when every
// defense is off, schedules no events and touches no engine state — the
// golden-digest suite pins that a default OverloadConfig is bit-identical
// to the pre-overload engine. The delay signal (windowed mean client
// sojourn) is updated on completion and terminal failure events, never by
// its own timers; only the AIMD probe schedules a periodic event, and only
// when AIMD is selected.
#pragma once

#include <cstdint>

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class OverloadController {
 public:
  explicit OverloadController(EngineContext& ctx) : ctx_(ctx) {}

  /// Reset all defense state at the start of a pass (warm-up and measured
  /// passes each start healthy: full token bucket, brownout level 0, AIMD
  /// window at the full admission window).
  void begin_pass();

  /// Schedule the periodic machinery for the pass — only the AIMD probe,
  /// and only when the AIMD shedder is selected, so defenses-off runs
  /// schedule nothing. Call after the admission window is open.
  void start();

  /// Admission decision for one open-loop arrival. False = shed: the
  /// arrival is turned away at the front door and counted under
  /// FailureKind::kShed. Always true when no admission defense is on.
  [[nodiscard]] bool admit_arrival();

  /// An admitted request entered the cluster: accrue retry budget.
  void earn_token();

  /// A retry or hedge wants to launch: spend one token if the bucket has
  /// one, else suppress. Always true when the budget is unlimited.
  [[nodiscard]] bool try_spend_retry_token();

  /// A request completed: feed the client sojourn into the delay window
  /// (the CoDel/brownout signal). Called by ServicePath on every completed
  /// request; cheap no-op unless a delay-driven defense is on.
  void note_completion(const cluster::Connection& conn, SimTime now);

  /// A request failed: deadline/retries-exhausted failures feed the delay
  /// window (a request that died of old age is the strongest queue signal
  /// there is — completion-only estimators go blind in a collapse), and
  /// the AIMD shedder treats them as congestion and shrinks its window (at
  /// most once per period, the classic TCP rule).
  void note_failure(const cluster::Connection* conn, FailureKind kind, SimTime now);

  [[nodiscard]] int brownout_level() const { return level_; }
  /// Effective AIMD in-flight cap (meaningful only under kAimd).
  [[nodiscard]] std::uint64_t window_cap() const;
  /// Which defense said no in the most recent admit_arrival() == false —
  /// the admission path reads this to attribute the shed in the decision
  /// log (the shed itself is recorded where the failure is counted).
  [[nodiscard]] obs::DecisionCause last_shed_cause() const { return last_shed_cause_; }

 private:
  void aimd_tick();
  /// Roll the delay window if due and latch the mean-sojourn signal; then
  /// drive shedder latch + brownout level transitions off the latched value.
  void update_delay_signal(double sojourn_s, SimTime now);
  /// Close the current window: latch its mean sojourn (zero if the window
  /// saw no samples at all — an empty window means the system drained) and
  /// drive the shedder latch + brownout transitions. admit_arrival() also
  /// closes stale *empty* windows so a 100%-shed latch re-probes instead of
  /// freezing itself on.
  void close_window(SimTime now);
  void set_brownout_level(int level, SimTime now);

  [[nodiscard]] const OverloadConfig& ov() const { return ctx_.cfg().overload; }

  EngineContext& ctx_;

  // Retry token bucket.
  double tokens_ = 0.0;

  // Windowed-mean delay estimator (queue-delay signal, shared with
  // brownout). CoDel uses the windowed min, which presumes a single shared
  // queue; hits bypassing the disks make this system bimodal, so the mean
  // (failures included) is the signal that actually sees a miss storm.
  SimTime window_start_ = 0;
  double window_delay_sum_ = 0.0;
  std::uint64_t window_samples_ = 0;
  double latched_delay_ = 0.0;  ///< mean sojourn of the last closed window
  bool above_target_ = false;   ///< kQueueDelay bang-bang latch

  // Brownout.
  int level_ = 0;
  std::uint64_t arrivals_seen_ = 0;  ///< level-2 sheds every other arrival
  obs::DecisionCause last_shed_cause_ = obs::DecisionCause::kNone;

  // AIMD window.
  double aimd_cap_ = 0.0;
  bool aimd_failure_seen_ = false;  ///< failure since the last probe tick
  SimTime aimd_last_decrease_ = 0;
};

}  // namespace l2s::core::engine
