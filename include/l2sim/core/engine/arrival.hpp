// ArrivalSource: how requests enter the cluster. Two modes, selected by
// ArrivalConfig::open_loop_rate:
//   * saturation replay (the paper's measurement protocol) — the admission
//     window is kept full from the trace cursor, and
//   * open-loop Poisson arrivals at a configured rate, for
//     latency-vs-load studies; arrivals finding the window full are
//     dropped and counted as rejected.
// Open-loop arrivals can be non-stationary (ArrivalConfig::shape — flash
// crowd trapezoid, diurnal sinusoid) via Lewis-Shedler thinning against
// the peak rate, and either mode can rotate file popularity over time
// (popularity churn). Shedding (OverloadController) is consulted per
// open-loop arrival before the admission window.
#pragma once

#include <cstdint>

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class ArrivalSource {
 public:
  explicit ArrivalSource(EngineContext& ctx) : ctx_(ctx) {}

  /// Begin one pass: fill the admission window (replay) or schedule the
  /// first Poisson arrival (open loop). The window must be open.
  void start();

  /// Popularity churn: rotate the request's file id by the churn stride
  /// accumulated since the pass started (identity when churn is off).
  /// Applied to every request as it's pulled off the trace cursor —
  /// arrivals and persistent-connection pulls alike.
  void apply_churn(trace::Request& r) const;

 private:
  void open_loop_arrival();
  /// Admit one trace request: build the connection, launch its first
  /// attempt, sample the connection length and arm the deadline.
  void inject(std::uint64_t seq, const trace::Request& r);
  /// Geometric on {1, 2, ...} with mean
  /// persistence.mean_requests_per_connection.
  [[nodiscard]] std::uint32_t sample_connection_length();
  /// Seconds since the current pass started (shape/churn clock).
  [[nodiscard]] double pass_seconds() const;

  EngineContext& ctx_;
  SimTime pass_start_ = 0;
};

}  // namespace l2s::core::engine
