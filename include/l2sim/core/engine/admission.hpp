// AdmissionController: the bounded in-flight window in front of the
// cluster (router + NIC buffer space), plus the drop accounting for
// arrivals that find it full. Wraps the saturation Injector: one window
// is opened per simulation pass and drained before the pass ends.
#pragma once

#include <cstdint>
#include <memory>

#include "l2sim/cluster/injector.hpp"
#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class AdmissionController {
 public:
  explicit AdmissionController(EngineContext& ctx) : ctx_(ctx) {}

  /// Open a fresh admission window over the trace for one pass
  /// (nodes * admission.buffer_slots_per_node slots).
  void open();

  /// Saturation replay: set the injection callback and fill the window;
  /// every completion then refills it from the trace cursor.
  void begin_replay(cluster::Injector::InjectFn inject);

  /// Open-loop admission: occupy a slot and hand out the next request if
  /// both a slot and a request are available.
  [[nodiscard]] bool try_admit(std::uint64_t& seq, trace::Request& request);

  /// Take the next trace request without occupying a new slot (persistent
  /// connections pulling further requests onto an admitted connection).
  [[nodiscard]] bool try_take(std::uint64_t& seq, trace::Request& request);

  /// An admitted request finished (served or failed): free its slot, which
  /// under saturation replay synchronously injects the next request.
  void on_complete();

  /// Free a slot after `hold` (a failed client holds its slot until its
  /// timeout expires); hold == 0 frees it immediately.
  void release_after(SimTime hold);

  /// An open-loop arrival found the window full: the request it would have
  /// carried is consumed from the trace and counted as rejected
  /// (finite-buffer semantics above saturation).
  void reject_overflow();

  /// The overload shedder turned an open-loop arrival away before it could
  /// occupy a slot: consume its request from the trace and count it under
  /// FailureKind::kShed (the deliberate-drop bucket, distinct from the
  /// buffer-overflow reject above).
  void shed_arrival();

  /// A window has been opened for the current pass.
  [[nodiscard]] bool active() const { return injector_ != nullptr; }
  /// The trace cursor has run off the end.
  [[nodiscard]] bool exhausted() const { return injector_->exhausted(); }
  [[nodiscard]] std::uint64_t in_flight() const { return injector_->in_flight(); }
  /// Trace exhausted and every slot returned: the pass is over.
  [[nodiscard]] bool drained() const {
    return injector_->exhausted() && injector_->in_flight() == 0;
  }

 private:
  EngineContext& ctx_;
  std::unique_ptr<cluster::Injector> injector_;
};

}  // namespace l2s::core::engine
