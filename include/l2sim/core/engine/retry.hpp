// RetryManager: the client-side robustness machinery — capped exponential
// backoff between attempts, the per-attempt timeout, the per-request
// deadline, and the final transition of a request into one of the failure
// buckets. Owns every path that marks a connection kDone without a
// completed reply.
//
// Overload integration: every retry and every hedge must buy a token from
// the OverloadController's bucket first (retries earn budget only as
// admitted requests arrive, so a failure storm cannot amplify itself), and
// arm_hedge() speculatively re-dispatches a request that lingers past the
// hedge delay — backup-request-with-cancellation adapted to the engine's
// one-live-attempt invariant: the straggler attempt is abandoned (its
// events go stale via the attempt counter) and the hedge becomes the one
// live attempt.
#pragma once

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class RetryManager {
 public:
  explicit RetryManager(EngineContext& ctx) : ctx_(ctx) {}

  /// Abort the connection's current attempt (its node crashed, or the
  /// policy produced no decision): retried if the client has retry budget
  /// left, otherwise the client sees a failure and the admission slot
  /// frees after the client timeout. Idempotent. `cause` attributes the
  /// abort in the decision log (entry node down, no policy target, ...).
  void abort_connection(const ConnPtr& conn, obs::DecisionCause cause);

  /// Consume retry budget and schedule the next attempt after backoff.
  void schedule_retry(const ConnPtr& conn, obs::DecisionCause cause);

  /// Arm the per-request deadline (measured from the current request's
  /// arrival); re-armed by each request on a persistent connection.
  void arm_deadline(const ConnPtr& conn);

  /// Arm the per-attempt timeout for the connection's current attempt: an
  /// attempt that hangs (lost hand-off, dead node, glacial queue) is
  /// abandoned and retried or failed. No-op when not configured.
  void arm_attempt_timeout(const ConnPtr& conn);

  /// Arm the hedge timer for the current request: if it is still the same
  /// request and attempt after overload.hedge_delay_seconds, abandon the
  /// straggling attempt and re-dispatch (spending a retry token). Armed
  /// per request (arrival and each persistent pull); re-arms itself up to
  /// overload.max_hedges times. No-op when hedging is off.
  void arm_hedge(const ConnPtr& conn);

  /// Final failure: mark kDone, count it under `kind`, free the admission
  /// slot after `slot_hold` (0 = immediately).
  void fail_connection(const ConnPtr& conn, FailureKind kind, SimTime slot_hold);

 private:
  EngineContext& ctx_;
};

}  // namespace l2s::core::engine
