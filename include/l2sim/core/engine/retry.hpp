// RetryManager: the client-side robustness machinery — capped exponential
// backoff between attempts, the per-attempt timeout, the per-request
// deadline, and the final transition of a request into one of the failure
// buckets. Owns every path that marks a connection kDone without a
// completed reply.
#pragma once

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class RetryManager {
 public:
  explicit RetryManager(EngineContext& ctx) : ctx_(ctx) {}

  /// Abort the connection's current attempt (its node crashed, or the
  /// policy produced no decision): retried if the client has retry budget
  /// left, otherwise the client sees a failure and the admission slot
  /// frees after the client timeout. Idempotent.
  void abort_connection(const ConnPtr& conn);

  /// Consume retry budget and schedule the next attempt after backoff.
  void schedule_retry(const ConnPtr& conn);

  /// Arm the per-request deadline (measured from the current request's
  /// arrival); re-armed by each request on a persistent connection.
  void arm_deadline(const ConnPtr& conn);

  /// Arm the per-attempt timeout for the connection's current attempt: an
  /// attempt that hangs (lost hand-off, dead node, glacial queue) is
  /// abandoned and retried or failed. No-op when not configured.
  void arm_attempt_timeout(const ConnPtr& conn);

  /// Final failure: mark kDone, count it under `kind`, free the admission
  /// slot after `slot_hold` (0 = immediately).
  void fail_connection(const ConnPtr& conn, FailureKind kind, SimTime slot_hold);

 private:
  EngineContext& ctx_;
};

}  // namespace l2s::core::engine
