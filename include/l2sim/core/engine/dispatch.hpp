// Dispatcher: the entry half of an attempt — entry-node selection (DNS /
// switch, with the cached-translation skew), the client request's path
// through router, entry NIC and parse CPU, the policy's service-node
// decision, and the hand-off to a remote service node over the VIA.
#pragma once

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class Dispatcher {
 public:
  explicit Dispatcher(EngineContext& ctx) : ctx_(ctx) {}

  /// Launch the connection's current attempt: entry selection, router,
  /// entry NIC, parse, then distribute. Called at injection and again on
  /// every retry; also arms the per-attempt timeout.
  void start_attempt(const ConnPtr& conn);

 private:
  /// Ask the policy for a service node (synchronously or via its
  /// dispatcher node) once the entry node has parsed the request.
  void distribute(const ConnPtr& conn);
  /// Route the parsed request to the chosen node: locally into the service
  /// path, or as a hand-off message across the cluster network.
  void dispatch_to(const ConnPtr& conn, int target);

  EngineContext& ctx_;
};

}  // namespace l2s::core::engine
