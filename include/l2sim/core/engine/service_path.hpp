// ServicePath: the service half of a request at its service node — the
// open-connection load accounting (epoch-guarded across crashes), the
// cache lookup / disk read, the reply path back through CPU, NIC and
// router, and request completion (including pulling the next request of a
// persistent connection or closing the connection).
#pragma once

#include "l2sim/core/engine/context.hpp"

namespace l2s::core::engine {

class ServicePath {
 public:
  explicit ServicePath(EngineContext& ctx) : ctx_(ctx) {}

  /// Serve the connection's current request at conn->service_node.
  /// `opening` counts the connection into the node's open-connection load
  /// (false when a persistent connection re-serves at its current node).
  void begin_service(const ConnPtr& conn, bool opening);

  /// Reply path: reply CPU time, NI-out, router, then completion. Entered
  /// directly by PersistentPath when content arrived via a remote fetch.
  void reply_path(const ConnPtr& conn);

  /// Release the service node's open-connection count if this connection
  /// still holds one against the node's current incarnation.
  void release_service_count(const ConnPtr& conn);

  /// The connection's service node is alive and still the incarnation the
  /// connection was counted against (always true without crashes).
  [[nodiscard]] bool service_current(const ConnPtr& conn) const;

 private:
  /// The current request completed: record it, then pull the next request
  /// of a persistent connection or close.
  void request_finished(const ConnPtr& conn);
  void close_connection(const ConnPtr& conn);

  EngineContext& ctx_;
};

}  // namespace l2s::core::engine
