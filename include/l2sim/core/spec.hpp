// ExperimentSpec: one declarative description of an experiment — which
// workload, how many nodes, which distribution policy, how requests
// arrive, what faults strike, and where output goes — runnable against
// either evaluation engine:
//
//   run_simulation(spec)  the trace-driven DES (ClusterSimulation)
//   run_model(spec)       the analytic bound (model::TraceModel)
//
// Benches, examples and the CLI build a spec once and hand it to whichever
// engine(s) a study needs, so simulator-vs-model comparisons are
// guaranteed to describe the same experiment.
#pragma once

#include <string>
#include <vector>

#include "l2sim/common/cli_args.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/synthetic.hpp"

namespace l2s::core {

/// Where the workload comes from. `realize()` materializes the trace;
/// callers that sweep many configurations over one workload realize once
/// and pass the trace to the run_* overloads that accept it.
struct TraceSpec {
  enum class Kind {
    kPaper,      ///< one of the paper's calibrated traces, scaled
    kClfFile,    ///< a Common Log Format access log on disk
    kSynthetic,  ///< an explicit SyntheticSpec
  };
  Kind kind = Kind::kPaper;

  std::string paper_name = "clarknet";  ///< kPaper: calgary/clarknet/nasa/rutgers
  double scale = 1.0;                   ///< kPaper: request-count scale factor
  std::string path;                     ///< kClfFile: log path
  trace::SyntheticSpec synthetic;       ///< kSynthetic: full generator spec

  [[nodiscard]] static TraceSpec paper(std::string name, double scale = 1.0);
  [[nodiscard]] static TraceSpec clf(std::string path);
  [[nodiscard]] static TraceSpec synth(trace::SyntheticSpec spec);

  [[nodiscard]] trace::Trace realize() const;
};

/// Where results go (beyond the returned structs).
struct OutputSpec {
  std::string csv_dir;           ///< figure CSV directory ("" = no CSV)
  std::string timeline_csv_path; ///< per-node load timeline ("" = off)

  /// Telemetry exports ("" = off). Setting any of these force-enables
  /// sim.telemetry for the run (there would be nothing to export
  /// otherwise).
  std::string trace_json_path;     ///< Chrome trace-event JSON (Perfetto)
  std::string metrics_csv_path;    ///< scalar metrics CSV
  std::string timeseries_csv_path; ///< probe/goodput time-series CSV
  std::string spans_csv_path;      ///< sampled spans CSV

  /// Decision-log export ("" = off). Setting it force-enables sim.obs for
  /// the run, the same way the telemetry exports above enable telemetry.
  /// When trace_json_path is also set, the decision log is joined onto the
  /// Chrome trace's span tracks as instant/flow events.
  std::string decisions_csv_path;

  [[nodiscard]] bool wants_telemetry() const {
    return !trace_json_path.empty() || !metrics_csv_path.empty() ||
           !timeseries_csv_path.empty() || !spans_csv_path.empty();
  }
  [[nodiscard]] bool wants_obs() const { return !decisions_csv_path.empty(); }
};

/// Analytic-engine selection for run_model. The default keeps the legacy
/// behaviour: hit rates from the paper's z(n, F) step-function algebra
/// (model::TraceModel). Setting `cache` switches the cache level to the
/// l2s::analytic hierarchical solver — Che-approximation LRU miss curves
/// coupled to the queueing network, per-node hit rates, bottleneck and
/// (below saturation) mean response, with no measured axis anywhere. When
/// sim.arrival describes a flash crowd, diurnal swing or popularity churn,
/// the solver also produces the time-varying hit curve over the pass.
struct AnalyticSpec {
  bool cache = false;          ///< Che cache level instead of z(n, F)
  int transient_samples = 64;  ///< samples of the time-varying hit curve
};

/// The full experiment description. `sim` carries the cluster hardware,
/// arrival mode (sim.arrival), persistence (sim.persistence), fault
/// schedule (sim.fault_plan) and DES engine selection (sim.engine.shards:
/// 0 = serial, N = sharded, kAutoShards = thread budget — run_simulation
/// picks serial or sharded transparently, results bit-identical either
/// way); the fields here are what the engines need beyond a SimConfig.
struct ExperimentSpec {
  std::string name;  ///< label for reports/CSV
  TraceSpec trace;
  SimConfig sim;
  PolicyKind policy = PolicyKind::kL2s;
  double set_shrink_seconds = 20.0;  ///< LARD K / L2S decay window
  double model_replication = 0.15;   ///< R for the model bound (paper: 15%)
  AnalyticSpec analytic;             ///< run_model engine selection
  OutputSpec output;
};

/// The analytic engine's answer for a spec. The fields below `hit_rate`
/// are only populated on the analytic cache path (`spec.analytic.cache`);
/// the legacy z(n, F) path leaves them at their defaults.
struct ModelResult {
  double throughput_rps = 0.0;  ///< policy's max stable throughput
  double hit_rate = 0.0;        ///< cluster-wide cache hit rate
  trace::TraceCharacteristics characteristics;

  bool analytic = false;             ///< Che cache level was used
  std::vector<double> per_node_hit;  ///< per-node hit rates (conscious split)
  double forwarded_fraction = 0.0;   ///< Q
  double served_rate_rps = 0.0;      ///< min(offered, bottleneck)
  double mean_response_seconds = 0.0;///< below saturation only, else 0
  std::string bottleneck;            ///< binding station
  int iterations = 0;                ///< hierarchical fixed-point passes
};

/// Run the spec on the DES engine. The single-argument form realizes the
/// trace from spec.trace; the two-argument form uses a pre-realized trace.
[[nodiscard]] SimResult run_simulation(const ExperimentSpec& spec);
[[nodiscard]] SimResult run_simulation(const ExperimentSpec& spec,
                                       const trace::Trace& trace);

/// Write every export the OutputSpec asks for from an already-obtained
/// result (telemetry CSV/trace files, decision-log CSV). run_simulation
/// calls this itself; callers that drive ClusterSimulation directly (the
/// CLI's round-robin path) reuse it so every path exports identically.
void export_outputs(const OutputSpec& output, const SimResult& result);

/// Run the spec on the analytic model (policy-independent bound).
[[nodiscard]] ModelResult run_model(const ExperimentSpec& spec);
[[nodiscard]] ModelResult run_model(const ExperimentSpec& spec,
                                    const trace::Trace& trace);

/// The ExperimentConfig (node-count sweep) implied by a spec — the bridge
/// to run_throughput_figure for the Figure 7-10 benches.
[[nodiscard]] ExperimentConfig to_experiment_config(const ExperimentSpec& spec);

/// Apply the overload/chaos command-line flags to a spec (shared by the
/// l2sim CLI and any downstream driver):
///
///   --arrival stationary|flash|diurnal   arrival shape
///   --flash-at S --flash-factor F        flash-crowd step (onset, multiplier)
///   --flash-ramp S --flash-hold S        optional ramp and hold durations
///   --diurnal-period S --diurnal-amp A   sinusoidal rate modulation
///   --churn-period S --churn-stride K    popularity churn rotation
///   --chaos-seed N                       simulation seed (chaos replay handle)
///   --shedder none|static|codel|aimd     admission shedder
///   --static-cap N                       kStaticCap in-flight cap
///   --target-delay S                     CoDel-style queue-delay target
///   --retry-budget R [--retry-burst B]   retry/hedge token-bucket earn ratio
///   --hedge-delay S [--max-hedges K]     hedged attempts after S seconds
///   --brownout                           delay-triggered brownout levels
///
/// Flags not present leave the spec untouched. Throws l2s::Error on an
/// unknown --arrival or --shedder name; range validation happens later in
/// SimConfig::validate().
void apply_overload_cli(const CliArgs& args, ExperimentSpec& spec);

/// Apply the interconnect-topology command-line flags to a spec:
///
///   --topology single|rack|fattree   interconnect kind (default single)
///   --racks N                        rack-aware: number of ToR switches
///   --oversub X                      rack-aware: core oversubscription ratio
///   --fat-tree-k K                   fat-tree: switch arity (even)
///   --segment-bytes N                store-and-forward segment size
///   --flow-level                     flow-level bulk transfers (max-min fair)
///
/// Flags not present leave the spec untouched. Throws l2s::Error on an
/// unknown --topology name; geometry validation (nodes divisible into
/// racks, fat-tree capacity) happens in SimConfig::validate().
void apply_topology_cli(const CliArgs& args, ExperimentSpec& spec);

}  // namespace l2s::core
