// Parallel experiment execution: node-count sweeps multiply into dozens of
// completely independent simulations, so they scale across cores. Each job
// builds its own ClusterSimulation (no shared mutable state; the only
// shared structure, the harmonic-number prefix cache, is internally
// synchronized), so results are bit-identical to serial execution.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/core/experiment.hpp"

namespace l2s::telemetry {
struct Snapshot;
}  // namespace l2s::telemetry

namespace l2s::core {

struct SimJob {
  const trace::Trace* trace = nullptr;
  SimConfig sim;
  PolicyKind kind = PolicyKind::kTraditional;
  double set_shrink_seconds = 20.0;
};

/// Run all jobs and return their results in job order. `threads == 0`
/// uses the hardware concurrency; `threads == 1` runs inline. If any job
/// throws, the first failure (after all threads join) is rethrown nested
/// inside an Error naming the job: "run_parallel: job i (trace=...,
/// nodes=..., policy=...) failed". Catch as l2s::Error and use
/// std::rethrow_if_nested to reach the original exception.
[[nodiscard]] std::vector<SimResult> run_parallel(const std::vector<SimJob>& jobs,
                                                  unsigned threads = 0);

/// Merge the telemetry snapshots of a batch of results into one aggregate,
/// always iterating in job-index order — each job owns a private registry
/// during the run (no shared mutable state between workers), and the fixed
/// merge order makes the aggregate identical regardless of which worker
/// finished first. Results without telemetry are skipped; returns null when
/// no result carried any.
[[nodiscard]] std::shared_ptr<const telemetry::Snapshot> merge_telemetry(
    const std::vector<SimResult>& results);

/// Parallel variant of run_throughput_figure: identical results, wall
/// clock divided by the usable cores.
[[nodiscard]] FigureSeries run_throughput_figure_parallel(const trace::Trace& trace,
                                                          const ExperimentConfig& cfg,
                                                          unsigned threads = 0);

}  // namespace l2s::core
