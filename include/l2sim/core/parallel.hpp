// Parallel experiment execution: node-count sweeps multiply into dozens of
// completely independent simulations, so they scale across cores. Each job
// builds its own ClusterSimulation (no shared mutable state; the only
// shared structure, the harmonic-number prefix cache, is internally
// synchronized), so results are bit-identical to serial execution.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/core/experiment.hpp"

namespace l2s::telemetry {
struct Snapshot;
}  // namespace l2s::telemetry

namespace l2s::core {

struct SimJob {
  const trace::Trace* trace = nullptr;
  SimConfig sim;
  PolicyKind kind = PolicyKind::kTraditional;
  double set_shrink_seconds = 20.0;
};

/// Worker threads a single simulation with this config occupies while it
/// runs. The sharded cluster engine currently executes in sequential-merge
/// mode (one thread regardless of shard count — see docs/parallel_des.md),
/// so this is 1 today; it exists so run_parallel's budget arithmetic stays
/// correct when threaded cluster execution lands.
[[nodiscard]] unsigned engine_threads(const SimConfig& sim);

/// Workers run_parallel may start for `jobs` jobs of `per_job_threads`
/// threads each under a total budget of `budget` threads: clamped to the
/// job count and to max(1, budget / per_job_threads), so jobs x threads
/// never exceeds the budget (one job always runs, even when it alone
/// overshoots).
[[nodiscard]] unsigned compute_worker_threads(std::size_t jobs,
                                              unsigned per_job_threads,
                                              unsigned budget);

/// Run all jobs and return their results in job order. `threads == 0`
/// uses the process thread budget (L2SIM_THREADS override, else hardware
/// concurrency) divided by the per-job engine thread need, so sharded
/// runs inside a sweep never oversubscribe the machine; `threads == 1`
/// runs inline. If any job
/// throws, the first failure (after all threads join) is rethrown nested
/// inside an Error naming the job: "run_parallel: job i (trace=...,
/// nodes=..., policy=...) failed". Catch as l2s::Error and use
/// std::rethrow_if_nested to reach the original exception.
[[nodiscard]] std::vector<SimResult> run_parallel(const std::vector<SimJob>& jobs,
                                                  unsigned threads = 0);

/// Merge the telemetry snapshots of a batch of results into one aggregate,
/// always iterating in job-index order — each job owns a private registry
/// during the run (no shared mutable state between workers), and the fixed
/// merge order makes the aggregate identical regardless of which worker
/// finished first. Results without telemetry are skipped; returns null when
/// no result carried any.
[[nodiscard]] std::shared_ptr<const telemetry::Snapshot> merge_telemetry(
    const std::vector<SimResult>& results);

/// Parallel variant of run_throughput_figure: identical results, wall
/// clock divided by the usable cores.
[[nodiscard]] FigureSeries run_throughput_figure_parallel(const trace::Trace& trace,
                                                          const ExperimentConfig& cfg,
                                                          unsigned threads = 0);

}  // namespace l2s::core
