// Results of one simulation run: the quantities the paper's evaluation
// section reports (throughput, miss rates, CPU idle times, forwarded
// fraction) plus supporting detail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace l2s::core {

struct SimResult {
  std::string policy;
  std::string trace;
  int nodes = 0;

  std::uint64_t completed = 0;
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;

  double hit_rate = 0.0;
  double miss_rate = 0.0;

  std::uint64_t forwarded = 0;
  double forwarded_fraction = 0.0;

  /// Persistent-connection accounting (== completed with HTTP/1.0).
  std::uint64_t connections = 0;
  std::uint64_t migrations = 0;      ///< connection hand-offs between nodes
  std::uint64_t remote_fetches = 0;  ///< back-end request forwardings

  /// Requests lost to injected node crashes (availability studies).
  std::uint64_t failed = 0;

  /// Mean over nodes of (1 - CPU utilization) during the measured pass.
  double cpu_idle_fraction = 0.0;
  std::vector<double> node_cpu_utilization;

  /// Load imbalance across nodes, sampled periodically during the run:
  /// mean coefficient of variation (stddev/mean) of the per-node
  /// open-connection counts, and mean max/mean ratio. 0 = perfect balance.
  double load_cov = 0.0;
  double load_max_over_mean = 0.0;

  double mean_response_ms = 0.0;
  double max_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;

  /// Mean per-request time in each lifecycle stage (ms); the four parts
  /// sum to mean_response_ms.
  double stage_entry_ms = 0.0;    ///< router/NI/parse incl. queueing + decision
  double stage_forward_ms = 0.0;  ///< hand-off wire + CPU (0 when local)
  double stage_disk_ms = 0.0;     ///< disk queue + transfer (0 on hits)
  double stage_reply_ms = 0.0;    ///< reply CPU/NI/router incl. queueing

  std::uint64_t via_messages = 0;
  std::uint64_t load_broadcasts = 0;
  std::uint64_t locality_broadcasts = 0;

  /// One-paragraph human-readable summary.
  [[nodiscard]] std::string describe() const;
};

}  // namespace l2s::core
