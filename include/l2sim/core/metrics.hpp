// Results of one simulation run: the quantities the paper's evaluation
// section reports (throughput, miss rates, CPU idle times, forwarded
// fraction) plus supporting detail.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace l2s::telemetry {
struct Snapshot;
}  // namespace l2s::telemetry

namespace l2s::obs {
struct DecisionTrace;
}  // namespace l2s::obs

namespace l2s::core {

struct SimResult {
  std::string policy;
  std::string trace;
  int nodes = 0;

  std::uint64_t completed = 0;
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;

  double hit_rate = 0.0;
  double miss_rate = 0.0;

  std::uint64_t forwarded = 0;
  double forwarded_fraction = 0.0;

  /// Persistent-connection accounting (== completed with HTTP/1.0).
  std::uint64_t connections = 0;
  std::uint64_t migrations = 0;      ///< connection hand-offs between nodes
  std::uint64_t remote_fetches = 0;  ///< back-end request forwardings

  /// Requests the cluster failed to serve (availability studies). The
  /// total always equals the sum of the four buckets below.
  std::uint64_t failed = 0;
  std::uint64_t failed_deadline = 0;   ///< client deadline expired
  std::uint64_t failed_retries_exhausted = 0;  ///< every attempt died
  std::uint64_t failed_rejected = 0;   ///< open-loop arrival found buffers full
  std::uint64_t failed_shed = 0;       ///< overload shedder turned it away

  /// Client-side retry accounting (all zero unless SimConfig::retry is on).
  std::uint64_t completed_after_retry = 0;  ///< completions needing >= 1 retry
  std::uint64_t retry_attempts = 0;         ///< re-submissions performed
  /// Mean attempts per request: 1.0 = no retries anywhere.
  double retry_amplification = 0.0;

  /// Overload-defense accounting (all zero unless SimConfig::overload
  /// enables a defense — the golden digests rely on that).
  std::uint64_t hedge_attempts = 0;        ///< speculative backup dispatches
  std::uint64_t brownout_transitions = 0;  ///< brownout level changes
  int brownout_final_level = 0;            ///< level at end of measured pass

  /// Fault-layer message accounting (VIA).
  std::uint64_t via_dropped = 0;
  std::uint64_t via_duplicated = 0;
  std::uint64_t via_delayed = 0;
  std::uint64_t heartbeats = 0;  ///< heartbeat broadcasts sent by the detector

  /// Availability timings (0 when no crash/recovery was observed).
  double detection_latency_ms = 0.0;  ///< crash -> policies told, mean
  double time_to_recover_ms = 0.0;    ///< restart -> readmitted, mean

  /// Per-interval goodput timeline of the measured pass (empty unless
  /// SimConfig::goodput_interval_seconds > 0).
  std::vector<double> goodput_rps;
  double goodput_interval_seconds = 0.0;

  /// Mean over nodes of (1 - CPU utilization) during the measured pass.
  double cpu_idle_fraction = 0.0;
  std::vector<double> node_cpu_utilization;

  /// Load imbalance across nodes, sampled periodically during the run:
  /// mean coefficient of variation (stddev/mean) of the per-node
  /// open-connection counts, and mean max/mean ratio. 0 = perfect balance.
  double load_cov = 0.0;
  double load_max_over_mean = 0.0;

  double mean_response_ms = 0.0;
  double max_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;

  /// Mean per-request time in each lifecycle stage (ms); the four parts
  /// sum to mean_response_ms.
  double stage_entry_ms = 0.0;    ///< router/NI/parse incl. queueing + decision
  double stage_forward_ms = 0.0;  ///< hand-off wire + CPU (0 when local)
  double stage_disk_ms = 0.0;     ///< disk queue + transfer (0 on hits)
  double stage_reply_ms = 0.0;    ///< reply CPU/NI/router incl. queueing

  std::uint64_t via_messages = 0;
  std::uint64_t load_broadcasts = 0;
  std::uint64_t locality_broadcasts = 0;

  /// Detached telemetry of the measured pass (metrics registry, sampled
  /// spans, fault timeline). Null unless SimConfig::telemetry.enabled;
  /// shared so SimResult stays cheaply copyable.
  std::shared_ptr<const telemetry::Snapshot> telemetry;

  /// Flight-recorder decision log (oldest-first retained window). Null
  /// unless SimConfig::obs.enabled; like `telemetry` it is deliberately
  /// NOT folded into result_digest — recording is an observation of the
  /// run, never part of its identity.
  std::shared_ptr<const obs::DecisionTrace> decisions;

  /// One-paragraph human-readable summary.
  [[nodiscard]] std::string describe() const;
};

/// Bit-exact 64-bit digest of everything a run reports: completion and
/// failure buckets, throughput, latency quantiles, stage breakdown,
/// imbalance statistics, per-node utilizations and the VIA message
/// counters (doubles folded bit-for-bit). The golden-digest regression
/// net pins engine behaviour with it, and the sharded-engine gates
/// (tests/test_golden_results.cpp, bench/parallel_des_bench) compare
/// serial and sharded runs through it — any reordered event or RNG draw
/// shows up as a digest mismatch.
[[nodiscard]] std::uint64_t result_digest(const SimResult& r);

/// result_digest rendered as 16 lowercase hex digits.
[[nodiscard]] std::string result_digest_hex(const SimResult& r);

}  // namespace l2s::core
