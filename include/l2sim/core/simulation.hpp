// ClusterSimulation: the trace-driven discrete-event simulator of a
// cluster-based network server (Section 5 of the paper) — a slim
// coordinator over the engine components in l2sim/core/engine/:
//
//   ArrivalSource        how requests enter (saturation replay / Poisson)
//   AdmissionController  the bounded in-flight window + drop accounting
//   Dispatcher           entry selection, parse, policy decision, hand-off
//   ServicePath          cache/disk service, reply path, completion
//   PersistentPath       HTTP/1.1 requests: migration or remote fetch
//   RetryManager         backoff, attempt timeout, deadline, failure
//   OverloadController   shedding, retry budget, hedging, brownout
//   MetricsCollector     every statistic, behind LifecycleObserver
//
// The coordinator owns the simulated hardware (scheduler, nodes, router,
// interconnect topology, VIA), wires the components through an
// EngineContext, and
// runs the paper's measurement protocol: warm the caches by simulating the
// trace once, reset statistics, then replay the same trace under
// saturation to measure maximum throughput. Faults (crashes, fail-slow,
// message faults) and their detection are armed around the measured pass.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/core/config.hpp"
#include "l2sim/core/engine/context.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/des/shard_map.hpp"
#include "l2sim/des/sharded_scheduler.hpp"
#include "l2sim/fault/detector.hpp"
#include "l2sim/fault/runtime.hpp"
#include "l2sim/net/flow.hpp"
#include "l2sim/net/router.hpp"
#include "l2sim/net/topology.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::telemetry {
class SimTelemetry;
}  // namespace l2s::telemetry

namespace l2s::obs {
class FlightRecorder;
}  // namespace l2s::obs

namespace l2s::core {

namespace engine {
class MetricsCollector;
}  // namespace engine

/// The per-shard-pair post() bound the topology implies for the cluster
/// engine: entry (s, d) is the host-side VIA floor (sender CPU + NIC
/// overhead) plus the minimum topology latency between any node of shard
/// s and any node of shard d. Rack-aligned shards that share no rack get
/// entries wider than NetParams::min_cross_node_latency(); the matrix
/// feeds des::ShardedScheduler::set_pairwise_lookahead.
[[nodiscard]] std::vector<SimTime> topology_lookahead_matrix(
    const net::Topology& topo, const des::ShardMap& map,
    const net::NetParams& params);

class ClusterSimulation {
 public:
  ClusterSimulation(SimConfig config, const trace::Trace& trace,
                    std::unique_ptr<policy::Policy> policy);
  ~ClusterSimulation();

  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  /// Run (warm-up pass if configured, then the measured pass) and return
  /// the measured results. May be called once per instance.
  SimResult run();

  // --- component access (tests, custom analyses) -------------------------
  [[nodiscard]] policy::Policy& policy() { return *policy_; }
  [[nodiscard]] cluster::Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  /// The front-end scheduler: the single heap of the serial engine, or
  /// shard 0 of the sharded engine (where the shared front-end components
  /// — router, interconnect, arrival source — live).
  [[nodiscard]] des::Scheduler& scheduler() { return sched_; }
  /// The interconnect the run was built on (never null).
  [[nodiscard]] net::Topology& topology() { return *topo_; }
  /// The flow-level bulk network (null unless config.topology.flow_level).
  [[nodiscard]] net::FlowNetwork* flow_network() { return flow_.get(); }
  /// The sharded engine, or null when config.engine.shards == 0 (serial).
  [[nodiscard]] des::ShardedScheduler* sharded_engine() { return sharded_.get(); }
  /// The node -> shard partition (one entity per node; a single shard
  /// when the serial engine is active).
  [[nodiscard]] const des::ShardMap& shard_map() const { return shard_map_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  /// The run's telemetry bridge (null unless config.telemetry.enabled).
  [[nodiscard]] telemetry::SimTelemetry* telemetry() { return telemetry_.get(); }
  /// The run's flight recorder (null unless config.obs records).
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }

 private:
  /// One pass: open an admission window, start arrivals (and the load
  /// sampler), drain the scheduler.
  void replay_trace();
  /// Interpret the fault plan and start detection for the measured pass.
  void arm_faults(SimTime measure_start);
  /// End of warm-up: zero hardware stats, policy counters and metrics.
  void reset_statistics();

  SimConfig config_;
  const trace::Trace& trace_;
  // Engine selection (config.engine.shards): nodes partition across the
  // shard map, each node's components schedule on its shard's heap, and
  // the front-end shares shard 0. Serial runs keep the single solo heap;
  // sched_ aliases whichever is active (declaration order matters: the
  // hardware below binds sched_ in its constructors).
  des::ShardMap shard_map_;
  std::unique_ptr<des::ShardedScheduler> sharded_;
  des::Scheduler solo_sched_;
  des::Scheduler& sched_;
  std::unique_ptr<net::Topology> topo_;
  net::Router router_;
  net::ViaNetwork via_;
  /// Flow-level bulk transfers (only when config.topology.flow_level).
  std::unique_ptr<net::FlowNetwork> flow_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::unique_ptr<policy::Policy> policy_;
  std::unique_ptr<fault::FaultRuntime> fault_runtime_;
  std::unique_ptr<fault::FailureDetector> detector_;
  Rng rng_{0};  ///< simulation random stream (seeded from config)

  // Engine components (wired through ctx_; declaration order is
  // construction order, so ctx_ comes first).
  engine::EngineContext ctx_;
  engine::LifecycleFanout fanout_;
  std::unique_ptr<engine::AdmissionController> admission_;
  std::unique_ptr<engine::ArrivalSource> arrival_;
  std::unique_ptr<engine::Dispatcher> dispatcher_;
  std::unique_ptr<engine::RetryManager> retry_;
  std::unique_ptr<engine::ServicePath> service_;
  std::unique_ptr<engine::PersistentPath> persistent_;
  /// Overload defenses (SimConfig::overload); always wired, schedules
  /// nothing and touches nothing unless a defense is enabled.
  std::unique_ptr<engine::OverloadController> overload_;
  std::unique_ptr<engine::MetricsCollector> metrics_;
  /// Observability bridge; only constructed (and registered on the fan-out)
  /// when config.telemetry.enabled — the disabled path has no telemetry
  /// code at all.
  std::unique_ptr<telemetry::SimTelemetry> telemetry_;
  /// Flight recorder; only constructed (and registered on the fan-out)
  /// when config.obs.enabled or a DecisionSink is wired.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  bool ran_ = false;
};

}  // namespace l2s::core
