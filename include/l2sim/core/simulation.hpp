// ClusterSimulation: the trace-driven discrete-event simulator of a
// cluster-based network server (Section 5 of the paper).
//
// Request lifecycle (HTTP/1.0-style, one request per connection):
//
//   client -> router -> entry NI-in -> entry CPU (parse)
//     -> policy decision
//        local:      -> service path on the entry node
//        forwarded:  -> entry CPU (hand-off) -> VIA transfer
//                    -> target CPU (receive) -> service path on target
//   service path: cache hit ? CPU reply : disk read + cache insert + CPU reply
//     -> NI-out -> router -> client (connection closes)
//
// Measurement protocol follows the paper: caches are warmed by simulating
// the trace once, statistics are reset, and the same trace is replayed
// under saturation to measure maximum throughput.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "l2sim/cluster/connection.hpp"
#include "l2sim/cluster/injector.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/cluster/node.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/fault/detector.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/fault/runtime.hpp"
#include "l2sim/net/router.hpp"
#include "l2sim/net/switch_fabric.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/stats/accumulator.hpp"
#include "l2sim/stats/availability.hpp"
#include "l2sim/stats/histogram.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::core {

/// How a persistent (HTTP/1.1-style) connection obtains a file its current
/// node does not cache, following Aron et al.'s two mechanisms:
/// migrate the whole connection to the caching node (hand-off), or have
/// the current node fetch the content from the caching node over the
/// cluster network and reply itself (back-end request forwarding).
enum class PersistentMode { kConnectionHandoff, kBackendForwarding };

struct SimConfig {
  int nodes = 16;
  cluster::NodeParams node;  ///< per-node cache (32 MB default), CPU, disk
  net::NetParams net;
  Bytes request_msg_bytes = 256;  ///< client request / hand-off payload
  Bytes control_msg_bytes = 16;   ///< load & locality update payload
  /// Admission buffer slots per node (total in-flight = nodes * this).
  /// At saturation the average per-node open-connection count equals this
  /// value, so it should sit at or just below the L2S overload threshold
  /// (T = 20): only nodes serving hot files then cross T, which is what
  /// triggers selective replication. Values far above T put every node
  /// permanently over threshold and degrade L2S into full replication.
  std::uint64_t buffer_slots_per_node = 20;
  bool warmup = true;

  /// Open-loop arrival mode: when positive, requests arrive as a Poisson
  /// process at this rate (requests/second) instead of the paper's
  /// saturation replay — the configuration for latency-vs-load studies.
  /// The admission window still caps outstanding work (arrivals finding
  /// it full are dropped and counted as failed), bounding queue blow-up
  /// above saturation.
  double open_loop_arrival_rate = 0.0;

  /// Mean requests served per client connection (geometric distribution);
  /// 1.0 reproduces the paper's HTTP/1.0 setting of one request per
  /// connection. Larger values simulate persistent connections.
  double mean_requests_per_connection = 1.0;
  PersistentMode persistent_mode = PersistentMode::kConnectionHandoff;
  /// Seed for the simulation's own randomness (connection lengths).
  std::uint64_t seed = 0x5EEDC0DE;

  /// Interval at which per-node open-connection counts are sampled to
  /// compute the load-imbalance statistics (0 disables sampling).
  SimTime load_sample_interval = seconds_to_simtime(0.05);
  /// When non-empty, every load sample of the measured pass is appended to
  /// this CSV file (time_s, node0, node1, ...): the per-node load timeline
  /// for plotting balance behaviour over time.
  std::string timeline_csv_path;

  /// DNS-translation caching skew: with this probability a client's
  /// connection ignores the DNS round-robin answer and lands on a node
  /// drawn from a Zipf(1) "cached translation" distribution instead — the
  /// imbalance Section 2 attributes to intermediate name servers caching
  /// translations. Applies only to policies with a DNS front door.
  double dns_entry_skew = 0.0;

  /// Node crashes injected during the measured pass (availability study:
  /// the paper's L2S has no single point of failure, while LARD's
  /// front-end is one). Times are seconds after measurement starts.
  ///
  /// DEPRECATED: this is the pre-FaultPlan interface, kept as a shim —
  /// every entry is folded into `fault_plan` as a Crash when the run is
  /// armed. New code should populate `fault_plan` directly, which also
  /// expresses recoveries, fail-slow windows and message faults.
  struct NodeFailure {
    int node = 0;
    double at_seconds = 0.0;
  };
  std::vector<NodeFailure> failures;
  /// Delay until the survivors (policies, DNS) stop using a crashed node.
  /// Only used by the legacy fixed-delay detection path (when
  /// `detection.heartbeats` is false); it also paces readmission after a
  /// recovery on that path.
  double failure_detection_seconds = 0.5;

  /// Declarative fault schedule for the measured pass (crashes,
  /// recoveries, fail-slow windows, VIA message faults). Replaces — and is
  /// merged with — the legacy `failures` vector.
  fault::FaultPlan fault_plan;

  /// Heartbeat failure detection (off = legacy fixed-delay detection).
  fault::DetectionParams detection;

  /// Client-side robustness. Defaults keep everything off, reproducing
  /// the fail-fast client of the original model.
  struct RetryParams {
    int max_retries = 0;  ///< extra attempts after the first (0 = fail fast)
    double initial_backoff_seconds = 0.025;
    double backoff_multiplier = 2.0;
    double max_backoff_seconds = 0.2;
    /// Per-request deadline measured from first arrival; the client gives
    /// up (request fails) when it expires. 0 = none.
    double deadline_seconds = 0.0;
    /// Per-attempt timeout: an attempt that has not completed by then is
    /// abandoned and retried (or failed). Required (or a deadline) for
    /// liveness whenever the fault plan can drop messages. 0 = none.
    double attempt_timeout_seconds = 0.0;
  };
  RetryParams retry;

  /// Goodput timeline bucket width for SimResult::goodput_rps (0 = off).
  double goodput_interval_seconds = 0.0;
  /// Per-node CPU speed factors (empty = homogeneous cluster, the paper's
  /// assumption). When set, the vector length must equal `nodes`.
  std::vector<double> node_speed_factors;

  /// How long a client waits on a connection to a crashed node before
  /// giving up (its admission slot is held for the duration). Without this
  /// timeout, fail-fast aborts would let a dead node black-hole the whole
  /// trace during the detection window — the classic least-connections
  /// pathology, where the dead node's frozen (minimal) connection count
  /// attracts every new request.
  double failure_client_timeout_seconds = 0.1;

  void validate() const;
};

class ClusterSimulation {
 public:
  ClusterSimulation(SimConfig config, const trace::Trace& trace,
                    std::unique_ptr<policy::Policy> policy);
  ~ClusterSimulation();

  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  /// Run (warm-up pass if configured, then the measured pass) and return
  /// the measured results. May be called once per instance.
  SimResult run();

  // --- component access (tests, custom analyses) -------------------------
  [[nodiscard]] policy::Policy& policy() { return *policy_; }
  [[nodiscard]] cluster::Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] des::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  using ConnPtr = std::shared_ptr<cluster::Connection>;

  void replay_trace();                 ///< inject the whole trace and drain
  void open_loop_arrival();            ///< Poisson arrival pump
  void inject(std::uint64_t seq, const trace::Request& r);
  void distribute(const ConnPtr& conn);
  void dispatch_to(const ConnPtr& conn, int target);
  void begin_service(const ConnPtr& conn, bool opening);
  void reply_path(const ConnPtr& conn);
  void request_finished(const ConnPtr& conn);
  void close_connection(const ConnPtr& conn);
  /// Start the next request of a persistent connection at its current node.
  void continue_connection(const ConnPtr& conn);
  void persistent_distribute(const ConnPtr& conn);
  void migrate_connection(const ConnPtr& conn, int target);
  void remote_fetch(const ConnPtr& conn, int owner);
  [[nodiscard]] std::uint32_t sample_connection_length();
  [[nodiscard]] bool node_alive(int id) const;
  /// Abort a connection whose node crashed: retried if the client has
  /// retry budget left, otherwise the client sees a failure and the
  /// admission slot frees (after the client timeout). Idempotent.
  void abort_connection(const ConnPtr& conn);
  /// Launch the connection's current attempt: entry selection, router,
  /// entry NIC, parse. Called at injection and again on every retry.
  void start_attempt(const ConnPtr& conn);
  /// Consume retry budget and schedule the next attempt after backoff.
  void schedule_retry(const ConnPtr& conn);
  /// A callback belongs to a superseded attempt (or a finished request).
  [[nodiscard]] static bool attempt_stale(const ConnPtr& conn, std::uint32_t att) {
    return conn->stage == cluster::ConnectionStage::kDone || conn->attempt != att;
  }
  /// Release the service node's open-connection count if this connection
  /// still holds one against the node's current incarnation.
  void release_service_count(const ConnPtr& conn);
  /// The connection's service node is alive and still the incarnation the
  /// connection was counted against (always true without crashes).
  [[nodiscard]] bool service_current(const ConnPtr& conn) const;
  /// Final failure: count it under `bucket`, free the admission slot after
  /// `slot_hold` (0 = immediately).
  void fail_connection(const ConnPtr& conn, std::uint64_t& bucket, SimTime slot_hold);
  void arm_deadline(const ConnPtr& conn);
  /// Interpret the fault plan (+ legacy failures) and start detection.
  void arm_faults(SimTime measure_start);
  void sample_loads();
  void reset_statistics();
  [[nodiscard]] SimResult collect(SimTime measure_start) const;

  SimConfig config_;
  const trace::Trace& trace_;
  des::Scheduler sched_;
  net::SwitchFabric fabric_;
  net::Router router_;
  net::ViaNetwork via_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::unique_ptr<policy::Policy> policy_;
  std::unique_ptr<cluster::Injector> injector_;
  std::unique_ptr<fault::FaultRuntime> fault_runtime_;
  std::unique_ptr<fault::FailureDetector> detector_;

  // Measured-pass statistics.
  std::uint64_t completed_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t remote_fetches_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failed_deadline_ = 0;
  std::uint64_t failed_retries_ = 0;
  std::uint64_t failed_rejected_ = 0;
  std::uint64_t completed_after_retry_ = 0;
  std::uint64_t retry_attempts_ = 0;
  stats::AvailabilityTracker availability_;
  stats::Accumulator response_times_;
  stats::LogHistogram response_hist_{0.01, 1.3, 64};  ///< ms buckets
  stats::Accumulator stage_entry_;
  stats::Accumulator stage_forward_;
  stats::Accumulator stage_disk_;
  stats::Accumulator stage_reply_;
  stats::Accumulator load_cov_;       ///< per-sample load coefficient of variation
  stats::Accumulator load_max_mean_;  ///< per-sample max/mean load ratio
  Rng rng_{0};  ///< connection-length sampling (seeded from config)
  std::unique_ptr<std::ofstream> timeline_;  ///< optional load timeline sink
  bool ran_ = false;
};

}  // namespace l2s::core
