// Simulation configuration, grouped by the engine component that consumes
// it: arrival generation, admission control, client retries and persistent
// connections each have their own sub-config, embedded in SimConfig next
// to the cluster-wide hardware and fault parameters.
//
// Field migration from the flat pre-engine SimConfig:
//   open_loop_arrival_rate        -> arrival.open_loop_rate
//   dns_entry_skew                -> arrival.dns_entry_skew
//   buffer_slots_per_node         -> admission.buffer_slots_per_node
//   mean_requests_per_connection  -> persistence.mean_requests_per_connection
//   persistent_mode               -> persistence.mode
//   retry (SimConfig::RetryParams)-> retry (RetryConfig; alias kept)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/telemetry/config.hpp"

namespace l2s::core {

/// How a persistent (HTTP/1.1-style) connection obtains a file its current
/// node does not cache, following Aron et al.'s two mechanisms:
/// migrate the whole connection to the caching node (hand-off), or have
/// the current node fetch the content from the caching node over the
/// cluster network and reply itself (back-end request forwarding).
enum class PersistentMode { kConnectionHandoff, kBackendForwarding };

/// How requests enter the cluster (consumed by engine::ArrivalSource).
struct ArrivalConfig {
  /// Open-loop arrival mode: when positive, requests arrive as a Poisson
  /// process at this rate (requests/second) instead of the paper's
  /// saturation replay — the configuration for latency-vs-load studies.
  /// The admission window still caps outstanding work (arrivals finding
  /// it full are dropped and counted as failed), bounding queue blow-up
  /// above saturation.
  double open_loop_rate = 0.0;

  /// DNS-translation caching skew: with this probability a client's
  /// connection ignores the DNS round-robin answer and lands on a node
  /// drawn from a Zipf(1) "cached translation" distribution instead — the
  /// imbalance Section 2 attributes to intermediate name servers caching
  /// translations. Applies only to policies with a DNS front door.
  double dns_entry_skew = 0.0;
};

/// Bounded in-flight admission window (engine::AdmissionController).
struct AdmissionConfig {
  /// Admission buffer slots per node (total in-flight = nodes * this).
  /// At saturation the average per-node open-connection count equals this
  /// value, so it should sit at or just below the L2S overload threshold
  /// (T = 20): only nodes serving hot files then cross T, which is what
  /// triggers selective replication. Values far above T put every node
  /// permanently over threshold and degrade L2S into full replication.
  std::uint64_t buffer_slots_per_node = 20;
};

/// Client-side robustness (engine::RetryManager). Defaults keep
/// everything off, reproducing the fail-fast client of the original model.
struct RetryConfig {
  int max_retries = 0;  ///< extra attempts after the first (0 = fail fast)
  double initial_backoff_seconds = 0.025;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.2;
  /// Per-request deadline measured from first arrival; the client gives
  /// up (request fails) when it expires. 0 = none.
  double deadline_seconds = 0.0;
  /// Per-attempt timeout: an attempt that has not completed by then is
  /// abandoned and retried (or failed). Required (or a deadline) for
  /// liveness whenever the fault plan can drop messages. 0 = none.
  double attempt_timeout_seconds = 0.0;
};

/// Persistent-connection behaviour (engine::PersistentPath).
struct PersistenceConfig {
  /// Mean requests served per client connection (geometric distribution);
  /// 1.0 reproduces the paper's HTTP/1.0 setting of one request per
  /// connection. Larger values simulate persistent connections.
  double mean_requests_per_connection = 1.0;
  PersistentMode mode = PersistentMode::kConnectionHandoff;
};

/// Which DES engine drives the run (consumed by ClusterSimulation).
struct EngineConfig {
  /// `shards` picks the sentinel for "one shard per available thread"
  /// (the process thread budget, L2SIM_THREADS-overridable).
  static constexpr int kAutoShards = -1;

  /// Number of DES shards the cluster's nodes are partitioned across.
  ///   0            — the classic single-heap serial engine (default);
  ///   N >= 1       — the sharded engine with N shards (clamped to the
  ///                  node count; N == 1 is the sharded code path with a
  ///                  single shard);
  ///   kAutoShards  — one shard per thread-budget thread.
  /// The sharded cluster engine runs in sequential-merge mode, which is
  /// bit-identical to the serial engine by construction (shards share one
  /// sequence counter) — the golden-digest suite pins the equivalence for
  /// every golden cell. Threaded window execution is the kernel-level
  /// fast path (see docs/parallel_des.md for the phase split).
  int shards = 0;
};

struct SimConfig {
  int nodes = 16;
  cluster::NodeParams node;  ///< per-node cache (32 MB default), CPU, disk
  net::NetParams net;
  Bytes request_msg_bytes = 256;  ///< client request / hand-off payload
  Bytes control_msg_bytes = 16;   ///< load & locality update payload
  bool warmup = true;
  /// Seed for the simulation's own randomness (connection lengths, DNS
  /// skew, open-loop gaps); the fault layer splits its own stream off it.
  std::uint64_t seed = 0x5EEDC0DE;

  ArrivalConfig arrival;
  AdmissionConfig admission;
  EngineConfig engine;
  RetryConfig retry;
  PersistenceConfig persistence;
  /// Back-compat alias: RetryConfig was SimConfig::RetryParams before the
  /// sub-config split.
  using RetryParams = RetryConfig;

  /// Interval at which per-node open-connection counts are sampled to
  /// compute the load-imbalance statistics (0 disables sampling).
  SimTime load_sample_interval = seconds_to_simtime(0.05);
  /// When non-empty, every load sample of the measured pass is appended to
  /// this CSV file (time_s, node0, node1, ...): the per-node load timeline
  /// for plotting balance behaviour over time.
  std::string timeline_csv_path;

  /// Declarative fault schedule for the measured pass (crashes,
  /// recoveries, fail-slow windows, VIA message faults).
  fault::FaultPlan fault_plan;

  /// Heartbeat failure detection (off = fixed-delay detection).
  fault::DetectionParams detection;

  /// Delay until the survivors (policies, DNS) stop using a crashed node
  /// under fixed-delay detection (`detection.heartbeats` false); it also
  /// paces readmission after a recovery on that path.
  double failure_detection_seconds = 0.5;

  /// How long a client waits on a connection to a crashed node before
  /// giving up (its admission slot is held for the duration). Without this
  /// timeout, fail-fast aborts would let a dead node black-hole the whole
  /// trace during the detection window — the classic least-connections
  /// pathology, where the dead node's frozen (minimal) connection count
  /// attracts every new request.
  double failure_client_timeout_seconds = 0.1;

  /// Goodput timeline bucket width for SimResult::goodput_rps (0 = off).
  double goodput_interval_seconds = 0.0;

  /// Observability: metrics registry, span recorder, timeline probe and
  /// exporters (off by default; enabling it must not change results — the
  /// golden-digest suite pins that).
  telemetry::TelemetryConfig telemetry;
  /// Per-node CPU speed factors (empty = homogeneous cluster, the paper's
  /// assumption). When set, the vector length must equal `nodes`.
  std::vector<double> node_speed_factors;

  void validate() const;
};

}  // namespace l2s::core
