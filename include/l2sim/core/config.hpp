// Simulation configuration, grouped by the engine component that consumes
// it: arrival generation, admission control, client retries and persistent
// connections each have their own sub-config, embedded in SimConfig next
// to the cluster-wide hardware and fault parameters.
//
// Field migration from the flat pre-engine SimConfig:
//   open_loop_arrival_rate        -> arrival.open_loop_rate
//   dns_entry_skew                -> arrival.dns_entry_skew
//   buffer_slots_per_node         -> admission.buffer_slots_per_node
//   mean_requests_per_connection  -> persistence.mean_requests_per_connection
//   persistent_mode               -> persistence.mode
//   retry (SimConfig::RetryParams)-> retry (RetryConfig; alias kept)
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/net/topology.hpp"
#include "l2sim/obs/config.hpp"
#include "l2sim/telemetry/config.hpp"

namespace l2s::core {

/// How a persistent (HTTP/1.1-style) connection obtains a file its current
/// node does not cache, following Aron et al.'s two mechanisms:
/// migrate the whole connection to the caching node (hand-off), or have
/// the current node fetch the content from the caching node over the
/// cluster network and reply itself (back-end request forwarding).
enum class PersistentMode { kConnectionHandoff, kBackendForwarding };

/// Time profile of the open-loop arrival rate. kStationary keeps the
/// classic homogeneous Poisson pump; the other shapes modulate the rate
/// over pass time and are realized by Lewis-Shedler thinning against the
/// peak rate, so they stay a single deterministic random stream.
enum class ArrivalShape { kStationary, kFlashCrowd, kDiurnal };

/// How requests enter the cluster (consumed by engine::ArrivalSource).
struct ArrivalConfig {
  /// Open-loop arrival mode: when positive, requests arrive as a Poisson
  /// process at this rate (requests/second) instead of the paper's
  /// saturation replay — the configuration for latency-vs-load studies.
  /// The admission window still caps outstanding work (arrivals finding
  /// it full are dropped and counted as failed), bounding queue blow-up
  /// above saturation.
  double open_loop_rate = 0.0;

  /// DNS-translation caching skew: with this probability a client's
  /// connection ignores the DNS round-robin answer and lands on a node
  /// drawn from a Zipf(1) "cached translation" distribution instead — the
  /// imbalance Section 2 attributes to intermediate name servers caching
  /// translations. Applies only to policies with a DNS front door.
  double dns_entry_skew = 0.0;

  /// Non-stationary shape of the open-loop rate (kStationary reproduces
  /// the exact draw sequence of the pre-overload engine; the golden suite
  /// pins that). Times are seconds relative to the start of each pass,
  /// like the fault plan's schedule.
  ArrivalShape shape = ArrivalShape::kStationary;

  // kFlashCrowd: the rate ramps from open_loop_rate to
  // open_loop_rate * flash_factor starting at flash_at_seconds, holds for
  // flash_hold_seconds, then ramps back down. flash_ramp_seconds == 0 is
  // a step; flash_hold_seconds defaults to "for the rest of the pass".
  double flash_at_seconds = 0.0;
  double flash_factor = 3.0;
  double flash_ramp_seconds = 0.0;
  double flash_hold_seconds = std::numeric_limits<double>::infinity();

  // kDiurnal: rate(t) = open_loop_rate * (1 + amplitude * sin(2*pi*t/T)).
  double diurnal_period_seconds = 10.0;
  double diurnal_amplitude = 0.5;

  /// Popularity churn (any arrival mode, replay included): every
  /// churn_period_seconds the file-popularity ranking rotates by
  /// churn_stride file ids — the hot set moves, deterministically, which
  /// is the miss-rate transient the Olmos non-stationary cache model
  /// predicts. 0 / 0 = off.
  double churn_period_seconds = 0.0;
  std::uint64_t churn_stride = 0;

  /// Rate multiplier at `t` seconds into the pass (1.0 when stationary).
  [[nodiscard]] double shape_multiplier(double t) const;
  /// Instantaneous arrival rate at `t` seconds into the pass.
  [[nodiscard]] double rate_at(double t) const {
    return open_loop_rate * shape_multiplier(t);
  }
  /// Upper bound of shape_multiplier over all t (the thinning envelope).
  [[nodiscard]] double peak_multiplier() const;
  [[nodiscard]] bool churn_enabled() const {
    return churn_period_seconds > 0.0 && churn_stride > 0;
  }
};

/// Which admission-shedding algorithm guards the open-loop front door
/// (engine::OverloadController). kNone admits everything the window holds,
/// reproducing the pre-overload engine exactly.
enum class ShedderKind {
  kNone,       ///< no shedding beyond the finite admission window
  kStaticCap,  ///< hard cap on in-flight admitted requests
  kQueueDelay, ///< shed while the windowed mean sojourn exceeds a target
  kAimd,       ///< goodput-tracking window: multiplicative decrease on failures
};

/// Overload-resilience defenses (l2s::overload — engine::OverloadController,
/// RetryManager hedging/budgets, policy brownout). Every default keeps the
/// defense OFF: a default-constructed OverloadConfig is bit-identical to
/// the pre-overload engine on all 36 golden cells (pinned).
struct OverloadConfig {
  // --- adaptive admission (open-loop arrivals) ---------------------------
  ShedderKind shedder = ShedderKind::kNone;
  /// kStaticCap: maximum in-flight admitted requests.
  std::uint64_t static_cap = 0;
  /// kQueueDelay: shed arrivals while the mean client sojourn observed
  /// over the last delay_window_seconds (terminal failures included) stays
  /// above this target. Mean, not the CoDel min: the hit/miss population
  /// is bimodal and a sub-ms warm hit in every window blinds a min signal
  /// to a disk-bound collapse (see docs/overload.md).
  double target_delay_seconds = 0.05;
  double delay_window_seconds = 0.1;
  /// kAimd: the in-flight cap shrinks multiplicatively on a failure signal
  /// (deadline / retries-exhausted), grows additively each quiet period.
  double aimd_increase = 1.0;        ///< slots added per failure-free period
  double aimd_decrease = 0.7;        ///< cap multiplier on a failure signal
  double aimd_period_seconds = 0.05;
  std::uint64_t aimd_min_window = 4;

  // --- retry budget / hedging (engine::RetryManager) ---------------------
  /// Token-bucket retry budget: every admitted request earns this many
  /// tokens (fractional accrual), every retry or hedge spends one; an
  /// empty bucket suppresses the retry, so retries cannot amplify a storm
  /// beyond burst + ratio * offered. Negative = unlimited (legacy).
  double retry_budget_ratio = -1.0;
  double retry_budget_burst = 16.0;  ///< bucket capacity (also initial fill)
  /// Request hedging: a request still unfinished after this many seconds
  /// is speculatively re-dispatched (the straggler attempt is cancelled —
  /// backup-request-with-cancellation adapted to the one-live-attempt
  /// engine), charged against the retry token bucket. 0 = off.
  double hedge_delay_seconds = 0.0;
  int max_hedges = 1;  ///< hedges per request

  // --- brownout / circuit breaker (policy hooks) -------------------------
  /// Brownout levels driven by the windowed mean client sojourn:
  ///   level 1 (shed forwarding): L2S serves at the entry node, LARD stops
  ///     replicating and migrating — locality is sacrificed for cycles;
  ///   level 2 (shed service): every other open-loop arrival is shed at
  ///     admission on top of the level-1 measures.
  /// Transitions are signalled to the policy (Policy::on_brownout) and the
  /// LifecycleObserver fan-out. Hysteresis: a level drops only once the
  /// delay falls below half the threshold that raised it.
  bool brownout = false;
  double brownout_forward_delay_seconds = 0.05;  ///< level-1 threshold
  double brownout_service_delay_seconds = 0.15;  ///< level-2 threshold

  /// Any admission-side defense on (consulted per open-loop arrival)?
  [[nodiscard]] bool admission_defense() const {
    return shedder != ShedderKind::kNone || brownout;
  }
  /// The retry token bucket is active.
  [[nodiscard]] bool budget_enabled() const { return retry_budget_ratio >= 0.0; }
  [[nodiscard]] bool hedging_enabled() const { return hedge_delay_seconds > 0.0; }
  /// Any defense at all (drives the controller's periodic machinery).
  [[nodiscard]] bool any_on() const {
    return admission_defense() || budget_enabled() || hedging_enabled();
  }
};

/// Bounded in-flight admission window (engine::AdmissionController).
struct AdmissionConfig {
  /// Admission buffer slots per node (total in-flight = nodes * this).
  /// At saturation the average per-node open-connection count equals this
  /// value, so it should sit at or just below the L2S overload threshold
  /// (T = 20): only nodes serving hot files then cross T, which is what
  /// triggers selective replication. Values far above T put every node
  /// permanently over threshold and degrade L2S into full replication.
  std::uint64_t buffer_slots_per_node = 20;
};

/// Client-side robustness (engine::RetryManager). Defaults keep
/// everything off, reproducing the fail-fast client of the original model.
struct RetryConfig {
  int max_retries = 0;  ///< extra attempts after the first (0 = fail fast)
  double initial_backoff_seconds = 0.025;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.2;
  /// Per-request deadline measured from first arrival; the client gives
  /// up (request fails) when it expires. 0 = none.
  double deadline_seconds = 0.0;
  /// Per-attempt timeout: an attempt that has not completed by then is
  /// abandoned and retried (or failed). Required (or a deadline) for
  /// liveness whenever the fault plan can drop messages. 0 = none.
  double attempt_timeout_seconds = 0.0;
};

/// Persistent-connection behaviour (engine::PersistentPath).
struct PersistenceConfig {
  /// Mean requests served per client connection (geometric distribution);
  /// 1.0 reproduces the paper's HTTP/1.0 setting of one request per
  /// connection. Larger values simulate persistent connections.
  double mean_requests_per_connection = 1.0;
  PersistentMode mode = PersistentMode::kConnectionHandoff;
};

/// Which DES engine drives the run (consumed by ClusterSimulation).
struct EngineConfig {
  /// `shards` picks the sentinel for "one shard per available thread"
  /// (the process thread budget, L2SIM_THREADS-overridable).
  static constexpr int kAutoShards = -1;

  /// Number of DES shards the cluster's nodes are partitioned across.
  ///   0            — the classic single-heap serial engine (default);
  ///   N >= 1       — the sharded engine with N shards (clamped to the
  ///                  node count; N == 1 is the sharded code path with a
  ///                  single shard);
  ///   kAutoShards  — one shard per thread-budget thread.
  /// The sharded cluster engine runs in sequential-merge mode, which is
  /// bit-identical to the serial engine by construction (shards share one
  /// sequence counter) — the golden-digest suite pins the equivalence for
  /// every golden cell. Threaded window execution is the kernel-level
  /// fast path (see docs/parallel_des.md for the phase split).
  int shards = 0;

  /// Collect des::ShardIntrospection on the sharded engine (per-shard
  /// event/window counters, cross-shard message matrix, lookahead slack).
  /// Observation only — never changes event order. Ignored when serial.
  bool introspect = false;
};

struct SimConfig {
  int nodes = 16;
  cluster::NodeParams node;  ///< per-node cache (32 MB default), CPU, disk
  net::NetParams net;
  /// Interconnect topology (default kSingleSwitch: the paper's single
  /// crossbar, bit-identical to the pre-topology engine — golden-pinned).
  net::TopologyConfig topology;
  Bytes request_msg_bytes = 256;  ///< client request / hand-off payload
  Bytes control_msg_bytes = 16;   ///< load & locality update payload
  bool warmup = true;
  /// Seed for the simulation's own randomness (connection lengths, DNS
  /// skew, open-loop gaps); the fault layer splits its own stream off it.
  std::uint64_t seed = 0x5EEDC0DE;

  ArrivalConfig arrival;
  AdmissionConfig admission;
  EngineConfig engine;
  RetryConfig retry;
  PersistenceConfig persistence;
  /// Overload-resilience defenses (all off by default; bit-identical to
  /// the pre-overload engine when off — the golden-digest suite pins it).
  OverloadConfig overload;
  /// Back-compat alias: RetryConfig was SimConfig::RetryParams before the
  /// sub-config split.
  using RetryParams = RetryConfig;

  /// Interval at which per-node open-connection counts are sampled to
  /// compute the load-imbalance statistics (0 disables sampling).
  SimTime load_sample_interval = seconds_to_simtime(0.05);
  /// When non-empty, every load sample of the measured pass is appended to
  /// this CSV file (time_s, node0, node1, ...): the per-node load timeline
  /// for plotting balance behaviour over time.
  std::string timeline_csv_path;

  /// Declarative fault schedule for the measured pass (crashes,
  /// recoveries, fail-slow windows, VIA message faults).
  fault::FaultPlan fault_plan;

  /// Heartbeat failure detection (off = fixed-delay detection).
  fault::DetectionParams detection;

  /// Delay until the survivors (policies, DNS) stop using a crashed node
  /// under fixed-delay detection (`detection.heartbeats` false); it also
  /// paces readmission after a recovery on that path.
  double failure_detection_seconds = 0.5;

  /// How long a client waits on a connection to a crashed node before
  /// giving up (its admission slot is held for the duration). Without this
  /// timeout, fail-fast aborts would let a dead node black-hole the whole
  /// trace during the detection window — the classic least-connections
  /// pathology, where the dead node's frozen (minimal) connection count
  /// attracts every new request.
  double failure_client_timeout_seconds = 0.1;

  /// Goodput timeline bucket width for SimResult::goodput_rps (0 = off).
  double goodput_interval_seconds = 0.0;

  /// Observability: metrics registry, span recorder, timeline probe and
  /// exporters (off by default; enabling it must not change results — the
  /// golden-digest suite pins that).
  telemetry::TelemetryConfig telemetry;
  /// Flight recorder: bounded decision log with cause codes (off by
  /// default; recording is digest-inert — pinned like telemetry).
  obs::ObsConfig obs;
  /// Per-node CPU speed factors (empty = homogeneous cluster, the paper's
  /// assumption). When set, the vector length must equal `nodes`.
  std::vector<double> node_speed_factors;

  void validate() const;
};

}  // namespace l2s::core
