// Heartbeat failure detection over the (possibly lossy) VIA layer.
//
// Every alive node broadcasts a small heartbeat each period; receivers
// stamp the sender's last-heard time. A monitor sweep, also once per
// period, suspects a node once nothing has been heard from it for K
// consecutive periods, and readmits a suspected node after
// DetectionParams::readmit_after_fresh consecutive sweeps that each saw a
// fresh heartbeat (a recovered node resumes broadcasting by itself; the
// streak requirement damps flapping over lossy links).
//
// Simplification (documented in DESIGN.md §7): the last-heard table is a
// shared membership view — any receiver hearing node n refreshes n for the
// whole cluster. Per-observer views would multiply state N-fold without
// changing the policies' behaviour, because every policy reacts to the
// same suspected/readmitted notification anyway. Message loss still
// matters: a heartbeat round survives as long as at least one of its N-1
// point-to-point copies arrives.
//
// Everything runs through the deterministic scheduler; heartbeats consume
// real CPU/NIC/switch resources, so detection is not free — the paper's
// control-overhead accounting extends to the failure detector.
#pragma once

#include <functional>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/net/via.hpp"

namespace l2s::fault {

class FailureDetector {
 public:
  using NotifyFn = std::function<void(int node, SimTime at)>;

  FailureDetector(des::Scheduler& sched, net::ViaNetwork& via,
                  std::vector<cluster::Node*> nodes, DetectionParams params,
                  Bytes heartbeat_bytes);

  /// Begin heartbeating and monitoring. `active` gates rescheduling (the
  /// detector stops when the run drains, like the load sampler).
  /// `on_suspect` fires when a node is declared suspected, `on_readmit`
  /// when a suspected node is heard from again.
  void start(std::function<bool()> active, NotifyFn on_suspect, NotifyFn on_readmit);

  [[nodiscard]] bool suspected(int node) const {
    return suspected_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::uint64_t heartbeats_sent() const { return heartbeats_; }

 private:
  void heartbeat_round(int node);
  void monitor_round();

  des::Scheduler& sched_;
  net::ViaNetwork& via_;
  std::vector<cluster::Node*> nodes_;
  DetectionParams params_;
  Bytes heartbeat_bytes_;
  std::function<bool()> active_;
  NotifyFn on_suspect_;
  NotifyFn on_readmit_;
  std::vector<SimTime> last_heard_;
  std::vector<bool> suspected_;
  std::vector<int> fresh_streak_;  // consecutive fresh sweeps while suspected
  std::uint64_t heartbeats_ = 0;
};

}  // namespace l2s::fault
