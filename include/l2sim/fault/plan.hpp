// Declarative, seed-deterministic fault schedules.
//
// A FaultPlan describes everything that goes wrong during a measured pass:
// fail-stop node crashes and their recoveries (a recovered node restarts
// with a cold cache and zeroed load state), fail-slow windows that
// multiply a node's disk or CPU service times, and per-link VIA message
// faults (loss, extra delay, duplication). All times are seconds relative
// to the start of the measured pass, matching the legacy
// SimConfig::failures vector the plan replaces.
//
// Plans are plain data: copyable, comparable by value, and interpreted at
// run time by fault::FaultRuntime, whose only randomness is an Rng stream
// split from the simulation seed — so any run, serial or under
// core::run_parallel, replays bit-identically.
#pragma once

#include <limits>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::fault {

/// Which of a node's service stations a FailSlow window degrades.
enum class Resource { kDisk, kCpu };

/// Fail-stop: the node loses its in-flight work and serves nothing more
/// until (and unless) a matching Recover event revives it.
struct Crash {
  int node = 0;
  double at_seconds = 0.0;
};

/// The node restarts: alive again, cache cold, open-connection count zero.
struct Recover {
  int node = 0;
  double at_seconds = 0.0;
};

/// Between `from_seconds` and `until_seconds` the node's disk or CPU
/// service times are multiplied by `factor` (> 1 = slower). Models the
/// fail-slow faults real clusters exhibit far more often than clean stops.
struct FailSlow {
  int node = 0;
  Resource resource = Resource::kDisk;
  double factor = 1.0;
  double from_seconds = 0.0;
  double until_seconds = std::numeric_limits<double>::infinity();
};

/// Lossy/laggy VIA messaging on matching links while the window is open.
/// `src`/`dst` of -1 match any sender/receiver. Duplicates are suppressed
/// at the receiver (the copy burns NIC time but the handler fires once),
/// and a dropped message still charges the sender's NIC: the bytes left
/// the host, they just never arrived.
struct MessageFault {
  double loss_prob = 0.0;
  double extra_delay_seconds = 0.0;
  double duplicate_prob = 0.0;
  double from_seconds = 0.0;
  double until_seconds = std::numeric_limits<double>::infinity();
  int src = -1;
  int dst = -1;
};

struct FaultPlan {
  std::vector<Crash> crashes;
  std::vector<Recover> recoveries;
  std::vector<FailSlow> slowdowns;
  std::vector<MessageFault> message_faults;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && recoveries.empty() && slowdowns.empty() &&
           message_faults.empty();
  }

  /// True when any fault can make a message vanish: such plans require a
  /// client-side deadline or attempt timeout for liveness (a lost hand-off
  /// would otherwise strand its admission slot forever).
  [[nodiscard]] bool lossy() const;

  /// Throws l2s::Error on out-of-range nodes, bad probabilities/factors,
  /// negative times or inverted windows.
  void validate(int nodes) const;
};

/// Heartbeat failure detection built on the (possibly lossy) VIA layer.
/// When `heartbeats` is false the simulator falls back to the legacy
/// fixed-delay detection (SimConfig::failure_detection_seconds).
struct DetectionParams {
  bool heartbeats = false;
  double period_seconds = 0.05;  ///< heartbeat broadcast period
  int suspect_after_missed = 3;  ///< K missed periods before suspicion
  /// Flapping hysteresis: a suspected node is readmitted only after M
  /// consecutive monitor periods with a fresh heartbeat. 1 reproduces the
  /// original readmit-on-first-fresh-sweep behaviour; larger values stop
  /// a lossy link from oscillating a node in and out of the cluster (each
  /// readmission resets policy state, so flapping is expensive).
  int readmit_after_fresh = 1;

  [[nodiscard]] SimTime suspicion_window() const {
    return seconds_to_simtime(period_seconds * suspect_after_missed);
  }

  void validate() const;
};

}  // namespace l2s::fault
