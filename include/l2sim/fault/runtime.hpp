// FaultRuntime interprets a FaultPlan against a live cluster: it schedules
// the crash/recover/fail-slow events on the DES scheduler and serves as
// the VIA layer's per-message LinkFaultModel. Its only randomness is an
// Rng handed in by the owner (a stream split from the simulation seed), so
// fault behaviour replays bit-identically run over run and across
// core::run_parallel.
#pragma once

#include <functional>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/net/via.hpp"

namespace l2s::fault {

class FaultRuntime final : public net::LinkFaultModel {
 public:
  /// Owner-supplied reactions; the runtime itself flips node state
  /// (fail/recover/slow factors) before invoking them.
  struct Hooks {
    std::function<void(int node, SimTime at)> on_crash;
    std::function<void(int node, SimTime at)> on_recover;
  };

  FaultRuntime(des::Scheduler& sched, std::vector<cluster::Node*> nodes,
               FaultPlan plan, Rng rng);

  /// Schedule every plan event relative to `measure_start` and remember it
  /// as the time base for message-fault windows. Call once, at the start
  /// of the measured pass. Does not install the link-fault model — the
  /// owner does that via ViaNetwork::set_fault_model(this) so the hookup
  /// is explicit.
  void arm(SimTime measure_start, Hooks hooks);

  /// net::LinkFaultModel: consulted by ViaNetwork for every message.
  [[nodiscard]] net::LinkFault on_message(int src, int dst) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] cluster::Node& node(int i) {
    return *nodes_[static_cast<std::size_t>(i)];
  }

  des::Scheduler& sched_;
  std::vector<cluster::Node*> nodes_;
  FaultPlan plan_;
  Rng rng_;
  SimTime base_ = 0;
  bool armed_ = false;
  Hooks hooks_;
};

}  // namespace l2s::fault
