// DES cell planner: rank the (node count x cache size) grid by predicted
// interest and emit the top-K cells as runnable ExperimentSpecs.
//
// A full DES sweep spends most of its wall-clock on cells the analytic
// model already predicts confidently (flat plateaus, deep saturation). The
// planner runs the hierarchical analytic solver over the whole grid —
// thousands of times faster than the DES — and scores each cell by how
// much a simulation there would actually teach us:
//
//   knee        curvature of the predicted throughput along both axes
//               (second difference of log throughput): the scaling knees
//               the paper's figures are about;
//   crossover   proximity of the conscious/oblivious throughput ratio to
//               1: where policy choice flips is exactly where the analytic
//               ordering is least trustworthy;
//   uncertainty where the Che/queueing approximations are weakest — the
//               predicted bottleneck flips between neighbouring cells,
//               mid-range hit rates (IRM error is largest far from 0 and
//               1), and caches holding only a handful of files.
//
// Each family is normalized to [0, 1] over the grid and combined into a
// single interest score; `plan_cells` returns every cell ranked, plus the
// predicted throughput surfaces (reusable via model::Surface::value_at for
// off-grid interpolation), and `plan_to_specs` turns the top K into specs
// any DES driver can run.
#pragma once

#include <string>
#include <vector>

#include "l2sim/analytic/hierarchical.hpp"
#include "l2sim/core/spec.hpp"
#include "l2sim/model/surface.hpp"

namespace l2s::analytic {

/// The grid the planner scores: cluster sizes x per-node cache sizes.
struct PlanAxes {
  std::vector<int> node_counts = {1, 2, 4, 6, 8, 10, 12, 16};
  std::vector<double> cache_mib = {2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
};

/// One scored grid cell, all score components kept for reports.
struct PlannedCell {
  int nodes = 0;
  double cache_mib = 0.0;
  double score = 0.0;        ///< combined interest, higher = run this first
  double knee = 0.0;         ///< normalized curvature component
  double crossover = 0.0;    ///< normalized policy-crossover component
  double uncertainty = 0.0;  ///< normalized analytic-uncertainty component
  double conscious_rps = 0.0;
  double oblivious_rps = 0.0;
  double hit_rate = 0.0;     ///< conscious analytic hit rate
  std::string bottleneck;    ///< conscious predicted bottleneck station
};

struct Plan {
  /// Every grid cell, ranked by descending score (ties: fewer nodes first).
  std::vector<PlannedCell> cells;
  /// Predicted throughput over the grid; axis 0 (hit_rates) holds the node
  /// counts, axis 1 (sizes_kb) the per-node cache in MiB.
  model::Surface conscious;
  model::Surface oblivious;
};

/// Score the grid. `base` supplies everything but nodes and cache size
/// (workload, station rates, replication, arrival shape). Weights follow
/// the rationale above; they are exposed for studies.
struct PlanWeights {
  double knee = 0.4;
  double crossover = 0.3;
  double uncertainty = 0.3;
};

[[nodiscard]] Plan plan_cells(const HierarchicalParams& base, const PlanAxes& axes,
                              const PlanWeights& weights = {});

/// Materialize the plan's top `top_k` cells as runnable specs: `base` with
/// sim.nodes and sim.node.cache_bytes overridden per cell and the cell
/// coordinates appended to the name.
[[nodiscard]] std::vector<core::ExperimentSpec> plan_to_specs(
    const core::ExperimentSpec& base, const Plan& plan, std::size_t top_k);

}  // namespace l2s::analytic
