// Che (characteristic-time) approximation for LRU miss probabilities.
//
// Under the independent reference model, an LRU cache of capacity C files
// behaves as if every file stays cached for a single characteristic time
// T_C after its last request: file i with request rate lambda_i is present
// with probability 1 - exp(-lambda_i * T_C), and T_C is the unique root of
// the occupancy fixed point
//
//   sum_i (1 - exp(-lambda_i * T_C)) = C.
//
// The overall hit rate is then sum_i lambda_i (1 - exp(-lambda_i T_C)) /
// sum_i lambda_i. Che et al. introduced the approximation for web caches;
// Fricker, Robert & Roberts proved it is asymptotically exact for Zipf
// popularity, and Olmos, Graham & Simonian generalized it to
// non-stationary input (see analytic/transient.hpp). Unlike the paper's
// z(n, F) step function — every one of the n hottest files cached, nothing
// else — the Che curve captures the probabilistic tail of LRU, which is
// what the DES actually simulates.
//
// Per-rank rates are described as RankClass progressions over a shared
// ZipfPopularity, which lets one solver cover every cluster split:
//
//   locality-oblivious node   {1..F, stride 1, scale 1/N}
//   conscious node k          {1..rep, stride 1, scale 1/N}   (hot replicas)
//                           + {rep+1+k..F, stride N, scale 1} (its stripe)
//
// solve_cluster_cache() assembles those splits and reports per-node and
// cluster-wide hit rates plus the paper's h and Q coupling quantities.
#pragma once

#include <vector>

#include "l2sim/analytic/popularity.hpp"

namespace l2s::analytic {

/// An arithmetic progression of ranks, each requested at
/// rate_scale * total_rate * pop.prob(rank) requests/second.
struct RankClass {
  double first = 1.0;   ///< first rank of the progression
  double last = 1.0;    ///< inclusive upper bound
  double stride = 1.0;  ///< rank step
  double rate_scale = 1.0;
};

/// Result of one Che fixed-point solve.
struct CheSolution {
  double characteristic_seconds = 0.0;  ///< T_C (infinite if all files fit)
  double hit_rate = 0.0;                ///< of the stream the classes describe
  double occupancy_files = 0.0;         ///< files resident (== capacity unless all fit)
  double stream_files = 0.0;            ///< distinct files in the stream
  double stream_rate = 0.0;             ///< total requests/s of the stream
  bool everything_fits = false;         ///< stream working set <= capacity
};

/// Solve the Che fixed point for a cache of `cache_files` capacity offered
/// the union of `classes` at total external rate `total_rate` (req/s).
/// The hit rate is invariant to total_rate (T_C scales inversely); the
/// rate only calibrates characteristic_seconds. Throws on empty classes or
/// non-positive capacity/rate.
[[nodiscard]] CheSolution che_solve(const ZipfPopularity& pop,
                                    const std::vector<RankClass>& classes,
                                    double total_rate, double cache_files);

/// Convenience: single LRU cache of `cache_files` capacity serving the
/// whole catalogue at `total_rate`.
[[nodiscard]] CheSolution che_lru(const ZipfPopularity& pop, double cache_files,
                                  double total_rate = 1.0);

/// Cluster-level cache inputs, in file-count units (capacities divided by
/// the request-weighted average file size, like model::TraceModel).
struct ClusterCacheParams {
  double files = 1.0;               ///< catalogue size F
  double alpha = 1.0;               ///< Zipf exponent
  int nodes = 1;                    ///< N
  double replication = 0.0;         ///< R: fraction of each cache for hot replicas
  double cache_files_per_node = 1.0;///< C / S
  double total_rate = 1.0;          ///< cluster request rate (req/s)
  bool conscious = true;            ///< locality-conscious vs oblivious split
};

/// Cache level of the hierarchical solver.
struct ClusterCacheResult {
  double hit_rate = 0.0;                ///< cluster-wide served hit rate
  std::vector<double> per_node_hit;     ///< hit rate of each node's served stream
  double replicated_hit = 0.0;          ///< h: entry-node hit on the hot slice
  double forwarded_fraction = 0.0;      ///< Q = (N-1)(1-h)/N (0 when oblivious)
  double characteristic_seconds = 0.0;  ///< node-0 T_C
};

/// Solve the cache level: per-node Che fixed points under the
/// locality-conscious striped assignment (hottest R*C/S ranks replicated
/// everywhere at 1/N of their rate, remaining ranks striped round-robin by
/// popularity) or the oblivious split (every node sees the full catalogue
/// at 1/N rate). Generalizes the paper's hit-rate algebra: replacing the
/// Che curve with the z(n, F) step function recovers Hlo/Hlc/h exactly.
[[nodiscard]] ClusterCacheResult solve_cluster_cache(const ClusterCacheParams& params);

}  // namespace l2s::analytic
