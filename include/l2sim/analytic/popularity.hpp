// Popularity machinery shared by the analytic fast path (l2s::analytic).
//
// The Che/characteristic-time estimator needs many sums of smooth
// functions of the per-rank request probability p(r) = r^-alpha / H_F,
// over up to millions of ranks and — for the locality-conscious per-node
// splits — over *strided* rank subsets (node k owns ranks rep+1+k,
// rep+1+k+N, ...). strided_sum() makes those sums cheap the same way
// zipf::harmonic does: exact summation over a prefix, then a geometric
// midpoint rule for the smooth tail.
#pragma once

#include <algorithm>
#include <cmath>

#include "l2sim/zipf/harmonic.hpp"

namespace l2s::analytic {

/// Zipf-like popularity over a finite catalogue: the r'th most popular of
/// `files` files draws p(r) = r^-alpha / H_files(alpha) of all requests.
/// `files` is continuous, like every capacity in the model layer.
struct ZipfPopularity {
  double files = 1.0;
  double alpha = 1.0;
  double harmonic_total = 1.0;  ///< H_files(alpha), precomputed

  [[nodiscard]] static ZipfPopularity make(double files, double alpha);

  /// Request probability of the file at (continuous) rank r in [1, files].
  [[nodiscard]] double prob(double rank) const {
    return std::pow(std::max(rank, 1.0), -alpha) / harmonic_total;
  }
};

/// Number of terms in the arithmetic progression first, first+stride, ...
/// that stay <= last (0 when the range is empty).
[[nodiscard]] inline double strided_count(double first, double last, double stride) {
  if (last < first) return 0.0;
  return std::floor((last - first) / stride) + 1.0;
}

/// The quadrature nodes behind strided_sum: emit(rank, weight) for every
/// sample point, weight 1 over the exact prefix and the segment width over
/// the geometric tail. Callers that evaluate many different smooth
/// functions at the *same* ranks (the Che fixed point re-sums the stream
/// every Newton iteration) materialize the points once and amortize the
/// rank -> probability powers across iterations.
template <class Emit>
void strided_points(double first, double last, double stride, Emit&& emit) {
  const double count = strided_count(first, last, stride);
  if (count <= 0.0) return;
  constexpr double kExactTerms = 4096.0;
  // ~64 segments per decade of term index keeps the tail-rule error far
  // below the 5-percentage-point validation budget.
  constexpr double kGrowth = 1.0366329284377923;  // 10^(1/64)

  const double exact = std::min(count, kExactTerms);
  for (double m = 0.0; m < exact; m += 1.0) emit(first + m * stride, 1.0);
  if (exact >= count) return;

  // Tail over term indices m in [exact, count): geometric segments.
  double a = exact;
  while (a < count) {
    const double b = std::min(count, a * kGrowth + 1.0);
    const double mid = std::sqrt(a * b);
    emit(first + std::min(mid, count - 1.0) * stride, b - a);
    a = b;
  }
}

/// Sum fn(rank) over ranks first, first+stride, first+2*stride, ... <= last.
///
/// Exact for the first kExactTerms terms; the remainder is approximated by
/// a geometric midpoint rule in term index (segment [a, b) contributes
/// (b - a) * fn(rank at sqrt(a*b))), which is accurate for the smooth,
/// monotone, power-law-tailed integrands the Che machinery produces.
template <class Fn>
double strided_sum(double first, double last, double stride, Fn&& fn) {
  double sum = 0.0;
  strided_points(first, last, stride,
                 [&](double rank, double weight) { sum += weight * fn(rank); });
  return sum;
}

}  // namespace l2s::analytic
