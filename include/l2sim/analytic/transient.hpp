// Time-varying (non-stationary) miss curves — the Olmos/Graham/Simonian
// extension of the Che approximation.
//
// For a non-stationary request process, the characteristic time becomes a
// window: a request for file i at time t hits iff i was referenced in
// (t - T(t), t], where T(t) solves the occupancy fixed point over the
// *accumulated* per-file intensity
//
//   A_i(t, T) = integral_{t-T}^{t} lambda_i(s) ds,
//   sum_i (1 - exp(-A_i(t, T))) = C.
//
// Olmos et al. derive this for shot-noise (cluster) request processes; the
// l2s::overload arrival shapes are the inhomogeneous-Poisson special case:
//
//   flash/diurnal  lambda_i(s) = p(i) * rate * m(s), the Lewis-Shedler
//                  modulation m(s) from core::ArrivalConfig;
//   churn          the rank -> file mapping rotates by churn_stride every
//                  churn_period: a file's intensity is integrated across
//                  the epochs its rank changed, so freshly-promoted files
//                  are cold (the post-rotation miss transient) while
//                  freshly-demoted ones linger in cache.
//
// Before the measured pass (s < 0) the cache is warmed at the nominal
// stationary rate with the unrotated ranking, matching the engine's
// warm-up semantics exactly.
#pragma once

#include <vector>

#include "l2sim/analytic/popularity.hpp"
#include "l2sim/core/config.hpp"

namespace l2s::analytic {

struct TransientPoint {
  double t_seconds = 0.0;
  double hit_rate = 0.0;
  double window_seconds = 0.0;  ///< T(t), the time-varying characteristic time
  double rate_rps = 0.0;        ///< served request rate at t
};

struct TransientCurve {
  std::vector<TransientPoint> points;
  double mean_hit = 0.0;  ///< request-weighted time average
  double min_hit = 1.0;
  double max_hit = 0.0;
};

struct TransientOptions {
  int samples = 64;
  /// Served-rate ceiling (req/s): the saturation clip the hierarchical
  /// solver feeds back, so a flash crowd beyond the cluster's bottleneck
  /// does not churn the cache faster than requests can actually be served.
  double clip_rate_rps = 0.0;  ///< <= 0 means unclipped
};

/// Evaluate the time-varying hit curve of a single LRU cache of
/// `cache_files` capacity over the measured pass [0, horizon_seconds].
/// `base_rate_rps` is the rate reaching this cache at shape multiplier 1.
/// Stationary shapes with no churn reduce to the stationary Che solution
/// at every sample.
[[nodiscard]] TransientCurve transient_curve(const ZipfPopularity& pop,
                                             double cache_files, double base_rate_rps,
                                             const core::ArrivalConfig& arrival,
                                             double horizon_seconds,
                                             const TransientOptions& options = {});

}  // namespace l2s::analytic
