// Hierarchical hybrid solver: cache level x queueing level, iterated to a
// coupled fixed point (Thomasian-style hierarchical decomposition).
//
// The paper's model takes the cache hit rate as an *input* (measured from
// the DES or swept as an axis). This solver closes the loop from first
// principles:
//
//   level 1 (cache)     Che fixed points over the Zipf popularity give the
//                       per-node and cluster hit rates H, the replicated-
//                       slice hit h and the forwarded fraction Q — no
//                       measurement needed (analytic/che.hpp);
//   level 2 (queueing)  model::ClusterModel turns (H, Q) into per-station
//                       demands, the Jackson bottleneck Lambda* and — below
//                       saturation — mean response time;
//   coupling            the served rate min(offered, Lambda*) feeds back
//                       into the cache level: under non-stationary arrival
//                       shapes the time-varying miss curve depends on the
//                       *absolute* served intensity (a saturated cluster
//                       churns its cache no faster than Lambda*), so the
//                       levels iterate until the hit rate is stationary.
//
// Under stationary IRM arrivals the Che hit rate is rate-invariant, so the
// fixed point closes in one pass; the iteration only works when a flash
// crowd, diurnal swing or popularity churn makes the cache level rate-
// dependent.
#pragma once

#include <string>
#include <vector>

#include "l2sim/analytic/che.hpp"
#include "l2sim/analytic/transient.hpp"
#include "l2sim/core/config.hpp"
#include "l2sim/model/trace_model.hpp"

namespace l2s::analytic {

struct HierarchicalParams {
  /// Station rates, per-node cache size, replication R and node count N.
  model::ModelParams model;
  /// Workload characterization (catalogue size, sizes, Zipf alpha).
  model::WorkloadStats workload;
  /// Locality-conscious (LARD/L2S) vs oblivious (round-robin) distribution.
  bool conscious = true;
  /// Offered external rate (req/s); <= 0 means saturation replay (the
  /// served rate is the bottleneck throughput itself).
  double offered_rate_rps = 0.0;
  /// Arrival shape + churn for the transient cache level; with a
  /// stationary shape and no churn the solver stays purely stationary.
  core::ArrivalConfig arrival;
  /// Measured-pass length the transient curve covers; <= 0 disables the
  /// transient level even for non-stationary shapes.
  double horizon_seconds = 0.0;
  int transient_samples = 64;
  int max_iterations = 32;
  double tolerance = 1e-6;  ///< on the hit rate between iterations
};

struct HierarchicalResult {
  // Cache level.
  double hit_rate = 0.0;             ///< cluster-wide hit rate H
  std::vector<double> per_node_hit;  ///< each node's served-stream hit rate
  double replicated_hit = 0.0;       ///< h (0 when oblivious)
  double forwarded_fraction = 0.0;   ///< Q (0 when oblivious)
  double cache_files_per_node = 0.0; ///< capacity in request-weighted files

  // Queueing level.
  double max_throughput_rps = 0.0;     ///< bottleneck Lambda*
  double served_rate_rps = 0.0;        ///< min(offered, Lambda*)
  double mean_response_seconds = 0.0;  ///< Jackson solve (0 at saturation)
  std::string bottleneck;

  // Coupling diagnostics.
  int iterations = 0;
  bool transient_active = false;
  TransientCurve transient;  ///< time-varying hit curve (empty if inactive)
};

/// Solve the coupled cache/queueing fixed point. Throws l2s::Error on a
/// degenerate workload (no files, non-positive sizes or alpha).
[[nodiscard]] HierarchicalResult solve_hierarchical(const HierarchicalParams& params);

}  // namespace l2s::analytic
