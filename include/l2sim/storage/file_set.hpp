// The set of files a server hosts: id -> size. File ids are dense
// (0..count-1) and, for synthetic traces, ordered by popularity rank.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/cache/lru_cache.hpp"  // FileId
#include "l2sim/common/units.hpp"

namespace l2s::storage {

using cache::FileId;

class FileSet {
 public:
  FileSet() = default;

  /// Append a file; returns its id.
  FileId add(Bytes size);

  [[nodiscard]] Bytes size_of(FileId id) const;
  [[nodiscard]] std::uint64_t count() const { return sizes_.size(); }
  [[nodiscard]] Bytes total_bytes() const { return total_; }  ///< working set
  [[nodiscard]] double avg_kb() const;

  void reserve(std::uint64_t n) { sizes_.reserve(n); }

 private:
  std::vector<Bytes> sizes_;
  Bytes total_ = 0;
};

}  // namespace l2s::storage
