// Disk model: a single-server FIFO device with the paper's timing —
// a fixed access cost of 28 ms per read (seek + rotation for the data and
// the directory entry) plus transfer at 10 MBytes/s.
#pragma once

#include <string>

#include "l2sim/common/units.hpp"
#include "l2sim/des/resource.hpp"

namespace l2s::storage {

struct DiskParams {
  double access_seconds = 0.028;    ///< fixed cost per read (two accesses)
  double transfer_kb_per_s = 10000; ///< 10 MBytes/s
};

class Disk {
 public:
  Disk(des::Scheduler& sched, std::string name, DiskParams params = {});

  /// Read `bytes` and fire `done` at completion. Reads queue FIFO.
  void read(Bytes bytes, des::EventFn done);

  [[nodiscard]] SimTime read_time(Bytes bytes) const;
  [[nodiscard]] const des::Resource& resource() const { return res_; }
  [[nodiscard]] des::Resource& resource() { return res_; }

  /// Fail-slow injection: multiply subsequent read times by `factor`
  /// (1.0 = healthy). Reads already queued keep their original times.
  void set_slow_factor(double factor);
  [[nodiscard]] double slow_factor() const { return slow_factor_; }

 private:
  DiskParams params_;
  double slow_factor_ = 1.0;
  des::Resource res_;
};

}  // namespace l2s::storage
