// Load views and broadcast thresholds.
//
// Every L2S node keeps a (possibly stale) view of all nodes' open-connection
// counts. A node broadcasts its own load when it drifted by at least
// `broadcast_delta` connections from the last value it broadcast (the paper
// uses 4, found best for both L2S and LARD). The LARD front-end reuses the
// same structure for its back-end view.
#pragma once

#include <vector>

#include "l2sim/common/error.hpp"

namespace l2s::cluster {

class LoadView {
 public:
  explicit LoadView(int nodes) : loads_(static_cast<std::size_t>(nodes), 0) {}

  [[nodiscard]] int get(int node) const { return loads_[index(node)]; }
  void set(int node, int load) { loads_[index(node)] = load; }
  void adjust(int node, int delta) { loads_[index(node)] += delta; }

  /// Least-loaded node overall (ties: lowest id).
  [[nodiscard]] int least_loaded() const;

  /// Least-loaded node among `candidates` (ties: first listed).
  [[nodiscard]] int least_loaded_of(const std::vector<int>& candidates) const;

  /// Most-loaded node among `candidates` (ties: first listed).
  [[nodiscard]] int most_loaded_of(const std::vector<int>& candidates) const;

  /// True if any node's load is strictly below `threshold`.
  [[nodiscard]] bool any_below(int threshold) const;

  [[nodiscard]] int nodes() const { return static_cast<int>(loads_.size()); }

 private:
  [[nodiscard]] std::size_t index(int node) const {
    L2S_REQUIRE(node >= 0 && node < nodes());
    return static_cast<std::size_t>(node);
  }
  std::vector<int> loads_;
};

/// Tracks when a node's own load drifted enough from its last broadcast.
class BroadcastThrottle {
 public:
  explicit BroadcastThrottle(int delta) : delta_(delta) { L2S_REQUIRE(delta > 0); }

  /// Report the current value; returns true when a broadcast should be sent
  /// (and records the value as broadcast).
  bool should_broadcast(int current);

  [[nodiscard]] int last_broadcast() const { return last_; }

 private:
  int delta_;
  int last_ = 0;
};

}  // namespace l2s::cluster
