// A cluster node: CPU, disk, NIC and a main-memory file cache, plus the
// open-connection count that all three distribution policies use as their
// load metric.
#pragma once

#include <cstdint>
#include <string>

#include <memory>

#include "l2sim/cache/file_cache.hpp"
#include "l2sim/des/resource.hpp"
#include "l2sim/net/nic.hpp"
#include "l2sim/storage/disk.hpp"

namespace l2s::cluster {

/// Replacement policy of the node's main-memory file cache.
enum class CachePolicy { kLru, kGdsf };

/// CPU service-time parameters (Table 1 rates plus the calibrated LARD
/// front-end hand-off cost; see DESIGN.md "Model interpretation notes").
struct CpuParams {
  double parse_rate = 6300.0;        ///< mu_p: accept + read + parse a request
  double forward_rate = 10000.0;     ///< mu_f: L2S hand-off of a parsed request
  double reply_overhead_s = 0.0001;  ///< mu_m fixed term
  double reply_kb_per_s = 12000.0;   ///< mu_m per-KByte cost (memory-to-NIC copy)
  double handoff_initiate_s = 4e-5;  ///< LARD front-end hand-off initiation
};

struct NodeParams {
  Bytes cache_bytes = 32 * kMiB;
  CachePolicy cache_policy = CachePolicy::kLru;  ///< the paper uses LRU
  CpuParams cpu;
  storage::DiskParams disk;
};

class Node {
 public:
  /// `cpu_speed` scales the node's CPU service rates (1.0 = the paper's
  /// baseline workstation; 0.5 = half as fast). The paper assumes "all
  /// cluster nodes are equally powerful"; heterogeneous factors are an
  /// extension exercised by bench/heterogeneity_study.
  Node(des::Scheduler& sched, int id, const NodeParams& params, double cpu_speed = 1.0);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double cpu_speed() const { return cpu_speed_; }

  // --- placement ---------------------------------------------------------
  /// Which rack (ToR switch / fat-tree edge switch) the node hangs off.
  /// Assigned by the coordinator from the topology; 0 on the paper's
  /// single switch, where every node shares the one crossbar.
  [[nodiscard]] int rack() const { return rack_; }
  void set_rack(int rack) { rack_ = rack; }

  [[nodiscard]] des::Resource& cpu() { return cpu_; }
  [[nodiscard]] net::Nic& nic() { return nic_; }
  [[nodiscard]] storage::Disk& disk() { return disk_; }
  [[nodiscard]] cache::FileCache& file_cache() { return *cache_; }
  [[nodiscard]] const cache::FileCache& file_cache() const { return *cache_; }
  [[nodiscard]] const des::Resource& cpu() const { return cpu_; }

  // --- load metric -------------------------------------------------------
  [[nodiscard]] int open_connections() const { return open_connections_; }
  void connection_opened() { ++open_connections_; }
  void connection_closed();

  // --- availability ------------------------------------------------------
  [[nodiscard]] bool alive() const { return alive_; }
  /// Mark the node crashed: its in-flight work is lost (connections abort
  /// when the lifecycle next touches the node) and it serves nothing more.
  void fail() { alive_ = false; }
  /// Restart after a crash: alive again with a cold cache and zeroed load
  /// state. Bumps the incarnation epoch so connections counted against the
  /// previous life cannot decrement the fresh open-connection count.
  void recover();
  /// Incremented on every recover(); connection bookkeeping records the
  /// epoch it was counted under and only releases into the same epoch.
  [[nodiscard]] int epoch() const { return epoch_; }

  // --- fail-slow injection -----------------------------------------------
  /// Multiply CPU service times (parse/forward/hand-off/reply) by `factor`.
  void set_cpu_slow(double factor);
  [[nodiscard]] double cpu_slow() const { return cpu_slow_; }
  /// Multiply disk read times by `factor` (forwards to the disk).
  void set_disk_slow(double factor) { disk_.set_slow_factor(factor); }

  // --- service times -----------------------------------------------------
  [[nodiscard]] SimTime parse_time() const;
  [[nodiscard]] SimTime forward_time() const;          ///< L2S hand-off (1/mu_f)
  [[nodiscard]] SimTime handoff_initiate_time() const; ///< LARD front-end
  [[nodiscard]] SimTime reply_time(Bytes bytes) const; ///< mu_m

  void reset_stats();

 private:
  int id_;
  int rack_ = 0;
  std::string name_;
  CpuParams cpu_params_;
  double cpu_speed_ = 1.0;
  des::Resource cpu_;
  net::Nic nic_;
  storage::Disk disk_;
  std::unique_ptr<cache::FileCache> cache_;
  int open_connections_ = 0;
  bool alive_ = true;
  int epoch_ = 0;
  double cpu_slow_ = 1.0;
};

}  // namespace l2s::cluster
