// Saturation load injector.
//
// The paper measures maximum throughput: "we disregarded the timing
// information in the traces and scheduled new requests as soon as the
// router and network interface buffers would accept them." We model the
// admission buffers as a bounded number of in-flight connections; a new
// trace request is injected the moment a slot frees up, keeping the server
// saturated without unbounded queues.
#pragma once

#include <cstdint>
#include <functional>

#include "l2sim/trace/trace.hpp"

namespace l2s::cluster {

class Injector {
 public:
  using InjectFn = std::function<void(std::uint64_t seq, const trace::Request&)>;

  /// `max_in_flight` models the total buffer space (router + NICs).
  Injector(const trace::Trace& trace, std::uint64_t max_in_flight);

  /// Set the injection callback and fill the initial window.
  void start(InjectFn inject);

  /// A connection completed: free its slot and inject as many requests as
  /// now fit.
  void on_complete();

  /// Take the next trace request *without* occupying a new slot — used by
  /// persistent connections pulling further requests onto an already
  /// admitted connection. Returns false when the trace is exhausted.
  [[nodiscard]] bool try_take(std::uint64_t& seq, trace::Request& request);

  /// Manual (open-loop) admission: occupy a slot and hand out the next
  /// request if both a slot and a request are available. Used instead of
  /// start() when arrivals are driven by an external process; in that mode
  /// on_complete() only frees slots (no callback-driven refill).
  [[nodiscard]] bool try_admit(std::uint64_t& seq, trace::Request& request);

  [[nodiscard]] bool exhausted() const { return next_ >= trace_->requests().size(); }
  [[nodiscard]] std::uint64_t injected() const { return next_; }
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }

 private:
  void pump();

  const trace::Trace* trace_;
  std::uint64_t max_in_flight_;
  InjectFn inject_;
  std::uint64_t next_ = 0;
  std::uint64_t in_flight_ = 0;
};

}  // namespace l2s::cluster
