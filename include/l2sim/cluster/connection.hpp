// A client connection being serviced by the cluster: one HTTP/1.0-style
// request-reply pair (the paper's algorithms target non-persistent
// connections, one request per connection).
#pragma once

#include <cstdint>

#include "l2sim/common/units.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::cluster {

/// Explicit request-lifecycle state machine, shared by every engine
/// component. A request advances
///   kArriving -> kParsing -> kDispatching -> [kForwarding ->] kServing
///   -> kReplying -> (next request | kDone)
/// with two detours: kRetryBackoff while a failed attempt waits out its
/// backoff (the next attempt restarts at kArriving), and a jump to kDone
/// from anywhere on completion, final failure or deadline expiry. kDone is
/// absorbing: stale callbacks check it (see engine::attempt_stale) and
/// bail, which is what makes retries and crash aborts idempotent.
enum class ConnectionState : std::uint8_t {
  kArriving,      ///< in the router / entry NIC
  kParsing,       ///< entry node CPU
  kDispatching,   ///< policy deciding the service node
  kForwarding,    ///< hand-off in flight to the service node
  kServing,       ///< cache/disk lookup at the service node
  kReplying,      ///< reply CPU/NIC/router back to the client
  kRetryBackoff,  ///< waiting to launch the next attempt
  kDone,          ///< completed or failed; no callback may act on it again
};

/// Back-compat alias: the pre-engine name of the lifecycle enum.
using ConnectionStage = ConnectionState;

[[nodiscard]] constexpr const char* connection_state_name(ConnectionState s) {
  switch (s) {
    case ConnectionState::kArriving: return "arriving";
    case ConnectionState::kParsing: return "parsing";
    case ConnectionState::kDispatching: return "dispatching";
    case ConnectionState::kForwarding: return "forwarding";
    case ConnectionState::kServing: return "serving";
    case ConnectionState::kReplying: return "replying";
    case ConnectionState::kRetryBackoff: return "retry-backoff";
    case ConnectionState::kDone: return "done";
  }
  return "?";
}

struct Connection {
  std::uint64_t id = 0;
  trace::Request request{};
  int entry_node = -1;    ///< node that accepted the client connection
  int service_node = -1;  ///< node that services the request (== entry if local)
  ConnectionState state = ConnectionState::kArriving;
  SimTime arrival = 0;    ///< arrival of the *current* request
  SimTime completion = 0;
  bool cache_hit = false;

  /// Persistent (HTTP/1.1-style) connections: how many more requests this
  /// connection may still carry after the current one, and how many it has
  /// served. HTTP/1.0 connections have remaining_requests == 0 throughout.
  std::uint32_t remaining_requests = 0;
  std::uint32_t requests_served = 0;

  /// True while the connection is counted in its service node's
  /// open-connection load (between connection_opened and _closed); lets
  /// failure aborts release the count exactly once.
  bool counted_in_service = false;

  /// Node epoch observed when counted_in_service was set: a count taken
  /// before a crash must not be released against the recovered node's
  /// zeroed counter.
  int service_epoch = 0;

  /// Client-side robustness: current attempt number (0 = first try) and
  /// retries consumed. Lifecycle callbacks capture the attempt they belong
  /// to and bail if a retry has superseded them. `first_arrival` anchors
  /// the per-request deadline across retries.
  std::uint32_t attempt = 0;
  std::uint32_t retries_used = 0;
  /// Hedged (speculative backup) attempts launched for the current request
  /// (overload.hedge_delay_seconds); reset per request like retries_used.
  std::uint32_t hedges_used = 0;
  SimTime first_arrival = 0;
  SimTime deadline_at = 0;  ///< 0 = no deadline armed

  /// Stage timestamps of the current request, for latency breakdowns:
  /// arrival -> decided (entry processing incl. queueing) -> service
  /// start (hand-off, zero when local) -> disk done (zero on hits) ->
  /// completion (reply path).
  SimTime t_decided = 0;
  SimTime t_service = 0;
  SimTime t_disk_done = 0;

  [[nodiscard]] bool forwarded() const {
    return service_node >= 0 && service_node != entry_node;
  }
  [[nodiscard]] SimTime response_time() const { return completion - arrival; }
};

}  // namespace l2s::cluster
