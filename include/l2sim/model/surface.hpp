// Throughput surfaces over the (oblivious hit rate x average file size)
// plane — the data behind Figures 3-6.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "l2sim/model/cluster_model.hpp"

namespace l2s::model {

/// A rectangular grid of values indexed by [hit_rate][size].
struct Surface {
  std::vector<double> hit_rates;  ///< ascending, typically 0..1
  std::vector<double> sizes_kb;   ///< ascending, typically up to 128 KB
  std::vector<std::vector<double>> values;  ///< values[i][j] at (hit_rates[i], sizes_kb[j])

  [[nodiscard]] double at(std::size_t hit_index, std::size_t size_index) const;

  /// Bilinear interpolation at arbitrary axis coordinates. Coordinates are
  /// clamped to the grid's range, so querying exactly the last grid line
  /// (or beyond) returns the boundary value instead of indexing past the
  /// end. Requires at least a 1x1 grid.
  [[nodiscard]] double value_at(double hit_rate, double size_kb) const;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// Per-hit-rate envelope over sizes — the paper's Figure 6 "side view".
  struct SideView {
    std::vector<double> hit_rates;
    std::vector<double> max_over_sizes;
    std::vector<double> min_over_sizes;
  };
  [[nodiscard]] SideView side_view() const;
};

/// Default grids matching the paper's axes: hit rate 0..1 (0.05 steps) and
/// size 2..128 KB.
[[nodiscard]] std::vector<double> default_hit_grid();
[[nodiscard]] std::vector<double> default_size_grid();

/// Sweep a per-point evaluator over the grid.
[[nodiscard]] Surface sweep(const std::vector<double>& hit_rates,
                            const std::vector<double>& sizes_kb,
                            const std::function<double(double hlo, double size_kb)>& fn);

/// Figure 3: locality-oblivious throughput surface.
[[nodiscard]] Surface oblivious_surface(const ClusterModel& model,
                                        const std::vector<double>& hit_rates,
                                        const std::vector<double>& sizes_kb);

/// Figure 4: locality-conscious throughput surface.
[[nodiscard]] Surface conscious_surface(const ClusterModel& model,
                                        const std::vector<double>& hit_rates,
                                        const std::vector<double>& sizes_kb);

/// Figure 5: element-wise ratio conscious/oblivious.
[[nodiscard]] Surface ratio_surface(const Surface& conscious, const Surface& oblivious);

}  // namespace l2s::model
