// The paper's analytic model (Section 3): an open queueing network over the
// Figure 2 cluster, solved by bottleneck analysis for the maximum stable
// throughput, plus the hit-rate algebra that links the locality-oblivious
// and locality-conscious servers.
//
// Derivations implemented here (with C in KBytes-equivalents of S):
//   n    = Clo / S                       files held by one node's cache
//   f    solves Hlo = z(n, f)            virtual file population
//   Hlc  = z(min(Clc / S, f), f)         conscious hit rate
//        = min(1, Hlo * H(Clc/S) / H(n)) (equivalent, overflow-free form)
//   h    = z(R * Clo / S, f)             hit rate of replicated files
//   Q    = (N - 1) * (1 - h) / N         fraction of requests forwarded
//
// Station demands per external request (perfect load balance):
//   router  1/mu_r                        shared by all nodes
//   NI-in   (1 + Q)/mu_i / N              client requests + forwarded ones
//   CPU     (1/mu_p + Q/mu_f + 1/mu_m)/N  parse + forward + in-memory reply
//   disk    (1 - H)/mu_d / N              misses only
//   NI-out  (1/mu_o + Q/mu_i)/N           reply + forwarded-request send
#pragma once

#include <string>

#include "l2sim/model/parameters.hpp"
#include "l2sim/queueing/jackson.hpp"

namespace l2s::model {

/// Result of evaluating one server configuration at one workload point.
struct ServerEval {
  double throughput = 0.0;           ///< max stable requests/second
  double hit_rate = 0.0;             ///< cache hit rate used (H)
  double forwarded_fraction = 0.0;   ///< Q
  double replicated_hit_rate = 0.0;  ///< h
  std::string bottleneck;            ///< station that binds throughput
};

class ClusterModel {
 public:
  explicit ClusterModel(ModelParams params);

  /// Locality-oblivious server at the given oblivious hit rate and average
  /// requested-file size (KBytes). Fig. 3 sweeps this.
  [[nodiscard]] ServerEval oblivious(double hlo, double avg_kb) const;

  /// Locality-conscious server at the workload implied by the same
  /// (Hlo, S) point; derives Hlc, h and Q per the paper. Fig. 4 sweeps this.
  [[nodiscard]] ServerEval conscious(double hlo, double avg_kb) const;

  /// Core evaluator with all workload quantities explicit. `file_kb` feeds
  /// mu_m/mu_d/mu_o, `transfer_kb` feeds the router rate.
  [[nodiscard]] ServerEval evaluate(double hit_rate, double forwarded_fraction,
                                    double file_kb, double transfer_kb) const;

  /// Hlc derived from Hlo at average size avg_kb (overflow-free form).
  [[nodiscard]] double conscious_hit_rate(double hlo, double avg_kb) const;

  /// h, the hit rate of replicated files, derived from Hlo.
  [[nodiscard]] double replicated_hit_rate(double hlo, double avg_kb) const;

  /// Q, the forwarded-request fraction, derived from Hlo.
  [[nodiscard]] double forwarded_fraction(double hlo, double avg_kb) const;

  /// Virtual file population f with z(n, f) = Hlo; may be astronomically
  /// large for small Hlo. Exposed for tests and reports.
  [[nodiscard]] double virtual_population(double hlo, double avg_kb) const;

  /// The Jackson network for a configuration (for detailed per-station
  /// reports at a sub-saturation arrival rate).
  [[nodiscard]] queueing::JacksonNetwork build_network(double hit_rate,
                                                       double forwarded_fraction,
                                                       double file_kb,
                                                       double transfer_kb) const;

  [[nodiscard]] const ModelParams& params() const { return params_; }

 private:
  /// Files one node's cache holds at average size avg_kb (continuous).
  [[nodiscard]] double oblivious_cache_files(double avg_kb) const;
  /// Files the combined conscious cache holds (continuous).
  [[nodiscard]] double conscious_cache_files(double avg_kb) const;

  ModelParams params_;
};

/// Load-imbalance analysis (the paper's Section 3.2 "summary of other
/// modeling results"): with a finite population of F files assigned to
/// nodes round-robin by popularity rank (the hottest `replicated_files`
/// served by every node), returns max-node-share * N — 1.0 means perfect
/// balance, larger values mean the hottest node limits throughput to
/// balanced_throughput / factor.
[[nodiscard]] double imbalance_factor(double files, double alpha, int nodes,
                                      double replicated_files);

}  // namespace l2s::model
