// Trace-calibrated model bounds — the "model" series in Figures 7-10.
//
// For a real (finite) trace the workload is characterized by its file
// population F, Zipf exponent alpha, average file size (cache occupancy)
// and average requested size (bytes moved per request). The paper plots
// the best possible locality-conscious throughput assuming 15% replication
// against the simulated servers.
#pragma once

#include <cstdint>

#include "l2sim/model/cluster_model.hpp"

namespace l2s::model {

/// Statistical summary of a workload/trace (matches Table 2 columns).
struct WorkloadStats {
  std::uint64_t files = 0;      ///< distinct files
  double avg_file_kb = 0.0;     ///< average file size, KBytes
  double avg_request_kb = 0.0;  ///< average requested size, KBytes
  double alpha = 1.0;           ///< fitted Zipf exponent
};

/// Per-configuration bound derived from trace statistics.
struct TraceBound {
  ServerEval conscious;   ///< locality-conscious bound (the paper's line)
  ServerEval oblivious;   ///< same-workload locality-oblivious bound
};

class TraceModel {
 public:
  /// `params.replication` is honored (the paper uses 15% for Figs. 7-10);
  /// `params.cache_bytes` is the per-node memory (32 MB in the paper).
  TraceModel(ModelParams params, WorkloadStats stats);

  /// Bound at `nodes` cluster nodes (overrides params.nodes).
  [[nodiscard]] TraceBound bound(int nodes) const;

  /// Conscious cache hit rate at `nodes` nodes.
  [[nodiscard]] double conscious_hit_rate(int nodes) const;

  /// Oblivious (per-node cache) hit rate; independent of node count.
  [[nodiscard]] double oblivious_hit_rate() const;

  [[nodiscard]] const WorkloadStats& stats() const { return stats_; }

 private:
  ModelParams params_;
  WorkloadStats stats_;
};

}  // namespace l2s::model
