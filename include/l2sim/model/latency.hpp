// Latency-side analysis of the model. The paper focuses on throughput
// (server latencies are small next to WAN latencies), but the M/M/1
// machinery directly yields mean response times as a function of offered
// load — useful for capacity planning with the same calibrated model.
#pragma once

#include <vector>

#include "l2sim/model/cluster_model.hpp"

namespace l2s::model {

struct LatencyPoint {
  double arrival_rate = 0.0;     ///< offered load, requests/second
  double utilization = 0.0;      ///< fraction of the throughput bound
  double mean_response_s = 0.0;  ///< mean time in the server, seconds
};

/// Mean response time of a server configuration as the offered load rises
/// toward its throughput bound. Samples `points` loads spread uniformly
/// over (0, max_fraction] of the bound.
[[nodiscard]] std::vector<LatencyPoint> latency_curve(const ClusterModel& model,
                                                      bool conscious, double hlo,
                                                      double avg_kb, int points = 16,
                                                      double max_fraction = 0.95);

/// Smallest sampled load fraction at which the mean response exceeds
/// `limit_seconds`, or 1.0 if it stays below throughout the curve.
[[nodiscard]] double load_fraction_at_latency(const ClusterModel& model, bool conscious,
                                              double hlo, double avg_kb,
                                              double limit_seconds);

}  // namespace l2s::model
