// Table 1 of the paper: model parameters and their default values.
//
//   N    number of nodes                     16
//   R    percentage of replication           0%
//   alpha Zipf constant                      1
//   mu_r routing rate                        500000/size ops/s
//   mu_i request service rate at NI          140000 ops/s
//   mu_p request read/parsing rate           6300 ops/s
//   mu_f request forwarding rate             10000 ops/s
//   mu_m reply rate (after stored locally)   (0.0001 + S/12000)^-1 ops/s
//   mu_d disk access rate                    (0.028 + S/10000)^-1 ops/s
//   mu_o reply service rate at NI            (0.000003 + S/128000)^-1 ops/s
//   C    total cache space                   128 MBytes per node
//
// S is the average requested-file size in KBytes and `size` the average
// transfer size in KBytes. Rates with an S term are per-request service
// rates whose time grows linearly in the bytes moved.
#pragma once

#include <string>

#include "l2sim/common/units.hpp"

namespace l2s::model {

struct ModelParams {
  int nodes = 16;               ///< N
  double replication = 0.0;     ///< R in [0, 1]
  double alpha = 1.0;           ///< Zipf constant
  Bytes cache_bytes = 128 * kMiB;  ///< C, per-node main memory used as cache

  // Fixed-rate stations (ops/s).
  double ni_request_rate = 140000.0;  ///< mu_i
  double parse_rate = 6300.0;         ///< mu_p
  double forward_rate = 10000.0;      ///< mu_f

  // Coefficients of the size-dependent stations; rate = 1/(a + S_kb/b).
  double reply_overhead_s = 0.0001;      ///< mu_m fixed term (seconds)
  double reply_kb_per_s = 12000.0;       ///< mu_m slope (KBytes per second)
  double disk_overhead_s = 0.028;        ///< mu_d fixed term: 2 accesses incl. directory
  double disk_kb_per_s = 10000.0;        ///< mu_d transfer rate, 10 MBytes/s
  double ni_reply_overhead_s = 0.000003; ///< mu_o fixed term, 3 us per message
  double ni_reply_kb_per_s = 128000.0;   ///< mu_o slope, ~1 Gbit/s

  double router_kb_per_s = 500000.0;  ///< mu_r = router_kb_per_s / size, ~4 Gbit/s

  /// mu_r for the given average transfer size (KBytes).
  [[nodiscard]] double router_rate(double transfer_kb) const;
  /// mu_m for the given average file size (KBytes).
  [[nodiscard]] double reply_rate(double file_kb) const;
  /// mu_d for the given average file size (KBytes).
  [[nodiscard]] double disk_rate(double file_kb) const;
  /// mu_o for the given average file size (KBytes).
  [[nodiscard]] double ni_reply_rate(double file_kb) const;

  /// Total locality-conscious cache space in bytes:
  /// Clc = N*(1-R)*C + R*C. With R = 1 this degenerates to C = Clo.
  [[nodiscard]] double conscious_cache_bytes() const;

  /// Validate ranges; throws l2s::Error on nonsense values.
  void validate() const;

  /// Human-readable parameter dump (used by the Table 1 bench).
  [[nodiscard]] std::string describe() const;
};

}  // namespace l2s::model
