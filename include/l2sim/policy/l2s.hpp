// L2S — the Locality and Load balancing Server (Section 4 of the paper).
//
// Fully distributed: every node accepts (via round-robin DNS), parses,
// distributes and services requests. Each node keeps its own replica of
// the per-file server sets and a (stale) view of all nodes' loads, both
// maintained by VIA broadcasts:
//
//   * the initial node services a request itself if it is not overloaded
//     (load <= T) and it caches the file or the file was never requested;
//   * otherwise the least-loaded member of the file's server set services
//     it, unless both the initial node and that member are overloaded, in
//     which case the overall least-loaded node joins the server set;
//   * server sets shrink (most-loaded member dropped) when the chosen node
//     is underloaded (load < t), the set has more than one member, and the
//     set has not changed for a while;
//   * a node broadcasts its load when it drifted >= broadcast_delta (4)
//     connections from the last broadcast value; server-set changes are
//     broadcast by the node that made them.
//
// Defaults are the paper's simulation settings: T = 20, t = 10, delta = 4.
#pragma once

#include <memory>
#include <vector>

#include "l2sim/cluster/load_tracker.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/policy/server_set.hpp"

namespace l2s::policy {

struct L2sParams {
  int overload_threshold = 20;   ///< T
  int underload_threshold = 10;  ///< t
  int broadcast_delta = 4;       ///< connections of drift before broadcasting
  /// How many connections more loaded than the best server-set member the
  /// initial node may be and still service a cached file locally (avoiding
  /// the hand-off). Half a broadcast quantum by default.
  int local_bias = 2;
  double set_shrink_seconds = 20.0;
  /// When true, least-loaded selections pick uniformly between the two
  /// lowest candidates instead of strictly the lowest — damping the herd
  /// effect of many deciders acting on equally stale views (ablation knob;
  /// the paper's algorithm is strict, which is the default).
  bool herd_damping = false;
};

class L2sPolicy final : public Policy {
 public:
  explicit L2sPolicy(L2sParams params = {});

  [[nodiscard]] const char* name() const override { return "l2s"; }

  void attach(const ClusterContext& ctx) override;

  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;
  [[nodiscard]] bool entry_is_dns() const override { return true; }
  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;
  [[nodiscard]] SimTime forward_cpu_time(int entry) const override;
  void on_service_start(int node, const trace::Request& r) override;
  void on_complete(int node, const trace::Request& r) override;
  void on_connection_migrated(int from, int to, const trace::Request& r) override;

  /// Survivors mark the dead peer infinitely loaded in their views and
  /// DNS drops it from the entry rotation; server sets heal themselves
  /// because an "overloaded" dead member triggers replication elsewhere.
  void on_node_failed(int node) override;

  /// The restarted node rejoins with blank replicated state (cold cache,
  /// empty server sets, current membership only); survivors zero their
  /// view of it and DNS resumes routing clients there.
  void on_node_recovered(int node) override;

  /// Brownout level >= 1 sheds forwarding: requests are serviced at their
  /// entry node, skipping the server-set machinery entirely (no hand-offs,
  /// no set growth, no set-change broadcasts) — locality is sacrificed to
  /// shed the distribution overhead while the cluster is overloaded.
  void on_brownout(int level) override { brownout_level_ = level; }

  /// Node `owner`'s view of node `target`'s load (for tests).
  [[nodiscard]] int view_of(int owner, int target) const;
  /// Node `owner`'s replica of the file's server set (for tests).
  [[nodiscard]] const std::vector<int>& server_set_of(int owner,
                                                      storage::FileId file) const;

 private:
  struct NodeState {
    cluster::LoadView view{1};
    cluster::BroadcastThrottle throttle{4};
    ServerSetMap sets;
  };

  void maybe_broadcast_load(int node);
  void broadcast_set_change(int origin, storage::FileId file);

  /// Random pick between the two least-loaded candidates (herd damping
  /// across distributed deciders working from stale views).
  [[nodiscard]] int pick_low(const cluster::LoadView& view, const std::vector<int>& candidates);
  [[nodiscard]] int pick_low_all(const cluster::LoadView& view);

  [[nodiscard]] NodeState& state(int node) { return *states_[static_cast<std::size_t>(node)]; }
  [[nodiscard]] const NodeState& state(int node) const {
    return *states_[static_cast<std::size_t>(node)];
  }

  L2sParams params_;
  ClusterContext ctx_;
  std::vector<std::unique_ptr<NodeState>> states_;
  std::vector<int> all_nodes_;
  std::vector<int> alive_entries_;  ///< DNS rotation after failures (empty = all)
  std::uint64_t rng_state_ = 0x2545f4914f6cdd1dULL;
  SimTime shrink_ns_ = 0;
  int brownout_level_ = 0;
};

}  // namespace l2s::policy
