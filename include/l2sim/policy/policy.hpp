// Request-distribution policy interface.
//
// The simulation core drives a single request lifecycle; policies decide
// (a) which node a client connection arrives at (the front door: RR-DNS,
// fewest-connections switch, or a dedicated front-end), and (b) which node
// services a parsed request. Policies may send VIA messages (load and
// locality dissemination) through the context.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/cluster/node.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/net/via.hpp"
#include "l2sim/stats/counter_set.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::policy {

/// Everything a policy may touch. Owned by the simulation; valid for the
/// policy's lifetime after attach().
struct ClusterContext {
  des::Scheduler* sched = nullptr;
  net::ViaNetwork* via = nullptr;
  std::vector<cluster::Node*> nodes;
  Bytes control_msg_bytes = 16;  ///< payload of load/locality updates

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] cluster::Node& node(int i) const { return *nodes[static_cast<std::size_t>(i)]; }
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once, after the cluster is built.
  virtual void attach(const ClusterContext& ctx) = 0;

  /// Called at the start of each trace replay (warm-up and measured pass).
  /// Lets DNS-style front doors re-randomize their client-to-node mapping
  /// so a replayed trace does not land on exactly the same nodes as the
  /// warm-up (real request streams never replay verbatim).
  virtual void on_pass_start(int pass);

  /// Node at which the client's connection arrives.
  [[nodiscard]] virtual int entry_node(std::uint64_t seq, const trace::Request& r) = 0;

  /// True when the front door is DNS-based (clients pick the node), which
  /// makes it subject to DNS-translation caching skew; false for
  /// server-side dispatchers (load-balancing switch, dedicated front-end).
  [[nodiscard]] virtual bool entry_is_dns() const { return false; }

  /// Distribution decision, made on `entry` after the request is parsed.
  [[nodiscard]] virtual int select_service_node(int entry, const trace::Request& r) = 0;

  /// Policies whose decision involves communication (e.g. querying a
  /// dispatcher node) return true and implement the asynchronous variant;
  /// the lifecycle then waits for `done(target)` instead of calling
  /// select_service_node(). Passing a negative target to `done` signals
  /// that no decision could be made (the request fails).
  [[nodiscard]] virtual bool decides_asynchronously() const { return false; }
  virtual void select_service_node_async(int entry, const trace::Request& r,
                                         std::function<void(int target)> done);

  /// CPU time `entry` spends initiating a hand-off when the service node
  /// differs from the entry node.
  [[nodiscard]] virtual SimTime forward_cpu_time(int entry) const;

  /// The request entered service at `node` (its open-connection count was
  /// just incremented). Default: no-op.
  virtual void on_service_start(int node, const trace::Request& r);

  /// The request completed at `node` (count already decremented).
  virtual void on_complete(int node, const trace::Request& r);

  // --- persistent (HTTP/1.1-style) connections ---------------------------

  /// Distribution decision for a subsequent request on a persistent
  /// connection currently parked at `current`. Default: the normal
  /// decision with `current` acting as the initial node.
  [[nodiscard]] virtual int select_next_in_connection(int current, const trace::Request& r);

  /// A persistent connection migrated between nodes (connection hand-off
  /// mode); counts were already moved by the lifecycle. Default: no-op.
  virtual void on_connection_migrated(int from, int to, const trace::Request& r);

  /// The cluster detected that `node` crashed (after the failure-detection
  /// delay). Policies must stop selecting it. Default: no-op.
  virtual void on_node_failed(int node);

  /// A failure detector *suspects* `node` (it may be dead, slow, or merely
  /// unlucky with heartbeats). Default: treat like a confirmed failure —
  /// conservative policies can override to react differently.
  virtual void on_node_suspected(int node);

  /// A previously failed/suspected node is serving again (restarted, cold
  /// cache, or a suspicion proved false). Policies should resume selecting
  /// it. Default: no-op.
  virtual void on_node_recovered(int node);

  /// The overload controller changed the brownout level. Policies should
  /// shed their own overhead progressively: at level >= 1 drop
  /// locality-driven forwarding (serve where the request lands, stop
  /// replicating/migrating), level 2 additionally has the controller shed
  /// arrivals outright. Level 0 restores normal operation. Default: no-op
  /// — a policy that ignores brownout just keeps paying forwarding costs.
  virtual void on_brownout(int level);

  /// Policy-level counters (broadcasts sent, set changes, ...).
  [[nodiscard]] const stats::CounterSet& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

 protected:
  stats::CounterSet counters_;
};

}  // namespace l2s::policy
