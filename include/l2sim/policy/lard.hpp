// LARD (Locality-Aware Request Distribution) with replication, after
// Pai et al. [ASPLOS-8], as simulated by the paper for comparison.
//
// Node 0 is a dedicated front-end: it accepts and parses every client
// request, runs the LARD/R algorithm over its (slightly stale) view of the
// back-ends' open-connection counts, and hands the connection off. The
// front-end neither services requests nor contributes cache space. A
// back-end notifies the front-end after every `update_batch` (4) completed
// connections — the same update frequency the paper found best.
//
// LARD/R (with the original parameters T_low = 25, T_high = 65, K = 20 s):
//   if the target's server set is empty: assign the least-loaded back-end;
//   otherwise pick the least-loaded member n, and if
//   (load(n) > T_high and some back-end is below T_low) or
//   load(n) >= 2 * T_high, add the overall least-loaded back-end;
//   if the set has not changed for K seconds and has more than one member,
//   drop its most-loaded member.
#pragma once

#include <vector>

#include "l2sim/cluster/load_tracker.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/policy/server_set.hpp"

namespace l2s::policy {

struct LardParams {
  int t_low = 25;
  int t_high = 65;
  double set_shrink_seconds = 20.0;  ///< K
  int update_batch = 4;              ///< completions per load update message

  /// Warm-spare front-end failover: when the front-end is declared failed,
  /// promote the least-loaded live back-end to front-end duty. Off by
  /// default — the paper's LARD keeps its single point of failure; turning
  /// this on converts the SPOF into a time-to-recover window.
  bool front_end_failover = false;
};

class LardPolicy final : public Policy {
 public:
  explicit LardPolicy(LardParams params = {});

  [[nodiscard]] const char* name() const override { return "lard"; }

  void attach(const ClusterContext& ctx) override;

  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;
  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;
  [[nodiscard]] SimTime forward_cpu_time(int entry) const override;
  void on_complete(int node, const trace::Request& r) override;

  /// Persistent connections: the back-end consults the front-end's tables
  /// (the "dispatcher" design of the follow-up LARD work) — the decision
  /// is the same LARD/R computation.
  [[nodiscard]] int select_next_in_connection(int current, const trace::Request& r) override;
  void on_connection_migrated(int from, int to, const trace::Request& r) override;

  /// A dead back-end leaves the candidate pool (its server-set entries are
  /// sidestepped via an infinite load view). A dead front-end is fatal
  /// unless `front_end_failover` is on, in which case a back-end is
  /// promoted — the single point of failure the paper criticizes becomes a
  /// detection-plus-promotion window.
  void on_node_failed(int node) override;

  /// A recovered node rejoins as a (cold) back-end, even if it used to be
  /// the front-end: the promoted replacement keeps the role.
  void on_node_recovered(int node) override;

  /// Brownout level >= 1 sheds the locality machinery's churn: server sets
  /// stop growing and shrinking, and persistent connections stop migrating
  /// — the front-end still forwards (it services nothing itself) but each
  /// connection stays where it is until the overload clears.
  void on_brownout(int level) override { brownout_level_ = level; }

  /// Initial front-end (node 0). The role can migrate under failover; see
  /// current_front_end().
  [[nodiscard]] static constexpr int front_end() { return 0; }
  [[nodiscard]] int current_front_end() const { return front_end_; }

  /// Front-end's current view of a back-end's load (for tests).
  [[nodiscard]] int front_end_view(int node) const;
  [[nodiscard]] const ServerSetMap& server_sets() const { return sets_; }

 private:
  [[nodiscard]] int least_loaded_backend() const;
  [[nodiscard]] bool any_backend_below(int threshold) const;
  [[nodiscard]] int decide(const trace::Request& r);
  void record_termination(int node);

  LardParams params_;
  ClusterContext ctx_;
  cluster::LoadView view_{1};
  ServerSetMap sets_;
  std::vector<int> completions_since_update_;
  SimTime shrink_ns_ = 0;
  int front_end_ = 0;
  int brownout_level_ = 0;
};

}  // namespace l2s::policy
