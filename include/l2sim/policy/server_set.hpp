// Per-file server sets: the nodes believed to cache each file, plus the
// time of the last membership change (both LARD's front-end table and each
// L2S node's replicated copy use this structure).
#pragma once

#include <unordered_map>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/storage/file_set.hpp"

namespace l2s::policy {

class ServerSetMap {
 public:
  /// Members for a file; empty vector if the file was never assigned.
  [[nodiscard]] const std::vector<int>& members(storage::FileId file) const;

  [[nodiscard]] bool contains(storage::FileId file, int node) const;

  /// Add `node` to the file's set (no-op if present). Records `now`.
  void add(storage::FileId file, int node, SimTime now);

  /// Remove `node` (no-op if absent). Records `now` if removed.
  void remove(storage::FileId file, int node, SimTime now);

  /// Replace the whole membership (applying a received broadcast).
  void replace(storage::FileId file, std::vector<int> nodes, SimTime now);

  [[nodiscard]] SimTime last_modified(storage::FileId file) const;

  [[nodiscard]] std::size_t tracked_files() const { return sets_.size(); }

  /// Total membership entries (replication degree x files).
  [[nodiscard]] std::size_t total_members() const;

  void clear() { sets_.clear(); }

 private:
  struct Entry {
    std::vector<int> nodes;
    SimTime modified = 0;
  };
  std::unordered_map<storage::FileId, Entry> sets_;
  static const std::vector<int> kEmpty;
};

}  // namespace l2s::policy
