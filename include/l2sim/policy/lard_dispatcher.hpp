// The follow-up LARD design the paper discusses in Related Work [4]:
// "the request distribution algorithm is centralized at a 'dispatcher'
// node, but client connections can be accepted by all the other cluster
// nodes. A client connection is assigned to a node by a simple
// load-balancing switch, the chosen node then queries the dispatcher, and
// hands off the connection to the node determined by it."
//
// Compared with the original LARD front-end this removes the accept/parse
// bottleneck (the dispatcher only answers small queries), but — as the
// paper points out — the dispatcher (a) remains a (milder) bottleneck and
// point of failure, (b) still wastes its cache space, and (c) forces every
// request through a two-way query.
#pragma once

#include <vector>

#include "l2sim/cluster/load_tracker.hpp"
#include "l2sim/policy/lard.hpp"

namespace l2s::policy {

class LardDispatcherPolicy final : public Policy {
 public:
  explicit LardDispatcherPolicy(LardParams params = {});

  [[nodiscard]] const char* name() const override { return "lard-dispatcher"; }

  void attach(const ClusterContext& ctx) override;

  /// Connections are accepted by the serving nodes (1..N-1) through a
  /// load-balancing switch; the dispatcher (node 0) accepts none.
  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;

  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;
  [[nodiscard]] bool decides_asynchronously() const override { return true; }
  void select_service_node_async(int entry, const trace::Request& r,
                                 std::function<void(int)> done) override;

  [[nodiscard]] SimTime forward_cpu_time(int entry) const override;
  void on_complete(int node, const trace::Request& r) override;
  void on_node_failed(int node) override;

  [[nodiscard]] static constexpr int dispatcher() { return 0; }

 private:
  /// LARD/R over the serving nodes, computed with the dispatcher's tables.
  [[nodiscard]] int decide(const trace::Request& r);
  [[nodiscard]] int least_loaded_server() const;
  [[nodiscard]] bool any_server_below(int threshold) const;

  LardParams params_;
  ClusterContext ctx_;
  cluster::LoadView view_{1};
  ServerSetMap sets_;
  std::vector<int> completions_since_update_;
  std::vector<bool> down_;
  SimTime shrink_ns_ = 0;
  SimTime decision_time_ = 0;
};

}  // namespace l2s::policy
