// The simplest cluster server of Section 2: round-robin DNS hands clients
// to nodes and every node serves what it receives — no load feedback, no
// content awareness. Included as the baseline that shows why DNS-level
// distribution alone is fragile (cached translations skew the entry
// stream, and the server "cannot adjust the request distribution
// according to its own instantaneous load and/or locality information").
#pragma once

#include "l2sim/policy/policy.hpp"

namespace l2s::policy {

class RoundRobinPolicy final : public Policy {
 public:
  [[nodiscard]] const char* name() const override { return "rr-dns"; }

  void attach(const ClusterContext& ctx) override { ctx_ = ctx; }

  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;
  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;
  [[nodiscard]] bool entry_is_dns() const override { return true; }

  /// The round-robin phase shifts every pass: otherwise a replayed trace
  /// sends each node exactly the subsequence it saw during warm-up and
  /// the caches "memorize" the replay (an artifact real streams lack).
  void on_pass_start(int pass) override;

  /// DNS eventually stops handing out the dead node's address.
  void on_node_failed(int node) override;

  /// DNS resumes handing out the recovered node's address.
  void on_node_recovered(int node) override;

 private:
  ClusterContext ctx_;
  std::uint64_t rotation_ = 0;
  std::vector<int> alive_;
};

}  // namespace l2s::policy
