// Consistent-hash request routing — the content-aware scheme most modern
// load balancers ship. Each node owns `virtual_nodes` points on a hash
// ring; a file is served by the owner of the first point clockwise from
// its hash. Perfect locality with zero coordination state, but no load
// feedback: hot files pin their owner (the imbalance Section 3.2 warns
// about), which is exactly the gap L2S's server sets close. On a node
// failure only ~1/N of the keys remap (to the ring successors) — the
// property that made the scheme popular.
#pragma once

#include <map>
#include <vector>

#include "l2sim/policy/policy.hpp"

namespace l2s::policy {

class ConsistentHashPolicy final : public Policy {
 public:
  explicit ConsistentHashPolicy(int virtual_nodes = 128);

  [[nodiscard]] const char* name() const override { return "consistent-hash"; }

  void attach(const ClusterContext& ctx) override;

  /// Round-robin DNS front door (like L2S).
  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;
  [[nodiscard]] bool entry_is_dns() const override { return true; }

  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;
  [[nodiscard]] SimTime forward_cpu_time(int entry) const override;
  void on_node_failed(int node) override;
  void on_pass_start(int pass) override;

  /// Ring owner of a file (exposed for tests).
  [[nodiscard]] int owner_of(storage::FileId file) const;
  [[nodiscard]] std::size_t ring_points() const { return ring_.size(); }

 private:
  int virtual_nodes_;
  ClusterContext ctx_;
  std::map<std::uint64_t, int> ring_;  ///< hash point -> node
  std::vector<int> alive_entries_;
  std::uint64_t rotation_ = 0;
};

}  // namespace l2s::policy
