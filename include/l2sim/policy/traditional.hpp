// The traditional locality-oblivious server: requests are assigned with a
// fewest-connections scheme (an idealized load-balancing switch with exact
// instantaneous load knowledge) and every node services what it receives
// from its own cache/disk — no forwarding, no shared cache state.
#pragma once

#include "l2sim/policy/policy.hpp"

namespace l2s::policy {

class TraditionalPolicy final : public Policy {
 public:
  [[nodiscard]] const char* name() const override { return "traditional"; }

  void attach(const ClusterContext& ctx) override { ctx_ = ctx; }

  [[nodiscard]] int entry_node(std::uint64_t seq, const trace::Request& r) override;

  [[nodiscard]] int select_service_node(int entry, const trace::Request& r) override;

  /// The load-balancing switch health-checks its pool: a detected-dead
  /// node drops out of the fewest-connections choice.
  void on_node_failed(int node) override;

  /// A recovered node rejoins the pool (its zero connection count makes it
  /// the fewest-connections favourite until it warms up).
  void on_node_recovered(int node) override;

 private:
  ClusterContext ctx_;
  std::vector<bool> down_;
};

}  // namespace l2s::policy
