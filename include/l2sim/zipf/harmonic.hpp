// Generalized harmonic numbers H_n^(alpha) = sum_{i=1..n} i^-alpha.
//
// The paper's hit-rate function z(n, F) is a ratio of generalized harmonic
// numbers. Model sweeps need H at arguments up to ~1e30 (the working-set
// inversion for very low hit rates produces astronomically large virtual
// file populations), so we combine an exact prefix sum with a midpoint-rule
// tail integral whose error is negligible for smooth monotone integrands.
#pragma once

#include <cstdint>

namespace l2s::zipf {

/// Exact sum for integer n (n kept small; O(n) once, used by tests and the
/// continuous version's prefix).
[[nodiscard]] double harmonic_exact(std::uint64_t n, double alpha);

/// Continuous extension of H_x^(alpha) for real x >= 0. Exact summation up
/// to an internal prefix bound, then a midpoint-rule integral for the tail;
/// fractional x interpolates the next term. Monotone nondecreasing in x.
[[nodiscard]] double harmonic(double x, double alpha);

}  // namespace l2s::zipf
