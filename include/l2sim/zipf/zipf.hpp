// Zipf-like popularity math from Section 3 of the paper.
//
// Requests follow a Zipf-like distribution: P(i'th most popular of F files)
// ~ 1/i^alpha. The accumulated probability of the n most popular files is
//   z(n, F) = H_n^(alpha) / H_F^(alpha),
// which the paper uses as the cache hit rate when the n hottest files fit
// in cache. The model also needs the inverse: given the locality-oblivious
// hit rate Hlo achieved by caching n files, find the virtual file population
// f with z(n, f) = Hlo, so that the locality-conscious hit rate can be
// derived for the same workload.
#pragma once

namespace l2s::zipf {

/// Accumulated request probability of the n most popular of `files` files
/// under a Zipf-like distribution with exponent `alpha`. Both arguments are
/// continuous (cache capacities divided by file sizes are fractional).
/// Returns a value in [0, 1]; n >= files yields exactly 1.
[[nodiscard]] double z(double n, double files, double alpha);

/// Solve z(n, f) = target for f >= n by bisection on log f.
/// target must be in (0, 1]; target == 1 returns n (everything cached).
/// Throws l2s::Error if target is out of range or unreachable.
[[nodiscard]] double invert_population(double n, double target, double alpha);

}  // namespace l2s::zipf
