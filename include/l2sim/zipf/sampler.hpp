// Discrete Zipf-like sampler used by the synthetic trace generator.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/common/rng.hpp"

namespace l2s::zipf {

/// Samples ranks in [0, files) with P(rank r) ~ 1/(r+1)^alpha.
/// Precomputes the CDF once (O(files)); each draw is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t files, double alpha);

  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Probability mass of an individual rank (0-based).
  [[nodiscard]] double probability(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t files() const { return static_cast<std::uint64_t>(cdf_.size()); }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  std::vector<double> cdf_;
  double alpha_;
};

}  // namespace l2s::zipf
