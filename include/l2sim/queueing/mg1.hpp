// M/G/1 queue via the Pollaczek-Khinchine formula.
//
// The simulator's service times are (mostly) deterministic per class, so
// its queueing sits between M/D/1 and M/M/1. P-K closes that gap exactly:
// with squared coefficient of variation cs2 of the service distribution,
//
//   Wq = (1 + cs2) / 2 * rho / (mu - lambda)
//
// cs2 = 1 recovers M/M/1, cs2 = 0 is M/D/1 (half the waiting). The
// latency_validation bench uses this to show the simulator agrees with
// theory, not just qualitatively.
#pragma once

namespace l2s::queueing {

struct Mg1Metrics {
  double utilization;
  double mean_waiting;    ///< Wq
  double mean_response;   ///< W = Wq + 1/mu
  double mean_customers;  ///< L = lambda * W
};

/// P-K metrics for arrival rate lambda, service rate mu, and service-time
/// squared coefficient of variation cs2 (variance / mean^2, >= 0).
/// Throws l2s::Error when unstable or ill-formed.
[[nodiscard]] Mg1Metrics mg1_metrics(double lambda, double mu, double cs2);

/// Convenience: M/D/1 (deterministic service).
[[nodiscard]] Mg1Metrics md1_metrics(double lambda, double mu);

}  // namespace l2s::queueing
