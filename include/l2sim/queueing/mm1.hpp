// Closed-form M/M/1 queue formulas. The paper's model "assumes that all
// queues are M/M/1"; these are the per-station building blocks the Jackson
// network solver composes.
#pragma once

namespace l2s::queueing {

/// Steady-state metrics of an M/M/1 queue with arrival rate lambda and
/// service rate mu. Only valid when stable (lambda < mu).
struct Mm1Metrics {
  double utilization;     ///< rho = lambda / mu
  double mean_customers;  ///< L = rho / (1 - rho)
  double mean_response;   ///< W = 1 / (mu - lambda), includes service
  double mean_waiting;    ///< Wq = rho / (mu - lambda)
};

/// True when the queue has a steady state (lambda < mu strictly).
[[nodiscard]] bool mm1_stable(double lambda, double mu);

/// Compute steady-state metrics. Throws l2s::Error if unstable or if the
/// rates are non-positive.
[[nodiscard]] Mm1Metrics mm1_metrics(double lambda, double mu);

}  // namespace l2s::queueing
