// M/M/c queue (Erlang C). The cluster's N nodes are N independent M/M/1
// queues; an idealized work-stealing cluster would behave like one M/M/N
// queue over the same capacity. Comparing the two quantifies the latency
// cost of static partitioning — the gap L2S's load balancing tries to
// close from the M/M/1 side.
#pragma once

namespace l2s::queueing {

struct MmcMetrics {
  double utilization;     ///< rho = lambda / (c * mu)
  double prob_wait;       ///< Erlang-C probability an arrival queues
  double mean_customers;  ///< L, including those in service
  double mean_response;   ///< W = Wq + 1/mu
  double mean_waiting;    ///< Wq
};

/// True when lambda < c * mu strictly.
[[nodiscard]] bool mmc_stable(double lambda, double mu, int servers);

/// Erlang-C formula: probability that an arrival finds all `servers` busy,
/// with offered load a = lambda / mu. Computed with a numerically stable
/// recurrence (no factorials).
[[nodiscard]] double erlang_c(double offered_load, int servers);

/// Steady-state metrics; throws l2s::Error when unstable or ill-formed.
[[nodiscard]] MmcMetrics mmc_metrics(double lambda, double mu, int servers);

}  // namespace l2s::queueing
