// Open Jackson network of M/M/1 stations.
//
// Each station i has a service rate mu_i and a visit ratio v_i — the mean
// number of visits one external request makes to the station. For external
// arrival rate Lambda, station arrival rates are lambda_i = Lambda * v_i
// and, by Jackson's theorem, the stations behave as independent M/M/1
// queues. The model's "upper bound on throughput" is the largest Lambda
// keeping every station stable: min_i mu_i / v_i (the bottleneck analysis).
#pragma once

#include <string>
#include <vector>

#include "l2sim/queueing/mm1.hpp"

namespace l2s::queueing {

struct Station {
  std::string name;
  double service_rate;  ///< mu_i, jobs per second (per replica)
  double visit_ratio;   ///< v_i, visits per replica per external request
  /// Number of identical copies of this station (e.g. one CPU per cluster
  /// node). Each replica receives lambda * visit_ratio; a request's total
  /// expected residence in the group is replicas * visit_ratio * W.
  int replicas = 1;
};

struct StationReport {
  std::string name;
  Mm1Metrics metrics;
};

struct NetworkReport {
  std::vector<StationReport> stations;
  double mean_response;  ///< sum_i v_i * W_i, seconds per external request
};

class JacksonNetwork {
 public:
  /// Add a station; zero visit ratios are allowed (station unused in this
  /// configuration) and simply never bind.
  void add_station(Station s);

  /// Largest stable external arrival rate: min over stations with positive
  /// visit ratio of mu_i / v_i. Throws if the network has no active station.
  [[nodiscard]] double max_throughput() const;

  /// Name of the station that binds max_throughput (ties: first added).
  [[nodiscard]] const std::string& bottleneck() const;

  /// Full per-station steady-state report at external rate `lambda`.
  /// Throws if any station would be unstable.
  [[nodiscard]] NetworkReport solve(double lambda) const;

  [[nodiscard]] bool stable_at(double lambda) const;

  [[nodiscard]] const std::vector<Station>& stations() const { return stations_; }

 private:
  std::vector<Station> stations_;
};

}  // namespace l2s::queueing
