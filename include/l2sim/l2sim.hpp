// l2sim — umbrella header.
//
// A library for modeling and simulating cluster-based network servers,
// reproducing Carrera & Bianchini, "Evaluating Cluster-Based Network
// Servers" (HPDC 2000):
//
//   * l2s::model     — analytic open-queueing-network model (Section 3)
//   * l2s::analytic  — Che-approximation miss curves, hierarchical hybrid
//                      solver and DES cell planner (the analytic fast path)
//   * l2s::core      — trace-driven cluster simulator (Section 5)
//   * l2s::policy    — traditional / LARD / L2S request distribution
//   * l2s::trace     — trace IO, synthesis and characterization
//   * l2s::zipf      — Zipf-like popularity math
//   * l2s::queueing  — M/M/1 and open Jackson networks
//   * l2s::des       — discrete-event simulation kernel
//   * l2s::fault     — deterministic fault injection & failure detection
//   * l2s::telemetry — metrics registry, span recorder, trace exporters
//   * l2s::obs       — flight recorder, decision log, divergence debugger
//   * l2s::net, l2s::storage, l2s::cache, l2s::cluster — substrates
#pragma once

#include "l2sim/analytic/che.hpp"
#include "l2sim/analytic/hierarchical.hpp"
#include "l2sim/analytic/planner.hpp"
#include "l2sim/analytic/popularity.hpp"
#include "l2sim/analytic/transient.hpp"
#include "l2sim/cache/gdsf_cache.hpp"
#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/cache/stack_distance.hpp"
#include "l2sim/common/csv.hpp"
#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/common/table.hpp"
#include "l2sim/common/units.hpp"
#include "l2sim/core/config.hpp"
#include "l2sim/core/experiment.hpp"
#include "l2sim/core/metrics.hpp"
#include "l2sim/core/parallel.hpp"
#include "l2sim/core/report.hpp"
#include "l2sim/core/simulation.hpp"
#include "l2sim/core/spec.hpp"
#include "l2sim/fault/detector.hpp"
#include "l2sim/fault/plan.hpp"
#include "l2sim/fault/runtime.hpp"
#include "l2sim/stats/availability.hpp"
#include "l2sim/telemetry/config.hpp"
#include "l2sim/telemetry/exporters.hpp"
#include "l2sim/telemetry/metrics.hpp"
#include "l2sim/telemetry/probe.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/telemetry/sim_telemetry.hpp"
#include "l2sim/telemetry/span.hpp"
#include "l2sim/obs/config.hpp"
#include "l2sim/obs/decision.hpp"
#include "l2sim/obs/diff.hpp"
#include "l2sim/obs/exporters.hpp"
#include "l2sim/obs/recorder.hpp"
#include "l2sim/obs/shard_introspection.hpp"
#include "l2sim/model/cluster_model.hpp"
#include "l2sim/model/latency.hpp"
#include "l2sim/model/parameters.hpp"
#include "l2sim/model/surface.hpp"
#include "l2sim/model/trace_model.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/consistent_hash.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/lard_dispatcher.hpp"
#include "l2sim/policy/policy.hpp"
#include "l2sim/policy/round_robin.hpp"
#include "l2sim/policy/traditional.hpp"
#include "l2sim/queueing/jackson.hpp"
#include "l2sim/queueing/mm1.hpp"
#include "l2sim/queueing/mg1.hpp"
#include "l2sim/queueing/mmc.hpp"
#include "l2sim/trace/binary_io.hpp"
#include "l2sim/trace/characterize.hpp"
#include "l2sim/trace/clf_reader.hpp"
#include "l2sim/trace/synthetic.hpp"
#include "l2sim/trace/trace.hpp"
#include "l2sim/zipf/harmonic.hpp"
#include "l2sim/zipf/sampler.hpp"
#include "l2sim/zipf/zipf.hpp"
