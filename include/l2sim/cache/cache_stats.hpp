// Cache hit/miss accounting shared by the per-node caches and reports.
#pragma once

#include <cstdint>

namespace l2s::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_evicted = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const;
  [[nodiscard]] double miss_rate() const;

  void reset();
  void merge(const CacheStats& other);
};

}  // namespace l2s::cache
