// Byte-capacity LRU cache of whole files — the model of a node's main
// memory used as file cache. The paper's servers cache entire files; an
// access either hits (file fully resident) or misses (file read from disk
// and inserted, evicting least-recently-used files until it fits).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "l2sim/cache/file_cache.hpp"

namespace l2s::cache {

class LruCache final : public FileCache {
 public:
  explicit LruCache(Bytes capacity);

  /// Record an access: on hit the file moves to MRU position and stats
  /// count a hit; on miss stats count a miss (caller fetches from disk and
  /// calls insert()). Returns true on hit.
  bool lookup(FileId id) override;

  /// Residency probe without touching stats or recency.
  [[nodiscard]] bool contains(FileId id) const override;

  /// Insert (or refresh) a file of `size` bytes, evicting LRU entries
  /// until it fits. Files larger than the whole capacity are not cached.
  void insert(FileId id, Bytes size) override;

  /// Remove a file if present; returns true if it was resident.
  bool erase(FileId id) override;

  [[nodiscard]] Bytes used() const override { return used_; }
  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::size_t entries() const override { return index_.size(); }

  [[nodiscard]] const CacheStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  /// Drop all contents (not stats).
  void clear() override;

 private:
  struct Entry {
    FileId id;
    Bytes size;
  };

  void evict_one();

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  // front = MRU, back = LRU
  std::unordered_map<FileId, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace l2s::cache
