// GDSF (GreedyDual-Size with Frequency) cache — the classic web-cache
// replacement policy for variable-size objects (Cherkasova, 1998).
//
// Each resident file carries a priority H = L + frequency / size_kb,
// where L is an aging floor that rises to the priority of each evicted
// file. Small, frequently requested files therefore outlive big cold
// ones, which maximizes *request* hit rate (at some cost in byte hit
// rate) — a useful ablation against the paper's whole-file LRU.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "l2sim/cache/file_cache.hpp"

namespace l2s::cache {

class GdsfCache final : public FileCache {
 public:
  explicit GdsfCache(Bytes capacity);

  bool lookup(FileId id) override;
  [[nodiscard]] bool contains(FileId id) const override;
  void insert(FileId id, Bytes size) override;
  bool erase(FileId id) override;

  [[nodiscard]] Bytes used() const override { return used_; }
  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::size_t entries() const override { return index_.size(); }

  [[nodiscard]] const CacheStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }
  void clear() override;

  /// Current aging floor (exposed for tests).
  [[nodiscard]] double aging_floor() const { return floor_; }

 private:
  struct Entry {
    Bytes size;
    double frequency;
    std::multimap<double, FileId>::iterator by_priority;
  };

  [[nodiscard]] double priority_of(double frequency, Bytes size) const;
  void reprioritize(FileId id, Entry& entry);
  void evict_one();

  Bytes capacity_;
  Bytes used_ = 0;
  double floor_ = 0.0;  ///< L, rises with evictions
  std::unordered_map<FileId, Entry> index_;
  std::multimap<double, FileId> by_priority_;  ///< min priority first
  CacheStats stats_;
};

}  // namespace l2s::cache
