// Mattson stack-distance analysis: one pass over a reference stream
// yields the LRU hit rate for *every* cache size simultaneously.
//
// For each access, the stack distance is the number of distinct files
// referenced since the previous access to the same file (infinite for
// first touches). An LRU cache of capacity >= distance hits. The
// distance histogram therefore gives the full miss-ratio curve — which is
// how one answers the paper's sizing questions (why 32 MB memories make
// working sets "significant", what 128 MB changes) without re-simulating
// per size.
//
// Distances here are measured two ways:
//   * in files (classic Mattson, capacity counted in cached files), and
//   * in bytes (sum of the sizes of the distinct files above the reused
//     one — the right measure for byte-capacity caches like l2sim's).
//
// Implementation: order-statistics tree over last-access times (a Fenwick
// tree indexed by access position) for file distances; a second Fenwick
// tree weighted by file size for byte distances. O(R log R) total.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/trace/trace.hpp"

namespace l2s::cache {

class StackDistanceAnalyzer {
 public:
  /// Analyze the whole trace.
  explicit StackDistanceAnalyzer(const trace::Trace& trace);

  /// Number of accesses whose (file-count) stack distance was exactly d.
  /// Index 0 = re-access with no distinct files in between.
  [[nodiscard]] const std::vector<std::uint64_t>& distance_histogram() const {
    return histogram_;
  }

  /// First touches (infinite distance): compulsory misses.
  [[nodiscard]] std::uint64_t cold_misses() const { return cold_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

  /// LRU hit rate for a cache holding `capacity_files` whole files.
  [[nodiscard]] double hit_rate_at_files(std::uint64_t capacity_files) const;

  /// LRU hit rate for a byte-capacity cache. Computed from the byte-
  /// distance samples (distance = bytes of distinct files more recently
  /// used than the re-accessed file, plus the file itself).
  [[nodiscard]] double hit_rate_at_bytes(Bytes capacity) const;

  /// Miss-ratio curve at the given byte capacities.
  [[nodiscard]] std::vector<double> miss_curve_bytes(
      const std::vector<Bytes>& capacities) const;

 private:
  std::vector<std::uint64_t> histogram_;       ///< by file-count distance
  std::vector<std::uint64_t> cumulative_;      ///< prefix sums of histogram_
  std::vector<Bytes> byte_distances_sorted_;   ///< per reuse access
  std::uint64_t cold_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace l2s::cache
