// Abstract interface for a node's main-memory file cache. The paper's
// servers cache whole files with LRU replacement; GDSF (GreedyDual-Size
// with Frequency) is provided as an ablation since it is the classic
// alternative for web workloads with highly variable file sizes.
#pragma once

#include <cstdint>

#include "l2sim/cache/cache_stats.hpp"
#include "l2sim/common/units.hpp"

namespace l2s::cache {

using FileId = std::uint32_t;

class FileCache {
 public:
  virtual ~FileCache() = default;

  /// Record an access; returns true on hit. Updates replacement state and
  /// hit/miss statistics.
  virtual bool lookup(FileId id) = 0;

  /// Residency probe without touching stats or replacement state.
  [[nodiscard]] virtual bool contains(FileId id) const = 0;

  /// Make a file of `size` bytes resident, evicting as needed. Files
  /// larger than the whole capacity are not cached.
  virtual void insert(FileId id, Bytes size) = 0;

  /// Remove a file if present; returns true if it was resident.
  virtual bool erase(FileId id) = 0;

  [[nodiscard]] virtual Bytes used() const = 0;
  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual std::size_t entries() const = 0;

  [[nodiscard]] virtual const CacheStats& stats() const = 0;
  virtual void reset_stats() = 0;
  virtual void clear() = 0;
};

}  // namespace l2s::cache
