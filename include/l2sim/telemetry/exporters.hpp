// Exporters: turn a telemetry::Snapshot into artifacts people and tools
// consume — a Chrome trace-event JSON file (load it in Perfetto / DevTools;
// one process per node, one track per resource), CSV time-series for
// plotting pipelines, a spans CSV with the per-resource breakdown, and a
// human summary table. Exporters are pure functions of the snapshot; they
// never touch the simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "l2sim/telemetry/registry.hpp"

namespace l2s::telemetry {

/// Chrome trace-event JSON (the "traceEvents" array format). Spans become
/// "X" complete events on per-node resource tracks (entry / hand-off /
/// storage / reply), fault transitions and failed requests become instant
/// events, and probe series become "C" counter tracks. Timestamps are
/// microseconds (SimTime ns / 1000). Sample series labeled {shard=N} land
/// on dedicated shard processes (pid 10000 + N, named "shard N") so DES
/// introspection timelines get their own tracks instead of piling onto
/// node 0. `extra_events` are pre-rendered JSON event objects (e.g. from
/// obs::decision_chrome_events) spliced into the traceEvents array.
void write_chrome_trace(std::ostream& out, const Snapshot& snapshot,
                        const std::vector<std::string>& extra_events);
void write_chrome_trace(std::ostream& out, const Snapshot& snapshot);

/// Scalar metrics (counters, gauges, histogram quantiles) as
/// name,labels,kind,count,value,min,max rows.
void write_metrics_csv(std::ostream& out, const Snapshot& snapshot);

/// Time-series metrics (bucket + sample series) as long-format
/// name,labels,time_s,value rows.
void write_timeseries_csv(std::ostream& out, const Snapshot& snapshot);

/// Sampled spans, one row each, with the per-resource stage breakdown.
void write_spans_csv(std::ostream& out, const Snapshot& snapshot);

/// Human-readable summary: headline counters, response-time quantiles,
/// span accounting and the per-resource stage means reconstructed from the
/// sampled spans.
void write_summary(std::ostream& out, const Snapshot& snapshot);

/// Path-based wrappers; throw std::runtime_error when the file can't be
/// opened.
void export_chrome_trace(const std::string& path, const Snapshot& snapshot);
void export_metrics_csv(const std::string& path, const Snapshot& snapshot);
void export_timeseries_csv(const std::string& path, const Snapshot& snapshot);
void export_spans_csv(const std::string& path, const Snapshot& snapshot);

}  // namespace l2s::telemetry
