// Telemetry configuration: one sub-config embedded in core::SimConfig (and
// therefore in every ExperimentSpec). Telemetry is a null-object when
// disabled — the simulation does not construct a recorder at all, so the
// disabled path costs nothing beyond an untaken branch at wiring time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace l2s::telemetry {

struct TelemetryConfig {
  /// Master switch. When false no telemetry observer is registered and
  /// SimResult::telemetry stays null.
  bool enabled = false;

  /// Deterministic 1-in-N span sampling keyed on the request id (see
  /// SpanRecorder::sampled): 1 records every request, 64 records ~1/64 of
  /// them, 0 disables span capture entirely while keeping the metrics
  /// registry and timeline probe alive. The decision is a pure function of
  /// the request id, so the sampled span set replays bit-identically.
  std::uint64_t span_sample_every = 64;

  /// Bounded span ring buffer: once full, the oldest span is overwritten
  /// (and counted — see SpanRecorder::overwritten()).
  std::size_t span_capacity = 8192;

  /// Timeline probe: sample per-node queue depths, cache occupancy, CPU
  /// utilization and in-flight VIA messages on every load-sampler tick.
  /// The probe rides the engine's existing periodic load sampler (it
  /// schedules no events of its own), so its cadence is
  /// SimConfig::load_sample_interval and it is silent when that sampler is
  /// off (interval 0 or a single-node cluster).
  bool probe = true;

  void validate() const;
};

}  // namespace l2s::telemetry
