// telemetry::Registry — named, labeled metrics with stable registration
// order, plus the value-type Snapshot that carries a run's telemetry out of
// the simulation (metrics, sampled spans, fault timeline). Snapshots merge
// deterministically, which is what lets run_parallel aggregate per-job
// registries in job-index order with no shared mutable state.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "l2sim/telemetry/metrics.hpp"
#include "l2sim/telemetry/span.hpp"

namespace l2s::telemetry {

enum class MetricKind : std::uint8_t {
  kCounter,
  kGauge,
  kHistogram,
  kBucketSeries,
  kSampleSeries,
};

[[nodiscard]] constexpr const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kBucketSeries: return "bucket_series";
    case MetricKind::kSampleSeries: return "sample_series";
  }
  return "?";
}

/// Value-type copy of one registered metric.
struct MetricSnapshot {
  std::string name;
  Labels labels;  ///< canonical (key-sorted)
  MetricKind kind = MetricKind::kCounter;

  std::uint64_t count = 0;  ///< counter value / histogram & gauge sample count
  double value = 0.0;       ///< gauge last value
  double min = 0.0;         ///< gauge min
  double max = 0.0;         ///< gauge max

  HistogramParams histogram_params;
  std::vector<std::uint64_t> histogram_buckets;

  SimTime series_start = 0;     ///< bucket series timebase
  SimTime series_interval = 0;  ///< 0 = never begun
  std::vector<double> series_buckets;

  std::vector<std::pair<SimTime, double>> samples;  ///< sample series points
};

/// Everything one run's telemetry produced, detached from the simulation.
struct Snapshot {
  int nodes = 0;  ///< cluster size (exporters need it for per-node tracks)
  std::vector<MetricSnapshot> metrics;  ///< registration order
  std::vector<Span> spans;              ///< sampled spans, oldest first
  std::vector<FaultEvent> fault_events;

  std::uint64_t span_sample_every = 0;
  std::uint64_t spans_recorded = 0;     ///< sampled (incl. overwritten)
  std::uint64_t spans_overwritten = 0;  ///< lost to ring wraparound

  /// Find a metric by name and canonical labels; nullptr when absent.
  [[nodiscard]] const MetricSnapshot* find(const std::string& name,
                                           const Labels& labels = {}) const;

  /// Merge `other` into this snapshot: counters and histogram/series
  /// buckets sum, gauges keep extrema, spans and fault events append in
  /// call order. Callers merging a batch iterate it in a fixed order
  /// (run_parallel: job-index order) to stay deterministic.
  void merge(const Snapshot& other);
};

/// Canonical labels (sorted by key) — exposed for key-building tests.
[[nodiscard]] Labels canonical_labels(Labels labels);

/// "name{k=v,k2=v2}" — the unique key a (name, labels) pair registers under.
[[nodiscard]] std::string metric_key(const std::string& name, const Labels& labels);

class Registry {
 public:
  /// Each accessor returns the existing metric for (name, labels) or
  /// registers a new one. References stay valid for the Registry's
  /// lifetime (metrics live in deques). Registering the same key under two
  /// different kinds throws.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       HistogramParams params = {});
  BucketSeries& bucket_series(const std::string& name, const Labels& labels = {});
  SampleSeries& sample_series(const std::string& name, const Labels& labels = {});

  [[nodiscard]] std::size_t metric_count() const { return order_.size(); }

  /// Copy every metric out, in registration order. Spans and fault events
  /// are owned by the recorder, not the registry; SimTelemetry::snapshot()
  /// fills those in.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every value; registrations (names, labels, shapes) survive.
  void reset();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::size_t index;  ///< into the kind's deque
  };

  template <typename T>
  T& get_or_register(const std::string& name, const Labels& labels, MetricKind kind,
                     std::deque<T>& pool, T initial);

  std::map<std::string, std::size_t> by_key_;  ///< key -> order_ index
  std::vector<Entry> order_;                   ///< registration order
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<BucketSeries> bucket_series_;
  std::deque<SampleSeries> sample_series_;
};

}  // namespace l2s::telemetry
