// SimTelemetry: the bridge between the simulation engine and the
// telemetry subsystem. It is one more LifecycleObserver on the engine's
// fan-out — the engine neither knows nor cares that it exists — and owns
// the run's Registry, SpanRecorder and TimelineProbe. The coordinator
// registers it only when TelemetryConfig::enabled is set, which is the
// whole null-object story: disabled telemetry is not a cheap code path,
// it is no code path.
//
// Observation is strictly passive: handlers read engine state (connection
// timestamps, node counters) and write telemetry state; they draw no
// randomness from the simulation streams and schedule no events, so an
// instrumented run replays bit-identically to an uninstrumented one (the
// golden-digest suite pins this).
#pragma once

#include <memory>

#include "l2sim/core/engine/context.hpp"
#include "l2sim/telemetry/config.hpp"
#include "l2sim/telemetry/probe.hpp"
#include "l2sim/telemetry/registry.hpp"
#include "l2sim/telemetry/span.hpp"

namespace l2s::telemetry {

class SimTelemetry final : public core::engine::LifecycleObserver {
 public:
  SimTelemetry(const core::engine::EngineContext& ctx, const TelemetryConfig& config);

  /// Arm the measured pass: anchors the probe's utilization differentiation
  /// and the goodput bucket series (interval from
  /// SimConfig::goodput_interval_seconds; 0 keeps that series off).
  void begin_measurement(SimTime measure_start);

  /// End of warm-up: drop everything observed so far, keep registrations.
  void reset();

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const SpanRecorder& spans() const { return spans_; }

  /// Detach the run's telemetry: registry metrics + sampled spans + fault
  /// timeline, ready for exporters or cross-job merging.
  [[nodiscard]] Snapshot snapshot() const;

  // --- LifecycleObserver --------------------------------------------------
  void on_decision(const obs::DecisionRecord& record) override;
  void on_request_completed(const cluster::Connection& conn, SimTime now) override;
  void on_request_failed(const cluster::Connection* conn,
                         core::engine::FailureKind kind, SimTime now) override;
  void on_retry_scheduled(SimTime now) override;
  void on_hedge(SimTime now) override;
  void on_brownout(int level, SimTime now) override;
  void on_forward() override;
  void on_migration() override;
  void on_remote_fetch() override;
  void on_load_sample(SimTime now) override;
  void on_node_crashed(int node, SimTime at) override;
  void on_node_repaired(int node, SimTime at) override;
  void on_node_detected(int node, SimTime at) override;
  void on_node_readmitted(int node, SimTime at) override;

 private:
  void record_fault(FaultEvent::Kind kind, int node, SimTime at);

  const core::engine::EngineContext& ctx_;
  TelemetryConfig config_;
  Registry registry_;
  SpanRecorder spans_;
  std::unique_ptr<TimelineProbe> probe_;
  std::vector<FaultEvent> fault_events_;
  std::uint32_t fault_epoch_ = 0;

  // Cached handles into registry_ (stable for the registry's lifetime).
  Counter* completed_ = nullptr;
  Counter* completed_hits_ = nullptr;
  Counter* completed_forwarded_ = nullptr;
  Counter* failed_deadline_ = nullptr;
  Counter* failed_retries_ = nullptr;
  Counter* failed_rejected_ = nullptr;
  Counter* failed_shed_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* hedges_ = nullptr;
  Counter* brownout_transitions_ = nullptr;
  Counter* forwards_ = nullptr;
  Counter* migrations_ = nullptr;
  Counter* remote_fetches_ = nullptr;
  Histogram* response_ms_ = nullptr;
  BucketSeries* goodput_completed_ = nullptr;
  BucketSeries* goodput_failed_ = nullptr;
};

}  // namespace l2s::telemetry
