// Telemetry metric value types: counters, gauges, log-scale histograms and
// two time-series shapes (bucketed counters and point samples). They are
// plain value classes — usable standalone (stats::AvailabilityTracker keeps
// its goodput timeline in a BucketSeries) or named and labeled inside a
// telemetry::Registry. Every type supports cheap snapshot/merge semantics
// so run_parallel can aggregate per-job registries deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::telemetry {

/// Metric labels: key/value pairs, canonicalized (sorted by key) at
/// registration so {a=1,b=2} and {b=2,a=1} name the same metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value plus the observed extrema. Merging keeps the
/// combined extrema and the maximum of the last values (the natural
/// aggregate for peak-style gauges, which is what the simulator records).
class Gauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  void merge(const Gauge& other);
  void reset();

 private:
  double value_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Geometric bucket boundaries [0, base), [base, base*growth), ...; the
/// final bucket is an overflow catch-all (same shape as stats::LogHistogram
/// but mergeable bucket-by-bucket).
struct HistogramParams {
  double base = 0.01;
  double growth = 1.3;
  std::size_t buckets = 64;
};

class Histogram {
 public:
  explicit Histogram(HistogramParams params = {});

  void add(double value);
  /// Add `count` observations of `value` at once (bulk import of
  /// pre-bucketed data, e.g. DES introspection histograms).
  void add_count(double value, std::uint64_t count);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] const HistogramParams& params() const { return params_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_lower_bound(std::size_t i) const;
  [[nodiscard]] double quantile(double q) const;
  /// Bucket-wise sum; both histograms must share the same parameters.
  void merge(const Histogram& other);
  void reset();

 private:
  HistogramParams params_;
  double inv_log_growth_ = 1.0;        // 1 / log(growth), for O(1) bucket lookup
  std::vector<std::uint64_t> counts_;  // last bucket = overflow
  std::uint64_t total_ = 0;
};

/// Fixed-interval bucketed accumulator over simulated time: bump(t) adds
/// into the bucket covering t. This is the goodput-timeline shape; bucket
/// indexing is exact integer SimTime arithmetic so migrated callers keep
/// bit-identical timelines. Un-begun (interval 0) series ignore bumps.
class BucketSeries {
 public:
  void begin(SimTime start, SimTime interval);
  void bump(SimTime t, double delta = 1.0);

  [[nodiscard]] SimTime start() const { return start_; }
  [[nodiscard]] SimTime interval() const { return interval_; }
  [[nodiscard]] const std::vector<double>& buckets() const { return buckets_; }

  /// Per-second rates per bucket covering [start, end); empty when the
  /// series was never begun or end precedes start.
  [[nodiscard]] std::vector<double> rate_per_second(SimTime end) const;

  /// Element-wise sum (pads with zeros); keeps this series' timebase.
  void merge(const BucketSeries& other);
  void reset();

 private:
  SimTime start_ = 0;
  SimTime interval_ = 0;
  std::vector<double> buckets_;
};

/// Point samples (t, value): the timeline-probe shape (queue depths, cache
/// occupancy, utilization). Merging appends the other series' points.
class SampleSeries {
 public:
  void add(SimTime t, double value);
  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }
  void merge(const SampleSeries& other);
  void reset() { points_.clear(); }

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

}  // namespace l2s::telemetry
