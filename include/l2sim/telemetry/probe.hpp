// TimelineProbe: turns periodic cluster snapshots into Registry
// time-series — per-node open connections, CPU/disk/NIC queue depths,
// cache occupancy, CPU utilization (differentiated from cumulative busy
// time) and cluster-wide in-flight VIA messages. The probe is passive
// plumbing: whoever drives it (telemetry::SimTelemetry, riding the
// engine's existing load-sampler tick) builds a ClusterSample and calls
// record(); the probe never schedules events, so enabling it cannot
// perturb the simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/telemetry/registry.hpp"

namespace l2s::telemetry {

/// One periodic observation of the simulated hardware.
struct ClusterSample {
  struct Node {
    int open_connections = 0;
    std::size_t cpu_queue = 0;
    std::size_t disk_queue = 0;
    std::size_t nic_tx_queue = 0;
    Bytes cache_used = 0;
    Bytes cache_capacity = 0;
    SimTime cpu_busy = 0;  ///< cumulative busy time (probe differentiates)
  };
  SimTime now = 0;
  std::vector<Node> nodes;
  std::uint64_t via_in_flight = 0;
};

class TimelineProbe {
 public:
  TimelineProbe(Registry& registry, int nodes);

  /// (Re)anchor utilization differentiation at the start of the measured
  /// pass (cumulative busy counters are zeroed after warm-up).
  void begin(SimTime start);

  void record(const ClusterSample& sample);

  void reset();

 private:
  Registry& registry_;
  int nodes_;
  SimTime last_now_ = 0;
  std::vector<SimTime> last_busy_;

  // Cached handles (Registry references are stable).
  std::vector<SampleSeries*> open_connections_;
  std::vector<SampleSeries*> cpu_queue_;
  std::vector<SampleSeries*> disk_queue_;
  std::vector<SampleSeries*> nic_tx_queue_;
  std::vector<SampleSeries*> cache_used_;
  std::vector<SampleSeries*> utilization_;
  std::vector<Gauge*> peak_queue_;
  SampleSeries* via_in_flight_ = nullptr;
};

}  // namespace l2s::telemetry
