// Per-request span capture: every sampled request leaves one Span carrying
// its lifecycle timestamps (arrival -> admission/dispatch decision ->
// hand-off -> cache-or-disk -> reply) plus node ids, the policy verdict and
// the fault epoch it completed under. Spans land in a bounded ring buffer;
// sampling is a deterministic pure function of the request id, so the
// recorded span set replays bit-identically run over run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::telemetry {

/// How the request's story ended, folding in the dispatch decision for
/// completions and the failure bucket for failures.
enum class SpanVerdict : std::uint8_t {
  kLocal,             ///< completed at its entry node
  kForwarded,         ///< completed after a hand-off / remote service
  kDeadline,          ///< failed: per-request deadline expired
  kRetriesExhausted,  ///< failed: every attempt died
};

[[nodiscard]] constexpr const char* span_verdict_name(SpanVerdict v) {
  switch (v) {
    case SpanVerdict::kLocal: return "local";
    case SpanVerdict::kForwarded: return "forwarded";
    case SpanVerdict::kDeadline: return "failed-deadline";
    case SpanVerdict::kRetriesExhausted: return "failed-retries";
  }
  return "?";
}

struct Span {
  std::uint64_t request_id = 0;
  std::int32_t entry_node = -1;
  std::int32_t service_node = -1;  ///< -1 when the request died before dispatch
  SpanVerdict verdict = SpanVerdict::kLocal;
  bool cache_hit = false;
  std::uint32_t attempt = 0;       ///< attempt the story ended on (0 = first try)
  std::uint32_t retries_used = 0;
  /// Fault epoch: how many fault-timeline transitions (crash, repair,
  /// detection, readmission) preceded this span's end.
  std::uint32_t fault_epoch = 0;

  /// Lifecycle timestamps of the final attempt (SimTime ns). For failures
  /// the tail timestamps stay 0 and `completion` is the failure time.
  SimTime first_arrival = 0;  ///< first attempt's arrival (deadline anchor)
  SimTime arrival = 0;
  SimTime decided = 0;    ///< policy decision done (entry parse + dispatch)
  SimTime service = 0;    ///< service start at the service node
  SimTime disk_done = 0;  ///< disk read complete (== service on cache hits)
  SimTime completion = 0;

  [[nodiscard]] bool failed() const {
    return verdict == SpanVerdict::kDeadline || verdict == SpanVerdict::kRetriesExhausted;
  }

  // Per-resource breakdown of the final attempt, in milliseconds — the
  // same four stages MetricsCollector averages into SimResult::stage_*.
  [[nodiscard]] double entry_ms() const { return simtime_ms(decided - arrival); }
  [[nodiscard]] double forward_ms() const { return simtime_ms(service - decided); }
  [[nodiscard]] double disk_ms() const { return simtime_ms(disk_done - service); }
  [[nodiscard]] double reply_ms() const { return simtime_ms(completion - disk_done); }
  /// Client-perceived time across every attempt.
  [[nodiscard]] double total_ms() const { return simtime_ms(completion - first_arrival); }
};

[[nodiscard]] bool operator==(const Span& a, const Span& b);

/// One fault-timeline transition, kept alongside the spans so exporters
/// can annotate traces with crash/recovery markers.
struct FaultEvent {
  enum class Kind : std::uint8_t { kCrash, kRepair, kDetected, kReadmitted };
  Kind kind = Kind::kCrash;
  std::int32_t node = -1;
  SimTime at = 0;
};

[[nodiscard]] constexpr const char* fault_event_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRepair: return "repair";
    case FaultEvent::Kind::kDetected: return "detected";
    case FaultEvent::Kind::kReadmitted: return "readmitted";
  }
  return "?";
}

/// Bounded ring of sampled spans. When full, recording overwrites the
/// oldest span and counts it in overwritten() — recent history survives,
/// accounting stays honest.
class SpanRecorder {
 public:
  SpanRecorder(std::size_t capacity, std::uint64_t sample_every);

  /// Deterministic 1-in-N decision, a pure function of the request id
  /// (splitmix64 finalizer, so consecutive ids sample uniformly).
  [[nodiscard]] bool sampled(std::uint64_t request_id) const;

  void record(const Span& span);

  /// Spans oldest-to-newest (unwraps the ring).
  [[nodiscard]] std::vector<Span> chronological() const;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t sample_every() const { return sample_every_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Spans lost to ring wraparound (== recorded() - size()).
  [[nodiscard]] std::uint64_t overwritten() const { return recorded_ - size_; }

  void reset();

 private:
  std::vector<Span> ring_;
  std::size_t next_ = 0;  ///< slot the next span lands in
  std::size_t size_ = 0;
  std::uint64_t sample_every_;
  std::uint64_t recorded_ = 0;
};

}  // namespace l2s::telemetry
