// Digest-divergence debugger: replay two experiment specs with the flight
// recorder on and report the FIRST decision record where their streams
// disagree, with surrounding context from both sides. This turns a
// golden-net failure ("digest mismatch") into a pinpointed event: which
// request, at what simulated time, dispatched/shed/retried differently.
//
// Run A is replayed in full (its decision stream collected via a sink);
// run B streams through a comparator that aborts B's simulation the
// moment a record disagrees — B never runs past the first divergence, so
// diffing a long run with an early divergence costs only the prefix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "l2sim/core/spec.hpp"
#include "l2sim/obs/decision.hpp"

namespace l2s::obs {

struct DiffOptions {
  std::size_t context = 8;  ///< records shown before the divergence, per side
};

struct DiffReport {
  bool diverged = false;
  /// Global index of the first divergent record. When one stream is a
  /// strict prefix of the other (`length_only`), this is the shorter
  /// stream's length — the first index present on only one side.
  std::uint64_t first_divergence = 0;
  bool length_only = false;
  std::uint64_t records_a = 0;  ///< total records side A emitted
  std::uint64_t records_b = 0;  ///< records side B emitted (stops at divergence)
  /// Trailing context windows ending at (and including) the divergent
  /// record when present; context_a/b[i] share a global index.
  std::vector<DecisionRecord> context_a;
  std::vector<DecisionRecord> context_b;
  std::uint64_t context_start = 0;  ///< global index of context_a[0]

  /// Human-readable report: verdict line plus a side-by-side record table.
  [[nodiscard]] std::string summary() const;
};

/// Replay both specs (recorder on, warm-up included) and compare their
/// decision streams record by record. The specs may differ in any way —
/// seed, shard count, policy, overload defenses — and each side realizes
/// its own trace from spec.trace.
[[nodiscard]] DiffReport diff_decisions(const core::ExperimentSpec& a,
                                        const core::ExperimentSpec& b,
                                        const DiffOptions& options = {});

/// Same, with a shared pre-realized trace (sweeps, tests).
[[nodiscard]] DiffReport diff_decisions(const core::ExperimentSpec& a,
                                        const core::ExperimentSpec& b,
                                        const trace::Trace& trace,
                                        const DiffOptions& options = {});

/// One line per record, the format used by DiffReport::summary — handy for
/// logging individual records elsewhere.
[[nodiscard]] std::string format_record(std::uint64_t index, const DecisionRecord& rec);

}  // namespace l2s::obs
