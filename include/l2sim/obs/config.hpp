// Flight-recorder configuration. Lives in its own header (included by
// core/config.hpp) so the obs subsystem's vocabulary stays independent of
// the engine headers — obs depends on core, never the reverse.
#pragma once

#include <cstdint>

#include "l2sim/obs/decision.hpp"

namespace l2s::obs {

/// SimConfig::obs. Everything defaults OFF: with `enabled == false` and no
/// sink the coordinator does not even construct a FlightRecorder, and with
/// it on the recorder only appends PODs to a ring from inside lifecycle
/// callbacks — zero scheduled events, zero random draws, so the golden
/// digests are bit-identical either way (pinned in test_golden_results).
struct ObsConfig {
  /// Construct the FlightRecorder and retain a DecisionTrace in SimResult.
  bool enabled = false;
  /// Ring capacity in records (40 B each). 0 = unbounded (keep everything);
  /// the default keeps the last 16384 decisions (~640 KiB). Kept well under
  /// the simulator's hot working set on purpose: the ring is written on
  /// every decision, so a multi-MiB ring steadily evicts the cache model's
  /// own structures — overhead no profiler attributes to obs code. Raise it
  /// (or use 0) for post-mortem depth, not for always-on runs.
  std::uint64_t capacity = 1ULL << 14;
  /// Keep warm-up-pass records (tagged pass = 0). The divergence debugger
  /// wants them — a divergence usually starts in warm-up — while overhead
  /// runs may drop them.
  bool include_warmup = true;
  /// Optional streaming consumer, invoked for every record before it enters
  /// the ring (subject to include_warmup). Non-owning; must outlive the
  /// simulation. Setting a sink implies recording even if `enabled` is
  /// false (the ring then stays minimal and no trace is retained).
  DecisionSink* sink = nullptr;

  [[nodiscard]] bool active() const { return enabled || sink != nullptr; }
};

}  // namespace l2s::obs
