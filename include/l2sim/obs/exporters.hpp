// Decision-trace exporters: turn a DecisionTrace into artifacts — a CSV of
// every retained record, and Chrome trace-event JSON where decisions become
// instant events joined onto the telemetry span tracks (plus flow arrows
// for cross-node dispatches). Like the telemetry exporters these are pure
// functions of already-collected data; they never touch the simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "l2sim/obs/decision.hpp"

namespace l2s::telemetry {
struct Snapshot;
}

namespace l2s::obs {

/// One row per retained record:
/// index,time_s,pass,kind,cause,request,node,target,attempt,detail.
/// `index` is the global record index (first row = trace.first_index()).
void write_decisions_csv(std::ostream& out, const DecisionTrace& trace);
void export_decisions_csv(const std::string& path, const DecisionTrace& trace);

/// Pre-rendered Chrome trace-event JSON objects for every retained record:
/// an instant event on the deciding node's process (the same pid the
/// telemetry span tracks use, so decisions land between the spans they
/// explain), plus a flow arrow from entry to target for cross-node
/// dispatches. Feed to telemetry::write_chrome_trace's extra_events.
[[nodiscard]] std::vector<std::string> decision_chrome_events(const DecisionTrace& trace);

/// Chrome trace combining a telemetry snapshot's span/counter tracks with
/// the decision log's instant/flow events — one file, one timeline.
void write_chrome_trace_with_decisions(std::ostream& out,
                                       const telemetry::Snapshot& snapshot,
                                       const DecisionTrace& trace);
void export_chrome_trace_with_decisions(const std::string& path,
                                        const telemetry::Snapshot& snapshot,
                                        const DecisionTrace& trace);

}  // namespace l2s::obs
