// Topology introspection surface: lift a net::Topology's per-link
// accounting (message-mode utilization, flow-mode bits, bytes carried)
// into telemetry metrics and a human-readable report, the same translation
// pattern shard_introspection.hpp applies to the sharded scheduler.
// Reading a topology is strictly passive — no events, no state changes —
// so exporting is digest-inert by construction.
#pragma once

#include <iosfwd>

#include "l2sim/common/units.hpp"
#include "l2sim/net/topology.hpp"

namespace l2s::telemetry {
class Registry;
}

namespace l2s::obs {

/// Export the topology's link accounting into `registry`:
///   net.link.utilization{link}       gauge  message-mode busy fraction
///   net.link.flow_utilization{link}  gauge  flow-mode mean utilization
///   net.link.transfers{link}         counter  message-mode transfers
///   net.link.bytes{link}             counter  message-mode bytes carried
///   net.traversals                   counter  end-to-end paths traversed
/// `elapsed` is the measured interval the utilizations are taken over.
/// No-op (beyond net.traversals) for link-free topologies (single switch).
void export_link_utilization(telemetry::Registry& registry,
                             const net::Topology& topo, SimTime elapsed);

/// Human-readable topology report: per-link utilization table plus the
/// rack-pair hop/latency matrix (which pairs ride which distance class).
void write_topology_report(std::ostream& out, const net::Topology& topo,
                           SimTime elapsed);

}  // namespace l2s::obs
