// Sharded-DES introspection surface: lift the raw ShardIntrospection data
// a ShardedScheduler collects (window occupancy, barrier-wait time, the
// cross-shard message matrix, lookahead-slack histograms) into telemetry
// metrics and a human-readable report. Collection lives in the DES layer;
// this module only translates — it never touches a running scheduler.
#pragma once

#include <iosfwd>

#include "l2sim/des/sharded_scheduler.hpp"

namespace l2s::telemetry {
class Registry;
}

namespace l2s::obs {

/// Export the scheduler's introspection data into `registry`:
///   shard.window_events{shard}     counter  events run inside windows
///   shard.active_windows{shard}    counter  windows with >= 1 event
///   shard.posted{shard}            counter  cross-shard sends originating here
///   shard.sent{src,dst}            counter  message matrix (nonzero cells)
///   shard.window_occupancy{shard}  histogram  events per active window
///   shard.post_slack_us{shard}     histogram  post() slack past now + L
///   shard.run_seconds{shard}       gauge    wall time inside run_window
///   worker.barrier_seconds{worker} gauge    wall time blocked at barriers
///   worker.run_seconds{worker}     gauge    wall time running windows
///   shard.window_timeline{shard}   sample series  (window floor, events)
/// No-op when introspection was never enabled on `sched`.
void export_shard_introspection(telemetry::Registry& registry,
                                const des::ShardedScheduler& sched);

/// Human-readable per-shard report: occupancy/imbalance table, cross-shard
/// message matrix, worker barrier-stall accounting.
void write_shard_report(std::ostream& out, const des::ShardedScheduler& sched);

}  // namespace l2s::obs
