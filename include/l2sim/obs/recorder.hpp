// FlightRecorder: the deterministic decision log. A passive
// LifecycleObserver that turns the engine's explicit decision emissions
// (dispatch, shed, reject, brownout, retry, budget-deny, hedge — see
// EngineContext::note_decision) plus the lifecycle events it can derive
// records from (completion, terminal failure, fault timeline) into a
// bounded ring of DecisionRecords. It schedules no events, draws no
// randomness and mutates no engine state, so recording cannot perturb the
// simulation: golden digests are bit-identical with the recorder on or
// off (pinned by GoldenResults.FlightRecorderDoesNotPerturbDigests).
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/core/engine/context.hpp"
#include "l2sim/core/engine/lifecycle.hpp"
#include "l2sim/obs/config.hpp"
#include "l2sim/obs/decision.hpp"

namespace l2s::obs {

class FlightRecorder final : public core::engine::LifecycleObserver {
 public:
  FlightRecorder(const core::engine::EngineContext& ctx, const ObsConfig& config);

  // Explicit decision emissions from the engine components.
  void on_decision(const DecisionRecord& record) override;

  // Derived records: request outcomes and the fault timeline.
  void on_request_completed(const cluster::Connection& conn, SimTime now) override;
  void on_request_failed(const cluster::Connection* conn, core::engine::FailureKind kind,
                         SimTime now) override;
  void on_node_crashed(int node, SimTime at) override;
  void on_node_repaired(int node, SimTime at) override;
  void on_node_detected(int node, SimTime at) override;
  void on_node_readmitted(int node, SimTime at) override;

  /// Drop everything recorded so far (used when the coordinator discards
  /// warm-up history because ObsConfig::include_warmup is off).
  void clear();

  /// Snapshot the retained window, oldest record first.
  [[nodiscard]] DecisionTrace trace() const;

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

 private:
  void append(DecisionRecord record);
  void append_derived(DecisionKind kind, DecisionCause cause, std::uint64_t request,
                      int node, int target, std::uint32_t attempt, std::int64_t detail,
                      SimTime now);

  const core::engine::EngineContext& ctx_;
  ObsConfig config_;
  std::vector<DecisionRecord> ring_;  ///< wraps at config_.capacity when bounded
  std::uint64_t head_ = 0;            ///< next write slot when the ring is full
  std::uint64_t recorded_ = 0;        ///< global record count (sink index source)
};

}  // namespace l2s::obs
