// Decision vocabulary of the flight recorder: every discrete choice the
// engine makes (dispatch target, admission shed, brownout transition,
// retry-budget spend/deny, hedge fire, fault suspicion/readmission) is
// describable as one compact POD DecisionRecord with a kind and a cause
// code. The records are pure data — emitting one schedules nothing and
// draws no randomness — so two runs that make the same decisions produce
// byte-identical record streams, which is what `l2sim diff` compares.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "l2sim/common/units.hpp"

namespace l2s::obs {

/// What kind of engine decision a record describes.
enum class DecisionKind : std::uint8_t {
  kDispatch,        ///< dispatcher picked a target (or found none)
  kShed,            ///< overload shedder turned an arrival away
  kReject,          ///< admission buffers were full at arrival
  kBrownout,        ///< brownout level transition (detail = new level)
  kRetry,           ///< a retry attempt was scheduled (cause = why the attempt died)
  kBudgetDeny,      ///< retry budget had no token for a retry or hedge
  kHedge,           ///< a hedged (speculative) attempt was dispatched
  kComplete,        ///< request finished successfully
  kFailure,         ///< request terminally failed (deadline / retries exhausted)
  kNodeCrash,       ///< fault plan crashed a node
  kNodeRepair,      ///< fault plan repaired a node
  kNodeSuspected,   ///< failure detector suspected a node
  kNodeReadmitted,  ///< failure detector readmitted a node
};

/// Why the decision went the way it did. One flat enum so a record stays
/// two bytes of classification; kinds constrain which causes are sensible.
enum class DecisionCause : std::uint8_t {
  kNone,
  // Dispatch outcomes.
  kLocalService,    ///< target == entry node, serviced locally
  kForwardService,  ///< target != entry node, request handed off
  kNoPolicyTarget,  ///< policy returned no target (all candidates masked)
  // Admission shed reasons (which shedder said no).
  kShedStaticCap,
  kShedQueueDelay,
  kShedAimd,
  kShedBrownout,  ///< brownout level 2 every-other-arrival service shed
  // Admission reject reason.
  kBufferOverflow,
  // Brownout transition direction.
  kBrownoutRaise,
  kBrownoutEase,
  // Why an attempt died (cause carried into the kRetry / kBudgetDeny record).
  kEntryNodeDown,
  kServiceNodeDown,
  kPeerNodeDown,  ///< migration target or remote-fetch owner was down
  kAttemptTimeout,
  // Which budget spend was denied.
  kBudgetDeniedRetry,
  kBudgetDeniedHedge,
  // Hedge fire.
  kHedgeFired,
  // Terminal failure reasons.
  kDeadlineExpired,
  kRetriesExhausted,
};

[[nodiscard]] std::string_view to_string(DecisionKind kind);
[[nodiscard]] std::string_view to_string(DecisionCause cause);

/// One engine decision. Plain trivially-copyable data, 40 bytes: cheap to
/// ring-buffer by the hundred-thousand and trivially comparable field by
/// field when hunting the first divergence between two runs.
struct DecisionRecord {
  SimTime time = 0;             ///< simulated time of the decision
  std::uint64_t request = 0;    ///< connection / request id (0 when none exists yet)
  std::int32_t node = -1;       ///< node the decision concerns (entry node, crashed node, ...)
  std::int32_t target = -1;     ///< dispatch target / service node (-1 when n/a)
  std::int64_t detail = 0;      ///< kind-specific payload (brownout level, retry count, ...)
  std::uint32_t attempt = 0;    ///< attempt number the decision belongs to
  DecisionKind kind = DecisionKind::kDispatch;
  DecisionCause cause = DecisionCause::kNone;
  std::uint8_t pass = 0;  ///< 0 = warm-up pass, 1 = measured pass
  std::uint8_t pad = 0;

  friend bool operator==(const DecisionRecord& a, const DecisionRecord& b) {
    return a.time == b.time && a.request == b.request && a.node == b.node &&
           a.target == b.target && a.detail == b.detail && a.attempt == b.attempt &&
           a.kind == b.kind && a.cause == b.cause && a.pass == b.pass;
  }
  friend bool operator!=(const DecisionRecord& a, const DecisionRecord& b) {
    return !(a == b);
  }
};

static_assert(sizeof(DecisionRecord) == 40, "DecisionRecord is meant to stay compact");

/// Streaming consumer of decision records. `index` is the global record
/// index (0-based, counting every record ever emitted, ring capacity
/// notwithstanding), so a sink can locate a record even after the in-ring
/// copy has been overwritten. Sinks run inside event handlers: they must
/// not touch engine state, and any exception they throw aborts the run
/// (the divergence comparator uses exactly that to stop replay B early).
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void on_decision(std::uint64_t index, const DecisionRecord& record) = 0;
};

/// The recorder's output: the retained window of records (oldest first)
/// plus bookkeeping for how much history the ring discarded.
struct DecisionTrace {
  std::vector<DecisionRecord> records;  ///< oldest-first retained window
  std::uint64_t recorded = 0;           ///< records emitted over the whole run
  std::uint64_t dropped = 0;            ///< records the bounded ring overwrote
  std::uint64_t capacity = 0;           ///< ring capacity (0 = unbounded)

  /// Global index of records[0] (== dropped: the ring discards oldest-first).
  [[nodiscard]] std::uint64_t first_index() const { return dropped; }
};

/// FNV-1a fold of every retained record — a cheap fingerprint for
/// "byte-identical decision stream" assertions in tests and benches.
[[nodiscard]] std::uint64_t trace_digest(const DecisionTrace& trace);

}  // namespace l2s::obs
