// M-VIA-style user-level messaging over the cluster network.
//
// A point-to-point message charges: 3 us sender CPU, 6 us + payload/1Gbit/s
// sender NIC, 1 us switch, 6 us + payload/1Gbit/s receiver NIC, 3 us
// receiver CPU — 19 us one-way for a 4-byte message, matching the paper's
// M-VIA measurements. Broadcasts are implemented as N-1 point-to-point
// messages, exactly as the paper's simulator does.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "l2sim/des/resource.hpp"
#include "l2sim/net/nic.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/net/switch_fabric.hpp"

namespace l2s::net {

class ViaNetwork {
 public:
  struct Endpoint {
    des::Resource* cpu = nullptr;
    Nic* nic = nullptr;
  };

  ViaNetwork(des::Scheduler& sched, SwitchFabric& fabric, const NetParams& params);

  /// Register a node's CPU and NIC; returns its endpoint id.
  int add_endpoint(Endpoint ep);

  /// Wire-level transfer only (sender NIC -> switch -> receiver NIC); the
  /// caller accounts for CPU time itself (used for request hand-offs whose
  /// CPU cost is the policy's forwarding cost, not the VIA send overhead).
  void transmit(int src, int dst, Bytes bytes, des::EventFn on_delivered);

  /// Full VIA send including both CPU overheads.
  void send(int src, int dst, Bytes bytes, des::EventFn on_delivered);

  /// N-1 point-to-point sends; `on_delivered(dst)` fires per destination.
  void broadcast(int src, Bytes bytes, const std::function<void(int dst)>& on_delivered);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] int endpoints() const { return static_cast<int>(endpoints_.size()); }
  void reset_stats() { messages_ = 0; }

 private:
  des::Scheduler& sched_;
  SwitchFabric& fabric_;
  const NetParams& params_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t messages_ = 0;
};

}  // namespace l2s::net
