// M-VIA-style user-level messaging over the cluster network.
//
// A point-to-point message charges: 3 us sender CPU, 6 us + payload/1Gbit/s
// sender NIC, the topology path (1 us for the paper's single switch; ToR /
// core hops and capacitated link transfers for the multi-switch
// topologies), 6 us + payload/1Gbit/s receiver NIC, 3 us receiver CPU —
// 19 us one-way for a 4-byte message on the single switch, matching the
// paper's M-VIA measurements. Broadcasts are implemented as N-1
// point-to-point messages, exactly as the paper's simulator does — each
// one charged along its own topology path, so a cross-rack destination
// pays its real hop count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "l2sim/des/resource.hpp"
#include "l2sim/net/nic.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/net/topology.hpp"

namespace l2s::net {

class FlowNetwork;

/// What the (optional) fault model decided for one message. Defaults are a
/// healthy link. Duplicates are suppressed at the receiver: the copy burns
/// NIC service time, the delivery handler still fires exactly once.
struct LinkFault {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay = 0;
};

/// Per-message fault oracle, installed by the fault layer. The interface
/// lives here (not in l2sim/fault) so net/ has no dependency on the fault
/// subsystem; fault::FaultRuntime implements it.
class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;
  [[nodiscard]] virtual LinkFault on_message(int src, int dst) = 0;
};

class ViaNetwork {
 public:
  struct Endpoint {
    des::Resource* cpu = nullptr;
    Nic* nic = nullptr;
  };

  ViaNetwork(des::Scheduler& sched, Topology& topology, const NetParams& params);

  /// Register a node's CPU and NIC; returns its endpoint id.
  int add_endpoint(Endpoint ep);

  /// Wire-level transfer only (sender NIC -> topology path -> receiver
  /// NIC); the caller accounts for CPU time itself (used for request
  /// hand-offs whose CPU cost is the policy's forwarding cost, not the VIA
  /// send overhead).
  void transmit(int src, int dst, Bytes bytes, des::EventFn on_delivered);

  /// Bulk data transfer (request-forwarding replies, cache-fill payloads).
  /// Identical to transmit() unless a flow network is attached
  /// (set_flow_network), in which case the payload rides the flow-level
  /// max-min bandwidth sharing instead of per-segment NIC/link events.
  void bulk(int src, int dst, Bytes bytes, des::EventFn on_delivered);

  /// Full VIA send including both CPU overheads.
  void send(int src, int dst, Bytes bytes, des::EventFn on_delivered);

  /// N-1 point-to-point sends; `on_delivered(dst)` fires per destination.
  void broadcast(int src, Bytes bytes, const std::function<void(int dst)>& on_delivered);

  /// Install (or clear, with nullptr) the per-message fault oracle. The
  /// model must outlive the network or be cleared before it dies.
  void set_fault_model(LinkFaultModel* model) { fault_model_ = model; }

  /// Attach (or clear) the flow-level bulk-transfer network; it must
  /// outlive the VIA network or be cleared first.
  void set_flow_network(FlowNetwork* flow) { flow_ = flow; }

  [[nodiscard]] const Topology& topology() const { return topo_; }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t messages_delayed() const { return delayed_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// Messages sent but neither dropped nor yet handed to the receiver NIC —
  /// the telemetry probe samples this. Clamped at 0 because a mid-flight
  /// warm-up reset can make the counters momentarily inconsistent.
  [[nodiscard]] std::uint64_t in_flight() const {
    const std::uint64_t settled = dropped_ + delivered_;
    return settled >= messages_ ? 0 : messages_ - settled;
  }
  [[nodiscard]] int endpoints() const { return static_cast<int>(endpoints_.size()); }

  /// Zero every counter, including the fault-layer ones. (This used to
  /// clear only messages_, which made warm-up drops bleed into measured
  /// statistics once the fault layer landed.)
  void reset_stats() {
    messages_ = 0;
    dropped_ = 0;
    duplicated_ = 0;
    delayed_ = 0;
    delivered_ = 0;
  }

 private:
  des::Scheduler& sched_;
  Topology& topo_;
  const NetParams& params_;
  std::vector<Endpoint> endpoints_;
  LinkFaultModel* fault_model_ = nullptr;
  FlowNetwork* flow_ = nullptr;
  std::uint64_t messages_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace l2s::net
