// A capacitated, directed network link: a single-server FIFO transmission
// queue (store-and-forward) plus byte accounting for utilization reports.
//
// The paper's single switch is contention-free, so it has no Links at all;
// the multi-switch topologies (rack-aware uplinks, fat-tree edge/agg/core
// hops) are made of them. A Link serves one frame at a time at its line
// rate — message-mode transfers queue here — and separately accumulates
// the bytes attributed to flow-level transfers (flow.hpp), which share the
// same capacity analytically rather than through the event queue.
#pragma once

#include <cstdint>
#include <string>

#include "l2sim/common/units.hpp"
#include "l2sim/des/resource.hpp"

namespace l2s::net {

class Link {
 public:
  Link(des::Scheduler& sched, std::string name, double bits_per_s);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Queue `bytes` through the link; `done` fires when the last bit has
  /// been transmitted (FIFO behind everything already queued).
  void transfer(Bytes bytes, des::EventFn done);

  /// Pure transmission time of `bytes` at the line rate (no queueing).
  [[nodiscard]] SimTime transfer_time(Bytes bytes) const {
    return seconds_to_simtime(transfer_seconds(bytes, bits_per_s_));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double bits_per_s() const { return bits_per_s_; }

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] Bytes bytes_carried() const { return bytes_; }
  /// Fraction of [0, elapsed] the transmitter was busy (message mode).
  [[nodiscard]] double utilization(SimTime elapsed) const {
    return server_.utilization(elapsed);
  }

  /// Flow-level accounting: bits attributed to this link by the max-min
  /// bandwidth-sharing mode (no event-queue traffic involved).
  void add_flow_bits(double bits) { flow_bits_ += bits; }
  [[nodiscard]] double flow_bits() const { return flow_bits_; }
  /// Mean flow-mode utilization over [0, elapsed].
  [[nodiscard]] double flow_utilization(SimTime elapsed) const;

  void reset_stats();

 private:
  des::Resource server_;
  std::string name_;
  double bits_per_s_;
  std::uint64_t transfers_ = 0;
  Bytes bytes_ = 0;
  double flow_bits_ = 0.0;
};

}  // namespace l2s::net
